//! End-to-end integration tests: RC source → parse → sema → rlang
//! inference → interpretation on the region runtime, across all
//! configurations, with the heap auditor as an independent referee.

use rc_regions::lang::{prepare, run, run_audited, CheckMode, Outcome, RunConfig};
use rc_regions::rt::RtError;

/// Runs a source under every configuration; all must exit with the same
/// code and pass the audit. Returns that code.
fn everywhere(src: &str) -> i64 {
    let c = prepare(src).unwrap_or_else(|e| panic!("compile error: {e}"));
    let mut exit = None;
    for (name, cfg) in RunConfig::figure7().into_iter().chain(RunConfig::figure8()) {
        let r = run_audited(&c, &cfg);
        if let Some(Err(e)) = &r.audit {
            panic!("{name}: audit failed: {e}");
        }
        let code = match r.outcome {
            Outcome::Exit(n) => n,
            other => panic!("{name}: {other:?}"),
        };
        if let Some(prev) = exit {
            assert_eq!(prev, code, "{name} diverged");
        }
        exit = Some(code);
    }
    exit.expect("at least one configuration ran")
}

#[test]
fn sorting_with_region_lists() {
    // Insertion sort over a sameregion linked list — a data structure
    // born, used and freed with its region.
    let src = r#"
        struct cell { int v; struct cell *sameregion next; };
        static struct cell *insert(region r, struct cell *head, int v) {
            if (head == null || head->v >= v) {
                struct cell *n = ralloc(r, struct cell);
                n->v = v;
                n->next = head;
                return n;
            }
            struct cell *p = head;
            while (p->next != null && p->next->v < v) {
                p = p->next;
            }
            struct cell *n = ralloc(regionof(p), struct cell);
            n->v = v;
            n->next = p->next;
            p->next = n;
            return head;
        }
        int main() deletes {
            region r = newregion();
            struct cell *list = null;
            int seed = 7;
            int i;
            for (i = 0; i < 100; i = i + 1) {
                seed = (seed * 75 + 74) % 65537;
                list = insert(r, list, seed % 1000);
            }
            // Verify sortedness and checksum.
            int prev = -1;
            int sum = 0;
            struct cell *p = list;
            while (p != null) {
                assert(p->v >= prev);
                prev = p->v;
                sum = (sum + p->v) % 100000;
                p = p->next;
            }
            list = null;
            p = null;
            deleteregion(r);
            return sum;
        }
    "#;
    let code = everywhere(src);
    assert!(code > 0);
}

#[test]
fn binary_tree_in_one_region() {
    let src = r#"
        struct tree { int key; struct tree *sameregion l; struct tree *sameregion r; };
        static struct tree *add(region rg, struct tree *t, int key) {
            if (t == null) {
                struct tree *n = ralloc(rg, struct tree);
                n->key = key;
                return n;
            }
            if (key < t->key) { t->l = add(rg, t->l, key); }
            else { t->r = add(rg, t->r, key); }
            return t;
        }
        static int count(struct tree *t) {
            if (t == null) { return 0; }
            return 1 + count(t->l) + count(t->r);
        }
        int main() deletes {
            region rg = newregion();
            struct tree *root = null;
            int seed = 12345;
            int i;
            for (i = 0; i < 200; i = i + 1) {
                seed = (seed * 1103515245 + 12345) % 2147483647;
                if (seed < 0) { seed = -seed; }
                root = add(rg, root, seed % 10000);
            }
            int n = count(root);
            root = null;
            deleteregion(rg);
            return n;
        }
    "#;
    assert_eq!(everywhere(src), 200);
}

#[test]
fn producer_consumer_regions() {
    // Data migrates between generations of regions — the copying pattern
    // region systems use instead of GC.
    let src = r#"
        struct item { int v; struct item *sameregion next; };
        static struct item *copy_list(region dst, struct item *src) {
            struct item *out = null;
            struct item *p = src;
            while (p != null) {
                struct item *n = ralloc(dst, struct item);
                n->v = p->v + 1;
                n->next = out;
                out = n;
                p = p->next;
            }
            return out;
        }
        int main() deletes {
            region cur = newregion();
            struct item *list = null;
            int i;
            for (i = 0; i < 20; i = i + 1) {
                struct item *n = ralloc(cur, struct item);
                n->v = i;
                n->next = list;
                list = n;
            }
            int gen;
            for (gen = 0; gen < 10; gen = gen + 1) {
                region next = newregion();
                struct item *copied = copy_list(next, list);
                list = null;
                deleteregion(cur);
                cur = next;
                list = copied;
                copied = null;
            }
            int sum = 0;
            struct item *p = list;
            while (p != null) { sum = sum + p->v; p = p->next; }
            list = null;
            p = null;
            deleteregion(cur);
            return sum;
        }
    "#;
    // Each of the 20 items was incremented once per generation.
    assert_eq!(everywhere(src), (0..20).sum::<i64>() + 20 * 10);
}

#[test]
fn deep_subregion_towers() {
    let src = r#"
        struct frame { int depth; struct frame *parentptr up; };
        static int descend(region parent, struct frame *above, int depth) deletes {
            if (depth == 0) { return 0; }
            region r = newsubregion(parent);
            struct frame *f = ralloc(r, struct frame);
            f->depth = depth;
            f->up = above;
            int below = descend(r, f, depth - 1);
            int mine = f->depth;
            f = null;
            deleteregion(r);
            return mine + below;
        }
        int main() deletes {
            region root = newregion();
            int total = descend(root, null, 50);
            deleteregion(root);
            return total;
        }
    "#;
    assert_eq!(everywhere(src), (1..=50).sum::<i64>());
}

#[test]
fn audit_after_every_workload() {
    for w in rc_regions::workloads::all() {
        let c = prepare(&(w.source)(rc_regions::workloads::Scale::TINY)).unwrap();
        let r = run_audited(&c, &RunConfig::rc_inf());
        assert!(r.outcome.is_exit(), "{}: {:?}", w.name, r.outcome);
        assert!(matches!(r.audit, Some(Ok(()))), "{}: audit failed", w.name);
    }
}

#[test]
fn safety_violations_are_caught_not_silent() {
    // Store into a deleted region's sibling: the sameregion check fires
    // under qs, is eliminated as provably-unneeded nowhere, and the
    // refcount blocks premature deletion.
    let src = r#"
        struct t { struct t *sameregion next; };
        struct t *stash[2];
        int main() deletes {
            region a = newregion();
            region b = newregion();
            stash[0] = ralloc(a, struct t);
            stash[1] = ralloc(b, struct t);
            struct t *x = stash[0];
            struct t *y = stash[1];
            x->next = y;  // cross-region sameregion store
            return 0;
        }
    "#;
    let c = prepare(src).unwrap();
    let qs = run(&c, &RunConfig::rc(CheckMode::Qs));
    assert!(
        matches!(qs.outcome, Outcome::Aborted(RtError::CheckFailed { .. })),
        "{:?}",
        qs.outcome
    );
    // The inference must NOT have claimed this site safe.
    let inf = run(&c, &RunConfig::rc(CheckMode::Inf));
    assert!(
        matches!(inf.outcome, Outcome::Aborted(RtError::CheckFailed { .. })),
        "inf must keep the (actually failing) check: {:?}",
        inf.outcome
    );
}

#[test]
fn inference_never_unsafely_eliminates() {
    // A check the analysis eliminates must be one that can never fail:
    // run all workloads under qs (all checks execute) — zero check
    // failures means every eliminated check was indeed redundant.
    for w in rc_regions::workloads::all() {
        let c = prepare(&(w.source)(rc_regions::workloads::Scale::TINY)).unwrap();
        let qs = run(&c, &RunConfig::rc(CheckMode::Qs));
        assert!(qs.outcome.is_exit(), "{}: qs run failed: {:?}", w.name, qs.outcome);
    }
}

#[test]
fn figure2_api_surface() {
    // Direct use of the Figure 2 API from Rust, no RC source involved.
    use rc_regions::rt::{Heap, PtrKind, SlotKind, TypeLayout, WriteMode};
    let mut heap = Heap::with_defaults();
    let ty = heap.register_type(TypeLayout::new(
        "pair",
        vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
    ));
    let r = heap.new_region();
    let sub = heap.new_subregion(r).unwrap();
    let a = heap.ralloc(r, ty).unwrap();
    let arr = heap.rarray_alloc(sub, ty, 10).unwrap();
    assert_eq!(heap.region_of(a), Ok(r));
    assert_eq!(heap.region_of(arr), Ok(sub));
    heap.write_ptr(a, 0, arr, WriteMode::Counted).unwrap();
    assert!(heap.delete_region(sub).is_err(), "a → arr pins sub");
    heap.write_ptr(a, 0, rc_regions::rt::Addr::NULL, WriteMode::Counted).unwrap();
    heap.delete_region(sub).unwrap();
    heap.delete_region(r).unwrap();
    heap.audit().unwrap();
}
