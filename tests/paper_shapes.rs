//! Regression tests for the paper's evaluation *shapes*.
//!
//! These assert the qualitative claims of §5 — the orderings and
//! directions a reader would check our reproduction against — so that a
//! future change cannot silently break the science while keeping the
//! plumbing green. Absolute values are virtual-clock instruction counts;
//! the assertions are deliberately about ratios and orderings only.

use rc_regions::lang::{prepare, run, CheckMode, Outcome, RunConfig};
use rc_regions::workloads::driver::{prepare_workload, static_stats};
use rc_regions::workloads::{all, by_name, Scale};

fn cycles(w: &rc_regions::workloads::Workload, cfg: &RunConfig) -> u64 {
    let c = prepare_workload(w, Scale::TINY);
    let r = run(&c, cfg);
    assert!(matches!(r.outcome, Outcome::Exit(_)), "{}: {:?}", w.name, r.outcome);
    r.cycles
}

#[test]
fn rc_always_beats_cat() {
    // "RC with reference counting always performs better than C@."
    for w in all() {
        let rc = cycles(&w, &RunConfig::rc_inf());
        let cat = cycles(&w, &RunConfig::cat());
        assert!(rc < cat, "{}: RC {rc} !< C@ {cat}", w.name);
    }
}

#[test]
fn check_regimes_are_monotone() {
    // Figure 8: nq ≥ qs ≥ inf ≥ nc on every benchmark.
    for w in all() {
        let c = prepare_workload(&w, Scale::TINY);
        let t: Vec<u64> = RunConfig::figure8()
            .into_iter()
            .map(|(_, cfg)| {
                let r = run(&c, &cfg);
                assert!(r.outcome.is_exit());
                r.cycles
            })
            .collect();
        assert!(t[0] >= t[1], "{}: nq < qs", w.name);
        assert!(t[1] >= t[2], "{}: qs < inf", w.name);
        assert!(t[2] >= t[3], "{}: inf < nc", w.name);
    }
}

#[test]
fn lcc_has_the_largest_rc_overhead() {
    // Table 2: "The largest reference counting overhead is for lcc at 11%
    // of execution time."
    let overhead = |name: &str| {
        let w = by_name(name).unwrap();
        let c = prepare_workload(&w, Scale::TINY);
        let r = run(&c, &RunConfig::rc(CheckMode::Qs));
        100.0 * r.stats.rc_cycles as f64 / r.cycles as f64
    };
    let lcc = overhead("lcc");
    for name in ["cfrac", "grobner", "moss", "tile", "apache", "rc", "mudlle"] {
        let o = overhead(name);
        assert!(
            lcc >= o - 0.5,
            "lcc overhead {lcc:.1}% should top {name}'s {o:.1}%"
        );
    }
    // And it is in the right ballpark (paper: 11%).
    assert!(lcc > 5.0 && lcc < 20.0, "lcc overhead {lcc:.1}% out of band");
    // cfrac/gröbner/tile are near zero (paper: ≤0.7%).
    for name in ["cfrac", "grobner", "tile", "moss"] {
        let o = overhead(name);
        assert!(o < 2.0, "{name} overhead {o:.1}% should be near zero");
    }
}

#[test]
fn annotations_cut_lcc_and_mudlle_overheads() {
    // "Without any qualifiers the reference count overhead of lcc would be
    // 27% instead of 11%, and the overhead of mudlle would be 23% instead
    // of 6%" — the nq overhead must be ≥ 1.8× the inf overhead.
    for name in ["lcc", "mudlle"] {
        let w = by_name(name).unwrap();
        let c = prepare_workload(&w, Scale::TINY);
        let ov = |cfg: RunConfig| {
            let r = run(&c, &cfg);
            let dynamic = r.stats.rc_cycles + r.stats.check_cycles + r.stats.unscan_cycles;
            100.0 * dynamic as f64 / r.cycles as f64
        };
        let nq = ov(RunConfig::rc(CheckMode::Nq));
        let inf = ov(RunConfig::rc(CheckMode::Inf));
        assert!(
            nq - inf >= 2.5,
            "{name}: nq {nq:.1}% vs inf {inf:.1}% — annotations must pay              (paper: 27%→11% and 23%→6%)"
        );
    }
}

#[test]
fn static_verification_ordering_matches_table3() {
    // Table 3 ordering: rc verifies least (bison parse stack), lcc and
    // apache a minority, moss/tile/grobner/mudlle a solid majority.
    let pct = |name: &str| static_stats(&by_name(name).unwrap(), Scale::TINY).safe_pct();
    let rc = pct("rc");
    let lcc = pct("lcc");
    let apache = pct("apache");
    for low in [rc, lcc, apache] {
        assert!(low <= 50.0, "low-verification benchmarks must stay below 50%: {low}");
    }
    for name in ["moss", "tile", "grobner", "mudlle", "cfrac"] {
        let hi = pct(name);
        assert!(hi > 50.0, "{name} should verify a majority, got {hi:.0}%");
        assert!(hi > rc, "{name} must beat rc's {rc:.0}%");
    }
    assert!(rc <= lcc, "rc verifies least (the bison effect): {rc:.0} vs {lcc:.0}");
}

#[test]
fn figure9_annotated_share_floor() {
    // "In all these benchmarks at least 39% of pointer assignments are of
    // annotated types" (all except cfrac — ours is annotated-heavy there
    // too, which we accept as a miniature artifact).
    use rc_regions::rt::AssignCategory;
    for w in all() {
        if w.name == "lcc" || w.name == "rc" {
            // The counted-heavy pair: annotated share is lower but present.
            continue;
        }
        let c = prepare_workload(&w, Scale::TINY);
        let r = run(&c, &RunConfig::rc_inf());
        let annotated = r.stats.assign_pct(AssignCategory::Safe)
            + r.stats.assign_pct(AssignCategory::Checked);
        assert!(
            annotated >= 39.0,
            "{}: annotated share {annotated:.0}% below the paper's floor",
            w.name
        );
    }
}

#[test]
fn cfrac_is_dominated_by_local_assignments() {
    // "In cfrac essentially all pointer assignments are of pointers to
    // local variables."
    let w = by_name("cfrac").unwrap();
    let c = prepare_workload(&w, Scale::TINY);
    let r = run(&c, &RunConfig::rc_inf());
    assert!(
        r.stats.assigns_local > 10 * r.stats.heap_assigns(),
        "local {} vs heap {}",
        r.stats.assigns_local,
        r.stats.heap_assigns()
    );
}

#[test]
fn unscan_is_a_small_fraction() {
    // Table 2: "The region unscan accounts for 2% or less of execution
    // time on all other benchmarks" (lcc's is the largest).
    for w in all() {
        let c = prepare_workload(&w, Scale::TINY);
        let r = run(&c, &RunConfig::rc(CheckMode::Qs));
        let pct = 100.0 * r.stats.unscan_cycles as f64 / r.cycles as f64;
        assert!(pct < 4.0, "{}: unscan {pct:.1}% too large", w.name);
    }
}

#[test]
fn rc_is_competitive_with_baselines() {
    // Figure 7's headline: "regions with reference counting are from 7%
    // slower to 58% faster than the same programs using malloc/free or
    // the Boehm-Weiser conservative garbage collector". Allow a little
    // slack beyond 7% for miniature noise, but RC must never blow up.
    for w in all() {
        let c = prepare_workload(&w, Scale::TINY);
        let get = |cfg: RunConfig| {
            let r = run(&c, &cfg);
            assert!(r.outcome.is_exit());
            r.cycles as f64
        };
        let rc = get(RunConfig::rc_inf());
        let lea = get(RunConfig::lea());
        let gc = get(RunConfig::gc());
        let best = lea.min(gc);
        assert!(
            rc <= best * 1.15,
            "{}: RC {rc} more than 15% behind best baseline {best}",
            w.name
        );
    }
}

#[test]
fn inference_convergence_is_fast() {
    // The paper's per-file analysis completes in seconds; ours must
    // converge in a few greatest-fixed-point rounds.
    for w in all() {
        let src = (w.source)(Scale::TINY);
        let c = prepare(&src).unwrap();
        assert!(
            c.analysis.rounds < 20,
            "{}: {} rounds — summary iteration diverging?",
            w.name,
            c.analysis.rounds
        );
    }
}
