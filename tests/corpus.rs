//! The conformance corpus: hand-minimised golden programs, one per
//! grammar feature, each cross-checked through the full differential
//! oracle (five allocator configurations, inference-soundness counting,
//! heap audits, replay determinism).
//!
//! Every `tests/corpus/*.rc` file carries an `// expect: <outcome-key>`
//! header; the harness asserts both that the oracle finds no violation
//! and that the agreed outcome matches the header. Files under
//! `tests/corpus/regressions/` are shrunk fuzz repros and are asserted
//! to *still fail* with their recorded violation kind (the file-name
//! suffix), so silently fixed bugs surface as stale repros.

use std::path::{Path, PathBuf};

const STEP_BUDGET: u64 = 50_000_000;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn rc_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "rc"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

/// The `// expect: <key>` header of a golden program.
fn expected_outcome(src: &str) -> Option<String> {
    src.lines()
        .find_map(|l| l.strip_prefix("// expect: "))
        .map(|s| s.trim().to_string())
}

#[test]
fn golden_corpus_is_conformant_across_all_configs() {
    let files = rc_files(&corpus_dir());
    assert!(files.len() >= 15, "expected at least 15 golden programs, found {}", files.len());
    for path in files {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&path).expect("corpus file is readable");
        let expect = expected_outcome(&src)
            .unwrap_or_else(|| panic!("{name}: missing `// expect: <outcome>` header"));
        let report = rc_fuzz::check_source(&src, STEP_BUDGET)
            .unwrap_or_else(|e| panic!("{name}: does not compile: {e}"));
        assert!(
            report.passed(),
            "{name}: oracle violations: {:?}",
            report.violations
        );
        assert_eq!(
            report.outcome_key, expect,
            "{name}: outcome drifted from its golden header"
        );
    }
}

#[test]
fn golden_corpus_round_trips_through_the_pretty_printer() {
    for path in rc_files(&corpus_dir()) {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&path).expect("corpus file is readable");
        let a1 = rc_lang::parser::parse(&src).unwrap_or_else(|e| panic!("{name}: {e}"));
        let printed = rc_lang::pretty::print_ast(&a1);
        let a2 = rc_lang::parser::parse(&printed)
            .unwrap_or_else(|e| panic!("{name}: printed source does not parse: {e}\n{printed}"));
        assert_eq!(
            rc_lang::pretty::normalise(&a1),
            rc_lang::pretty::normalise(&a2),
            "{name}: round trip changed the AST"
        );
    }
}

#[test]
fn promoted_regressions_still_reproduce() {
    for path in rc_files(&corpus_dir().join("regressions")) {
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        let src = std::fs::read_to_string(&path).expect("regression file is readable");
        // seed<hex>-<kind>.rc → <kind>.
        let kind = name
            .strip_suffix(".rc")
            .and_then(|s| s.split_once('-').map(|(_, k)| k.to_string()))
            .unwrap_or_else(|| panic!("{name}: not a seedXXXX-<kind>.rc regression name"));
        let report = rc_fuzz::check_source(&src, STEP_BUDGET)
            .unwrap_or_else(|e| panic!("{name}: does not compile: {e}"));
        assert!(
            report.violations.iter().any(|v| v.kind() == kind),
            "{name}: recorded violation `{kind}` no longer reproduces \
             (got {:?}) — delete the file or promote the program to the \
             golden corpus",
            report.violations
        );
    }
}
