#![warn(missing_docs)]

//! # rc-regions — language support for regions, reproduced
//!
//! Umbrella crate for a from-scratch Rust reproduction of David Gay and
//! Alex Aiken, *Language Support for Regions* (PLDI 2001): the **RC**
//! dialect of C with reference-counted regions.
//!
//! The system is organised as four library crates, re-exported here:
//!
//! - [`rt`] (`region-rt`) — the region runtime: page-based region
//!   allocation, per-region external reference counts, the subregion
//!   hierarchy, the Figure 3 write barriers, and the paper's two baselines
//!   (malloc/free and a conservative mark–sweep GC);
//! - [`lang`] (`rc-lang`) — the RC language: lexer, parser, type checker
//!   with the `sameregion` / `parentptr` / `traditional` / `deletes`
//!   qualifiers, the §4.3 translation into rlang, and an interpreter
//!   instrumented exactly like the paper's compiled programs;
//! - [`types`] (`rlang`) — the region type system with existentially
//!   quantified abstract regions and the constraint inference that
//!   eliminates provably-redundant runtime checks;
//! - [`workloads`] (`rc-workloads`) — miniatures of the paper's eight
//!   benchmarks (cfrac, gröbner, mudlle, lcc, moss, tile, rc, apache).
//!
//! ## Quickstart
//!
//! ```
//! use rc_regions::lang::{prepare, run, Outcome, RunConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = r#"
//!     struct rlist { struct rlist *sameregion next; int v; };
//!     int main() deletes {
//!         region r = newregion();
//!         struct rlist *last = null;
//!         int i;
//!         for (i = 0; i < 100; i = i + 1) {
//!             struct rlist *n = ralloc(r, struct rlist);
//!             n->v = i;
//!             n->next = last;
//!             last = n;
//!         }
//!         int total = 0;
//!         while (last != null) { total = total + last->v; last = last->next; }
//!         deleteregion(r);
//!         return total;
//!     }
//! "#;
//! let compiled = prepare(program)?;
//! let result = run(&compiled, &RunConfig::rc_inf());
//! assert_eq!(result.outcome, Outcome::Exit(4950));
//! // The sameregion checks in the loop were eliminated statically:
//! assert_eq!(result.stats.checks_sameregion, 0);
//! # Ok(())
//! # }
//! ```

/// The region runtime substrate (`region-rt`).
pub mod rt {
    pub use region_rt::*;
}

/// The RC language front end and interpreter (`rc-lang`).
pub mod lang {
    pub use rc_lang::*;
}

/// The rlang region type system (`rlang`).
pub mod types {
    pub use rlang::*;
}

/// The eight paper benchmarks (`rc-workloads`).
pub mod workloads {
    pub use rc_workloads::*;
}
