#!/usr/bin/env bash
# Panic gate: non-test region-rt code must not gain new panic sites.
#
# Scans crates/region-rt/src/*.rs (tests stripped — each file keeps its
# #[cfg(test)] module at the end) for panic!/unreachable!/todo!/
# unimplemented!/.unwrap()/.expect( and fails if any occurrence is not
# vetted in tools/panic_allowlist.txt. Allowlist entries are exact
# "<file>.rs: <trimmed source line>" strings, so moving a vetted site is
# fine but changing or adding one trips the gate and forces review.
# See docs/ROBUSTNESS.md.
set -euo pipefail
cd "$(dirname "$0")/.."

allowlist=tools/panic_allowlist.txt
status=0
shopt -s nullglob

for f in crates/region-rt/src/*.rs crates/region-rt/src/*/*.rs; do
    # Strip the trailing test module and comment lines, then scan.
    while IFS= read -r line; do
        trimmed=$(printf '%s' "$line" | sed 's/^[[:space:]]*//;s/[[:space:]]*$//')
        key="$(basename "$f"): $trimmed"
        if ! grep -qxF "$key" "$allowlist"; then
            echo "panic-gate: not allowlisted: $f: $trimmed" >&2
            status=1
        fi
    done < <(awk '/^#\[cfg\(test\)\]/{exit} {print}' "$f" \
        | grep -vE '^[[:space:]]*//' \
        | grep -E 'panic!\(|unreachable!\(|todo!\(|unimplemented!\(|\.unwrap\(\)|\.expect\("' \
        || true)
done

if [ "$status" -eq 0 ]; then
    echo "panic-gate: OK (every panic site in non-test region-rt code is allowlisted)"
fi
exit "$status"
