//! Running workloads under configurations.

use rc_lang::interp::{prepare, run, run_audited, Compiled, Outcome, RunResult};
use rc_lang::RunConfig;

use crate::{Scale, Workload};

/// Compiles a workload at a scale.
///
/// # Panics
///
/// Panics if the workload source fails to compile — workload sources are
/// fixtures, so that is a bug.
pub fn prepare_workload(w: &Workload, scale: Scale) -> Compiled {
    let src = (w.source)(scale);
    match prepare(&src) {
        Ok(c) => c,
        Err(e) => panic!("workload {} does not compile: {e}", w.name),
    }
}

/// Compiles and runs a workload.
pub fn run_workload(w: &Workload, scale: Scale, config: &RunConfig) -> RunResult {
    let c = prepare_workload(w, scale);
    run(&c, config)
}

/// Static annotation statistics for Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticStats {
    /// Annotation keywords in the source (`sameregion` + `parentptr` +
    /// `traditional`, excluding the `traditionalregion()` builtin).
    pub keywords: usize,
    /// Annotated assignment sites (chk sites in the rlang translation).
    pub sites: usize,
    /// Sites proven safe by the constraint inference.
    pub safe_sites: usize,
}

impl StaticStats {
    /// Percentage of annotated sites proven safe.
    pub fn safe_pct(&self) -> f64 {
        if self.sites == 0 {
            0.0
        } else {
            100.0 * self.safe_sites as f64 / self.sites as f64
        }
    }
}

/// Computes Table 3's static columns for a workload.
pub fn static_stats(w: &Workload, scale: Scale) -> StaticStats {
    let src = (w.source)(scale);
    let c = prepare_workload(w, scale);
    let keywords = count_keywords(&src);
    StaticStats {
        keywords,
        sites: c.analysis.site_count(),
        safe_sites: c.analysis.safe_count(),
    }
}

fn count_keywords(src: &str) -> usize {
    let mut n = 0;
    for kw in ["sameregion", "parentptr", "traditional"] {
        let mut rest = src;
        while let Some(pos) = rest.find(kw) {
            let after = &rest[pos + kw.len()..];
            // `traditional` must not match `traditionalregion`.
            if !after.starts_with("region") {
                n += 1;
            }
            rest = &rest[pos + kw.len()..];
        }
    }
    n
}

/// Test helper: runs a workload at tiny scale under every Figure 7 and
/// Figure 8 configuration, auditing the heap and demanding the same exit
/// code everywhere.
///
/// # Panics
///
/// Panics on any abort, audit failure, or exit-code disagreement.
pub fn smoke_all_configs(w: &Workload) {
    let c = prepare_workload(w, Scale::TINY);
    let mut exit: Option<i64> = None;
    let configs = RunConfig::figure7().into_iter().chain(RunConfig::figure8());
    for (name, cfg) in configs {
        let r = run_audited(&c, &cfg);
        if let Some(Err(e)) = &r.audit {
            panic!("{}/{name}: audit failed: {e}", w.name);
        }
        let code = match r.outcome {
            Outcome::Exit(n) => n,
            other => panic!("{}/{name}: did not exit: {other:?}", w.name),
        };
        match exit {
            None => exit = Some(code),
            Some(prev) => assert_eq!(
                prev, code,
                "{}/{name}: exit code diverged across configurations",
                w.name
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_counter_ignores_traditionalregion() {
        let src = "struct t *traditional x; region r = traditionalregion(); struct t *sameregion y;";
        assert_eq!(count_keywords(src), 2);
    }
}

#[cfg(test)]
mod validation_tests {
    use crate::{all, Scale};
    use rc_lang::to_rlang;

    /// Every benchmark's rlang translation is structurally well-formed and
    /// its inferred summaries pass the Figure 6 checking judgments.
    #[test]
    fn all_workload_translations_validate() {
        for w in all() {
            let m = rc_lang::compile(&(w.source)(Scale::TINY)).unwrap();
            let p = to_rlang::translate(&m);
            rlang::well_formed(&p).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            let a = rlang::analyse(&p);
            let violations = rlang::validate(&p, &a);
            assert!(violations.is_empty(), "{}: {violations:?}", w.name);
        }
    }
}

#[cfg(test)]
mod pretty_tests {
    use crate::{all, Scale};
    use rc_lang::parser::parse;
    use rc_lang::pretty::{normalise, print_ast};

    /// The pretty-printer round-trips every benchmark source: the suite
    /// exercises the full grammar, so this locks printer and parser
    /// together.
    #[test]
    fn workload_sources_round_trip() {
        for w in all() {
            let src = (w.source)(Scale::TINY);
            let a1 = parse(&src).unwrap();
            let printed = print_ast(&a1);
            let a2 = parse(&printed)
                .unwrap_or_else(|e| panic!("{}: printed source does not parse: {e}", w.name));
            assert_eq!(normalise(&a1), normalise(&a2), "{}: round trip changed AST", w.name);
        }
    }
}
