//! **parspawn** — spawn/join parallel variants of the Figure 7 workloads.
//!
//! The PLDI 2001 benchmarks are sequential programs, but their region
//! structure is embarrassingly parallel: each unit of work (a cfrac
//! factoring candidate, an lcc function, an apache request) lives in its
//! own region subtree and touches nothing else. These variants make that
//! latent parallelism explicit with `spawn`/`join`: the driver splits the
//! workload's iteration budget across `tasks` regions, spawns one task per
//! region, and each task runs a self-checking kernel (build a structure,
//! walk it, `assert` the walked checksum equals the built one) against its
//! own region subtree.
//!
//! Task bodies capture only the spawned region and `int` scalars, per the
//! spawn isolation rules, so every kernel is a global-free function taking
//! `(region, seed, iters)`. The total iteration budget is *fixed* across
//! task counts — `tasks=8` does the same work as `tasks=1`, split eight
//! ways — so wall-clock comparisons across worker counts are
//! apples-to-apples, while merged `Stats` comparisons are only meaningful
//! within one task count (a different split is a different program).

use crate::Scale;

/// Per-workload base iteration budget at `Scale(1)`, before the scale
/// multiplier. Chosen so `Scale::TINY` runs in milliseconds.
fn base_iters(name: &str) -> Option<u32> {
    Some(match name {
        "cfrac" => 60,
        "grobner" => 40,
        "mudlle" => 50,
        "lcc" => 30,
        "moss" => 80,
        "tile" => 120,
        "rc" => 40,
        "apache" => 50,
        _ => return None,
    })
}

/// The spawn/join variant of a Figure 7 workload, or `None` for an unknown
/// name. `tasks` is clamped to at least 1; the iteration budget
/// (`base × scale`) is divided evenly across tasks.
pub fn par_source(name: &str, scale: Scale, tasks: u32) -> Option<String> {
    let base = base_iters(name)?;
    let kernel = kernel_source(name)?;
    let tasks = tasks.max(1);
    let total = base * scale.0;
    let per_task = (total / tasks).max(1);

    let mut src = String::new();
    src.push_str(&format!(
        "// {name} (parallel variant): {tasks} task(s) x {per_task} iterations.\n"
    ));
    src.push_str(kernel);
    src.push_str("\nint main() deletes {\n");
    src.push_str(&format!("    int iters = {per_task};\n"));
    for t in 0..tasks {
        src.push_str(&format!("    region r{t} = newregion();\n"));
    }
    for t in 0..tasks {
        // Distinct odd seeds so shards do different work.
        let seed = 2 * t + 1;
        src.push_str(&format!(
            "    spawn r{t} {{ {name}_task(r{t}, {seed}, iters); }}\n",
            name = ident(name)
        ));
    }
    src.push_str("    join;\n");
    for t in 0..tasks {
        src.push_str(&format!("    deleteregion(r{t});\n"));
    }
    src.push_str(&format!("    return {tasks};\n}}\n"));
    Some(src)
}

/// Workload names containing characters illegal in RC identifiers.
fn ident(name: &str) -> &str {
    match name {
        "rc" => "rcc",
        other => other,
    }
}

/// The self-checking task kernel for one workload: structs plus a
/// global-free `<name>_task(region r, int seed, int iters)` function that
/// builds this workload's characteristic structure in `r`, re-walks it,
/// and asserts the checksums agree.
fn kernel_source(name: &str) -> Option<&'static str> {
    Some(match name {
        // cfrac: bignum digit chains, one short-lived subregion per
        // factoring candidate.
        "cfrac" => r#"
struct digit { int v; struct digit *sameregion next; };

static int cfrac_task(region r, int seed, int iters) deletes {
    int sum = 0;
    int st = seed;
    int i;
    for (i = 0; i < iters; i = i + 1) {
        region t = newsubregion(r);
        struct digit *num = null;
        int len = st % 6 + 2;
        int built = 0;
        int j;
        for (j = 0; j < len; j = j + 1) {
            struct digit *d = ralloc(t, struct digit);
            st = (st * 1103515245 + 12345) % 2147483647;
            if (st < 0) { st = -st; }
            d->v = st % 10000;
            d->next = num;
            num = d;
            built = (built + d->v) % 1000003;
        }
        int walked = 0;
        struct digit *p = num;
        while (p != null) { walked = (walked + p->v) % 1000003; p = p->next; }
        assert(walked == built);
        sum = (sum + walked) % 1000003;
        num = null;
        p = null;
        deleteregion(t);
    }
    assert(sum >= 0);
    return sum;
}
"#,

        // grobner: a growing basis of polynomial nodes in the task region,
        // s-pair scratch subregions deleted after each reduction.
        "grobner" => r#"
struct poly { int lead; int terms; struct poly *sameregion next; };
struct spair { int a; int b; };

static int grobner_task(region r, int seed, int iters) deletes {
    struct poly *basis = null;
    int st = seed;
    int nbasis = 0;
    int sum = 0;
    int i;
    for (i = 0; i < iters; i = i + 1) {
        region scratch = newsubregion(r);
        struct spair *sp = ralloc(scratch, struct spair);
        st = (st * 1103515245 + 12345) % 2147483647;
        if (st < 0) { st = -st; }
        sp->a = st % 97;
        sp->b = (st / 97) % 89;
        int reduced = (sp->a * 89 + sp->b) % 1000003;
        sp = null;
        deleteregion(scratch);
        if (reduced % 3 == 0) {
            struct poly *p = ralloc(r, struct poly);
            p->lead = reduced;
            p->terms = reduced % 7 + 1;
            p->next = basis;
            basis = p;
            nbasis = nbasis + 1;
        }
        sum = (sum + reduced) % 1000003;
    }
    int walked = 0;
    struct poly *q = basis;
    while (q != null) {
        walked = walked + 1;
        assert(q->terms >= 1);
        q = q->next;
    }
    assert(walked == nbasis);
    return sum;
}
"#,

        // mudlle: an interpreter loop, one short-lived evaluation region
        // per expression holding a small chain of value cells.
        "mudlle" => r#"
struct value { int tag; int payload; struct value *sameregion link; };

static int mudlle_task(region r, int seed, int iters) deletes {
    int st = seed;
    int sum = 0;
    int i;
    for (i = 0; i < iters; i = i + 1) {
        region eval = newsubregion(r);
        struct value *stack = null;
        int depth = st % 5 + 1;
        int built = 0;
        int j;
        for (j = 0; j < depth; j = j + 1) {
            struct value *v = ralloc(eval, struct value);
            st = (st * 1103515245 + 12345) % 2147483647;
            if (st < 0) { st = -st; }
            v->tag = st % 4;
            v->payload = st % 1009;
            v->link = stack;
            stack = v;
            built = (built + v->payload) % 1000003;
        }
        int walked = 0;
        struct value *p = stack;
        while (p != null) { walked = (walked + p->payload) % 1000003; p = p->link; }
        assert(walked == built);
        sum = (sum + walked) % 1000003;
        stack = null;
        p = null;
        deleteregion(eval);
    }
    return sum;
}
"#,

        // lcc: per-function compile regions — a subregion of statement
        // nodes built, counted, and bulk-freed for every function.
        "lcc" => r#"
struct stmtnode { int op; int size; struct stmtnode *sameregion next; };

static int lcc_task(region r, int seed, int iters) deletes {
    int st = seed;
    int code = 0;
    int i;
    for (i = 0; i < iters; i = i + 1) {
        region func = newsubregion(r);
        struct stmtnode *body = null;
        int nstmts = st % 8 + 3;
        int emitted = 0;
        int j;
        for (j = 0; j < nstmts; j = j + 1) {
            struct stmtnode *s = ralloc(func, struct stmtnode);
            st = (st * 1103515245 + 12345) % 2147483647;
            if (st < 0) { st = -st; }
            s->op = st % 16;
            s->size = s->op + 1;
            s->next = body;
            body = s;
            emitted = emitted + s->size;
        }
        int walked = 0;
        struct stmtnode *p = body;
        while (p != null) { walked = walked + p->size; p = p->next; }
        assert(walked == emitted);
        code = (code + walked) % 1000003;
        body = null;
        p = null;
        deleteregion(func);
    }
    return code;
}
"#,

        // moss: passage fingerprints accumulated into hash chains that
        // live for the whole run — the one kernel with no deletion.
        "moss" => r#"
struct passage { int hash; int doc; struct passage *sameregion chain; };

static int moss_task(region r, int seed, int iters) {
    struct passage *bucket0 = null;
    struct passage *bucket1 = null;
    int st = seed;
    int built = 0;
    int n0 = 0;
    int i;
    for (i = 0; i < iters; i = i + 1) {
        st = (st * 1103515245 + 12345) % 2147483647;
        if (st < 0) { st = -st; }
        struct passage *p = ralloc(r, struct passage);
        p->hash = st % 65536;
        p->doc = st % 31;
        if (p->hash % 2 == 0) {
            p->chain = bucket0;
            bucket0 = p;
            n0 = n0 + 1;
        } else {
            p->chain = bucket1;
            bucket1 = p;
        }
        built = (built + p->hash) % 1000003;
    }
    int walked = 0;
    int c0 = 0;
    struct passage *q = bucket0;
    while (q != null) { walked = (walked + q->hash) % 1000003; c0 = c0 + 1; q = q->chain; }
    q = bucket1;
    while (q != null) { walked = (walked + q->hash) % 1000003; q = q->chain; }
    assert(c0 == n0);
    assert(walked == built);
    return walked;
}
"#,

        // tile: buffer rotation in a scratch subregion plus a chain of
        // page descriptors in the task region.
        "tile" => r#"
struct tbuf { int pos; int chr; };
struct tpage { int lines; int chars; struct tpage *sameregion prev; };

static int tile_task(region r, int seed, int iters) deletes {
    region scratch = newsubregion(r);
    struct tbuf *cur = ralloc(scratch, struct tbuf);
    struct tbuf *spare = ralloc(scratch, struct tbuf);
    struct tpage *pages = null;
    int st = seed;
    int lines = 0;
    int pchars = 0;
    int npages = 0;
    int i;
    for (i = 0; i < iters; i = i + 1) {
        cur->pos = cur->pos + 1;
        if (cur->pos % 16 == 0) {
            struct tbuf *t = cur;
            cur = spare;
            spare = t;
            cur->pos = 0;
        }
        st = (st * 1103515245 + 12345) % 2147483647;
        if (st < 0) { st = -st; }
        cur->chr = st % 96 + 32;
        pchars = pchars + 1;
        if (cur->chr % 8 == 0) {
            lines = lines + 1;
            if (lines >= 4) {
                struct tpage *p = ralloc(r, struct tpage);
                p->lines = lines;
                p->chars = pchars;
                p->prev = pages;
                pages = p;
                npages = npages + 1;
                lines = 0;
                pchars = 0;
            }
        }
    }
    int walked = 0;
    struct tpage *q = pages;
    while (q != null) { walked = walked + 1; assert(q->lines >= 1); q = q->prev; }
    assert(walked == npages);
    cur = null;
    spare = null;
    deleteregion(scratch);
    return npages;
}
"#,

        // rc (the compiler compiling itself): AST nodes with child chains,
        // one subregion per top-level declaration.
        "rc" => r#"
struct astnode { int kind; int children; struct astnode *sameregion sib; };

static int rcc_task(region r, int seed, int iters) deletes {
    int st = seed;
    int sum = 0;
    int i;
    for (i = 0; i < iters; i = i + 1) {
        region decl = newsubregion(r);
        struct astnode *kids = null;
        st = (st * 1103515245 + 12345) % 2147483647;
        if (st < 0) { st = -st; }
        int n = st % 6 + 1;
        int j;
        for (j = 0; j < n; j = j + 1) {
            struct astnode *c = ralloc(decl, struct astnode);
            c->kind = (st + j) % 12;
            c->children = 0;
            c->sib = kids;
            kids = c;
        }
        struct astnode *root = ralloc(decl, struct astnode);
        root->kind = 0;
        root->children = n;
        root->sib = kids;
        int walked = 0;
        struct astnode *p = root->sib;
        while (p != null) { walked = walked + 1; p = p->sib; }
        assert(walked == root->children);
        sum = (sum + walked) % 1000003;
        kids = null;
        root = null;
        p = null;
        deleteregion(decl);
    }
    return sum;
}
"#,

        // apache: a connection region per task, one request subregion per
        // iteration freed after the response is "sent".
        "apache" => r#"
struct header { int key; int val; struct header *sameregion next; };
struct conn { int requests; int bytes; };

static int apache_task(region r, int seed, int iters) deletes {
    struct conn *c = ralloc(r, struct conn);
    int st = seed;
    int i;
    for (i = 0; i < iters; i = i + 1) {
        region req = newsubregion(r);
        struct header *hdrs = null;
        st = (st * 1103515245 + 12345) % 2147483647;
        if (st < 0) { st = -st; }
        int nh = st % 5 + 2;
        int built = 0;
        int j;
        for (j = 0; j < nh; j = j + 1) {
            struct header *h = ralloc(req, struct header);
            h->key = j;
            h->val = (st + j) % 509;
            h->next = hdrs;
            hdrs = h;
            built = (built + h->val) % 1000003;
        }
        int walked = 0;
        struct header *p = hdrs;
        while (p != null) { walked = (walked + p->val) % 1000003; p = p->next; }
        assert(walked == built);
        c->requests = c->requests + 1;
        c->bytes = (c->bytes + walked) % 1000003;
        hdrs = null;
        p = null;
        deleteregion(req);
    }
    assert(c->requests == iters);
    return c->bytes;
}
"#,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_lang::interp::{prepare, run_audited, Outcome};
    use rc_lang::RunConfig;

    /// Every parallel variant compiles, passes its self-checks, and leaves
    /// a clean merged heap, sequentially and under the deterministic
    /// scheduler.
    #[test]
    fn parallel_variants_run_clean() {
        for w in crate::all() {
            for tasks in [1, 3] {
                let src = par_source(w.name, Scale::TINY, tasks)
                    .unwrap_or_else(|| panic!("{}: no parallel variant", w.name));
                let c = prepare(&src)
                    .unwrap_or_else(|e| panic!("{}: parallel variant does not compile: {e}", w.name));
                for cfg in [RunConfig::rc_inf(), RunConfig::rc_inf().det_sched(5)] {
                    let r = run_audited(&c, &cfg);
                    if let Some(Err(e)) = &r.audit {
                        panic!("{}/{tasks}: audit failed: {e}", w.name);
                    }
                    assert_eq!(
                        r.outcome,
                        Outcome::Exit(i64::from(tasks)),
                        "{}/{tasks} tasks",
                        w.name
                    );
                    assert_eq!(r.handoffs.len(), tasks as usize, "{}", w.name);
                }
            }
        }
    }

    /// The iteration budget is fixed across task counts: total allocations
    /// differ only by the per-task remainder, never by a task multiple.
    #[test]
    fn budget_is_split_not_multiplied() {
        let one = par_source("moss", Scale::SMALL, 1).unwrap();
        let four = par_source("moss", Scale::SMALL, 4).unwrap();
        let cfg = RunConfig::lea();
        let r1 = run_audited(&prepare(&one).unwrap(), &cfg);
        let r4 = run_audited(&prepare(&four).unwrap(), &cfg);
        // moss allocates one passage per iteration (640 at this scale), so
        // the totals differ only by per-task descriptor overhead, never by
        // anything close to a 4x multiple.
        assert!(r1.stats.objects_allocated >= 640);
        let extra = r4.stats.objects_allocated - r1.stats.objects_allocated;
        assert!(extra < 40, "4-way split added {extra} objects");
    }
}
