//! **lcc** — a retargetable C compiler.
//!
//! The biggest refcounting stress in the paper (12,430 lines, 1M
//! allocations, 4.1 MB peak): "56% of runtime pointer assignments write a
//! pointer to an object in region r into another object in region r", the
//! reference-counting overhead is the suite's largest (11% under RC, 27%
//! without qualifiers), "most checks remain in lcc" (Table 3: 31%
//! statically safe), and the delete-time region unscan is the largest
//! (0.07 s).
//!
//! The miniature compiles a stream of synthetic functions: a long-lived
//! symbol-table region holding symbols and type nodes linked by
//! *unannotated* (counted) pointers, and a per-function region holding IR
//! trees with `sameregion` links built by constructor functions whose
//! arguments are routed through a global forest array — the mixed call
//! sites that defeat the interprocedural analysis while passing their
//! checks at runtime. Every IR node also stores a counted cross-region
//! pointer to its symbol, which is what makes the unscan and the count
//! traffic heavy.

use crate::{Scale, Workload};

/// The lcc workload.
pub fn workload() -> Workload {
    Workload {
        name: "lcc",
        description: "per-function IR arenas against a long-lived symbol table",
        source,
    }
}

/// RC source at the given scale.
pub fn source(scale: Scale) -> String {
    let functions = 10 * scale.0;
    format!(
        r#"
// lcc: symbol table (counted links) + per-function IR (sameregion links).
struct tnode {{ int kind; struct tnode *next; }};
struct sym {{ int id; struct sym *next; struct tnode *ty; }};
struct irnode {{
    int op;
    struct irnode *sameregion kid0;
    struct irnode *sameregion kid1;
    struct irnode *sameregion link;
    struct sym *s;
}};

region symtab;
struct sym *symhead;
struct tnode *typehead;
struct irnode *forest[16];
int nforest;

static struct sym *intern(int id) {{
    struct sym *p = symhead;
    while (p != null) {{
        if (p->id == id) {{ return p; }}
        p = p->next;
    }}
    struct sym *s = ralloc(symtab, struct sym);
    s->id = id;
    struct tnode *t = ralloc(symtab, struct tnode);
    t->kind = id % 5;
    t->next = typehead;
    typehead = t;
    s->ty = t;
    s->next = symhead;
    symhead = s;
    return s;
}}

// IR constructors: kids come in from the global forest, so the analysis
// cannot verify the sameregion stores (they pass at runtime).
static struct irnode *newleaf(region fr, int op, struct sym *s) {{
    struct irnode *n = ralloc(fr, struct irnode);
    n->op = op;
    n->s = s;
    // kid0/kid1/link start null (ralloc zeroes).
    return n;
}}

static struct irnode *newtree(region fr, int op, struct irnode *a, struct irnode *b) {{
    struct irnode *n = ralloc(fr, struct irnode);
    n->op = op;
    n->kid0 = a;
    n->kid1 = b;
    n->s = intern(op % 23);
    return n;
}}

// Peephole passes rewrite statement links repeatedly: the bulk of lcc's
// same-region assignment traffic ("56% of runtime pointer assignments
// write a pointer to an object in region r into another object in r").
static void relink(struct irnode *stmts) {{
    struct irnode *p = stmts;
    while (p != null) {{
        struct irnode *q = p->link;
        if (q != null) {{
            // The rewrite goes through the forest (lcc's shared node
            // pool): two counted writes plus an unverifiable sameregion
            // store, the pattern that keeps lcc's checks alive.
            forest[15] = q;
            p->link = forest[15];
            forest[15] = null;
            p->kid1 = q->kid0;
        }}
        p = q;
    }}
}}

static int walk(struct irnode *n) {{
    if (n == null) {{ return 0; }}
    int v = n->op + n->s->id * 3 + n->s->ty->kind;
    return (v + walk(n->kid0) * 7 + walk(n->kid1) * 11) % 1000003;
}}

static int compile_function(int seed) deletes {{
    region fr = newregion();
    // Build leaves into the forest.
    nforest = 0;
    int i;
    for (i = 0; i < 12; i = i + 1) {{
        forest[nforest] = newleaf(fr, (seed + i) % 9 + 1, intern((seed * 3 + i) % 40));
        nforest = nforest + 1;
    }}
    // Combine pairs through the forest until one tree remains (the mixed
    // call-site pattern: arguments are array reads).
    while (nforest > 1) {{
        struct irnode *t = newtree(fr, seed % 7 + 1, forest[nforest - 1], forest[nforest - 2]);
        forest[nforest - 1] = null;
        forest[nforest - 2] = t;
        nforest = nforest - 1;
    }}
    // Chain statements with sameregion links.
    struct irnode *root = forest[0];
    forest[0] = null;
    struct irnode *stmts = null;
    for (i = 0; i < 6; i = i + 1) {{
        struct irnode *st = newtree(fr, 8, root, null);
        forest[15] = stmts;
        st->link = forest[15];
        forest[15] = null;
        stmts = st;
    }}
    // Optimisation passes over the chain.
    relink(stmts);
    relink(stmts);
    // A verified touch-up (one of the few stores lcc's analysis proves):
    // re-store the head's link from a freshly-read alias.
    struct irnode *s0 = stmts;
    if (s0 != null) {{
        stmts->link = s0->link;
    }}
    s0 = null;
    int sum = 0;
    struct irnode *p = stmts;
    while (p != null) {{
        sum = (sum + walk(p)) % 1000003;
        p = p->link;
    }}
    root = null;
    stmts = null;
    p = null;
    deleteregion(fr);
    return sum;
}}

int main() deletes {{
    symtab = newregion();
    symhead = null;
    typehead = null;
    int functions = {functions};
    int checksum = 0;
    int f;
    for (f = 0; f < functions; f = f + 1) {{
        checksum = (checksum + compile_function(f * 31 + 7)) % 1000003;
    }}
    // Tear down the symbol table.
    symhead = null;
    typehead = null;
    region dead = symtab;
    symtab = null;
    deleteregion(dead);
    assert(checksum >= 0);
    return checksum;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::smoke_all_configs;

    #[test]
    fn lcc_runs_everywhere() {
        smoke_all_configs(&workload());
    }
}
