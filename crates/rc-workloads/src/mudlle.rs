//! **mudlle** — a compiler/interpreter for a MUD extension language.
//!
//! The original (5,078 lines, 1.6M allocations) was already region-based.
//! Per the paper: the dominant data structure is "an instruction list"
//! with `sameregion` internal pointers; the parser is bison-generated, and
//! "the parse stack ... is like the objects array and prevents
//! verification of the construction of parse trees"; the lexer is
//! flex-generated with `traditional` buffer pointers; and one benchmark
//! (this one) "contains a list of nested environments with each
//! environment allocated in its own region" — the structure that cannot be
//! typed in Walker–Morrisett's system but runs fine under RC. Table 3:
//! 88% of annotated assignments verify; without qualifiers the
//! reference-count overhead would be 23% instead of 6%.
//!
//! The miniature compiles and runs a stream of synthetic expressions:
//! flex-style tokens in the traditional region, a global parse stack
//! (defeats inference, checks pass at runtime), `sameregion` parse trees
//! and instruction lists (verified), and evaluation against a chain of
//! environments each holding its own region.

use crate::{Scale, Workload};

/// The mudlle workload.
pub fn workload() -> Workload {
    Workload {
        name: "mudlle",
        description: "compile-and-run loop for a small expression language",
        source,
    }
}

/// RC source at the given scale.
pub fn source(scale: Scale) -> String {
    let programs = 12 * scale.0;
    format!(
        r#"
// mudlle: lex -> parse (explicit stack) -> codegen -> eval.
struct tok {{ int kind; int val; }};
struct node {{ int kind; int val; struct node *sameregion l; struct node *sameregion r; }};
struct ins {{ int op; int arg; struct ins *sameregion next; struct ins *sameregion prev; }};
struct binding {{ int name; int val; struct binding *sameregion next; }};
struct env {{ region r; struct env *parent; struct binding *sameregion binds; }};

// flex-style lexer state: traditional-region token buffer.
struct tok *traditional curtok;
struct tok *traditional lookahead;
int lexstate;

// bison-style parser state: a global node stack.
struct node *pstack[32];
int sp;

static void lex_init() {{
    curtok = ralloc(traditionalregion(), struct tok);
    lookahead = ralloc(traditionalregion(), struct tok);
    lexstate = 17;
}}

static int lex_next(int step) {{
    // Rotate the traditional buffers (the flex idiom: traditional
    // assignments, statically verified).
    struct tok *t = curtok;
    curtok = lookahead;
    lookahead = t;
    lexstate = (lexstate * 1103515245 + 12345) % 2147483647;
    if (lexstate < 0) {{ lexstate = -lexstate; }}
    curtok->kind = lexstate % 3;
    curtok->val = (lexstate / 7) % 100 + step;
    return curtok->kind;
}}

static struct node *mknode(region r, int kind, int val) {{
    struct node *n = ralloc(r, struct node);
    n->kind = kind;
    n->val = val;
    n->l = null;
    n->r = null;
    return n;
}}

// Shift/reduce over the global stack: the reduces read children from
// pstack, so these sameregion stores stay as runtime checks.
static struct node *parse(region r, int len) {{
    sp = 0;
    int i;
    for (i = 0; i < len; i = i + 1) {{
        int k = lex_next(i);
        if (k == 0 || sp == 0) {{
            // shift a leaf
            if (sp < 30) {{
                pstack[sp] = mknode(r, 0, curtok->val);
                sp = sp + 1;
            }}
        }} else {{
            // reduce top two into an operator node
            if (sp >= 2) {{
                struct node *op = mknode(r, k, curtok->val);
                op->l = pstack[sp - 1];
                op->r = pstack[sp - 2];
                pstack[sp - 1] = null;
                sp = sp - 2;
                pstack[sp] = op;
                sp = sp + 1;
            }} else {{
                pstack[sp] = mknode(r, 0, curtok->val);
                sp = sp + 1;
            }}
        }}
    }}
    // Fold whatever remains into one tree.
    while (sp > 1) {{
        struct node *top = mknode(r, 1, 0);
        top->l = pstack[sp - 1];
        top->r = pstack[sp - 2];
        pstack[sp - 1] = null;
        sp = sp - 2;
        pstack[sp] = top;
        sp = sp + 1;
    }}
    struct node *root = pstack[0];
    pstack[0] = null;
    return root;
}}

// Codegen: walk the tree, emit a sameregion instruction list (the
// dominant, fully verified structure).
static struct ins *gen(region code, struct node *n, struct ins *tail) {{
    if (n == null) {{ return tail; }}
    struct ins *t2 = gen(code, n->l, tail);
    struct ins *t3 = gen(code, n->r, t2);
    struct ins *me = ralloc(code, struct ins);
    me->op = n->kind;
    me->arg = n->val;
    me->next = t3;
    return me;
}}

// Peephole pass: rewrites instruction links in place — all verified
// sameregion stores (the instruction list dominates mudlle's annotated
// assignments).
static void peep(struct ins *code) {{
    struct ins *p = code;
    while (p != null) {{
        struct ins *q = p->next;
        if (q != null) {{
            p->next = q;
            q->prev = p;
        }}
        p = q;
    }}
}}

static struct env *env_push(struct env *parent) {{
    region er = newregion();
    struct env *e = ralloc(er, struct env);
    e->r = er;
    e->parent = parent;
    e->binds = null;
    return e;
}}

static void env_bind(struct env *e, int name, int val) {{
    struct binding *b = ralloc(regionof(e), struct binding);
    b->name = name;
    b->val = val;
    b->next = e->binds;
    e->binds = b;
}}

static int env_lookup(struct env *e, int name) {{
    struct env *cur = e;
    while (cur != null) {{
        struct binding *b = cur->binds;
        while (b != null) {{
            if (b->name == name) {{ return b->val; }}
            b = b->next;
        }}
        cur = cur->parent;
    }}
    return 0;
}}

static int eval(struct ins *code, struct env *e) {{
    int acc = 0;
    struct ins *pc = code;
    while (pc != null) {{
        if (pc->op == 0) {{
            acc = acc + pc->arg + env_lookup(e, pc->arg % 8);
        }} else {{
            if (pc->op == 1) {{ acc = acc * 3 + pc->arg; }}
            else {{ acc = acc - pc->arg; }}
        }}
        acc = acc % 1000003;
        if (acc < 0) {{ acc = -acc; }}
        pc = pc->next;
    }}
    return acc;
}}

static void env_pop_all(struct env *e) deletes {{
    struct env *cur = e;
    while (cur != null) {{
        struct env *up = cur->parent;
        region dead = cur->r;
        cur = null;
        deleteregion(dead);
        cur = up;
    }}
}}

int main() deletes {{
    lex_init();
    int programs = {programs};
    int checksum = 0;
    int p;
    for (p = 0; p < programs; p = p + 1) {{
        region parse_r = newregion();
        struct node *ast = parse(parse_r, 20 + p % 9);
        region code_r = newregion();
        struct ins *code = gen(code_r, ast, null);
        ast = null;
        deleteregion(parse_r);
        peep(code);
        peep(code);
        // Nested environments, each with its own region.
        struct env *e = env_push(null);
        struct env *e2 = env_push(e);
        env_bind(e, 1, p);
        env_bind(e2, 2, p * 3);
        env_bind(e2, 3, 7);
        checksum = (checksum + eval(code, e2)) % 1000003;
        checksum = (checksum + eval(code, e)) % 1000003;
        checksum = (checksum + eval(code, e2)) % 1000003;
        code = null;
        deleteregion(code_r);
        env_pop_all(e2);
        e = null;
        e2 = null;
    }}
    curtok = null;
    lookahead = null;
    assert(checksum >= 0);
    return checksum;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::smoke_all_configs;

    #[test]
    fn mudlle_runs_everywhere() {
        smoke_all_configs(&workload());
    }
}
