//! **moss** — software plagiarism detection.
//!
//! The original (2,675 lines, 554k allocations) fingerprints documents
//! into hash tables. Per the paper: "94% of runtime pointer assignments
//! are of traditional pointers in code produced by the flex lexical
//! analyser generator"; hash tables follow the "creation of the contents
//! of x after x itself exists" idiom; and "a more elaborate version of
//! this loop (involving inter-procedural analysis) is found in moss and is
//! also verified". Table 3: 89% statically safe; reference counting is
//! actually *negative* noise in Table 2 (essentially free).
//!
//! The miniature fingerprints a stream of synthetic documents: flex-style
//! traditional buffer rotation dominates the assignment mix, each document
//! gets a region holding a bucket array plus `sameregion` entry chains
//! built through an interprocedural constructor with consistent call
//! sites (verified), and a cross-document match list uses counted
//! pointers.

use crate::{Scale, Workload};

/// The moss workload.
pub fn workload() -> Workload {
    Workload {
        name: "moss",
        description: "document fingerprinting into per-document hash tables",
        source,
    }
}

/// RC source at the given scale.
pub fn source(scale: Scale) -> String {
    let docs = 8 * scale.0;
    format!(
        r#"
// moss: flex-style lexing + per-document fingerprint hash tables.
struct buf {{ int pos; int chr; }};
struct entry {{ int hash; int count; struct entry *sameregion next; }};
struct bucket {{ struct entry *sameregion head; }};
struct doc {{ struct bucket *sameregion tab; int nhash; }};
struct match {{ int a; int b; int score; struct match *sameregion next; }};

// flex buffers: traditional pointers, rotated constantly (94% of the
// original's assignments).
struct buf *traditional ybuf;
struct buf *traditional yalt;
int ystate;

region matchregion;
struct match *matches;

static void y_init() {{
    ybuf = ralloc(traditionalregion(), struct buf);
    yalt = ralloc(traditionalregion(), struct buf);
    ystate = 40503;
}}

static int y_next() {{
    ybuf->pos = ybuf->pos + 1;
    if (ybuf->pos % 32 == 0) {{
        // Buffer refill: rotate the traditional buffers (the flex idiom).
        struct buf *t = ybuf;
        ybuf = yalt;
        yalt = t;
        ybuf->pos = 0;
    }}
    ystate = (ystate * 69069 + 1) % 2147483647;
    if (ystate < 0) {{ ystate = -ystate; }}
    ybuf->chr = ystate % 97;
    return ybuf->chr;
}}

// The interprocedural constructor idiom: every call site passes an entry
// list and a region that agree, so the input summary proves the check.
static struct entry *entry_cons(region r, int h, struct entry *rest) {{
    struct entry *e = ralloc(r, struct entry);
    e->hash = h;
    e->count = 1;
    e->next = rest;
    return e;
}}

static struct doc *doc_new(region r, int nbuckets) {{
    struct doc *d = ralloc(r, struct doc);
    d->tab = rarrayalloc(regionof(d), nbuckets, struct bucket);
    d->nhash = nbuckets;
    int i;
    for (i = 0; i < nbuckets; i = i + 1) {{
        d->tab[i]->head = null;
    }}
    return d;
}}

static void doc_add(struct doc *d, int h) {{
    int b = h % d->nhash;
    struct entry *e = d->tab[b]->head;
    while (e != null) {{
        if (e->hash == h) {{ e->count = e->count + 1; return; }}
        e = e->next;
    }}
    d->tab[b]->head = entry_cons(regionof(d), h, d->tab[b]->head);
}}

static int doc_score(struct doc *d) {{
    int s = 0;
    int i;
    for (i = 0; i < d->nhash; i = i + 1) {{
        struct entry *e = d->tab[i]->head;
        while (e != null) {{
            s = (s + e->hash * e->count) % 1000003;
            e = e->next;
        }}
    }}
    return s;
}}

static void record_match(int a, int b, int score) {{
    struct match *m = ralloc(matchregion, struct match);
    m->a = a;
    m->b = b;
    m->score = score;
    m->next = matches;
    matches = m;
}}

int main() deletes {{
    y_init();
    matchregion = newregion();
    matches = null;
    int docs = {docs};
    int checksum = 0;
    int prev_score = 0;
    int d;
    for (d = 0; d < docs; d = d + 1) {{
        region r = newregion();
        struct doc *doc = doc_new(r, 16);
        // Fingerprint: winnow a window of lexed characters.
        int w = 0;
        int i;
        for (i = 0; i < 400; i = i + 1) {{
            int c = y_next();
            w = (w * 31 + c) % 9973;
            if (w % 4 == 0) {{
                doc_add(doc, w);
            }}
        }}
        int score = doc_score(doc);
        checksum = (checksum + score) % 1000003;
        if (score % 5 == prev_score % 5) {{
            record_match(d, d - 1, score);
        }}
        prev_score = score;
        doc = null;
        deleteregion(r);
    }}
    // Count matches, then drop them.
    int nm = 0;
    struct match *m = matches;
    while (m != null) {{ nm = nm + 1; m = m->next; }}
    checksum = (checksum + nm) % 1000003;
    matches = null;
    m = null;
    region dead = matchregion;
    matchregion = null;
    deleteregion(dead);
    ybuf = null;
    yalt = null;
    assert(checksum >= 0);
    return checksum;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::smoke_all_configs;

    #[test]
    fn moss_runs_everywhere() {
        smoke_all_configs(&workload());
    }
}
