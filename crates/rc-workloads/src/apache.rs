//! **apache** — the Apache web server's request handling.
//!
//! The original (62,289 lines ported to RC) "uses subregions to handle
//! sub-requests created to handle an original request. On our test input,
//! 10% of runtime pointer assignments in Apache are to pointers that
//! always stay within the same region or point to a parent region. We
//! capture these pointers with a parentptr type qualifier." Table 3: 31%
//! statically safe (the paper's own measurement was noisy for apache).
//!
//! The miniature serves a stream of connections: each connection gets a
//! region; each request a subregion of the connection; internal redirects
//! spawn sub-requests in sub-subregions whose `parentptr` back-links are
//! built two ways — directly (verified) and through a dispatch helper
//! called with mixed region arguments (kept as runtime checks). Header
//! lists are `sameregion`; the keep-alive table holds counted
//! cross-region pointers.

use crate::{Scale, Workload};

/// The apache workload.
pub fn workload() -> Workload {
    Workload {
        name: "apache",
        description: "connection/request/subrequest handling with subregions",
        source,
    }
}

/// RC source at the given scale.
pub fn source(scale: Scale) -> String {
    let connections = 6 * scale.0;
    format!(
        r#"
// apache: per-connection regions, per-request subregions, parentptr
// back-links from sub-requests.
struct hdr {{ int key; int val; struct hdr *sameregion next; }};
struct req {{
    int id;
    int status;
    struct hdr *sameregion hdrs;
    struct req *parentptr parent;
}};
struct conn {{ int fd; int nreq; struct req *cur; }};

struct req *keepalive[8];
struct hdr *curhdrs;
int kidx;
int rng;

static int rnd(int m) {{
    rng = (rng * 69069 + 5) % 2147483647;
    if (rng < 0) {{ rng = -rng; }}
    return rng % m;
}}

// Header chains are threaded through a global cursor (as Apache's pool
// cursor was): same region at runtime, opaque to the analysis.
static struct hdr *add_hdr(struct req *r, int k, int v) {{
    struct hdr *h = ralloc(regionof(r), struct hdr);
    h->key = k;
    h->val = v;
    if (k % 8 == 7) {{
        curhdrs = r->hdrs;
        h->next = curhdrs;
        curhdrs = h;
        r->hdrs = curhdrs;
        curhdrs = null;
    }} else {{
        h->next = r->hdrs;
        r->hdrs = h;
    }}
    return h;
}}

static struct req *mkreq(region rr, int id) {{
    struct req *r = ralloc(rr, struct req);
    r->id = id;
    r->status = 200;
    // hdrs/parent start null (ralloc zeroes).
    return r;
}}

// Dispatch helper with mixed call sites: sometimes the parent comes from
// the keep-alive table (region unknown), so the parentptr store stays a
// runtime check.
static void link_parent(struct req *child, struct req *parent) {{
    child->parent = parent;
}}

static int handle_subrequest(region reqr, struct req *parent, int depth) deletes {{
    region sub = newsubregion(reqr);
    struct req *s = mkreq(sub, parent->id * 10 + depth);
    // All parent links go through the dispatch helper, whose mixed call
    // sites keep the parentptr store as a runtime check.
    link_parent(s, parent);
    add_hdr(s, 1, depth);
    add_hdr(s, 2, parent->id);
    int out = 0;
    struct hdr *h = s->hdrs;
    while (h != null) {{
        out = (out + h->key * 31 + h->val) % 1000003;
        h = h->next;
    }}
    if (depth < 2 && rnd(3) == 0) {{
        out = (out + handle_subrequest(sub, s, depth + 1)) % 1000003;
    }}
    s = null;
    h = null;
    deleteregion(sub);
    return out;
}}

static int handle_request(region connr, struct conn *c, int id) deletes {{
    region reqr = newsubregion(connr);
    struct req *r = mkreq(reqr, id);
    c->cur = r;
    int nh = 3 + rnd(4);
    int i;
    for (i = 0; i < nh; i = i + 1) {{
        add_hdr(r, i, rnd(100));
    }}
    if (rnd(16) == 0) {{
        // Redispatch through the keep-alive table: this call site is what
        // keeps add_hdr's stores as runtime checks.
        keepalive[6] = r;
        struct req *rr = keepalive[6];
        if (rr != null) {{
            add_hdr(rr, 99, 1);
        }}
        keepalive[6] = null;
        rr = null;
    }}
    // Internal redirect via the dispatch helper: parent argument comes
    // from the keep-alive table half the time (unverifiable site).
    if (keepalive[kidx % 8] != null && rnd(2) == 0) {{
        link_parent(r, r);
    }}
    int out = handle_subrequest(reqr, r, 1);
    struct hdr *h = r->hdrs;
    while (h != null) {{
        out = (out + h->val) % 1000003;
        h = h->next;
    }}
    // Render the response body (the bulk of a real request's CPU time).
    int body = 0;
    int b;
    for (b = 0; b < 220; b = b + 1) {{
        body = (body * 33 + out + b) % 1000003;
    }}
    out = (out + body) % 1000003;
    c->cur = null;
    r = null;
    h = null;
    deleteregion(reqr);
    return out;
}}

int main() deletes {{
    rng = 987654321;
    kidx = 0;
    int connections = {connections};
    int checksum = 0;
    int cn;
    for (cn = 0; cn < connections; cn = cn + 1) {{
        region connr = newregion();
        struct conn *c = ralloc(connr, struct conn);
        c->fd = cn;
        c->nreq = 2 + rnd(3);
        int q;
        for (q = 0; q < c->nreq; q = q + 1) {{
            checksum = (checksum + handle_request(connr, c, cn * 100 + q)) % 1000003;
        }}
        // Park a pointer in the keep-alive table (counted, cross-region),
        // re-link it through the table (the unverifiable dispatch site),
        // then clear it before the connection dies.
        struct req *park = mkreq(connr, cn);
        keepalive[kidx % 8] = park;
        kidx = kidx + 1;
        struct req *ka = keepalive[(kidx - 1) % 8];
        struct req *ka2 = keepalive[(kidx - 1) % 8];
        if (ka != null && ka2 != null) {{
            link_parent(ka, ka2);
        }}
        ka = null;
        ka2 = null;
        park = null;
        keepalive[(kidx - 1) % 8] = null;
        c = null;
        deleteregion(connr);
    }}
    assert(checksum >= 0);
    return checksum;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::smoke_all_configs;

    #[test]
    fn apache_runs_everywhere() {
        smoke_all_configs(&workload());
    }
}
