#![warn(missing_docs)]

//! # rc-workloads — the eight PLDI 2001 benchmarks
//!
//! RC-dialect reimplementations of the benchmark suite from Gay & Aiken,
//! *Language Support for Regions*: cfrac, gröbner, mudlle, lcc, moss,
//! tile, rc and apache. The originals are tens of thousands of lines of C
//! we cannot rerun; each module here is a miniature that reproduces the
//! benchmark's *allocation and pointer-assignment profile* — the quantities
//! the paper's evaluation actually measures:
//!
//! - which data structures live in regions and how they are annotated
//!   (Table 3's keyword counts and the §5.2 idioms that do / do not
//!   verify);
//! - the runtime mix of local / annotated / counted pointer assignments
//!   (Figure 9);
//! - the allocation volume and lifetime shape (Table 1, Figure 7);
//! - the reference-counting and check overheads (Table 2, Figure 8).
//!
//! Each workload is a deterministic, self-checking program (it `assert`s a
//! checksum) that runs identically under every backend, so a wrong answer
//! in any configuration fails loudly.

pub mod apache;
pub mod cfrac;
pub mod driver;
pub mod grobner;
pub mod lcc;
pub mod moss;
pub mod mudlle;
pub mod paper;
pub mod parspawn;
pub mod rcc;
pub mod tile;

/// Workload size, as a multiplier over the per-workload base iteration
/// counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale(pub u32);

impl Scale {
    /// Fast enough for unit tests (fractions of a second per run).
    pub const TINY: Scale = Scale(1);
    /// Default for table/figure generation.
    pub const SMALL: Scale = Scale(8);
    /// For benchmarking runs.
    pub const FULL: Scale = Scale(40);
}

/// A benchmark program.
#[derive(Clone)]
pub struct Workload {
    /// Benchmark name, matching the paper's tables.
    pub name: &'static str,
    /// What the original program did.
    pub description: &'static str,
    /// Produces the RC source at a given scale.
    pub source: fn(Scale) -> String,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload").field("name", &self.name).finish()
    }
}

/// All eight workloads, in the paper's table order.
pub fn all() -> Vec<Workload> {
    vec![
        cfrac::workload(),
        grobner::workload(),
        mudlle::workload(),
        lcc::workload(),
        moss::workload(),
        tile::workload(),
        rcc::workload(),
        apache::workload(),
    ]
}

/// Looks up a workload by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_order() {
        let names: Vec<&str> = all().iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec!["cfrac", "grobner", "mudlle", "lcc", "moss", "tile", "rc", "apache"]
        );
        assert!(by_name("moss").is_some());
        assert!(by_name("nope").is_none());
    }
}
