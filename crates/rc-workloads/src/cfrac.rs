//! **cfrac** — continued-fraction integer factoring.
//!
//! The original (4,203 lines, 3.8M allocations) factors large integers
//! with hand-written reference counting (disabled under RC/GC). Its
//! profile per the paper: "essentially all pointer assignments are of
//! pointers to local variables used for by-reference parameters" —
//! reference-counting overhead is negligible (0.4% under RC), and about
//! half of the few annotated assignments verify statically (Table 3: 8
//! keywords, 50% safe).
//!
//! The miniature factors a stream of composite numbers with base-10000
//! big integers: one region per candidate, a storm of local pointer
//! shuffling in the arithmetic helpers, `sameregion` digit arrays
//! allocated via the `regionof` idiom (verified), and a result-pair cache
//! whose second slot flows through a global (unverified, checked at
//! runtime).

use crate::{Scale, Workload};

/// The cfrac workload.
pub fn workload() -> Workload {
    Workload {
        name: "cfrac",
        description: "continued-fraction factoring with big integers",
        source,
    }
}

/// RC source at the given scale.
pub fn source(scale: Scale) -> String {
    let rounds = 40 * scale.0;
    format!(
        r#"
// cfrac: big-integer factoring. Base-10000 limbs in sameregion arrays.
struct big {{ int len; int *sameregion d; }};
// Result pair: a stays local (verified), b flows through a global
// (defeats the analysis; checked at runtime).
struct pair {{ struct big *sameregion a; struct big *sameregion b; }};
struct big *gscratch;
int *gdigits;

static struct big *big_from(region r, int n) {{
    struct big *b = ralloc(r, struct big);
    b->d = rarrayalloc(regionof(b), 12, int);
    b->len = 0;
    while (n > 0) {{
        b->d[b->len] = n % 10000;
        n = n / 10000;
        b->len = b->len + 1;
    }}
    if (b->len == 0) {{ b->d[0] = 0; b->len = 1; }}
    return b;
}}

static struct big *big_mul_small(region r, struct big *x, int m) {{
    struct big *res = ralloc(r, struct big);
    if (m % 16 == 0) {{
        // Rare slow path: the digit array trips through a global (as the
        // original's shared temporaries did) — same region at runtime,
        // opaque statically.
        gdigits = rarrayalloc(regionof(res), x->len + 4, int);
        res->d = gdigits;
        gdigits = null;
    }} else {{
        res->d = rarrayalloc(regionof(res), x->len + 4, int);
    }}
    int carry = 0;
    int i;
    for (i = 0; i < x->len; i = i + 1) {{
        int v = x->d[i] * m + carry;
        res->d[i] = v % 10000;
        carry = v / 10000;
    }}
    res->len = x->len;
    while (carry > 0) {{
        res->d[res->len] = carry % 10000;
        carry = carry / 10000;
        res->len = res->len + 1;
    }}
    return res;
}}

static struct big *big_add_small(region r, struct big *x, int a) {{
    struct big *res = ralloc(r, struct big);
    if (a % 16 == 15) {{
        gdigits = rarrayalloc(regionof(res), x->len + 4, int);
        res->d = gdigits;
        gdigits = null;
    }} else {{
        res->d = rarrayalloc(regionof(res), x->len + 4, int);
    }}
    int carry = a;
    int i;
    for (i = 0; i < x->len; i = i + 1) {{
        int v = x->d[i] + carry;
        res->d[i] = v % 10000;
        carry = v / 10000;
    }}
    res->len = x->len;
    while (carry > 0) {{
        res->d[res->len] = carry % 10000;
        carry = carry / 10000;
        res->len = res->len + 1;
    }}
    return res;
}}

static int big_mod_small(struct big *x, int m) {{
    int rem = 0;
    int i;
    for (i = x->len - 1; i >= 0; i = i - 1) {{
        rem = (rem * 10000 + x->d[i]) % m;
    }}
    return rem;
}}

int main() deletes {{
    int rounds = {rounds};
    int checksum = 0;
    int t;
    for (t = 0; t < rounds; t = t + 1) {{
        region r = newregion();
        struct big *n = big_from(r, 9973 + t * 17);
        struct big *tmp;
        int k;
        // Build the candidate: lots of local pointer shuffling, the
        // cfrac signature.
        for (k = 0; k < 6; k = k + 1) {{
            tmp = big_mul_small(r, n, 37 + k);
            n = tmp;
            tmp = big_add_small(r, n, k + 1);
            n = tmp;
        }}
        // Cache the (n, scratch) pair; the global hop defeats inference.
        struct pair *p = ralloc(r, struct pair);
        p->a = n;
        if (t % 8 == 0) {{
            gscratch = n;
            p->b = gscratch;
            gscratch = null;
        }} else {{
            p->b = p->a;
        }}
        // Trial division.
        int d;
        for (d = 2; d < 60; d = d + 1) {{
            if (big_mod_small(p->a, d) == 0) {{
                checksum = checksum + d;
            }}
        }}
        n = null;
        tmp = null;
        p = null;
        deleteregion(r);
    }}
    assert(checksum > 0);
    return checksum % 1000000;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::smoke_all_configs;

    #[test]
    fn cfrac_runs_everywhere() {
        smoke_all_configs(&workload());
    }
}
