//! The paper's reported numbers, transcribed for side-by-side comparison.
//!
//! EXPERIMENTS.md and the table generators print these next to our
//! measurements. We reproduce *shapes* (who wins, roughly by how much,
//! which benchmarks verify), not the absolute 2001 SPARC timings.

/// One row of the paper's evaluation, per benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Table 1: lines of code of the original program.
    pub lines: u32,
    /// Table 1: number of allocations.
    pub allocs: u64,
    /// Table 1: total memory allocated (kB).
    pub mem_alloc_kb: u64,
    /// Table 1: maximum memory in use (kB).
    pub max_use_kb: u64,
    /// Table 2: RC reference-counting overhead as % of execution time
    /// (None where the paper's measurement was below noise / omitted).
    pub rc_overhead_pct: Option<f64>,
    /// Table 2: C@ reference-counting overhead as % of execution time.
    pub cat_overhead_pct: Option<f64>,
    /// Table 3: annotation keywords added.
    pub keywords: u32,
    /// Table 3: % of annotated assignment sites proven safe statically.
    pub safe_assign_pct: f64,
    /// §5/Figure 9 narrative: % of runtime (non-local) pointer assignments
    /// of annotated types (lower bound stated in the paper: ≥39% on all
    /// benchmarks except cfrac).
    pub annotated_assign_floor_pct: Option<f64>,
}

/// All eight rows, in table order.
pub fn rows() -> Vec<PaperRow> {
    vec![
        PaperRow {
            name: "cfrac",
            lines: 4_203,
            allocs: 3_812_425,
            mem_alloc_kb: 56_076,
            max_use_kb: 102,
            rc_overhead_pct: Some(0.4),
            cat_overhead_pct: Some(6.0),
            keywords: 8,
            safe_assign_pct: 50.0,
            annotated_assign_floor_pct: None, // the paper's outlier
        },
        PaperRow {
            name: "grobner",
            lines: 3_219,
            allocs: 5_971_710,
            mem_alloc_kb: 312_992,
            max_use_kb: 474,
            rc_overhead_pct: Some(0.7),
            cat_overhead_pct: Some(7.0),
            keywords: 22,
            safe_assign_pct: 80.0,
            annotated_assign_floor_pct: Some(39.0),
        },
        PaperRow {
            name: "mudlle",
            lines: 5_078,
            allocs: 1_594_372,
            mem_alloc_kb: 22_354,
            max_use_kb: 210,
            rc_overhead_pct: Some(6.0),
            cat_overhead_pct: Some(13.0),
            keywords: 21,
            safe_assign_pct: 88.0,
            annotated_assign_floor_pct: Some(39.0),
        },
        PaperRow {
            name: "lcc",
            lines: 12_430,
            allocs: 1_002_210,
            mem_alloc_kb: 55_637,
            max_use_kb: 4_121,
            rc_overhead_pct: Some(11.0),
            cat_overhead_pct: Some(17.0),
            keywords: 331,
            safe_assign_pct: 31.0,
            annotated_assign_floor_pct: Some(39.0),
        },
        PaperRow {
            name: "moss",
            lines: 2_675,
            allocs: 553_986,
            mem_alloc_kb: 6_312,
            max_use_kb: 2_185,
            rc_overhead_pct: Some(-0.5), // measured negative: noise
            cat_overhead_pct: Some(2.0),
            keywords: 22,
            safe_assign_pct: 89.0,
            annotated_assign_floor_pct: Some(39.0),
        },
        PaperRow {
            name: "tile",
            lines: 926,
            allocs: 10_459,
            mem_alloc_kb: 309,
            max_use_kb: 153,
            rc_overhead_pct: Some(0.0),
            cat_overhead_pct: Some(0.4),
            keywords: 0,
            safe_assign_pct: 84.0,
            annotated_assign_floor_pct: Some(99.9),
        },
        PaperRow {
            name: "rc",
            lines: 22_823,
            allocs: 81_093,
            mem_alloc_kb: 4_714,
            max_use_kb: 4_214,
            rc_overhead_pct: Some(4.0),
            cat_overhead_pct: None, // rc was not ported to C@
            keywords: 64,
            safe_assign_pct: 11.0,
            annotated_assign_floor_pct: Some(39.0),
        },
        PaperRow {
            name: "apache",
            lines: 62_289,
            allocs: 164_296,
            mem_alloc_kb: 30_806,
            max_use_kb: 78,
            rc_overhead_pct: Some(8.0),
            cat_overhead_pct: None, // apache was not ported to C@
            keywords: 0,
            safe_assign_pct: 31.0,
            annotated_assign_floor_pct: Some(10.0), // parentptr share
        },
    ]
}

/// Looks up the paper row for a benchmark.
pub fn row(name: &str) -> Option<PaperRow> {
    rows().into_iter().find(|r| r.name == name)
}

/// Headline Figure 8 deltas: "without any qualifiers the reference count
/// overhead of lcc would be 27% instead of 11%, and the overhead of mudlle
/// would be 23% instead of 6%".
pub const LCC_NQ_OVERHEAD_PCT: f64 = 27.0;
/// See [`LCC_NQ_OVERHEAD_PCT`].
pub const MUDLLE_NQ_OVERHEAD_PCT: f64 = 23.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_all_benchmarks() {
        let names: Vec<&str> = rows().iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec!["cfrac", "grobner", "mudlle", "lcc", "moss", "tile", "rc", "apache"]
        );
        assert!(row("lcc").is_some());
        assert_eq!(row("lcc").unwrap().safe_assign_pct, 31.0);
    }
}
