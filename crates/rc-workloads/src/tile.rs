//! **tile** — text tiling/processing.
//!
//! The smallest benchmark (926 lines, only 10,459 allocations, 309 kB
//! allocated): flex-generated lexing dominates completely, so "99.98% of
//! pointer assignments executed were to annotated types" and the
//! reference-counting overhead is zero. Table 3: 84% statically safe.
//!
//! The miniature tiles a synthetic character stream into lines and pages:
//! the inner loop rotates `traditional` buffer pointers (verified flex
//! idiom), while a small number of page descriptors are allocated into a
//! document region with `sameregion` links, one of which flows through a
//! global array slot (kept as a runtime check).

use crate::{Scale, Workload};

/// The tile workload.
pub fn workload() -> Workload {
    Workload {
        name: "tile",
        description: "line/page tiling of a character stream",
        source,
    }
}

/// RC source at the given scale.
pub fn source(scale: Scale) -> String {
    let chars = 2_000 * scale.0;
    format!(
        r#"
// tile: flex-style buffers + a handful of page descriptors.
struct buf {{ int pos; int chr; }};
struct page {{ int lines; int chars; struct page *sameregion prev; }};

struct buf *traditional cur;
struct buf *traditional spare;
struct page *pcache[4];
int tstate;

static void t_init() {{
    cur = ralloc(traditionalregion(), struct buf);
    spare = ralloc(traditionalregion(), struct buf);
    tstate = 12345;
}}

static int t_next() {{
    cur->pos = cur->pos + 1;
    if (cur->pos % 16 == 0) {{
        struct buf *t = cur;
        cur = spare;
        spare = t;
        cur->pos = 0;
    }}
    tstate = (tstate * 1103515245 + 12345) % 2147483647;
    if (tstate < 0) {{ tstate = -tstate; }}
    cur->chr = tstate % 96 + 32;
    return cur->chr;
}}

int main() deletes {{
    t_init();
    region doc = newregion();
    struct page *pages = null;
    int chars = {chars};
    int col = 0;
    int lines = 0;
    int pchars = 0;
    int npages = 0;
    int i;
    for (i = 0; i < chars; i = i + 1) {{
        int c = t_next();
        col = col + 1;
        pchars = pchars + 1;
        if (c % 64 == 0 || col >= 72) {{
            col = 0;
            lines = lines + 1;
            if (lines >= 40) {{
                struct page *p = ralloc(doc, struct page);
                p->lines = lines;
                p->chars = pchars;
                p->prev = pages;
                // Stash through the page cache: the reload defeats the
                // analysis but passes its runtime check.
                pcache[npages % 4] = p;
                pages = pcache[npages % 4];
                npages = npages + 1;
                lines = 0;
                pchars = 0;
            }}
        }}
    }}
    // Checksum the page chain.
    int sum = 0;
    struct page *q = pages;
    while (q != null) {{
        sum = (sum + q->lines * 100 + q->chars) % 1000003;
        q = q->prev;
    }}
    sum = (sum + npages) % 1000003;
    pages = null;
    q = null;
    pcache[0] = null;
    pcache[1] = null;
    pcache[2] = null;
    pcache[3] = null;
    deleteregion(doc);
    cur = null;
    spare = null;
    assert(sum >= 0);
    return sum;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::smoke_all_configs;

    #[test]
    fn tile_runs_everywhere() {
        smoke_all_configs(&workload());
    }
}
