//! **gröbner** — Gröbner-basis computation.
//!
//! The original (3,219 lines, 6M allocations) computes Gröbner bases over
//! polynomials with big-integer coefficients. Per the paper it "represents
//! large integers as a structure with a pointer to an array ... we
//! allocated some of these structures in a region rather than on the stack
//! and explicitly allocated the array in the same region as the structure.
//! This allowed us to declare the pointer to the array as sameregion."
//! Table 3: 80% of annotated assignments verify; Figure 9 shows the
//! workload dominated by one data structure with annotated internal
//! pointers.
//!
//! The miniature runs Buchberger-style rounds: a global basis of
//! polynomials (monomial lists with big coefficients, one region per
//! basis element), s-polynomial construction into fresh regions, and
//! reduction. All internal pointers are `sameregion`; one link per
//! polynomial is routed through a global scratch variable, which the
//! analysis cannot track (the ~20% of checks that remain).

use crate::{Scale, Workload};

/// The gröbner workload.
pub fn workload() -> Workload {
    Workload {
        name: "grobner",
        description: "Grobner basis rounds over big-coefficient polynomials",
        source,
    }
}

/// RC source at the given scale.
pub fn source(scale: Scale) -> String {
    let rounds = 6 * scale.0;
    format!(
        r#"
// grobner: polynomials as sameregion monomial lists with big coefficients.
struct coef {{ int len; int *sameregion digits; }};
struct mono {{ int deg; struct coef *sameregion c; struct mono *sameregion next; }};
struct poly {{ struct mono *sameregion head; int nterms; struct poly *sameregion scratch; }};

struct poly *basis[16];
region bregion[16];
int nbasis;
struct poly *gtmp;

static struct coef *coef_from(region r, int v) {{
    struct coef *c = ralloc(r, struct coef);
    c->digits = rarrayalloc(regionof(c), 24, int);
    // Expand the seed into a 20-limb big integer (the real grobner spends
    // most of its time in exactly this kind of limb arithmetic).
    c->len = 20;
    int carry = v + 1;
    int i;
    for (i = 0; i < 20; i = i + 1) {{
        carry = (carry * 31 + 17) % 99991;
        c->digits[i] = carry % 10000;
    }}
    // Normalise: propagate carries limb by limb, twice.
    int pass;
    for (pass = 0; pass < 2; pass = pass + 1) {{
        carry = 0;
        for (i = 0; i < c->len; i = i + 1) {{
            int t = c->digits[i] * 3 + carry;
            c->digits[i] = t % 10000;
            carry = t / 10000;
        }}
    }}
    return c;
}}

static int coef_low(struct coef *c) {{
    // A digest of all limbs, not just the low one: real comparisons walk
    // the whole number.
    int acc = 0;
    int i;
    for (i = 0; i < c->len; i = i + 1) {{
        acc = (acc * 7 + c->digits[i]) % 99991;
    }}
    return acc;
}}

static struct mono *mono_cons(region r, int deg, int cv, struct mono *rest) {{
    struct mono *m = ralloc(r, struct mono);
    m->deg = deg;
    m->c = coef_from(regionof(m), cv);
    m->next = rest;
    return m;
}}

static struct poly *poly_build(region r, int seed, int nterms) {{
    struct poly *p = ralloc(r, struct poly);
    struct mono *head = null;
    int i;
    for (i = 0; i < nterms; i = i + 1) {{
        head = mono_cons(r, nterms - i, (seed * (i + 3)) % 9973 + 1, head);
    }}
    p->head = head;
    p->nterms = nterms;
    // The scratch link takes a trip through a global: dynamically it is
    // the same region, but the analysis loses track (the unverified 20%).
    gtmp = p;
    p->scratch = gtmp;
    gtmp = null;
    return p;
}}

// s-polynomial: merge two monomial lists into a fresh region.
static struct poly *spoly(region dst, struct poly *f, struct poly *g) {{
    struct poly *out = ralloc(dst, struct poly);
    struct mono *head = null;
    struct mono *a = f->head;
    struct mono *b = g->head;
    int n = 0;
    while (a != null && b != null) {{
        int cv = (coef_low(a->c) * 7 + coef_low(b->c) * 11) % 9973 + 1;
        int dg = a->deg + b->deg;
        head = mono_cons(dst, dg, cv, head);
        a = a->next;
        b = b->next;
        n = n + 1;
    }}
    out->head = head;
    out->nterms = n;
    gtmp = out;
    out->scratch = gtmp;
    gtmp = null;
    return out;
}}

// Normalisation: relink the monomial list in place (verified stores).
static void norm(struct poly *p) {{
    struct mono *m = p->head;
    while (m != null) {{
        struct mono *q = m->next;
        if (q != null) {{
            m->next = q;
        }}
        m = q;
    }}
}}

static int poly_weight(struct poly *p) {{
    int w = 0;
    struct mono *m = p->head;
    while (m != null) {{
        w = w + m->deg * coef_low(m->c);
        m = m->next;
    }}
    return w % 1000003;
}}

int main() deletes {{
    int rounds = {rounds};
    int checksum = 0;
    // Seed basis.
    nbasis = 0;
    while (nbasis < 4) {{
        region r = newregion();
        bregion[nbasis] = r;
        basis[nbasis] = poly_build(r, nbasis + 5, 8 + nbasis);
        nbasis = nbasis + 1;
    }}
    int t;
    for (t = 0; t < rounds; t = t + 1) {{
        int i = t % nbasis;
        int j = (t + 1) % nbasis;
        region sr = newregion();
        struct poly *s = spoly(sr, basis[i], basis[j]);
        norm(s);
        int w = poly_weight(s);
        checksum = (checksum + w) % 1000003;
        if (w % 3 == 0 && nbasis < 16) {{
            // Adopt into the basis.
            bregion[nbasis] = sr;
            basis[nbasis] = s;
            nbasis = nbasis + 1;
        }} else {{
            // Reduced to nothing: drop the whole region.
            s = null;
            deleteregion(sr);
        }}
    }}
    // Tear down the basis.
    int k;
    for (k = 0; k < nbasis; k = k + 1) {{
        basis[k] = null;
        region dead = bregion[k];
        bregion[k] = null;
        deleteregion(dead);
    }}
    assert(checksum >= 0);
    return checksum;
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::smoke_all_configs;

    #[test]
    fn grobner_runs_everywhere() {
        smoke_all_configs(&workload());
    }
}
