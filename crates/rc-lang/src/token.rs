//! Tokens of the RC dialect.
//!
//! RC is "essentially C with a region library and a few type annotations"
//! (paper §3). The dialect implemented here is the C-like subset the
//! paper's programs exercise: struct declarations, functions, globals,
//! integer arithmetic, pointers with the three qualifiers, and the region
//! API of Figure 2 as keywords.

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    // Literals and identifiers.
    /// Integer literal.
    Int(i64),
    /// Identifier.
    Ident(String),

    // Keywords.
    /// `struct`
    KwStruct,
    /// `int`
    KwInt,
    /// `void`
    KwVoid,
    /// `region`
    KwRegion,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `while`
    KwWhile,
    /// `for`
    KwFor,
    /// `return`
    KwReturn,
    /// `null` (also `NULL`)
    KwNull,
    /// `static`
    KwStatic,
    /// `sameregion`
    KwSameRegion,
    /// `parentptr`
    KwParentPtr,
    /// `traditional`
    KwTraditional,
    /// `deletes`
    KwDeletes,
    /// `ralloc`
    KwRalloc,
    /// `rarrayalloc`
    KwRarrayAlloc,
    /// `newregion`
    KwNewRegion,
    /// `newsubregion`
    KwNewSubregion,
    /// `deleteregion`
    KwDeleteRegion,
    /// `regionof`
    KwRegionOf,
    /// `assert`
    KwAssert,
    /// `traditionalregion`
    KwTraditionalRegion,
    /// `spawn`
    KwSpawn,
    /// `join`
    KwJoin,

    // Punctuation and operators.
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `!`
    Not,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

impl Token {
    /// Keyword lookup for an identifier-shaped word.
    pub fn keyword(word: &str) -> Option<Token> {
        Some(match word {
            "struct" => Token::KwStruct,
            "int" => Token::KwInt,
            "void" => Token::KwVoid,
            "region" => Token::KwRegion,
            "if" => Token::KwIf,
            "else" => Token::KwElse,
            "while" => Token::KwWhile,
            "for" => Token::KwFor,
            "return" => Token::KwReturn,
            "null" | "NULL" => Token::KwNull,
            "static" => Token::KwStatic,
            "sameregion" => Token::KwSameRegion,
            "parentptr" => Token::KwParentPtr,
            "traditional" => Token::KwTraditional,
            "deletes" => Token::KwDeletes,
            "ralloc" => Token::KwRalloc,
            "rarrayalloc" => Token::KwRarrayAlloc,
            "newregion" => Token::KwNewRegion,
            "newsubregion" => Token::KwNewSubregion,
            "deleteregion" => Token::KwDeleteRegion,
            "regionof" => Token::KwRegionOf,
            "assert" => Token::KwAssert,
            "traditionalregion" => Token::KwTraditionalRegion,
            "spawn" => Token::KwSpawn,
            "join" => Token::KwJoin,
            _ => return None,
        })
    }
}

/// A token plus its source line (for diagnostics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// 1-based source line.
    pub line: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(Token::keyword("sameregion"), Some(Token::KwSameRegion));
        assert_eq!(Token::keyword("NULL"), Some(Token::KwNull));
        assert_eq!(Token::keyword("null"), Some(Token::KwNull));
        assert_eq!(Token::keyword("frobnicate"), None);
    }
}
