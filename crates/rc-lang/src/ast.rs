//! Surface AST of the RC dialect, as produced by the parser.
//!
//! Names are unresolved strings here; [`crate::sema`] resolves them into
//! the typed HIR. Every assignment expression carries a [`SiteId`] so the
//! rlang translation (which inserts `chk` statements) and the interpreter
//! (which executes or skips the corresponding runtime checks) can talk
//! about the same program points.

pub use rlang::SiteId;

/// A pointer qualifier (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Qual {
    /// No annotation: reference-counted.
    #[default]
    None,
    /// `sameregion`.
    SameRegion,
    /// `parentptr`.
    ParentPtr,
    /// `traditional`.
    Traditional,
}

/// An unresolved surface type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeExpr {
    /// `int`
    Int,
    /// `region`
    Region,
    /// `struct T *qual`
    StructPtr {
        /// Struct name.
        name: String,
        /// Qualifier after the `*`.
        qual: Qual,
    },
    /// `int *qual` — a pointer to an int array from `rarrayalloc`.
    IntPtr(Qual),
}

/// A struct declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(TypeExpr, String)>,
    /// Source line.
    pub line: u32,
}

/// A global variable (optionally an array).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDef {
    /// Element type.
    pub ty: TypeExpr,
    /// Name.
    pub name: String,
    /// `Some(n)` for `T g[n];`.
    pub array_len: Option<u32>,
    /// Source line.
    pub line: u32,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDefAst {
    /// Name.
    pub name: String,
    /// Declared `static` (not visible outside the file: the analysis may
    /// use its call sites).
    pub is_static: bool,
    /// Declared `deletes` (may delete a region, §3.3.2).
    pub deletes: bool,
    /// Return type (`None` = void).
    pub ret: Option<TypeExpr>,
    /// Parameters.
    pub params: Vec<(TypeExpr, String)>,
    /// Body.
    pub body: Vec<BlockItem>,
    /// Source line.
    pub line: u32,
}

/// A declaration or statement inside a block.
#[derive(Debug, Clone, PartialEq)]
pub enum BlockItem {
    /// A local variable declaration.
    Decl(VarDecl),
    /// A statement.
    Stmt(Stmt),
}

/// A local variable declaration (optionally an array, optionally
/// initialised).
#[derive(Debug, Clone, PartialEq)]
pub struct VarDecl {
    /// Element type.
    pub ty: TypeExpr,
    /// Name.
    pub name: String,
    /// `Some(n)` for `T x[n];` (allocated in the traditional region for
    /// the function's duration, like a C stack array).
    pub array_len: Option<u32>,
    /// Initialiser.
    pub init: Option<Expr>,
    /// Source line.
    pub line: u32,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Nested block.
    Block(Vec<BlockItem>),
    /// `if (c) s else s`
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while (c) s`
    While(Expr, Box<Stmt>),
    /// `for (init; cond; step) s`
    For(Option<Expr>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `return e;`
    Return(Option<Expr>, u32),
    /// `spawn r { ... }` — runs the block as a task owning region `r`'s
    /// subtree exclusively (parallel extension; see `DESIGN.md`).
    Spawn {
        /// Name of the region variable handed to the task.
        region: String,
        /// The task body.
        body: Vec<BlockItem>,
        /// Source line.
        line: u32,
    },
    /// `join;` — blocks until every task this function spawned has
    /// finished and reclaims their regions.
    Join(u32),
    /// `;`
    Empty,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
}

/// An expression. Assignments are expressions (their value is the assigned
/// value) and carry the site identifier minted at parse time.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// `null`.
    Null,
    /// Variable reference.
    Var(String, u32),
    /// `lhs = rhs` (lhs must be an lvalue).
    Assign {
        /// Target.
        lhs: Box<Expr>,
        /// Value.
        rhs: Box<Expr>,
        /// Program point shared with the rlang translation.
        site: SiteId,
        /// Source line.
        line: u32,
    },
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// `obj->field`.
    Field {
        /// Object expression.
        obj: Box<Expr>,
        /// Field name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// `arr[idx]`.
    Index {
        /// Array expression.
        arr: Box<Expr>,
        /// Index expression.
        idx: Box<Expr>,
        /// Source line.
        line: u32,
    },
    /// `f(args)`.
    Call {
        /// Callee name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source line.
        line: u32,
    },
    /// `ralloc(r, type)`.
    Ralloc {
        /// Region expression.
        region: Box<Expr>,
        /// Allocated type.
        ty: TypeExpr,
        /// Source line.
        line: u32,
    },
    /// `rarrayalloc(r, n, type)`.
    RarrayAlloc {
        /// Region expression.
        region: Box<Expr>,
        /// Element count.
        count: Box<Expr>,
        /// Element type.
        ty: TypeExpr,
        /// Source line.
        line: u32,
    },
    /// `newregion()`.
    NewRegion,
    /// `traditionalregion()`: a handle for the distinguished traditional
    /// region (the malloc heap / globals / stack of the paper).
    TraditionalRegion,
    /// `newsubregion(r)`.
    NewSubregion(Box<Expr>),
    /// `deleteregion(r)`.
    DeleteRegion(Box<Expr>, u32),
    /// `regionof(x)`.
    RegionOf(Box<Expr>, u32),
    /// `assert(e)` — aborts the program when `e` is zero/null (used by the
    /// workloads to self-check results).
    Assert(Box<Expr>, u32),
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Ast {
    /// Struct declarations.
    pub structs: Vec<StructDef>,
    /// Global variables.
    pub globals: Vec<GlobalDef>,
    /// Functions.
    pub funcs: Vec<FuncDefAst>,
}
