//! Semantic analysis: name resolution, type checking, the `deletes` rule,
//! and HIR construction.
//!
//! Qualifier semantics are *dynamic* in RC — a `struct T *` value may be
//! stored into a `struct T *sameregion` slot, with a runtime check (or a
//! reference-count update) guarding the store — so assignment compatibility
//! here ignores qualifiers and checks only the pointed-to type, exactly as
//! in the paper ("RC has one basic kind of pointer that can hold both
//! region and traditional pointers").
//!
//! The `deletes` rule (§3.3.2): a function that calls `deleteregion`, or
//! calls a function qualified with `deletes`, must itself be qualified with
//! `deletes`. This is what lets the compiler know where to pin the regions
//! referenced by live locals without whole-program analysis.

use std::collections::HashMap;

use crate::ast::{self, Ast, BinOp, BlockItem, Expr, Stmt, TypeExpr, UnOp};
use crate::error::{CompileError, ErrorKind};
use crate::hir::*;

/// Checks an AST and produces the typed module.
///
/// # Errors
///
/// Returns the first semantic error (unknown names, type mismatches,
/// missing `deletes`, bad `main`, …).
pub fn check(ast: &Ast) -> Result<Module, CompileError> {
    let mut cx = Checker::new(ast)?;
    cx.run(ast)
}

/// The type of a value-producing expression (qualifiers erased).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VTy {
    Int,
    Region,
    Ptr(StructRef),
    IntPtr,
    Null,
    Void,
}

impl VTy {
    fn of(ty: RcType) -> VTy {
        match ty {
            RcType::Int => VTy::Int,
            RcType::Region => VTy::Region,
            RcType::Ptr { target, .. } => VTy::Ptr(target),
            RcType::IntPtr(_) => VTy::IntPtr,
        }
    }

    fn describe(self) -> String {
        match self {
            VTy::Int => "int".into(),
            VTy::Region => "region".into(),
            VTy::Ptr(s) => format!("struct#{} pointer", s.0),
            VTy::IntPtr => "int pointer".into(),
            VTy::Null => "null".into(),
            VTy::Void => "void".into(),
        }
    }
}

struct FuncSig {
    params: Vec<RcType>,
    ret: Option<RcType>,
    deletes: bool,
}

struct Checker {
    struct_ids: HashMap<String, StructRef>,
    structs: Vec<HStruct>,
    global_ids: HashMap<String, GlobalRef>,
    globals: Vec<HGlobal>,
    func_ids: HashMap<String, FuncRef>,
    sigs: Vec<FuncSig>,
    n_sites: u32,
    site_lines: Vec<u32>,
    /// Per function: whether its body touches a global directly (spawn
    /// bodies may only call functions that are transitively global-free,
    /// since a task runs against its own isolated heap).
    touches_globals: Vec<bool>,
    /// Per function: its direct callees (for the transitive closure).
    callees: Vec<Vec<FuncRef>>,
    /// Calls made from inside `spawn` bodies, validated after the
    /// `touches_globals` closure is known: `(callee, line)`.
    spawn_calls: Vec<(FuncRef, u32)>,
}

impl Checker {
    fn new(ast: &Ast) -> Result<Checker, CompileError> {
        let mut cx = Checker {
            struct_ids: HashMap::new(),
            structs: Vec::new(),
            global_ids: HashMap::new(),
            globals: Vec::new(),
            func_ids: HashMap::new(),
            sigs: Vec::new(),
            n_sites: 0,
            site_lines: Vec::new(),
            touches_globals: Vec::new(),
            callees: Vec::new(),
            spawn_calls: Vec::new(),
        };

        // Pass 1: struct names (so fields may reference later structs).
        for s in &ast.structs {
            if cx.struct_ids.insert(s.name.clone(), StructRef(cx.structs.len() as u32)).is_some()
            {
                return Err(err(s.line, format!("duplicate struct `{}`", s.name)));
            }
            cx.structs.push(HStruct { name: s.name.clone(), fields: Vec::new() });
        }
        // Pass 2: fields.
        for (i, s) in ast.structs.iter().enumerate() {
            let mut fields = Vec::new();
            for (ty, name) in &s.fields {
                if fields.iter().any(|f: &HField| f.name == *name) {
                    return Err(err(s.line, format!("duplicate field `{name}` in `{}`", s.name)));
                }
                fields.push(HField { name: name.clone(), ty: cx.resolve_type(ty, s.line)? });
            }
            cx.structs[i].fields = fields;
        }
        // Globals.
        for g in &ast.globals {
            if cx.global_ids.insert(g.name.clone(), GlobalRef(cx.globals.len() as u32)).is_some()
            {
                return Err(err(g.line, format!("duplicate global `{}`", g.name)));
            }
            cx.globals.push(HGlobal {
                name: g.name.clone(),
                ty: cx.resolve_type(&g.ty, g.line)?,
                array_len: g.array_len,
            });
        }
        // Function signatures.
        for f in &ast.funcs {
            if cx.func_ids.insert(f.name.clone(), FuncRef(cx.sigs.len() as u32)).is_some() {
                return Err(err(f.line, format!("duplicate function `{}`", f.name)));
            }
            let params = f
                .params
                .iter()
                .map(|(t, _)| cx.resolve_type(t, f.line))
                .collect::<Result<Vec<_>, _>>()?;
            let ret = f.ret.as_ref().map(|t| cx.resolve_type(t, f.line)).transpose()?;
            cx.sigs.push(FuncSig { params, ret, deletes: f.deletes });
        }
        cx.touches_globals = vec![false; cx.sigs.len()];
        cx.callees = vec![Vec::new(); cx.sigs.len()];
        Ok(cx)
    }

    fn resolve_type(&self, ty: &TypeExpr, line: u32) -> Result<RcType, CompileError> {
        Ok(match ty {
            TypeExpr::Int => RcType::Int,
            TypeExpr::Region => RcType::Region,
            TypeExpr::IntPtr(q) => RcType::IntPtr(*q),
            TypeExpr::StructPtr { name, qual } => {
                let target = *self
                    .struct_ids
                    .get(name)
                    .ok_or_else(|| err(line, format!("unknown struct `{name}`")))?;
                RcType::Ptr { target, qual: *qual }
            }
        })
    }

    fn run(&mut self, ast: &Ast) -> Result<Module, CompileError> {
        let mut funcs = Vec::new();
        for (i, f) in ast.funcs.iter().enumerate() {
            funcs.push(self.check_func(f, FuncRef(i as u32))?);
        }
        let main = *self
            .func_ids
            .get("main")
            .ok_or_else(|| err(0, "program has no `main` function"))?;
        let msig = &self.sigs[main.0 as usize];
        if !msig.params.is_empty() || msig.ret != Some(RcType::Int) {
            return Err(err(
                ast.funcs[main.0 as usize].line,
                "`main` must be `int main()` with no parameters",
            ));
        }

        // Spawn-body purity: a task runs against its own isolated heap, so
        // any function it calls must be transitively global-free. Close
        // `touches_globals` over the call graph, then validate every call
        // recorded inside a spawn body.
        let mut tainted = std::mem::take(&mut self.touches_globals);
        loop {
            let mut changed = false;
            for (i, callees) in self.callees.iter().enumerate() {
                if !tainted[i] && callees.iter().any(|c| tainted[c.0 as usize]) {
                    tainted[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for &(f, line) in &self.spawn_calls {
            if tainted[f.0 as usize] {
                return Err(err(
                    line,
                    format!(
                        "function `{}` touches globals (possibly via callees) and cannot be called from a spawn body",
                        ast.funcs[f.0 as usize].name
                    ),
                ));
            }
        }
        Ok(Module {
            structs: std::mem::take(&mut self.structs),
            globals: std::mem::take(&mut self.globals),
            funcs,
            main,
            n_sites: self.n_sites,
            site_lines: {
                let mut lines = std::mem::take(&mut self.site_lines);
                lines.resize(self.n_sites as usize, 0);
                lines
            },
        })
    }

    fn check_func(&mut self, f: &ast::FuncDefAst, id: FuncRef) -> Result<HFunc, CompileError> {
        let mut fcx = FuncCx {
            cx: self,
            id,
            params: Vec::new(),
            locals: Vec::new(),
            scopes: vec![HashMap::new()],
            ret: None,
            calls_deletes: false,
            next_pin: 0,
            spawn_frames: Vec::new(),
        };
        for (ty, name) in &f.params {
            let rc = fcx.cx.resolve_type(ty, f.line)?;
            let v = VarRef(fcx.params.len() as u32);
            if fcx.scopes[0].insert(name.clone(), v).is_some() {
                return Err(err(f.line, format!("duplicate parameter `{name}`")));
            }
            fcx.params.push(HVar { name: name.clone(), ty: rc, array_len: None });
        }
        fcx.ret = f.ret.as_ref().map(|t| fcx.cx.resolve_type(t, f.line)).transpose()?;

        let body = fcx.check_block(&f.body)?;

        if fcx.calls_deletes && !f.deletes {
            return Err(err(
                f.line,
                format!(
                    "function `{}` may delete a region but is not declared `deletes`",
                    f.name
                ),
            ));
        }
        Ok(HFunc {
            name: f.name.clone(),
            deletes: f.deletes,
            exported: !f.is_static || f.name == "main",
            params: fcx.params,
            locals: fcx.locals,
            ret: fcx.ret,
            body,
        })
    }
}

fn err(line: u32, msg: impl Into<String>) -> CompileError {
    CompileError::new(ErrorKind::Sema, line, msg)
}

/// One enclosing `spawn` body during checking. Variables numbered below
/// `first_inner` were declared outside the body; the innermost frame
/// governs which of them may be referenced.
struct SpawnFrame {
    first_inner: u32,
    rvar: VarRef,
}

struct FuncCx<'a> {
    cx: &'a mut Checker,
    id: FuncRef,
    params: Vec<HVar>,
    locals: Vec<HVar>,
    scopes: Vec<HashMap<String, VarRef>>,
    ret: Option<RcType>,
    calls_deletes: bool,
    next_pin: u32,
    spawn_frames: Vec<SpawnFrame>,
}

impl FuncCx<'_> {
    fn in_spawn(&self) -> bool {
        !self.spawn_frames.is_empty()
    }

    /// Marks the current function as touching a global, for the spawn-body
    /// callee closure, and rejects the access if it happens inside a spawn
    /// body itself.
    fn note_global_use(&mut self, name: &str, line: u32) -> Result<(), CompileError> {
        self.cx.touches_globals[self.id.0 as usize] = true;
        if self.in_spawn() {
            return Err(err(
                line,
                format!("global `{name}` cannot be used inside a spawn body"),
            ));
        }
        Ok(())
    }

    /// Validates a reference to a local/param from inside a spawn body:
    /// variables declared outside the body are visible only if they are the
    /// spawned region variable or int-typed scalars (captured by value).
    fn check_spawn_capture(
        &self,
        v: VarRef,
        name: &str,
        line: u32,
    ) -> Result<(), CompileError> {
        let Some(frame) = self.spawn_frames.last() else {
            return Ok(());
        };
        if v.0 >= frame.first_inner || v == frame.rvar {
            return Ok(());
        }
        let hv = self.var(v);
        if hv.ty == RcType::Int && hv.array_len.is_none() {
            return Ok(());
        }
        Err(err(
            line,
            format!(
                "`{name}` cannot be captured by a spawn body (only the spawned region and int scalars may cross the task boundary)"
            ),
        ))
    }
    fn fresh_pin(&mut self) -> u32 {
        let p = self.next_pin;
        self.next_pin += 1;
        p
    }

    fn lookup_var(&self, name: &str) -> Option<VarRef> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn var(&self, v: VarRef) -> &HVar {
        let i = v.0 as usize;
        if i < self.params.len() {
            &self.params[i]
        } else {
            &self.locals[i - self.params.len()]
        }
    }

    fn declare(&mut self, d: &ast::VarDecl) -> Result<(VarRef, Option<HExpr>), CompileError> {
        let ty = self.cx.resolve_type(&d.ty, d.line)?;
        if d.array_len.is_some() && d.init.is_some() {
            return Err(err(d.line, "array locals cannot have initialisers"));
        }
        if d.array_len.is_some() && self.in_spawn() {
            return Err(err(
                d.line,
                "array locals cannot be declared inside a spawn body",
            ));
        }
        let v = VarRef((self.params.len() + self.locals.len()) as u32);
        self.locals.push(HVar { name: d.name.clone(), ty, array_len: d.array_len });
        self.scopes
            .last_mut()
            .expect("scope stack is never empty")
            .insert(d.name.clone(), v);
        let init = match &d.init {
            None => None,
            Some(e) => {
                let val = self.check_against(e, ty, d.line)?;
                Some(HExpr::AssignLocal { v, val: Box::new(val) })
            }
        };
        Ok((v, init))
    }

    fn check_block(&mut self, items: &[BlockItem]) -> Result<Vec<HStmt>, CompileError> {
        self.scopes.push(HashMap::new());
        let mut out = Vec::new();
        for item in items {
            match item {
                BlockItem::Decl(d) => {
                    let (_, init) = self.declare(d)?;
                    if let Some(e) = init {
                        out.push(HStmt::Expr(e));
                    }
                }
                BlockItem::Stmt(s) => self.check_stmt(s, &mut out)?,
            }
        }
        self.scopes.pop();
        Ok(out)
    }

    fn check_stmt(&mut self, s: &Stmt, out: &mut Vec<HStmt>) -> Result<(), CompileError> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Expr(e) => {
                let (he, _) = self.check_expr(e)?;
                out.push(HStmt::Expr(he));
                Ok(())
            }
            Stmt::Block(items) => {
                let inner = self.check_block(items)?;
                out.extend(inner);
                Ok(())
            }
            Stmt::If(c, t, e) => {
                let cond = self.check_cond(c)?;
                let mut ts = Vec::new();
                self.check_stmt(t, &mut ts)?;
                let mut es = Vec::new();
                if let Some(e) = e {
                    self.check_stmt(e, &mut es)?;
                }
                out.push(HStmt::If(cond, ts, es));
                Ok(())
            }
            Stmt::While(c, b) => {
                let cond = self.check_cond(c)?;
                let mut body = Vec::new();
                self.check_stmt(b, &mut body)?;
                out.push(HStmt::While(cond, body));
                Ok(())
            }
            Stmt::For(init, cond, step, b) => {
                // Desugar: init; while (cond) { body; step; }
                if let Some(i) = init {
                    let (he, _) = self.check_expr(i)?;
                    out.push(HStmt::Expr(he));
                }
                let cond = match cond {
                    Some(c) => self.check_cond(c)?,
                    None => HExpr::Int(1),
                };
                let mut body = Vec::new();
                self.check_stmt(b, &mut body)?;
                if let Some(st) = step {
                    let (he, _) = self.check_expr(st)?;
                    body.push(HStmt::Expr(he));
                }
                out.push(HStmt::While(cond, body));
                Ok(())
            }
            Stmt::Spawn { region, body, line } => {
                let Some(rv) = self.lookup_var(region) else {
                    return Err(err(
                        *line,
                        if self.cx.global_ids.contains_key(region) {
                            format!("spawn region `{region}` must be a local or parameter, not a global")
                        } else {
                            format!("unknown variable `{region}`")
                        },
                    ));
                };
                self.check_spawn_capture(rv, region, *line)?;
                let hv = self.var(rv);
                if hv.ty != RcType::Region || hv.array_len.is_some() {
                    return Err(err(
                        *line,
                        format!("spawn needs a region variable, `{region}` is not one"),
                    ));
                }
                let first_inner = (self.params.len() + self.locals.len()) as u32;
                self.spawn_frames.push(SpawnFrame { first_inner, rvar: rv });
                let hbody = self.check_block(body);
                self.spawn_frames.pop();
                out.push(HStmt::Spawn { rvar: rv, body: hbody?, line: *line });
                Ok(())
            }
            Stmt::Join(_) => {
                out.push(HStmt::Join);
                Ok(())
            }
            Stmt::Return(e, line) => {
                if self.in_spawn() {
                    return Err(err(*line, "`return` cannot appear inside a spawn body"));
                }
                match (&self.ret, e) {
                    (None, None) => out.push(HStmt::Return(None)),
                    (None, Some(_)) => {
                        return Err(err(*line, "void function returning a value"))
                    }
                    (Some(_), None) => {
                        return Err(err(*line, "non-void function must return a value"))
                    }
                    (Some(rt), Some(e)) => {
                        let rt = *rt;
                        let he = self.check_against(e, rt, *line)?;
                        out.push(HStmt::Return(Some(he)));
                    }
                }
                Ok(())
            }
        }
    }

    /// A condition: any value type, truthiness = non-zero / non-null.
    fn check_cond(&mut self, e: &Expr) -> Result<HExpr, CompileError> {
        let (he, ty) = self.check_expr(e)?;
        if ty == VTy::Void {
            return Err(err(0, "void value used as a condition"));
        }
        Ok(he)
    }

    /// Checks `e` and coerces `null` to the expected type.
    fn check_against(&mut self, e: &Expr, want: RcType, line: u32) -> Result<HExpr, CompileError> {
        let (he, got) = self.check_expr(e)?;
        if got == VTy::Null {
            if want.is_addr() {
                return Ok(HExpr::Null(want));
            }
            return Err(err(line, "null assigned to an int"));
        }
        if VTy::of(want) != got {
            return Err(err(
                line,
                format!("type mismatch: expected {}, found {}", VTy::of(want).describe(), got.describe()),
            ));
        }
        Ok(he)
    }

    fn check_expr(&mut self, e: &Expr) -> Result<(HExpr, VTy), CompileError> {
        match e {
            Expr::Int(n) => Ok((HExpr::Int(*n), VTy::Int)),
            Expr::Null => Ok((HExpr::Null(RcType::Int), VTy::Null)),
            Expr::Var(name, line) => {
                if let Some(v) = self.lookup_var(name) {
                    let hv = self.var(v);
                    if hv.array_len.is_some() {
                        return Err(err(*line, format!("array `{name}` used without an index")));
                    }
                    let ty = VTy::of(hv.ty);
                    self.check_spawn_capture(v, name, *line)?;
                    Ok((HExpr::ReadLocal(v), ty))
                } else if let Some(&g) = self.cx.global_ids.get(name) {
                    self.note_global_use(name, *line)?;
                    let hg = &self.cx.globals[g.0 as usize];
                    if hg.array_len.is_some() {
                        return Err(err(*line, format!("array `{name}` used without an index")));
                    }
                    Ok((HExpr::ReadGlobal(g), VTy::of(hg.ty)))
                } else {
                    Err(err(*line, format!("unknown variable `{name}`")))
                }
            }
            Expr::Assign { lhs, rhs, site, line } => self.check_assign(lhs, rhs, *site, *line),
            Expr::Un(op, inner) => {
                let (he, ty) = self.check_expr(inner)?;
                match op {
                    UnOp::Neg => {
                        if ty != VTy::Int {
                            return Err(err(0, "unary `-` needs an int"));
                        }
                    }
                    UnOp::Not => {
                        if ty == VTy::Void {
                            return Err(err(0, "`!` applied to void"));
                        }
                    }
                }
                Ok((HExpr::Un(*op, Box::new(he)), VTy::Int))
            }
            Expr::Bin(op, l, r) => {
                let (hl, tl) = self.check_expr(l)?;
                let (hr, tr) = self.check_expr(r)?;
                let ok = match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => {
                        tl == VTy::Int && tr == VTy::Int
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        tl == VTy::Int && tr == VTy::Int
                    }
                    BinOp::Eq | BinOp::Ne => {
                        tl == tr
                            || (matches!(tl, VTy::Ptr(_) | VTy::IntPtr | VTy::Region)
                                && tr == VTy::Null)
                            || (matches!(tr, VTy::Ptr(_) | VTy::IntPtr | VTy::Region)
                                && tl == VTy::Null)
                    }
                    BinOp::And | BinOp::Or => tl != VTy::Void && tr != VTy::Void,
                };
                if !ok {
                    return Err(err(
                        0,
                        format!(
                            "operator {:?} cannot combine {} and {}",
                            op,
                            tl.describe(),
                            tr.describe()
                        ),
                    ));
                }
                Ok((HExpr::Bin(*op, Box::new(hl), Box::new(hr)), VTy::Int))
            }
            Expr::Field { obj, name, line } => {
                let (hobj, s, fi, fty) = self.check_field_access(obj, name, *line)?;
                Ok((
                    HExpr::ReadField { obj: Box::new(hobj), s, field: fi },
                    VTy::of(fty),
                ))
            }
            Expr::Index { arr, idx, line } => {
                let (hidx, it) = self.check_expr(idx)?;
                if it != VTy::Int {
                    return Err(err(*line, "array index must be an int"));
                }
                // Array variable?
                if let Expr::Var(name, _) = arr.as_ref() {
                    if let Some(base) = self.array_base(name) {
                        self.check_base_access(base, name, *line)?;
                        let elem = self.base_elem(base);
                        let he = HExpr::ReadArraySlot { base, idx: Box::new(hidx), elem };
                        return Ok((he, VTy::of(elem)));
                    }
                }
                let (harr, at) = self.check_expr(arr)?;
                match at {
                    VTy::Ptr(s) => Ok((
                        HExpr::PtrElem { ptr: Box::new(harr), idx: Box::new(hidx), s },
                        VTy::Ptr(s),
                    )),
                    VTy::IntPtr => Ok((
                        HExpr::ReadIntElem { ptr: Box::new(harr), idx: Box::new(hidx) },
                        VTy::Int,
                    )),
                    other => Err(err(*line, format!("cannot index a {}", other.describe()))),
                }
            }
            Expr::Call { name, args, line } => {
                let f = *self
                    .cx
                    .func_ids
                    .get(name)
                    .ok_or_else(|| err(*line, format!("unknown function `{name}`")))?;
                let (nparams, ret, deletes) = {
                    let sig = &self.cx.sigs[f.0 as usize];
                    (sig.params.len(), sig.ret, sig.deletes)
                };
                if args.len() != nparams {
                    return Err(err(
                        *line,
                        format!("`{name}` expects {nparams} argument(s), got {}", args.len()),
                    ));
                }
                let mut hargs = Vec::new();
                for (i, a) in args.iter().enumerate() {
                    let want = self.cx.sigs[f.0 as usize].params[i];
                    hargs.push(self.check_against(a, want, *line)?);
                }
                if deletes {
                    self.calls_deletes = true;
                }
                self.cx.callees[self.id.0 as usize].push(f);
                if self.in_spawn() {
                    self.cx.spawn_calls.push((f, *line));
                }
                let vty = match ret {
                    None => VTy::Void,
                    Some(t) => VTy::of(t),
                };
                let pin = self.fresh_pin();
                Ok((HExpr::Call { f, args: hargs, pin }, vty))
            }
            Expr::Ralloc { region, ty, line } => {
                let hr = self.expect_region(region, *line)?;
                match self.cx.resolve_type(ty, *line)? {
                    RcType::Ptr { target, .. } => Ok((
                        HExpr::Ralloc { region: Box::new(hr), s: target, line: *line },
                        VTy::Ptr(target),
                    )),
                    _ => Err(err(*line, "ralloc allocates struct types; use rarrayalloc for ints")),
                }
            }
            Expr::RarrayAlloc { region, count, ty, line } => {
                let hr = self.expect_region(region, *line)?;
                let (hc, ct) = self.check_expr(count)?;
                if ct != VTy::Int {
                    return Err(err(*line, "rarrayalloc count must be an int"));
                }
                match self.cx.resolve_type(ty, *line)? {
                    RcType::Ptr { target, .. } => Ok((
                        HExpr::RallocStructArray {
                            region: Box::new(hr),
                            count: Box::new(hc),
                            s: target,
                            line: *line,
                        },
                        VTy::Ptr(target),
                    )),
                    RcType::Int => Ok((
                        HExpr::RallocIntArray {
                            region: Box::new(hr),
                            count: Box::new(hc),
                            line: *line,
                        },
                        VTy::IntPtr,
                    )),
                    _ => Err(err(*line, "rarrayalloc element must be a struct or int")),
                }
            }
            Expr::NewRegion => Ok((HExpr::NewRegion, VTy::Region)),
            Expr::TraditionalRegion => Ok((HExpr::TraditionalRegion, VTy::Region)),
            Expr::NewSubregion(r) => {
                let hr = self.expect_region(r, 0)?;
                Ok((HExpr::NewSubregion(Box::new(hr)), VTy::Region))
            }
            Expr::DeleteRegion(r, line) => {
                let hr = self.expect_region(r, *line)?;
                self.calls_deletes = true;
                let pin = self.fresh_pin();
                // deleteregion evaluates to a status code (0 = deleted):
                // meaningful under the `Fail` semantics, ignorable
                // otherwise.
                Ok((HExpr::DeleteRegion(Box::new(hr), pin), VTy::Int))
            }
            Expr::RegionOf(x, line) => {
                let (hx, ty) = self.check_expr(x)?;
                if !matches!(ty, VTy::Ptr(_) | VTy::IntPtr) {
                    return Err(err(*line, "regionof needs a pointer"));
                }
                Ok((HExpr::RegionOf(Box::new(hx)), VTy::Region))
            }
            Expr::Assert(e, line) => {
                let (he, ty) = self.check_expr(e)?;
                if ty == VTy::Void {
                    return Err(err(*line, "assert needs a value"));
                }
                Ok((HExpr::Assert(Box::new(he)), VTy::Void))
            }
        }
    }

    fn expect_region(&mut self, e: &Expr, line: u32) -> Result<HExpr, CompileError> {
        let (he, ty) = self.check_expr(e)?;
        if ty != VTy::Region {
            return Err(err(line, format!("expected a region, found {}", ty.describe())));
        }
        Ok(he)
    }

    /// Spawn-body / global-taint bookkeeping for indexing into a named
    /// array (outer arrays never cross the task boundary).
    fn check_base_access(
        &mut self,
        base: ArrayBase,
        name: &str,
        line: u32,
    ) -> Result<(), CompileError> {
        match base {
            ArrayBase::Local(v) => self.check_spawn_capture(v, name, line),
            ArrayBase::Global(_) => self.note_global_use(name, line),
        }
    }

    fn array_base(&self, name: &str) -> Option<ArrayBase> {
        if let Some(v) = self.lookup_var(name) {
            if self.var(v).array_len.is_some() {
                return Some(ArrayBase::Local(v));
            }
            return None;
        }
        if let Some(&g) = self.cx.global_ids.get(name) {
            if self.cx.globals[g.0 as usize].array_len.is_some() {
                return Some(ArrayBase::Global(g));
            }
        }
        None
    }

    fn base_elem(&self, base: ArrayBase) -> RcType {
        match base {
            ArrayBase::Local(v) => self.var(v).ty,
            ArrayBase::Global(g) => self.cx.globals[g.0 as usize].ty,
        }
    }

    fn check_field_access(
        &mut self,
        obj: &Expr,
        name: &str,
        line: u32,
    ) -> Result<(HExpr, StructRef, u32, RcType), CompileError> {
        let (hobj, ty) = self.check_expr(obj)?;
        let VTy::Ptr(s) = ty else {
            return Err(err(line, format!("`->` applied to {}", ty.describe())));
        };
        let sd = &self.cx.structs[s.0 as usize];
        let fi = sd
            .fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| err(line, format!("struct `{}` has no field `{name}`", sd.name)))?;
        let fty = sd.fields[fi].ty;
        Ok((hobj, s, fi as u32, fty))
    }

    fn check_assign(
        &mut self,
        lhs: &Expr,
        rhs: &Expr,
        site: SiteId,
        line: u32,
    ) -> Result<(HExpr, VTy), CompileError> {
        self.cx.n_sites = self.cx.n_sites.max(site.0 + 1);
        if self.cx.site_lines.len() <= site.0 as usize {
            self.cx.site_lines.resize(site.0 as usize + 1, 0);
        }
        self.cx.site_lines[site.0 as usize] = line;
        match lhs {
            Expr::Var(name, _) => {
                if let Some(v) = self.lookup_var(name) {
                    if self.var(v).array_len.is_some() {
                        return Err(err(line, format!("cannot assign whole array `{name}`")));
                    }
                    if let Some(frame) = self.spawn_frames.last() {
                        if v.0 < frame.first_inner {
                            return Err(err(
                                line,
                                format!(
                                    "`{name}` is captured by value and cannot be assigned inside a spawn body"
                                ),
                            ));
                        }
                    }
                    let ty = self.var(v).ty;
                    let val = self.check_against(rhs, ty, line)?;
                    Ok((HExpr::AssignLocal { v, val: Box::new(val) }, VTy::of(ty)))
                } else if let Some(&g) = self.cx.global_ids.get(name) {
                    self.note_global_use(name, line)?;
                    let hg = &self.cx.globals[g.0 as usize];
                    if hg.array_len.is_some() {
                        return Err(err(line, format!("cannot assign whole array `{name}`")));
                    }
                    let ty = hg.ty;
                    let val = self.check_against(rhs, ty, line)?;
                    Ok((HExpr::AssignGlobal { g, val: Box::new(val), site }, VTy::of(ty)))
                } else {
                    Err(err(line, format!("unknown variable `{name}`")))
                }
            }
            Expr::Field { obj, name, line: fline } => {
                let (hobj, s, fi, fty) = self.check_field_access(obj, name, *fline)?;
                let val = self.check_against(rhs, fty, line)?;
                Ok((
                    HExpr::AssignField {
                        obj: Box::new(hobj),
                        s,
                        field: fi,
                        val: Box::new(val),
                        site,
                    },
                    VTy::of(fty),
                ))
            }
            Expr::Index { arr, idx, line: iline } => {
                let (hidx, it) = self.check_expr(idx)?;
                if it != VTy::Int {
                    return Err(err(*iline, "array index must be an int"));
                }
                if let Expr::Var(name, _) = arr.as_ref() {
                    if let Some(base) = self.array_base(name) {
                        self.check_base_access(base, name, line)?;
                        let elem = self.base_elem(base);
                        let val = self.check_against(rhs, elem, line)?;
                        return Ok((
                            HExpr::AssignArraySlot {
                                base,
                                idx: Box::new(hidx),
                                val: Box::new(val),
                                elem,
                                site,
                            },
                            VTy::of(elem),
                        ));
                    }
                }
                let (harr, at) = self.check_expr(arr)?;
                match at {
                    VTy::IntPtr => {
                        let val = self.check_against(rhs, RcType::Int, line)?;
                        Ok((
                            HExpr::AssignIntElem {
                                ptr: Box::new(harr),
                                idx: Box::new(hidx),
                                val: Box::new(val),
                            },
                            VTy::Int,
                        ))
                    }
                    VTy::Ptr(_) => Err(err(
                        line,
                        "cannot assign a whole struct element; assign its fields",
                    )),
                    other => Err(err(line, format!("cannot index-assign a {}", other.describe()))),
                }
            }
            _ => Err(err(line, "left side of `=` is not assignable")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile(src: &str) -> Result<Module, CompileError> {
        check(&parse(src).unwrap())
    }

    const FIG1: &str = r#"
        struct finfo { int sz; };
        struct rlist {
            struct rlist *sameregion next;
            struct finfo *sameregion data;
        };
        int main() deletes {
            struct rlist *rl;
            struct rlist *last = null;
            region r = newregion();
            int i;
            for (i = 0; i < 100; i = i + 1) {
                rl = ralloc(r, struct rlist);
                rl->data = ralloc(r, struct finfo);
                rl->data->sz = i;
                rl->next = last;
                last = rl;
            }
            last = null;
            rl = null;
            deleteregion(r);
            return 0;
        }
    "#;

    #[test]
    fn figure1_checks() {
        let m = compile(FIG1).unwrap();
        assert_eq!(m.structs.len(), 2);
        assert_eq!(m.funcs.len(), 1);
        assert!(m.funcs[0].deletes);
        assert_eq!(m.funcs[0].locals.len(), 4);
    }

    #[test]
    fn missing_deletes_is_an_error() {
        let e = compile("int main() { region r = newregion(); deleteregion(r); return 0; }");
        assert!(e.unwrap_err().msg.contains("deletes"));
    }

    #[test]
    fn deletes_is_transitive() {
        let src = r#"
            void helper() deletes { region r = newregion(); deleteregion(r); }
            int main() { helper(); return 0; }
        "#;
        assert!(compile(src).unwrap_err().msg.contains("deletes"));
    }

    #[test]
    fn unknown_names_are_errors() {
        assert!(compile("int main() { x = 1; return 0; }").is_err());
        assert!(compile("int main() { f(); return 0; }").is_err());
        assert!(compile("struct t { struct nope *p; }; int main() { return 0; }").is_err());
    }

    #[test]
    fn type_mismatches_are_errors() {
        let base = "struct t { int x; }; struct u { int y; };";
        // ptr of wrong struct
        assert!(compile(&format!(
            "{base} int main() {{ struct t *a; struct u *b; region r = newregion(); a = ralloc(r, struct u); b = b; return 0; }}"
        ))
        .is_err());
        // int = null
        assert!(compile("int main() { int x; x = null; return 0; }").is_err());
        // region = int
        assert!(compile("int main() { region r; r = 3; return 0; }").is_err());
    }

    #[test]
    fn main_signature_enforced() {
        assert!(compile("void main() { }").is_err());
        assert!(compile("int f() { return 0; }").is_err());
    }

    #[test]
    fn arrays_require_indexing() {
        let src = "struct t { int x; }; struct t *g[4]; int main() { g = null; return 0; }";
        assert!(compile(src).is_err());
        let src2 = "int main() { int a[4]; a[0] = 1; a[1] = a[0] + 1; return a[1]; }";
        assert!(compile(src2).is_ok());
    }

    #[test]
    fn qualifier_mixing_is_allowed_in_assignments() {
        // An unqualified pointer may be stored into a sameregion slot —
        // safety is dynamic.
        let src = r#"
            struct t { struct t *sameregion next; };
            int main() {
                region r = newregion();
                struct t *a = ralloc(r, struct t);
                struct t *b = ralloc(r, struct t);
                a->next = b;
                return 0;
            }
        "#;
        assert!(compile(src).is_ok());
    }

    #[test]
    fn ptr_element_indexing_types() {
        let src = r#"
            struct t { int x; };
            int main() {
                region r = newregion();
                struct t *arr = rarrayalloc(r, 10, struct t);
                int *nums = rarrayalloc(r, 10, int);
                arr[3]->x = 1;
                nums[4] = arr[3]->x;
                return nums[4];
            }
        "#;
        assert!(compile(src).is_ok(), "{:?}", compile(src));
    }

    #[test]
    fn exportedness() {
        let src = r#"
            static void helper() { }
            void pub() { }
            int main() { helper(); pub(); return 0; }
        "#;
        let m = compile(src).unwrap();
        assert!(!m.funcs[0].exported);
        assert!(m.funcs[1].exported);
        assert!(m.funcs[2].exported, "main is always exported");
    }

    #[test]
    fn spawn_checks_and_lowers() {
        let src = r#"
            struct t { int x; };
            int main() deletes {
                region r = newregion();
                int n = 8;
                spawn r {
                    struct t *p = ralloc(r, struct t);
                    p->x = n;
                    assert(p->x == n);
                    deleteregion(r);
                }
                join;
                return 0;
            }
        "#;
        let m = compile(src).unwrap();
        let body = &m.funcs[0].body;
        assert!(
            body.iter().any(|s| matches!(s, HStmt::Spawn { .. })),
            "spawn survives lowering"
        );
        assert!(body.iter().any(|s| matches!(s, HStmt::Join)));
    }

    #[test]
    fn spawn_capture_restrictions() {
        // A pointer capture is the whole reason the shards can be isolated
        // — it must be rejected.
        let ptr_capture = r#"
            struct t { int x; };
            int main() {
                region r = newregion();
                struct t *p = ralloc(r, struct t);
                spawn r { p->x = 1; }
                join;
                return 0;
            }
        "#;
        let e = compile(ptr_capture).unwrap_err();
        assert!(e.msg.contains("captured"), "{}", e.msg);

        // A second region variable is just as bad.
        let region_capture = r#"
            int main() {
                region r = newregion();
                region q = newregion();
                spawn r { int *a = rarrayalloc(q, 4, int); a[0] = 1; }
                join;
                return 0;
            }
        "#;
        assert!(compile(region_capture).unwrap_err().msg.contains("captured"));

        // Assigning an int capture writes to a by-value copy: rejected.
        let int_write = r#"
            int main() {
                region r = newregion();
                int n = 0;
                spawn r { n = 1; }
                join;
                return 0;
            }
        "#;
        assert!(compile(int_write).unwrap_err().msg.contains("captured by value"));

        // Reading an int capture is fine.
        let int_read = r#"
            int main() {
                region r = newregion();
                int n = 3;
                spawn r { int *a = rarrayalloc(r, n, int); a[0] = n; }
                join;
                return 0;
            }
        "#;
        assert!(compile(int_read).is_ok(), "{:?}", compile(int_read));
    }

    #[test]
    fn spawn_body_structure_restrictions() {
        let with_return = r#"
            int main() {
                region r = newregion();
                spawn r { return 1; }
                return 0;
            }
        "#;
        assert!(compile(with_return).unwrap_err().msg.contains("return"));

        let with_global = r#"
            int counter;
            int main() {
                region r = newregion();
                spawn r { counter = 1; }
                return 0;
            }
        "#;
        assert!(compile(with_global).unwrap_err().msg.contains("global"));

        let with_array_decl = r#"
            int main() {
                region r = newregion();
                spawn r { int a[4]; a[0] = 1; }
                return 0;
            }
        "#;
        assert!(compile(with_array_decl).unwrap_err().msg.contains("array"));

        let non_region = r#"
            int main() {
                int r = 0;
                spawn r { int x = 1; }
                return 0;
            }
        "#;
        assert!(compile(non_region).unwrap_err().msg.contains("region variable"));
    }

    #[test]
    fn spawn_callees_must_be_transitively_global_free() {
        let tainted = r#"
            int counter;
            static void bump() { counter = counter + 1; }
            static void helper() { bump(); }
            int main() {
                region r = newregion();
                spawn r { helper(); }
                join;
                return 0;
            }
        "#;
        let e = compile(tainted).unwrap_err();
        assert!(e.msg.contains("globals"), "{}", e.msg);

        let clean = r#"
            struct t { int x; };
            static int fill(region q, int n) {
                struct t *p = ralloc(q, struct t);
                p->x = n;
                return p->x;
            }
            int main() {
                region r = newregion();
                spawn r { assert(fill(r, 4) == 4); }
                join;
                return 0;
            }
        "#;
        assert!(compile(clean).is_ok(), "{:?}", compile(clean));
    }

    #[test]
    fn nested_spawn_rejects_outer_region_reuse() {
        // The inner task may not re-spawn (or touch) a region owned by an
        // enclosing task's parent.
        let src = r#"
            int main() {
                region r = newregion();
                region q = newregion();
                spawn r {
                    spawn q { int x = 1; }
                }
                join;
                return 0;
            }
        "#;
        assert!(compile(src).unwrap_err().msg.contains("captured"));

        // But a region created inside the body can be spawned.
        let ok = r#"
            int main() deletes {
                region r = newregion();
                spawn r {
                    region q = newregion();
                    spawn q { int *a = rarrayalloc(q, 2, int); a[1] = 5; }
                    join;
                    deleteregion(q);
                }
                join;
                return 0;
            }
        "#;
        assert!(compile(ok).is_ok(), "{:?}", compile(ok));
    }

    #[test]
    fn globals_resolve() {
        let src = r#"
            struct t { int x; };
            struct t *current;
            region hold;
            int counter;
            int main() {
                region r = newregion();
                hold = r;
                current = ralloc(hold, struct t);
                counter = counter + 1;
                current->x = counter;
                return current->x;
            }
        "#;
        let m = compile(src).unwrap();
        assert_eq!(m.globals.len(), 3);
    }
}
