//! Compile-time diagnostics for the RC front end.

/// Which phase produced the diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Lexical error.
    Lex,
    /// Syntax error.
    Parse,
    /// Semantic error (types, names, qualifier rules, `deletes`).
    Sema,
}

/// A compile-time error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    /// The phase.
    pub kind: ErrorKind,
    /// 1-based source line.
    pub line: u32,
    /// Human-readable message.
    pub msg: String,
}

impl CompileError {
    /// Creates an error.
    pub fn new(kind: ErrorKind, line: u32, msg: impl Into<String>) -> CompileError {
        CompileError { kind, line, msg: msg.into() }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let phase = match self.kind {
            ErrorKind::Lex => "lex",
            ErrorKind::Parse => "parse",
            ErrorKind::Sema => "sema",
        };
        write!(f, "{phase} error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_phase_and_line() {
        let e = CompileError::new(ErrorKind::Sema, 42, "no such variable `x`");
        let s = e.to_string();
        assert!(s.contains("sema"));
        assert!(s.contains("42"));
        assert!(s.contains('x'));
    }
}
