//! Translation of RC programs into rlang (paper §4.3).
//!
//! "Our goal ... we want to translate an RC program P into an rlang program
//! P′ that faithfully matches P, then analyse P′ to verify the correctness
//! of sameregion, parentptr and traditional annotations."
//!
//! The translation follows the paper's recipe:
//!
//! - every struct `X` becomes `X[ρ]` where ρ is the region the struct is
//!   stored in; unannotated pointer fields get type `∃ρ′.T[ρ′]@ρ′`,
//!   annotated ones the qualifier's bounded existential;
//! - every local variable and parameter `x` gets its own abstract region
//!   ρₓ;
//! - every annotated field assignment is preceded by the matching `chk`,
//!   carrying the [`SiteId`] minted by the parser so the interpreter can
//!   later skip checks the analysis proves redundant;
//! - global variables are *not* tracked ("our region type system does not
//!   represent the region of global variables"): reads of unannotated
//!   pointer globals havoc their destination; annotated globals contribute
//!   their qualifier's fact against the traditional-region constant;
//! - reads from arrays havoc ("nothing is known about objects accessed
//!   from arbitrary arrays"), except `rarrayalloc`'d struct-array element
//!   access, which is region-preserving pointer arithmetic;
//! - compound expressions are flattened through fresh temporaries, each
//!   with its own abstract region.

use crate::ast::Qual;
use crate::hir::*;
use rlang::program::{Callee, FuncDef, Program, Stmt as RStmt, VarId};
use rlang::types::{
    Fact, FieldQual, FieldType, RegionExpr, StructDecl, StructId, VarType, TRADITIONAL_CONST,
};

/// Translates a checked module into an rlang program. Function, struct and
/// variable indices are preserved (`FuncRef(i)` ↦ `FuncId(i)`, etc.); a
/// pseudo-struct representing `int[]` arrays is appended after the real
/// structs.
pub fn translate(m: &Module) -> Program {
    let mut p = Program::new();
    let int_array = StructId(m.structs.len() as u32);
    for s in &m.structs {
        p.add_struct(StructDecl {
            name: s.name.clone(),
            fields: s
                .fields
                .iter()
                .map(|f| (f.name.clone(), field_type(f.ty, int_array)))
                .collect(),
        });
    }
    p.add_struct(StructDecl { name: "__int_array".into(), fields: vec![] });

    for f in &m.funcs {
        let mut tr = Tr {
            m,
            int_array,
            vartypes: f
                .params
                .iter()
                .chain(f.locals.iter())
                .map(|v| var_type(v, int_array))
                .collect(),
            n_params: f.params.len(),
        };
        let result = f.ret.map(|rt| {
            tr.temp(rc_var_type(rt, int_array))
        });
        let mut body = Vec::new();
        tr.tr_stmts(&f.body, &mut body);
        let locals = tr.vartypes.split_off(f.params.len());
        p.add_func(FuncDef {
            name: f.name.clone(),
            exported: f.exported,
            params: tr.vartypes,
            locals,
            result,
            body: RStmt::Seq(body),
        });
    }
    p
}

/// Runs the whole-program check-elimination analysis on a module.
pub fn analyse_module(m: &Module) -> rlang::Analysis {
    rlang::analyse(&translate(m))
}

/// One row of the static↔dynamic provenance join: a check site's source
/// line, its inference verdict, and the reason behind the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteVerdict {
    /// The front-end check site id (dense, minted by the parser).
    pub site: u32,
    /// Source line of the annotated store (0 = unknown).
    pub line: u32,
    /// `true` when the inference proved the check redundant.
    pub safe: bool,
    /// Human-readable inference reason (rendered
    /// [`rlang::ProvenanceReason`]).
    pub reason: String,
}

/// Joins a module's check sites with the analysis provenance, ascending by
/// site id — the table the benchmark layer's coverage report and Perfetto
/// trace export consume.
pub fn site_verdicts(m: &Module, analysis: &rlang::Analysis) -> Vec<SiteVerdict> {
    (0..m.n_sites)
        .map(|s| {
            let site = rlang::SiteId(s);
            let line = m.site_lines.get(s as usize).copied().unwrap_or(0);
            let (safe, reason) = match analysis.provenance_of(site) {
                Some(p) => (p.safe, p.reason.to_string()),
                // A site the analysis never visited keeps its check.
                None => (false, "never reached by the analysis".to_string()),
            };
            SiteVerdict { site: s, line, safe, reason }
        })
        .collect()
}

fn qual_to_field(q: Qual) -> FieldQual {
    match q {
        Qual::None => FieldQual::Unknown,
        Qual::SameRegion => FieldQual::SameRegion,
        Qual::ParentPtr => FieldQual::ParentPtr,
        Qual::Traditional => FieldQual::Traditional,
    }
}

fn field_type(ty: RcType, int_array: StructId) -> FieldType {
    match ty {
        RcType::Int => FieldType::Int,
        RcType::Region => FieldType::Region,
        RcType::Ptr { target, qual } => {
            FieldType::Ptr { target: StructId(target.0), qual: qual_to_field(qual) }
        }
        RcType::IntPtr(qual) => FieldType::Ptr { target: int_array, qual: qual_to_field(qual) },
    }
}

fn rc_var_type(ty: RcType, int_array: StructId) -> VarType {
    match ty {
        RcType::Int => VarType::Int,
        RcType::Region => VarType::Region,
        RcType::Ptr { target, .. } => VarType::Ptr(StructId(target.0)),
        RcType::IntPtr(_) => VarType::Ptr(int_array),
    }
}

fn var_type(v: &HVar, int_array: StructId) -> VarType {
    if v.array_len.is_some() {
        // Array locals are storage, not tracked values; their elements are
        // reached through havoc'd reads.
        VarType::Int
    } else {
        rc_var_type(v.ty, int_array)
    }
}

struct Tr<'a> {
    m: &'a Module,
    int_array: StructId,
    vartypes: Vec<VarType>,
    n_params: usize,
}

impl Tr<'_> {
    fn temp(&mut self, t: VarType) -> VarId {
        let id = VarId(self.vartypes.len() as u32);
        self.vartypes.push(t);
        id
    }

    fn rho(&self, v: VarId) -> RegionExpr {
        RegionExpr::Abstract(v.rho())
    }

    fn rt() -> RegionExpr {
        RegionExpr::Const(TRADITIONAL_CONST)
    }

    fn has_region(&self, v: VarId) -> bool {
        self.vartypes[v.0 as usize].has_region()
    }

    fn tr_stmts(&mut self, stmts: &[HStmt], out: &mut Vec<RStmt>) {
        for s in stmts {
            self.tr_stmt(s, out);
        }
    }

    fn tr_stmt(&mut self, s: &HStmt, out: &mut Vec<RStmt>) {
        match s {
            HStmt::Expr(e) => {
                self.tr_expr(e, out);
            }
            HStmt::Return(e) => {
                let src = e.as_ref().map(|e| self.tr_expr(e, out));
                out.push(RStmt::Return { src });
            }
            HStmt::If(c, t, e) => {
                let (cv, negated) = self.tr_cond(c, out);
                let mut ts = Vec::new();
                self.tr_stmts(t, &mut ts);
                let mut es = Vec::new();
                self.tr_stmts(e, &mut es);
                let (then_s, else_s) = if negated { (es, ts) } else { (ts, es) };
                out.push(RStmt::If {
                    cond: cv,
                    then_s: Box::new(RStmt::Seq(then_s)),
                    else_s: Box::new(RStmt::Seq(else_s)),
                });
            }
            HStmt::While(c, body) => {
                let (cv, negated) = self.tr_cond(c, out);
                if negated || !self.has_region(cv) {
                    // Int-valued (or negated) condition: no region
                    // refinement to preserve; re-evaluate for effects only.
                    let mut b = Vec::new();
                    self.tr_stmts(body, &mut b);
                    let mut tail = Vec::new();
                    self.tr_cond(c, &mut tail);
                    b.extend(tail);
                    let cond = if negated { self.temp(VarType::Int) } else { cv };
                    out.push(RStmt::While { cond, body: Box::new(RStmt::Seq(b)) });
                } else {
                    // Pointer-valued condition: loop on a dedicated
                    // variable so every re-evaluation feeds the same ρ.
                    let tc = self.temp(self.vartypes[cv.0 as usize]);
                    out.push(RStmt::Assign { dst: tc, src: cv });
                    let mut b = Vec::new();
                    self.tr_stmts(body, &mut b);
                    let (cv2, _) = self.tr_cond(c, &mut b);
                    if cv2 != tc {
                        b.push(RStmt::Assign { dst: tc, src: cv2 });
                    }
                    out.push(RStmt::While { cond: tc, body: Box::new(RStmt::Seq(b)) });
                }
            }
            HStmt::Spawn { rvar, body, .. } => {
                // The spawn body becomes an rlang task: analysed in
                // isolation from the spawning context (only the region
                // handle crosses the boundary), with no dataflow effects on
                // the parent — exactly the sharded execution model.
                let mut b = Vec::new();
                self.tr_stmts(body, &mut b);
                out.push(RStmt::Task { region: VarId(rvar.0), body: Box::new(RStmt::Seq(b)) });
            }
            // join has no region dataflow: the child regions never flow
            // back (sema forbids pointer captures in either direction).
            HStmt::Join => {}
        }
    }

    /// Translates a condition, recognising the null-test shapes whose
    /// region refinement matters: `p`, `p != null` (positive) and
    /// `p == null` (negated).
    fn tr_cond(&mut self, c: &HExpr, out: &mut Vec<RStmt>) -> (VarId, bool) {
        use crate::ast::BinOp;
        match c {
            HExpr::Bin(BinOp::Ne, a, b) => match (a.as_ref(), b.as_ref()) {
                (x, HExpr::Null(_)) | (HExpr::Null(_), x) => (self.tr_expr(x, out), false),
                _ => (self.tr_expr(c, out), false),
            },
            HExpr::Bin(BinOp::Eq, a, b) => match (a.as_ref(), b.as_ref()) {
                (x, HExpr::Null(_)) | (HExpr::Null(_), x) => (self.tr_expr(x, out), true),
                _ => (self.tr_expr(c, out), false),
            },
            _ => (self.tr_expr(c, out), false),
        }
    }

    /// Translates an expression, appending statements to `out` and
    /// returning the variable holding its value (a dummy int temp for void
    /// expressions).
    fn tr_expr(&mut self, e: &HExpr, out: &mut Vec<RStmt>) -> VarId {
        match e {
            HExpr::Int(_) => self.temp(VarType::Int),
            HExpr::Null(ty) => {
                let t = self.temp(rc_var_type(*ty, self.int_array));
                out.push(RStmt::AssignNull { dst: t });
                t
            }
            HExpr::ReadLocal(v) => VarId(v.0),
            HExpr::ReadGlobal(g) => {
                let ty = self.m.global(*g).ty;
                let t = self.temp(rc_var_type(ty, self.int_array));
                if self.has_region(t) {
                    out.push(RStmt::Havoc { dst: t });
                    if let Some(q) = ty.qual() {
                        let facts = qual_to_field(q).read_facts(self.rho(t), Self::rt());
                        if !facts.is_empty() {
                            out.push(RStmt::Assume { facts });
                        }
                    }
                }
                t
            }
            HExpr::AssignLocal { v, val } => {
                let dst = VarId(v.0);
                let tv = self.tr_expr(val, out);
                if tv != dst && self.has_region(dst) {
                    out.push(RStmt::Assign { dst, src: tv });
                }
                dst
            }
            HExpr::AssignGlobal { g, val, site } => {
                let ty = self.m.global(*g).ty;
                let tv = self.tr_expr(val, out);
                if let Some(q) = ty.qual() {
                    if let Some(fact) = qual_to_field(q).obligation(self.rho(tv), Self::rt()) {
                        out.push(RStmt::Chk { fact, site: *site });
                    }
                }
                tv
            }
            HExpr::ReadField { obj, s, field } => {
                let to = self.tr_expr(obj, out);
                let fty = self.m.struct_def(*s).fields[*field as usize].ty;
                let t = self.temp(rc_var_type(fty, self.int_array));
                out.push(RStmt::ReadField { dst: t, obj: to, field: *field as usize });
                t
            }
            HExpr::AssignField { obj, s, field, val, site } => {
                let to = self.tr_expr(obj, out);
                let tv = self.tr_expr(val, out);
                let fty = self.m.struct_def(*s).fields[*field as usize].ty;
                if let Some(q) = fty.qual() {
                    if let Some(fact) = qual_to_field(q).obligation(self.rho(tv), self.rho(to)) {
                        out.push(RStmt::Chk { fact, site: *site });
                    }
                }
                out.push(RStmt::WriteField { obj: to, field: *field as usize, src: tv });
                tv
            }
            HExpr::ReadArraySlot { base: _, idx, elem } => {
                self.tr_expr(idx, out);
                let t = self.temp(rc_var_type(*elem, self.int_array));
                if self.has_region(t) {
                    out.push(RStmt::Havoc { dst: t });
                    if let Some(q) = elem.qual() {
                        // Declared arrays live in the traditional region.
                        let facts = qual_to_field(q).read_facts(self.rho(t), Self::rt());
                        if !facts.is_empty() {
                            out.push(RStmt::Assume { facts });
                        }
                    }
                }
                t
            }
            HExpr::AssignArraySlot { base: _, idx, val, elem, site } => {
                self.tr_expr(idx, out);
                let tv = self.tr_expr(val, out);
                if let Some(q) = elem.qual() {
                    if let Some(fact) = qual_to_field(q).obligation(self.rho(tv), Self::rt()) {
                        out.push(RStmt::Chk { fact, site: *site });
                    }
                }
                tv
            }
            HExpr::PtrElem { ptr, idx, s } => {
                let tp = self.tr_expr(ptr, out);
                self.tr_expr(idx, out);
                let t = self.temp(VarType::Ptr(StructId(s.0)));
                // Pointer arithmetic is region-preserving: the element is
                // in the same region as the array, and both are non-null.
                out.push(RStmt::Havoc { dst: t });
                out.push(RStmt::Assume {
                    facts: vec![
                        Fact::NotTop(self.rho(tp)),
                        Fact::NotTop(self.rho(t)),
                        Fact::Eq(self.rho(t), self.rho(tp)),
                    ],
                });
                t
            }
            HExpr::ReadIntElem { ptr, idx } => {
                let tp = self.tr_expr(ptr, out);
                self.tr_expr(idx, out);
                out.push(RStmt::Assume { facts: vec![Fact::NotTop(self.rho(tp))] });
                self.temp(VarType::Int)
            }
            HExpr::AssignIntElem { ptr, idx, val } => {
                let tp = self.tr_expr(ptr, out);
                self.tr_expr(idx, out);
                let tv = self.tr_expr(val, out);
                out.push(RStmt::Assume { facts: vec![Fact::NotTop(self.rho(tp))] });
                tv
            }
            HExpr::Bin(op, l, r) => {
                use crate::ast::BinOp;
                match op {
                    BinOp::And => {
                        let lv = self.tr_expr(l, out);
                        // The right operand only evaluates when the left is
                        // true — its facts must not leak onto the other
                        // path.
                        let mut rs = Vec::new();
                        self.tr_expr(r, &mut rs);
                        out.push(RStmt::If {
                            cond: lv,
                            then_s: Box::new(RStmt::Seq(rs)),
                            else_s: Box::new(RStmt::skip()),
                        });
                    }
                    BinOp::Or => {
                        let lv = self.tr_expr(l, out);
                        let mut rs = Vec::new();
                        self.tr_expr(r, &mut rs);
                        out.push(RStmt::If {
                            cond: lv,
                            then_s: Box::new(RStmt::skip()),
                            else_s: Box::new(RStmt::Seq(rs)),
                        });
                    }
                    _ => {
                        self.tr_expr(l, out);
                        self.tr_expr(r, out);
                    }
                }
                self.temp(VarType::Int)
            }
            HExpr::Un(_, inner) => {
                self.tr_expr(inner, out);
                self.temp(VarType::Int)
            }
            HExpr::Call { f, args, .. } => {
                let targs: Vec<VarId> = args.iter().map(|a| self.tr_expr(a, out)).collect();
                let ret = self.m.func(*f).ret;
                let dst = ret.map(|rt| self.temp(rc_var_type(rt, self.int_array)));
                out.push(RStmt::Call {
                    dst,
                    callee: Callee::User(rlang::FuncId(f.0)),
                    args: targs,
                });
                dst.unwrap_or_else(|| self.temp(VarType::Int))
            }
            HExpr::Ralloc { region, s, .. } => {
                let tr = self.tr_expr(region, out);
                let t = self.temp(VarType::Ptr(StructId(s.0)));
                out.push(RStmt::New { dst: t, ty: StructId(s.0), region: tr });
                t
            }
            HExpr::RallocStructArray { region, count, s, .. } => {
                let tr = self.tr_expr(region, out);
                self.tr_expr(count, out);
                let t = self.temp(VarType::Ptr(StructId(s.0)));
                out.push(RStmt::New { dst: t, ty: StructId(s.0), region: tr });
                t
            }
            HExpr::RallocIntArray { region, count, .. } => {
                let tr = self.tr_expr(region, out);
                self.tr_expr(count, out);
                let t = self.temp(VarType::Ptr(self.int_array));
                out.push(RStmt::New { dst: t, ty: self.int_array, region: tr });
                t
            }
            HExpr::NewRegion => {
                let t = self.temp(VarType::Region);
                out.push(RStmt::Call { dst: Some(t), callee: Callee::NewRegion, args: vec![] });
                t
            }
            HExpr::TraditionalRegion => {
                // region@R_T: a handle known to designate the traditional
                // region, which is what lets flex-style traditional stores
                // verify statically.
                let t = self.temp(VarType::Region);
                out.push(RStmt::Havoc { dst: t });
                out.push(RStmt::Assume {
                    facts: vec![
                        Fact::NotTop(self.rho(t)),
                        Fact::Eq(self.rho(t), Self::rt()),
                    ],
                });
                t
            }
            HExpr::NewSubregion(r) => {
                let tr = self.tr_expr(r, out);
                let t = self.temp(VarType::Region);
                out.push(RStmt::Call {
                    dst: Some(t),
                    callee: Callee::NewSubRegion,
                    args: vec![tr],
                });
                t
            }
            HExpr::DeleteRegion(r, _) => {
                let tr = self.tr_expr(r, out);
                out.push(RStmt::Call { dst: None, callee: Callee::DeleteRegion, args: vec![tr] });
                self.temp(VarType::Int)
            }
            HExpr::RegionOf(x) => {
                let tx = self.tr_expr(x, out);
                let t = self.temp(VarType::Region);
                out.push(RStmt::Call { dst: Some(t), callee: Callee::RegionOf, args: vec![tx] });
                t
            }
            HExpr::Assert(e) => {
                self.tr_expr(e, out);
                self.temp(VarType::Int)
            }
        }
    }

    /// Suppress the unused-field warning: `n_params` documents the
    /// param/local split for debugging.
    #[allow(dead_code)]
    fn params(&self) -> usize {
        self.n_params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use rlang::SiteId;

    fn analyse_src(src: &str) -> rlang::Analysis {
        let m = compile(src).unwrap();
        analyse_module(&m)
    }

    /// Verdicts for every chk site in the program, ordered by site id.
    fn verdicts(src: &str) -> Vec<bool> {
        let a = analyse_src(src);
        let mut sites: Vec<(SiteId, bool)> = a.site_safe.iter().map(|(&s, &b)| (s, b)).collect();
        sites.sort();
        sites.into_iter().map(|(_, b)| b).collect()
    }

    #[test]
    fn figure1_fully_verified_end_to_end() {
        let src = r#"
            struct finfo { int sz; };
            struct rlist {
                struct rlist *sameregion next;
                struct finfo *sameregion data;
            };
            int main() deletes {
                struct rlist *rl;
                struct rlist *last = null;
                region r = newregion();
                int i;
                for (i = 0; i < 100; i = i + 1) {
                    rl = ralloc(r, struct rlist);
                    rl->data = ralloc(r, struct finfo);
                    rl->data->sz = i;
                    rl->next = last;
                    last = rl;
                }
                deleteregion(r);
                return 0;
            }
        "#;
        let v = verdicts(src);
        assert!(!v.is_empty());
        assert!(v.iter().all(|&b| b), "all sameregion checks eliminated: {v:?}");
    }

    #[test]
    fn regionof_alloc_idiom_verified() {
        let src = r#"
            struct rlist { struct rlist *sameregion next; };
            int main() {
                region r = newregion();
                struct rlist *x = ralloc(r, struct rlist);
                x->next = ralloc(regionof(x), struct rlist);
                return 0;
            }
        "#;
        assert_eq!(verdicts(src), vec![true]);
    }

    #[test]
    fn array_access_defeats_verification() {
        let src = r#"
            struct rlist { struct rlist *sameregion next; };
            struct rlist *objects[100];
            int main() {
                region r = newregion();
                struct rlist *x = ralloc(r, struct rlist);
                x->next = objects[23];
                return 0;
            }
        "#;
        assert_eq!(verdicts(src), vec![false]);
    }

    #[test]
    fn global_region_defeats_but_regionof_recovers() {
        // Allocating from a region stored in a global defeats inference;
        // using regionof on a local recovers it (the paper's workaround:
        // "we changed these programs to keep regions in local variables,
        // or used regionof to find the appropriate region").
        let defeated = r#"
            struct t { struct t *sameregion next; };
            region g;
            int main() {
                g = newregion();
                struct t *x = ralloc(g, struct t);
                struct t *y = ralloc(g, struct t);
                x->next = y;
                return 0;
            }
        "#;
        let v = verdicts(defeated);
        assert_eq!(v, vec![false], "global-held regions are untracked");

        let recovered = r#"
            struct t { struct t *sameregion next; };
            region g;
            int main() {
                g = newregion();
                struct t *x = ralloc(g, struct t);
                struct t *y = ralloc(regionof(x), struct t);
                x->next = y;
                return 0;
            }
        "#;
        assert_eq!(verdicts(recovered), vec![true]);
    }

    #[test]
    fn traditional_global_reads_verify_traditional_stores() {
        // The flex idiom: a traditional-qualified global buffer pointer is
        // read and stored into another traditional slot — no check needed.
        let src = r#"
            struct buf { int c; };
            struct buf *traditional current;
            struct holder { struct buf *traditional b; };
            int main() {
                region r = newregion();
                struct holder *h = ralloc(r, struct holder);
                h->b = current;
                return 0;
            }
        "#;
        assert_eq!(verdicts(src), vec![true]);
    }

    #[test]
    fn parentptr_subregion_idiom_verified() {
        let src = r#"
            struct req { struct req *parentptr parent; };
            int main() deletes {
                region r = newregion();
                region sub = newsubregion(r);
                struct req *top = ralloc(r, struct req);
                struct req *child = ralloc(sub, struct req);
                child->parent = top;
                deleteregion(sub);
                deleteregion(r);
                return 0;
            }
        "#;
        assert_eq!(verdicts(src), vec![true]);
    }

    #[test]
    fn null_stores_always_verify() {
        let src = r#"
            struct t { struct t *sameregion next; };
            int main() {
                region r = newregion();
                struct t *x = ralloc(r, struct t);
                x->next = null;
                return 0;
            }
        "#;
        assert_eq!(verdicts(src), vec![true]);
    }

    #[test]
    fn while_loop_null_test_refines() {
        // Walking a sameregion list and re-linking within it.
        let src = r#"
            struct t { struct t *sameregion next; };
            static void relink(struct t *head) {
                struct t *p = head;
                while (p != null) {
                    p->next = p->next;
                    p = p->next;
                }
            }
            int main() {
                region r = newregion();
                struct t *a = ralloc(r, struct t);
                a->next = ralloc(regionof(a), struct t);
                relink(a);
                return 0;
            }
        "#;
        let v = verdicts(src);
        assert!(v.iter().all(|&b| b), "sameregion list walking verifies: {v:?}");
    }

    #[test]
    fn interprocedural_constructor_verified_with_consistent_sites() {
        let src = r#"
            struct t { struct t *sameregion next; };
            static struct t *cons(region r, struct t *next) {
                struct t *n = ralloc(r, struct t);
                n->next = next;
                return n;
            }
            int main() {
                region r = newregion();
                struct t *list = null;
                int i;
                for (i = 0; i < 10; i = i + 1) {
                    list = cons(r, list);
                }
                return 0;
            }
        "#;
        let v = verdicts(src);
        assert!(v.iter().all(|&b| b), "consistent constructor sites verify: {v:?}");
    }

    #[test]
    fn short_circuit_facts_do_not_leak() {
        // `p && p->next` must not let the analysis believe p is non-null
        // on the else path.
        let src = r#"
            struct t { struct t *sameregion next; };
            int main() {
                region r = newregion();
                region r2 = newregion();
                struct t *p = ralloc(r, struct t);
                struct t *q = ralloc(r2, struct t);
                if (p != null && p->next != null) {
                    p = null;
                } else {
                    q->next = q;
                }
                p->next = q;
                return 0;
            }
        "#;
        let v = verdicts(src);
        // site order: q->next = q (true: same region), p->next = q (false:
        // different regions).
        assert_eq!(v, vec![true, false]);
    }
}

#[cfg(test)]
mod validation_tests {
    use super::*;
    use crate::compile;

    /// Every workload's translation is structurally well-formed and its
    /// inferred summaries survive the Figure 6 checking judgments — the
    /// machine-checked version of the soundness argument.
    #[test]
    fn translations_are_well_formed_and_validate() {
        let src = include_str!("../testdata/figure1.rc");
        let m = compile(src).unwrap();
        let p = translate(&m);
        rlang::well_formed(&p).unwrap();
        let a = rlang::analyse(&p);
        let violations = rlang::validate(&p, &a);
        assert!(violations.is_empty(), "{violations:?}");
    }
}

#[cfg(test)]
mod golden_tests {
    use super::*;
    use crate::compile;

    /// The translated Figure 1 program, pretty-printed in the paper's
    /// notation, contains the structures §4.3 prescribes. This locks the
    /// translation's shape against silent regressions.
    #[test]
    fn figure1_translation_golden() {
        let m = compile(include_str!("../testdata/figure1.rc")).unwrap();
        let p = translate(&m);
        let text = rlang::display::program_to_string(&p);

        // Struct types with the sameregion existential.
        assert!(text.contains("struct rlist[ρ]"), "{text}");
        assert!(
            text.contains("next: ∃ρ'/ρ'=⊤ ∨ ρ'=ρ. rlist[ρ']@ρ'"),
            "sameregion field type missing:\n{text}"
        );
        // newregion and the allocation form.
        assert!(text.contains("= newregion();"), "{text}");
        assert!(text.contains("= new rlist["), "{text}");
        // chk statements precede the annotated stores.
        let chk_pos = text.find("chk ").expect("chk present");
        let store_pos = text.find(".data = ").expect("store present");
        assert!(chk_pos < store_pos, "chk must precede the store:\n{text}");
        // deleteregion call survives translation.
        assert!(text.contains("deleteregion("), "{text}");
        // Return statement present.
        assert!(text.contains("return "), "{text}");
    }

    /// Global reads havoc; traditional globals get assumed facts.
    #[test]
    fn global_translation_golden() {
        let src = r#"
            struct t { int x; };
            struct t *untracked;
            struct t *traditional tbuf;
            int main() {
                struct t *a = untracked;
                struct t *b = tbuf;
                return 0;
            }
        "#;
        let m = compile(src).unwrap();
        let p = translate(&m);
        let text = rlang::display::program_to_string(&p);
        assert!(text.contains("⟨unknown⟩"), "global reads havoc:\n{text}");
        assert!(text.contains("assume"), "traditional global contributes facts:\n{text}");
        assert!(text.contains("R0"), "the traditional-region constant appears:\n{text}");
    }
}
