//! Task scheduling primitives for `spawn`/`join` (std-only).
//!
//! Three schedulers back [`crate::config::SchedMode`]:
//!
//! * **Inline** — no threads; a task body runs synchronously at its
//!   `spawn` point. This is the conformance baseline every other mode is
//!   compared against.
//! * **Deterministic** — real threads serialized by a [`Baton`]: exactly
//!   one task holds the baton at any instant, runs for a slice of
//!   interpreter steps whose length comes from a per-task [`SplitMix64`]
//!   stream, then hands the baton to the next runnable task round-robin.
//!   The whole schedule is a pure function of the seed and the program,
//!   so a seed *names* an interleaving and replaying it is exact.
//! * **Threads** — a counting [`Semaphore`] admission-controls real
//!   threads: at most `workers` tasks execute concurrently, timing is up
//!   to the OS. Because heap shards are isolated (see
//!   `region_rt::shard`), results are still deterministic; only wall
//!   clock varies.
//!
//! The interpreter talks to all three through a per-task [`Gate`]: one
//! cheap [`Gate::tick`] on every interpreter step, plus explicit
//! blocked/unblocked transitions around `join` so a waiting parent never
//! starves its children of the baton or a semaphore permit.

use std::sync::{Arc, Condvar, Mutex};

/// SplitMix64 — the tiny, well-distributed PRNG used for slice lengths
/// (and by the interleaving test harness for seed derivation). One `u64`
/// of state; every output is a bijection of the state, so distinct
/// per-task streams never collapse onto each other.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// The next pseudo-random word.
    #[allow(clippy::should_implement_trait)] // not an Iterator: infinite, never None
    pub fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Largest step slice the deterministic scheduler hands a task before
/// forcing a baton pass. Small enough that short programs still context
/// switch; large enough that the baton is not the dominant cost.
const MAX_SLICE: u64 = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Runnable,
    Blocked,
    Finished,
}

/// No task currently holds the baton (everyone is blocked or finished).
const IDLE: usize = usize::MAX;

#[derive(Debug)]
struct BatonInner {
    states: Vec<TaskState>,
    /// Per task: the child ids a [`TaskState::Blocked`] task's `join` is
    /// waiting for. Blocked tasks become grantable the instant every id
    /// here is `Finished` — decided by `advance` from task states alone,
    /// so the schedule never depends on *when* the parent's OS `join`
    /// happens to return.
    waiting: Vec<Vec<usize>>,
    current: usize,
}

impl BatonInner {
    /// Hands the baton to the next grantable task after `from`,
    /// round-robin: a runnable task, or a blocked one whose entire wait
    /// set has finished (it is flipped runnable on grant — its thread
    /// will arrive in [`Baton::unblock`] and find the turn already
    /// held). Parks at [`IDLE`] when nobody qualifies, which only
    /// happens once every task has finished.
    fn advance(&mut self, from: usize) {
        let n = self.states.len();
        for k in 1..=n {
            let j = (from + k) % n;
            match self.states[j] {
                TaskState::Runnable => {
                    self.current = j;
                    return;
                }
                TaskState::Blocked
                    if self.waiting[j].iter().all(|&c| self.states[c] == TaskState::Finished) =>
                {
                    self.states[j] = TaskState::Runnable;
                    self.waiting[j].clear();
                    self.current = j;
                    return;
                }
                _ => {}
            }
        }
        self.current = IDLE;
    }
}

/// The deterministic scheduler's single token of execution. Tasks
/// register at spawn (ids are spawn ordinals, hence deterministic), wait
/// for their turn, and pass the baton either voluntarily (slice expiry,
/// blocking in `join`) or terminally (task end). Built on
/// `Mutex`+`Condvar` only.
#[derive(Debug)]
pub struct Baton {
    inner: Mutex<BatonInner>,
    cv: Condvar,
    seed: u64,
}

impl Baton {
    /// A baton whose task 0 (the registering root) holds the turn.
    pub fn new(seed: u64) -> Baton {
        Baton {
            inner: Mutex::new(BatonInner { states: Vec::new(), waiting: Vec::new(), current: 0 }),
            cv: Condvar::new(),
            seed,
        }
    }

    /// Registers a task; returns its id (registration order).
    pub fn register(&self) -> usize {
        let mut g = self.inner.lock().unwrap();
        g.states.push(TaskState::Runnable);
        g.waiting.push(Vec::new());
        g.states.len() - 1
    }

    /// The slice-length stream for task `id`, derived from the baton
    /// seed so every task gets an independent deterministic stream.
    pub fn stream(&self, id: usize) -> SplitMix64 {
        let mut s = SplitMix64(self.seed ^ (id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // One warm-up scrambles low-entropy (seed ^ small-id) states.
        s.next();
        s
    }

    /// Blocks until task `id` holds the baton.
    pub fn wait_turn(&self, id: usize) {
        let mut g = self.inner.lock().unwrap();
        while g.current != id {
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Passes the baton onward and blocks until it comes back (slice
    /// expiry). A task that is the only runnable one keeps the baton and
    /// returns immediately.
    pub fn yield_turn(&self, id: usize) {
        let mut g = self.inner.lock().unwrap();
        g.advance(id);
        if g.current == id {
            return;
        }
        self.cv.notify_all();
        while g.current != id {
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Marks task `id` blocked on the tasks in `waiting_on` (it is about
    /// to OS-`join` them) and passes the baton on. The baton re-grants
    /// `id` deterministically once every task in `waiting_on` has
    /// finished — see [`BatonInner::advance`].
    pub fn block(&self, id: usize, waiting_on: &[usize]) {
        let mut g = self.inner.lock().unwrap();
        g.states[id] = TaskState::Blocked;
        g.waiting[id] = waiting_on.to_vec();
        g.advance(id);
        self.cv.notify_all();
    }

    /// Blocks until task `id` holds the baton again after a
    /// [`Baton::block`]. The grant itself already happened inside
    /// `advance` when the wait set finished (the last child's
    /// [`Baton::finish`] at the latest), so this only waits for the
    /// round-robin to come back around — the schedule is fixed before
    /// this thread wakes from its OS `join`.
    pub fn unblock(&self, id: usize) {
        let mut g = self.inner.lock().unwrap();
        // Defensive: cannot happen while any task is unfinished (the
        // blocked task's own wait set keeps `advance` from going idle),
        // but an idle baton would otherwise deadlock here.
        if g.current == IDLE {
            g.states[id] = TaskState::Runnable;
            g.current = id;
        }
        self.cv.notify_all();
        while g.current != id {
            g = self.cv.wait(g).unwrap();
        }
    }

    /// Marks task `id` finished and passes the baton on for good.
    pub fn finish(&self, id: usize) {
        let mut g = self.inner.lock().unwrap();
        g.states[id] = TaskState::Finished;
        g.advance(id);
        self.cv.notify_all();
    }
}

/// A hand-rolled counting semaphore (std has none): the thread
/// scheduler's admission control.
#[derive(Debug)]
pub struct Semaphore {
    permits: Mutex<u32>,
    cv: Condvar,
}

impl Semaphore {
    /// A semaphore with `permits` permits (clamped to at least 1).
    pub fn new(permits: u32) -> Semaphore {
        Semaphore { permits: Mutex::new(permits.max(1)), cv: Condvar::new() }
    }

    /// Takes a permit, blocking until one is free.
    pub fn acquire(&self) {
        let mut g = self.permits.lock().unwrap();
        while *g == 0 {
            g = self.cv.wait(g).unwrap();
        }
        *g -= 1;
    }

    /// Returns a permit.
    pub fn release(&self) {
        let mut g = self.permits.lock().unwrap();
        *g += 1;
        self.cv.notify_one();
    }
}

/// A task's handle on its scheduler: the interpreter calls [`Gate::tick`]
/// once per step and brackets `join` waits with
/// [`Gate::begin_wait`]/[`Gate::end_wait`] so a blocked parent cannot
/// starve its children.
#[derive(Debug)]
pub enum Gate {
    /// No scheduling: bodies run at their spawn points.
    Inline,
    /// One turn of the shared [`Baton`] plus this task's slice stream.
    Det {
        /// The shared baton.
        baton: Arc<Baton>,
        /// This task's id (spawn ordinal).
        id: usize,
        /// Slice-length stream.
        rng: SplitMix64,
        /// Steps left in the current slice.
        slice: u64,
        /// The current slice's full length (for `baton_release` events:
        /// `ran == granted` at expiry).
        granted: u64,
    },
    /// A permit of the shared [`Semaphore`], held while running.
    Threads {
        /// The shared semaphore.
        sem: Arc<Semaphore>,
    },
}

impl Gate {
    /// The root task's gate for a scheduler choice.
    pub fn root(sched: crate::config::SchedMode) -> Gate {
        match sched {
            crate::config::SchedMode::Inline => Gate::Inline,
            crate::config::SchedMode::Deterministic { seed } => {
                let baton = Arc::new(Baton::new(seed));
                let id = baton.register();
                let mut rng = baton.stream(id);
                let slice = 1 + rng.next() % MAX_SLICE;
                Gate::Det { baton, id, rng, slice, granted: slice }
            }
            crate::config::SchedMode::Threads { workers } => {
                Gate::Threads { sem: Arc::new(Semaphore::new(workers)) }
            }
        }
    }

    /// A gate for a task this task is about to spawn. Registration
    /// happens here — at the spawn point, in program order — so
    /// deterministic ids never depend on thread timing.
    pub fn child(&self) -> Gate {
        match self {
            Gate::Inline => Gate::Inline,
            Gate::Det { baton, .. } => {
                let id = baton.register();
                let mut rng = baton.stream(id);
                let slice = 1 + rng.next() % MAX_SLICE;
                Gate::Det { baton: Arc::clone(baton), id, rng, slice, granted: slice }
            }
            Gate::Threads { sem } => Gate::Threads { sem: Arc::clone(sem) },
        }
    }

    /// Called once when the task starts executing: waits for its first
    /// baton turn / semaphore permit.
    pub fn start(&self) {
        match self {
            Gate::Inline => {}
            Gate::Det { baton, id, .. } => baton.wait_turn(*id),
            Gate::Threads { sem } => sem.acquire(),
        }
    }

    /// One interpreter step: under the deterministic scheduler, burns a
    /// slice step. Returns `Some(ran)` when the slice is spent — the
    /// caller stamps its `baton_release` event and must then call
    /// [`Gate::yield_now`] to actually pass the baton.
    #[inline]
    pub fn tick(&mut self) -> Option<u64> {
        if let Gate::Det { slice, granted, .. } = self {
            *slice -= 1;
            if *slice == 0 {
                return Some(*granted);
            }
        }
        None
    }

    /// Passes the baton and blocks until it returns; draws the next
    /// slice from the stream and returns its length (0 outside the
    /// deterministic scheduler). Split from [`Gate::tick`] so the
    /// interpreter can stamp release/acquire events around the pass.
    pub fn yield_now(&mut self) -> u64 {
        if let Gate::Det { baton, id, rng, slice, granted } = self {
            baton.yield_turn(*id);
            *slice = 1 + rng.next() % MAX_SLICE;
            *granted = *slice;
            *slice
        } else {
            0
        }
    }

    /// Whether this gate is the thread scheduler's (for `sema_*` event
    /// stamping).
    pub fn is_threads(&self) -> bool {
        matches!(self, Gate::Threads { .. })
    }

    /// This task's scheduler id (spawn ordinal; 0 outside the
    /// deterministic scheduler). Parents record it per child so a `join`
    /// can hand the baton its exact wait set.
    pub fn task_id(&self) -> usize {
        match self {
            Gate::Det { id, .. } => *id,
            _ => 0,
        }
    }

    /// About to block outside the scheduler (OS-joining the tasks in
    /// `waiting_on`): releases the turn/permit so those children can
    /// run. Under the deterministic scheduler the wait set makes the
    /// wake-up a pure function of task states (see [`Baton::block`]).
    pub fn begin_wait(&self, waiting_on: &[usize]) {
        match self {
            Gate::Inline => {}
            Gate::Det { baton, id, .. } => baton.block(*id, waiting_on),
            Gate::Threads { sem } => sem.release(),
        }
    }

    /// Done blocking: reacquires the turn/permit.
    pub fn end_wait(&self) {
        match self {
            Gate::Inline => {}
            Gate::Det { baton, id, .. } => baton.unblock(*id),
            Gate::Threads { sem } => sem.acquire(),
        }
    }

    /// The task is done: gives the turn/permit up for good.
    pub fn finish(&self) {
        match self {
            Gate::Inline => {}
            Gate::Det { baton, id, .. } => baton.finish(*id),
            Gate::Threads { sem } => sem.release(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn splitmix_is_deterministic_and_streams_differ() {
        let mut a = SplitMix64(42);
        let mut b = SplitMix64(42);
        let first: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let second: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(first, second);
        let baton = Baton::new(7);
        let mut s0 = baton.stream(0);
        let mut s1 = baton.stream(1);
        assert_ne!(
            (0..4).map(|_| s0.next()).collect::<Vec<_>>(),
            (0..4).map(|_| s1.next()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn baton_serializes_and_interleaves_deterministically() {
        // Two workers append their id under the baton; with one runner
        // at a time the trace length is exact and replays identically.
        let trace = |seed: u64| -> Vec<usize> {
            let baton = Arc::new(Baton::new(seed));
            let root = baton.register();
            let out = Arc::new(Mutex::new(Vec::new()));
            baton.wait_turn(root);
            std::thread::scope(|s| {
                let mut handles = Vec::new();
                let mut ids = Vec::new();
                for _ in 0..2 {
                    let id = baton.register();
                    ids.push(id);
                    let baton = Arc::clone(&baton);
                    let out = Arc::clone(&out);
                    handles.push(s.spawn(move || {
                        baton.wait_turn(id);
                        for _ in 0..5 {
                            out.lock().unwrap().push(id);
                            baton.yield_turn(id);
                        }
                        baton.finish(id);
                    }));
                }
                baton.block(root, &ids);
                for h in handles {
                    h.join().unwrap();
                }
                baton.unblock(root);
            });
            baton.finish(root);
            Arc::try_unwrap(out).unwrap().into_inner().unwrap()
        };
        let a = trace(1);
        assert_eq!(a.len(), 10);
        assert_eq!(a, trace(1), "same seed, same schedule");
    }

    #[test]
    fn blocked_parent_wakeup_is_decided_by_task_states_not_thread_timing() {
        // The parent's wake-up slot must be fixed the instant its wait
        // set finishes (the last child's `finish` call), however late
        // the parent thread's OS `join` returns. A deliberately slow
        // parent must observe the identical post-join grant order.
        let order = |parent_delay_us: u64| -> Vec<usize> {
            let baton = Arc::new(Baton::new(3));
            let root = baton.register();
            let grants = Arc::new(Mutex::new(Vec::new()));
            baton.wait_turn(root);
            std::thread::scope(|s| {
                let child = baton.register();
                let other = baton.register();
                let h = {
                    let baton = Arc::clone(&baton);
                    let grants = Arc::clone(&grants);
                    s.spawn(move || {
                        baton.wait_turn(child);
                        grants.lock().unwrap().push(child);
                        baton.finish(child);
                    })
                };
                {
                    let baton = Arc::clone(&baton);
                    let grants = Arc::clone(&grants);
                    s.spawn(move || {
                        baton.wait_turn(other);
                        for _ in 0..3 {
                            grants.lock().unwrap().push(other);
                            baton.yield_turn(other);
                        }
                        baton.finish(other);
                    });
                }
                baton.block(root, &[child]);
                h.join().unwrap();
                std::thread::sleep(std::time::Duration::from_micros(parent_delay_us));
                baton.unblock(root);
                grants.lock().unwrap().push(root);
                baton.finish(root);
            });
            Arc::try_unwrap(grants).unwrap().into_inner().unwrap()
        };
        let fast = order(0);
        assert_eq!(fast, order(500), "parent delay must not change the schedule");
    }

    #[test]
    fn semaphore_caps_concurrency() {
        let sem = Arc::new(Semaphore::new(2));
        let running = Arc::new(AtomicU64::new(0));
        let peak = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let sem = Arc::clone(&sem);
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                s.spawn(move || {
                    sem.acquire();
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::yield_now();
                    running.fetch_sub(1, Ordering::SeqCst);
                    sem.release();
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "cap respected");
    }
}
