//! Pretty-printer for RC surface syntax.
//!
//! Renders an [`Ast`] back to compilable RC source. The round-trip
//! property — parse → print → parse yields the same AST modulo site ids —
//! is what keeps the printer and the grammar in sync; see the tests here
//! and in `tests/frontend_props.rs`.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a whole translation unit.
pub fn print_ast(ast: &Ast) -> String {
    let mut out = String::new();
    for s in &ast.structs {
        let _ = writeln!(out, "struct {} {{", s.name);
        for (ty, name) in &s.fields {
            let _ = writeln!(out, "    {} {};", type_str(ty), name);
        }
        let _ = writeln!(out, "}};");
    }
    for g in &ast.globals {
        match g.array_len {
            Some(n) => {
                let _ = writeln!(out, "{} {}[{}];", type_str(&g.ty), g.name, n);
            }
            None => {
                let _ = writeln!(out, "{} {};", type_str(&g.ty), g.name);
            }
        }
    }
    for f in &ast.funcs {
        let stat = if f.is_static { "static " } else { "" };
        let ret = match &f.ret {
            None => "void".to_string(),
            Some(t) => type_str(t),
        };
        let params: Vec<String> =
            f.params.iter().map(|(t, n)| format!("{} {}", type_str(t), n)).collect();
        let del = if f.deletes { " deletes" } else { "" };
        let _ = writeln!(out, "{stat}{ret} {}({}){del} {{", f.name, params.join(", "));
        for item in &f.body {
            print_item(&mut out, item, 1);
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn type_str(t: &TypeExpr) -> String {
    match t {
        TypeExpr::Int => "int".into(),
        TypeExpr::Region => "region".into(),
        TypeExpr::IntPtr(q) => format!("int *{}", qual_str(*q)).trim_end().to_string(),
        TypeExpr::StructPtr { name, qual } => {
            format!("struct {name} *{}", qual_str(*qual)).trim_end().to_string()
        }
    }
}

fn qual_str(q: Qual) -> &'static str {
    match q {
        Qual::None => "",
        Qual::SameRegion => "sameregion",
        Qual::ParentPtr => "parentptr",
        Qual::Traditional => "traditional",
    }
}

fn print_item(out: &mut String, item: &BlockItem, depth: usize) {
    let pad = "    ".repeat(depth);
    match item {
        BlockItem::Decl(d) => {
            let arr = d.array_len.map(|n| format!("[{n}]")).unwrap_or_default();
            match &d.init {
                Some(e) => {
                    let _ = writeln!(
                        out,
                        "{pad}{} {}{arr} = {};",
                        type_str(&d.ty),
                        d.name,
                        expr(e)
                    );
                }
                None => {
                    let _ = writeln!(out, "{pad}{} {}{arr};", type_str(&d.ty), d.name);
                }
            }
        }
        BlockItem::Stmt(s) => print_stmt(out, s, depth),
    }
}

fn print_stmt(out: &mut String, s: &Stmt, depth: usize) {
    let pad = "    ".repeat(depth);
    match s {
        Stmt::Empty => {
            let _ = writeln!(out, "{pad};");
        }
        Stmt::Expr(e) => {
            let _ = writeln!(out, "{pad}{};", expr(e));
        }
        Stmt::Block(items) => {
            let _ = writeln!(out, "{pad}{{");
            for item in items {
                print_item(out, item, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::If(c, t, e) => {
            let _ = writeln!(out, "{pad}if ({}) {{", expr(c));
            print_stmt_body(out, t, depth + 1);
            match e {
                None => {
                    let _ = writeln!(out, "{pad}}}");
                }
                Some(e) => {
                    let _ = writeln!(out, "{pad}}} else {{");
                    print_stmt_body(out, e, depth + 1);
                    let _ = writeln!(out, "{pad}}}");
                }
            }
        }
        Stmt::While(c, body) => {
            let _ = writeln!(out, "{pad}while ({}) {{", expr(c));
            print_stmt_body(out, body, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::For(init, cond, step, body) => {
            let p = |o: &Option<Expr>| o.as_ref().map(expr).unwrap_or_default();
            let _ = writeln!(out, "{pad}for ({}; {}; {}) {{", p(init), p(cond), p(step));
            print_stmt_body(out, body, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Return(e, _) => match e {
            Some(e) => {
                let _ = writeln!(out, "{pad}return {};", expr(e));
            }
            None => {
                let _ = writeln!(out, "{pad}return;");
            }
        },
        Stmt::Spawn { region, body, .. } => {
            let _ = writeln!(out, "{pad}spawn {region} {{");
            for item in body {
                print_item(out, item, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Join(_) => {
            let _ = writeln!(out, "{pad}join;");
        }
    }
}

/// Bodies of if/while/for: a block statement flattens (the braces are
/// printed by the parent), anything else prints as a statement.
fn print_stmt_body(out: &mut String, s: &Stmt, depth: usize) {
    match s {
        Stmt::Block(items) => {
            for item in items {
                print_item(out, item, depth);
            }
        }
        other => print_stmt(out, other, depth),
    }
}

/// Renders an expression, fully parenthesised (correct and reparseable,
/// if not minimal).
pub fn expr(e: &Expr) -> String {
    match e {
        Expr::Int(n) => {
            // Negative literals only arise from folding; print via unary
            // minus so the lexer accepts them.
            if *n < 0 {
                format!("(-{})", -n)
            } else {
                n.to_string()
            }
        }
        Expr::Null => "null".into(),
        Expr::Var(n, _) => n.clone(),
        Expr::Assign { lhs, rhs, .. } => format!("{} = {}", expr(lhs), expr(rhs)),
        Expr::Bin(op, l, r) => format!("({} {} {})", expr(l), bin_str(*op), expr(r)),
        Expr::Un(UnOp::Neg, e) => format!("(-{})", expr(e)),
        Expr::Un(UnOp::Not, e) => format!("(!{})", expr(e)),
        Expr::Field { obj, name, .. } => format!("{}->{}", expr(obj), name),
        Expr::Index { arr, idx, .. } => format!("{}[{}]", expr(arr), expr(idx)),
        Expr::Call { name, args, .. } => {
            let args: Vec<String> = args.iter().map(expr).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Ralloc { region, ty, .. } => {
            format!("ralloc({}, {})", expr(region), alloc_ty(ty))
        }
        Expr::RarrayAlloc { region, count, ty, .. } => {
            format!("rarrayalloc({}, {}, {})", expr(region), expr(count), alloc_ty(ty))
        }
        Expr::NewRegion => "newregion()".into(),
        Expr::TraditionalRegion => "traditionalregion()".into(),
        Expr::NewSubregion(r) => format!("newsubregion({})", expr(r)),
        Expr::DeleteRegion(r, _) => format!("deleteregion({})", expr(r)),
        Expr::RegionOf(x, _) => format!("regionof({})", expr(x)),
        Expr::Assert(e, _) => format!("assert({})", expr(e)),
    }
}

fn alloc_ty(t: &TypeExpr) -> String {
    match t {
        TypeExpr::StructPtr { name, .. } => format!("struct {name}"),
        TypeExpr::Int => "int".into(),
        other => type_str(other),
    }
}

fn bin_str(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

/// Erases source positions and site ids so round-tripped ASTs compare
/// structurally.
pub fn normalise(ast: &Ast) -> Ast {
    let mut a = ast.clone();
    for s in &mut a.structs {
        s.line = 0;
    }
    for g in &mut a.globals {
        g.line = 0;
    }
    let mut next_site = 0u32;
    for f in &mut a.funcs {
        f.line = 0;
        for item in &mut f.body {
            norm_item(item, &mut next_site);
        }
    }
    a
}

fn norm_item(item: &mut BlockItem, next: &mut u32) {
    match item {
        BlockItem::Decl(d) => {
            d.line = 0;
            if let Some(e) = &mut d.init {
                norm_expr(e, next);
            }
        }
        BlockItem::Stmt(s) => norm_stmt(s, next),
    }
}

fn norm_stmt(s: &mut Stmt, next: &mut u32) {
    match s {
        Stmt::Empty => {}
        Stmt::Expr(e) => norm_expr(e, next),
        Stmt::Block(items) => items.iter_mut().for_each(|i| norm_item(i, next)),
        Stmt::If(c, t, e) => {
            norm_expr(c, next);
            norm_stmt(t, next);
            if let Some(e) = e {
                norm_stmt(e, next);
            }
        }
        Stmt::While(c, b) => {
            norm_expr(c, next);
            norm_stmt(b, next);
        }
        Stmt::For(i, c, st, b) => {
            for e in [i, c, st].into_iter().flatten() {
                norm_expr(e, next);
            }
            norm_stmt(b, next);
        }
        Stmt::Return(e, line) => {
            *line = 0;
            if let Some(e) = e {
                norm_expr(e, next);
            }
        }
        Stmt::Spawn { body, line, .. } => {
            *line = 0;
            body.iter_mut().for_each(|i| norm_item(i, next));
        }
        Stmt::Join(line) => *line = 0,
    }
}

fn norm_expr(e: &mut Expr, next: &mut u32) {
    match e {
        Expr::Int(_) | Expr::Null | Expr::NewRegion | Expr::TraditionalRegion => {}
        Expr::Var(_, line) => *line = 0,
        Expr::Assign { lhs, rhs, site, line } => {
            *line = 0;
            *site = crate::ast::SiteId(*next);
            *next += 1;
            norm_expr(lhs, next);
            norm_expr(rhs, next);
        }
        Expr::Bin(_, l, r) => {
            norm_expr(l, next);
            norm_expr(r, next);
        }
        Expr::Un(_, inner) => norm_expr(inner, next),
        Expr::Field { obj, line, .. } => {
            *line = 0;
            norm_expr(obj, next);
        }
        Expr::Index { arr, idx, line } => {
            *line = 0;
            norm_expr(arr, next);
            norm_expr(idx, next);
        }
        Expr::Call { args, line, .. } => {
            *line = 0;
            args.iter_mut().for_each(|a| norm_expr(a, next));
        }
        Expr::Ralloc { region, line, .. } => {
            *line = 0;
            norm_expr(region, next);
        }
        Expr::RarrayAlloc { region, count, line, .. } => {
            *line = 0;
            norm_expr(region, next);
            norm_expr(count, next);
        }
        Expr::NewSubregion(r) => norm_expr(r, next),
        Expr::DeleteRegion(r, line) | Expr::RegionOf(r, line) | Expr::Assert(r, line) => {
            *line = 0;
            norm_expr(r, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Parse → print → parse is the identity modulo positions/sites.
    fn round_trip(src: &str) {
        let a1 = parse(src).unwrap();
        let printed = print_ast(&a1);
        let a2 = parse(&printed)
            .unwrap_or_else(|e| panic!("printed source does not parse: {e}\n{printed}"));
        assert_eq!(
            normalise(&a1),
            normalise(&a2),
            "round trip changed the AST:\n{printed}"
        );
    }

    #[test]
    fn round_trips_figure1() {
        round_trip(include_str!("../testdata/figure1.rc"));
    }

    #[test]
    fn round_trips_all_workloads() {
        // The pretty-printer must faithfully reproduce every construct the
        // benchmark suite uses.
        for w in [
            &rc_workload_sources::CFRAC_LIKE,
            &rc_workload_sources::KITCHEN_SINK,
        ] {
            round_trip(w);
        }
    }

    /// Local fixtures exercising the full grammar.
    mod rc_workload_sources {
        pub const CFRAC_LIKE: &str = r#"
            struct big { int len; int *sameregion d; };
            struct big *gscratch;
            static struct big *mk(region r, int n) {
                struct big *b = ralloc(r, struct big);
                b->d = rarrayalloc(regionof(b), 12, int);
                b->len = n;
                return b;
            }
            int main() deletes {
                region r = newregion();
                struct big *x = mk(r, 5);
                gscratch = x;
                gscratch = null;
                x = null;
                deleteregion(r);
                return 0;
            }
        "#;

        pub const KITCHEN_SINK: &str = r#"
            struct node {
                int v;
                struct node *sameregion next;
                struct node *parentptr up;
                struct node *traditional t;
                struct node *plain;
                region held;
            };
            struct node *cache[7];
            int counter;
            static int helper(int a, int b) {
                if (a > b || a == 0 && b != 1) { return a; } else { return b; }
            }
            int main() deletes {
                int xs[3];
                region r = newregion();
                region s = newsubregion(r);
                region t = traditionalregion();
                struct node *n = ralloc(s, struct node);
                n->up = null;
                n->v = -3;
                xs[0] = !(1 < 2);
                xs[1] = helper(xs[0], 4) % 3;
                xs[2] = xs[0] + xs[1] * 2 - 1 / 1;
                int i;
                for (i = 0; i < 3; i = i + 1) {
                    counter = counter + xs[i];
                    while (counter > 100) { counter = counter - 100; }
                }
                cache[2] = n;
                cache[2] = null;
                n = null;
                assert(counter >= 0);
                deleteregion(s);
                deleteregion(r);
                return counter;
            }
        "#;
    }

    #[test]
    fn printed_programs_recompile_and_run_identically() {
        use crate::interp::{prepare, run};
        use crate::RunConfig;
        let src = include_str!("../testdata/figure1.rc");
        let printed = print_ast(&parse(src).unwrap());
        let a = run(&prepare(src).unwrap(), &RunConfig::rc_inf());
        let b = run(&prepare(&printed).unwrap(), &RunConfig::rc_inf());
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.stats, b.stats);
    }
}
