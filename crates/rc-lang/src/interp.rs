//! The RC interpreter.
//!
//! Executes a checked [`Module`] against the `region-rt` substrate under a
//! [`RunConfig`]. This plays the role of the RC-to-C compiler plus the
//! compiled binary in the paper's setup: every heap pointer store goes
//! through the Figure 3 write barriers, `deletes` calls pin the regions of
//! live locals, and all dynamic events land in the shared
//! [`region_rt::Stats`] / virtual clock from which the evaluation's tables
//! and figures are computed.

use std::collections::{HashMap, HashSet};

use region_rt::{
    audit_all, Addr, EmuBackend, EmuRegionId, EmuRegions, Facet, FaultReport, Handoff, Heap,
    HeapConfig, PtrKind, RegionId, RtError, SchedEventKind, SchedLog, SchedRecorder, Shard, ShardId,
    SlotKind, SnapshotReason, Stats, TaskReport, TypeId, TypeLayout, WriteMode,
};
use rlang::SiteId;

use crate::ast::Qual;
use crate::config::{Backend, CheckMode, DeleteSemantics, OnFault, RunConfig, SchedMode};
use crate::hir::*;
use crate::liveness::{pin_sets, PinSets};
use crate::parallel::Gate;

/// A module prepared for execution: parsed, checked, analysed.
#[derive(Debug)]
pub struct Compiled {
    /// The typed module.
    pub module: Module,
    /// The rlang check-elimination analysis (used by the `inf` regime and
    /// by Table 3).
    pub analysis: rlang::Analysis,
    /// Per-function pin sets for the `deletes` protocol.
    pub pins: Vec<PinSets>,
}

/// Parses, checks and analyses an RC source file.
///
/// # Errors
///
/// Returns the first compile-time error.
pub fn prepare(src: &str) -> Result<Compiled, crate::CompileError> {
    let module = crate::compile(src)?;
    let analysis = crate::to_rlang::analyse_module(&module);
    let pins = module.funcs.iter().map(pin_sets).collect();
    Ok(Compiled { module, analysis, pins })
}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// `main` returned this exit code.
    Exit(i64),
    /// The program aborted on a runtime failure (failed annotation check,
    /// unsafe `deleteregion`, wild pointer, out-of-bounds index, …).
    Aborted(RtError),
    /// The program hit a runtime failure under
    /// [`OnFault::TrapAndUnwind`]: the fault was trapped, the region
    /// stack unwound, and the heap left audit-clean.
    Trapped(RtError),
    /// An `assert` failed.
    AssertFailed,
    /// The step budget was exhausted.
    StepLimit,
}

impl Outcome {
    /// Whether the run completed normally.
    pub fn is_exit(&self) -> bool {
        matches!(self, Outcome::Exit(_))
    }
}

/// The result of executing a module.
#[derive(Debug)]
pub struct RunResult {
    /// How the run ended.
    pub outcome: Outcome,
    /// Dynamic-event counters.
    pub stats: Stats,
    /// Total virtual time in charged instructions (includes the C@
    /// base-compiler factor when applicable).
    pub cycles: u64,
    /// Interpreter steps executed.
    pub steps: u64,
    /// Result of the final heap audit (`None` when auditing was off).
    pub audit: Option<Result<(), region_rt::AuditError>>,
    /// The telemetry tracer, when [`RunConfig::trace_mask`] was nonzero:
    /// recent raw events plus the folded [`region_rt::Profile`].
    pub tracer: Option<Box<region_rt::Tracer>>,
    /// Per-site check-outcome tallies, when
    /// [`RunConfig::count_checks`] was on: how often each annotated
    /// store's predicate ran and how often it would have fired.
    pub check_counts: Option<Box<region_rt::CheckCounter>>,
    /// The metrics timeline, when [`RunConfig::sample_interval`] was
    /// nonzero (and the `telemetry` feature is on): periodic heap
    /// snapshots plus one final forced sample at end of run.
    pub timeline: Option<Box<region_rt::Timeline>>,
    /// The harvested fault-injection report, when [`RunConfig::faults`]
    /// armed any plane: which faults fired, at which operation ordinals
    /// and virtual times.
    pub faults: Option<FaultReport>,
    /// The region-lifecycle span tree, when [`RunConfig::spans`] was on
    /// (and the `telemetry` feature is compiled in): one span per region
    /// with provenance-stamped alloc/RC/check annotations, already
    /// verified against the heap's region table (see
    /// [`region_rt::SpanTree::verification`]).
    pub spans: Option<Box<region_rt::SpanTree>>,
    /// Post-mortem heap snapshots, when [`RunConfig::snapshots`] was on:
    /// one per GC pause (reason `gc`), then either the pre-unwind trap
    /// snapshot (reason `trap`, for [`Outcome::Trapped`]) or the final
    /// heap state (reason `exit`), in capture order. Empty otherwise.
    /// Snapshots (like fault reports) cover the root task's heap only.
    pub snapshots: Vec<region_rt::HeapSnapshot>,
    /// One region-ownership handoff per `spawn`, in deterministic merge
    /// (DFS spawn) order — empty for programs without tasks. The
    /// telemetry above (`stats`, `cycles`, `steps`, `spans`, the traced
    /// profile, `timeline`, `check_counts`) is already the exact merge
    /// of the root task and every shard in this order, so it is
    /// byte-identical across schedulers and seeds.
    pub handoffs: Vec<Handoff>,
    /// Each task's un-merged observability facet (root first, then
    /// shards in DFS order), for programs that spawned: per-task
    /// `Stats`/cycles/steps, the typed scheduler-event log on the shared
    /// virtual clock, and — when sampling/tracing were on — the task's
    /// own timeline and trace. The merged telemetry above is exactly the
    /// in-order fold of these. Empty for programs without tasks.
    pub task_reports: Vec<TaskReport>,
}

impl RunResult {
    /// The folded telemetry profile, when tracing was enabled.
    pub fn profile(&self) -> Option<&region_rt::Profile> {
        self.tracer.as_ref().map(|t| t.profile())
    }
}

/// Executes a compiled module under a configuration.
pub fn run(c: &Compiled, config: &RunConfig) -> RunResult {
    run_opts(c, config, false)
}

/// As [`run`], additionally auditing the heap's reference-count invariant
/// at the end (used by the test suite).
pub fn run_audited(c: &Compiled, config: &RunConfig) -> RunResult {
    run_opts(c, config, true)
}

fn run_opts(c: &Compiled, config: &RunConfig, audit: bool) -> RunResult {
    // The tree-walking interpreter nests several host frames per RC frame;
    // deep RC recursion (parse trees, list walks) needs more than a test
    // thread's default 2 MB. Run on a dedicated big-stack thread. The
    // same scope hosts task threads under the deterministic and
    // real-thread schedulers, so every spawned task is joined before the
    // result leaves this function.
    std::thread::scope(|s| {
        let handle = std::thread::Builder::new()
            .name("rc-interp".into())
            .stack_size(256 * 1024 * 1024)
            .spawn_scoped(s, || run_on_this_stack(c, config, audit, Some(s)))
            .expect("spawning the interpreter thread");
        match handle.join() {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    })
}

fn run_on_this_stack<'c, 'scope, 'env>(
    c: &'c Compiled,
    config: &'c RunConfig,
    audit: bool,
    scope: Option<&'scope std::thread::Scope<'scope, 'env>>,
) -> RunResult
where
    'c: 'scope,
{
    let mut interp = Interp::new(c, config);
    interp.scope = scope;
    interp.gate = Gate::root(config.sched);
    interp.gate.start();
    if interp.gate.is_threads() {
        interp.sched.stamp(0, SchedEventKind::SemaAdmit);
    }
    interp.sched.stamp(0, SchedEventKind::TaskStart);
    let outcome = interp.run_main();
    // A program may end (or abort) with tasks still outstanding; join
    // them here so every shard is collected and no task thread outlives
    // the run. The root's own failure wins; otherwise the
    // earliest-spawned failed task decides the outcome, exactly as an
    // explicit `join` would have.
    let outcome = match interp.join_children() {
        Ok(()) => outcome,
        Err(h) if outcome.is_exit() => halt_outcome(h),
        Err(_) => outcome,
    };
    interp.gate.finish();
    // Stamp the merge ordinals now that the shard list is final (shard
    // ids are DFS positions fixed by program order, not by timing).
    for (i, s) in interp.shards.iter_mut().enumerate() {
        debug_assert_eq!(s.id.0 as usize, i + 1, "DFS renumbering is dense");
        s.handoff.seq = i as u64;
    }
    let handoffs: Vec<Handoff> = interp.shards.iter().map(|s| s.handoff).collect();
    // Harvest the fault arms before any recovery work so the unwind
    // itself is injection-free (a sticky arm would otherwise fail the
    // very operations that tear the heap down).
    let faults = interp.heap.take_faults();
    let outcome = match outcome {
        Outcome::Aborted(e) if config.on_fault == OnFault::TrapAndUnwind => {
            // Dump the pre-unwind heap: the trap snapshot shows the state
            // the fault left behind, not the cleaned-up aftermath.
            if config.snapshots {
                interp.snapshots.push(interp.heap.snapshot(SnapshotReason::Trap));
            }
            interp.unwind_after_fault();
            Outcome::Trapped(e)
        }
        o => o,
    };
    // The post-join cleanliness gate: the root heap and every shard must
    // be independently audit-clean (isolation means no shard can excuse
    // another).
    let audit = audit.then(|| audit_all(&interp.heap, &interp.shards).map_err(|(_, e)| e));
    if let Some(res) = &audit {
        interp.heap.record_audit_run(res.is_ok());
    }
    // `base_ops` already includes every joined task's contribution, so
    // the C@ base-compiler factor covers the whole task tree.
    let base_extra = if config.backend == Backend::CAt {
        interp.base_ops * (config.costs.cat_base_factor_pct.saturating_sub(100)) / 100
    } else {
        0
    };
    // One last forced sample so the timeline always covers the run's end
    // state (no-op when sampling is off).
    interp.heap.sample_now();
    // Verify the span tree against the heap's region table and stamp the
    // outcome into it (no-op when spans are off).
    let _ = interp.heap.seal_spans();
    // The exit snapshot is captured after sealing so its span-derived
    // aggregates are final; trapped runs keep the trap snapshot as their
    // last word instead (the post-unwind heap is empty by construction).
    if config.snapshots && !matches!(outcome, Outcome::Trapped(_)) {
        interp.snapshots.push(interp.heap.snapshot(SnapshotReason::Exit));
    }
    // Seal the root's scheduler log (the final `task_end` stamp) and
    // preserve every task's un-merged observability facet before the
    // destructive fold below. Spawn-free runs skip all of it.
    let root_sched =
        std::mem::replace(&mut interp.sched, SchedRecorder::root()).finish(interp.heap.clock.cycles());
    let mut task_reports: Vec<TaskReport> = Vec::new();
    if !interp.shards.is_empty() {
        task_reports.push(TaskReport {
            id: ShardId::ROOT,
            parent: ShardId::ROOT,
            seq: 0,
            region: RegionId(0),
            spawn_site: 0,
            cycles: interp.heap.clock.cycles(),
            steps: interp.steps,
            stats: interp.heap.stats.clone(),
            sched: root_sched,
            timeline: None, // patched from the root's taken instruments below
            tracer: None,
        });
        for s in &interp.shards {
            task_reports.push(TaskReport {
                id: s.id,
                parent: s.handoff.from,
                seq: s.handoff.seq,
                region: s.handoff.region,
                spawn_site: s.spawn_site,
                cycles: s.heap.clock.cycles(),
                steps: s.steps,
                stats: s.heap.stats.clone(),
                sched: s.sched.clone(),
                timeline: s.timeline.clone(),
                tracer: s.tracer.clone(),
            });
        }
    }
    // Fold every shard into the global report in `Handoff::seq` order.
    // Every merge below is exact and associative, so the report is
    // byte-identical across schedulers, worker counts and seeds.
    let mut stats = interp.heap.stats.clone();
    let mut cycles = interp.heap.clock.cycles() + base_extra;
    let mut steps = interp.steps;
    let mut spans = interp.heap.take_spans();
    let mut tracer = interp.heap.take_tracer();
    let mut timeline = interp.heap.take_timeline();
    let mut check_counts = interp.heap.take_check_counter();
    if let Some(root) = task_reports.first_mut() {
        root.timeline = timeline.clone();
        root.tracer = tracer.clone();
    }
    for s in &mut interp.shards {
        stats = stats.merge(&s.heap.stats);
        cycles += s.heap.clock.cycles();
        steps += s.steps;
        if let Some(sh) = s.spans.take() {
            match &mut spans {
                Some(sp) => sp.merge(&sh),
                None => spans = Some(sh),
            }
        }
        if let Some(st) = s.tracer.take() {
            match &mut tracer {
                Some(t) => {
                    let off = t.profile().max_region();
                    t.absorb_profile(&st, off);
                }
                None => tracer = Some(st),
            }
        }
        if let Some(stl) = s.timeline.take() {
            match &mut timeline {
                Some(tl) => tl.merge(&stl),
                None => timeline = Some(stl),
            }
        }
        if let Some(sc) = s.heap.take_check_counter() {
            match &mut check_counts {
                Some(cc) => cc.merge(&sc),
                None => check_counts = Some(sc),
            }
        }
    }
    RunResult {
        outcome,
        cycles,
        stats,
        steps,
        audit,
        tracer,
        check_counts,
        timeline,
        faults,
        spans,
        snapshots: interp.snapshots,
        handoffs,
        task_reports,
    }
}

fn halt_outcome(h: Halt) -> Outcome {
    match h {
        Halt::Abort(e) => Outcome::Aborted(e),
        Halt::AssertFailed => Outcome::AssertFailed,
        Halt::StepLimit => Outcome::StepLimit,
    }
}

/// A runtime value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Value {
    Int(i64),
    Ptr(Addr),
    Region(Addr), // region descriptor address (NULL = null handle)
}

impl Value {
    fn default_of(ty: RcType) -> Value {
        match ty {
            RcType::Int => Value::Int(0),
            RcType::Region => Value::Region(Addr::NULL),
            _ => Value::Ptr(Addr::NULL),
        }
    }

    fn truthy(self) -> bool {
        match self {
            Value::Int(n) => n != 0,
            Value::Ptr(a) | Value::Region(a) => !a.is_null(),
        }
    }

    fn raw(self) -> u64 {
        match self {
            Value::Int(n) => n as u64,
            Value::Ptr(a) | Value::Region(a) => a.raw(),
        }
    }

    fn from_raw(ty: RcType, raw: u64) -> Value {
        match ty {
            RcType::Int => Value::Int(raw as i64),
            RcType::Region => Value::Region(Addr::from_raw(raw)),
            _ => Value::Ptr(Addr::from_raw(raw)),
        }
    }

    fn addr(self) -> Addr {
        match self {
            Value::Int(_) => Addr::NULL,
            Value::Ptr(a) | Value::Region(a) => a,
        }
    }
}

/// Early exit from evaluation.
#[derive(Debug)]
enum Halt {
    Abort(RtError),
    AssertFailed,
    StepLimit,
}

enum Flow {
    Normal,
    Return(Value),
}

/// What a region descriptor designates.
#[derive(Debug, Clone, Copy)]
enum RtRegion {
    Real(RegionId),
    Emu(EmuRegionId),
}

struct Frame {
    vals: Vec<Value>,
    /// Base addresses of array locals (`None` for scalars).
    arrays: Vec<Option<Addr>>,
}

/// What a finished task hands back to its parent: how the body ended
/// (`None` = clean), its shard subtree — own shard first, then nested
/// tasks' shards in DFS order, with ids local to this task — and the
/// charged base operations (for the C@ base-compiler factor).
struct TaskDone {
    halt: Option<Halt>,
    shards: Vec<Shard>,
    base_ops: u64,
}

enum TaskState<'scope> {
    /// Already ran, at the spawn point (inline scheduler).
    Done(TaskDone),
    /// Running on a scoped thread (deterministic or thread scheduler).
    Running(std::thread::ScopedJoinHandle<'scope, TaskDone>),
}

/// An outstanding spawned task, from the parent's side.
struct ChildTask<'scope> {
    /// Parent-space descriptor of the moved region (answers
    /// [`RtError::RegionMoved`] until the join).
    region_desc: Addr,
    /// Parent-space region number, recorded in the [`Handoff`].
    region_id: RegionId,
    /// The child's scheduler id ([`Gate::task_id`]) — the `join` wait
    /// set under the deterministic baton.
    sched_id: usize,
    state: TaskState<'scope>,
}

struct Interp<'c, 'scope, 'env> {
    c: &'c Compiled,
    config: &'c RunConfig,
    heap: Heap,
    emu: Option<EmuRegions>,
    /// Per-struct type layouts (plus the int-cell type at the end).
    layouts: Vec<TypeId>,
    int_cell: TypeId,
    desc_ty: TypeId,
    /// Region descriptors.
    desc_map: HashMap<Addr, RtRegion>,
    desc_of_real: Vec<Addr>,
    /// Owner of each emu allocation (for `regionof` under lea/GC).
    emu_owner: HashMap<Addr, Addr>, // object -> descriptor
    /// The globals block.
    globals_obj: Addr,
    /// Base address and length of each global array.
    global_arrays: Vec<Option<(Addr, u32)>>,
    /// Cache of stack-array layouts.
    stack_types: HashMap<(String, u8), TypeId>,
    /// Descriptor for the traditional region (`traditionalregion()`).
    trad_desc: Addr,
    frames: Vec<Frame>,
    steps: u64,
    base_ops: u64,
    /// First fault hit while building the startup image (globals block,
    /// global arrays, the traditional descriptor): reported from
    /// `run_main` before any user code runs.
    startup_fault: Option<RtError>,
    /// Cached `trace_mask != 0 || sample_interval != 0`, so site
    /// attribution costs one local branch on the hot paths when both
    /// tracing and sampling are off. Timeline samples reuse the trace
    /// site, which is how snapshots align with source `file:line` phases.
    observing: bool,
    /// Heap snapshots accumulated during the run (GC pauses, then the
    /// trap or exit capture); empty unless [`RunConfig::snapshots`].
    snapshots: Vec<region_rt::HeapSnapshot>,
    /// Host-thread scope task threads spawn on (`None` ⇒ tasks always
    /// run inline, whatever the configured scheduler).
    scope: Option<&'scope std::thread::Scope<'scope, 'env>>,
    /// This task's scheduler handle (one [`Gate::tick`] per step).
    gate: Gate,
    /// This task's scheduler-event recorder on the run's shared virtual
    /// clock (`run_task` installs a child recorder for spawned tasks).
    sched: SchedRecorder,
    /// The sealed scheduler log, when `run_task` already stamped
    /// `task_end` *before* releasing the gate — sealing after release
    /// would race the next baton-holder's stamps on the shared clock
    /// and break per-seed determinism.
    sealed_sched: Option<SchedLog>,
    /// Source line of the `spawn` that created this task (0 at root).
    spawn_site: u32,
    /// Descriptors of regions currently handed off to running tasks;
    /// every handle-level touch answers [`RtError::RegionMoved`] until
    /// the join returns ownership.
    moved: HashSet<Addr>,
    /// Outstanding tasks spawned by this task, in spawn order.
    children: Vec<ChildTask<'scope>>,
    /// Collected shards, in deterministic DFS order, ids local to this
    /// task (this task = 0, shards 1..; a parent offsets them on join).
    shards: Vec<Shard>,
    /// The facet region this task was handed (tasks only; NULL at root).
    facet_desc: Addr,
    /// The facet as the runtime sees it (tasks only).
    facet: Option<Facet>,
    /// Whether this task deleted its facet region (the parent then
    /// deletes the original at join instead of reclaiming it).
    facet_dead: bool,
}

impl<'c, 'scope, 'env> Interp<'c, 'scope, 'env>
where
    'c: 'scope,
{
    fn new(c: &'c Compiled, config: &'c RunConfig) -> Interp<'c, 'scope, 'env> {
        let rc_enabled = matches!(config.backend, Backend::Rc | Backend::CAt);
        let delete_policy = match config.delete_semantics {
            DeleteSemantics::Deferred => region_rt::DeletePolicy::Deferred,
            _ => region_rt::DeletePolicy::Abort,
        };
        let mut heap = Heap::new(HeapConfig {
            page_budget: config.page_budget,
            rc_enabled,
            costs: config.costs.clone(),
            gc_threshold_words: config.gc_threshold_words,
            delete_policy,
            numbering: config.numbering,
        });
        if config.trace_mask != 0 {
            heap.enable_tracing(config.trace_mask, config.trace_capacity);
        }
        if config.sample_interval != 0 {
            heap.enable_sampling(config.sample_interval, config.sample_cap);
        }
        if config.count_checks {
            heap.enable_check_counting();
        }
        if config.spans {
            heap.enable_spans(region_rt::DEFAULT_SPAN_NOTE_CAP);
        }
        // Arm the fault planes before the startup allocations so those are
        // fault-eligible too (reported via `startup_fault`, not a panic).
        if !config.faults.is_empty() {
            heap.install_faults(&config.faults);
        }
        let mut startup_fault = None;

        // Annotations are ignored in the layouts of nq and C@: every
        // pointer is a counted pointer (so fewer objects qualify for the
        // pointerfree allocator, and the delete-time scan grows).
        let quals_ignored =
            config.backend == Backend::CAt || config.checks == CheckMode::Nq;
        let eff = |q: Qual| -> PtrKind {
            if quals_ignored {
                return PtrKind::Counted;
            }
            match q {
                Qual::None => PtrKind::Counted,
                Qual::SameRegion => PtrKind::SameRegion,
                Qual::ParentPtr => PtrKind::ParentPtr,
                Qual::Traditional => PtrKind::Traditional,
            }
        };
        let slot_of = |ty: RcType| -> SlotKind {
            match ty {
                RcType::Int => SlotKind::Data,
                // Region handles are unannotated `struct region *` values
                // pointing at descriptors in the traditional region.
                RcType::Region => SlotKind::Ptr(eff(Qual::None)),
                RcType::Ptr { qual, .. } => SlotKind::Ptr(eff(qual)),
                RcType::IntPtr(qual) => SlotKind::Ptr(eff(qual)),
            }
        };

        let mut layouts = Vec::new();
        for s in &c.module.structs {
            let slots = s.fields.iter().map(|f| slot_of(f.ty)).collect();
            layouts.push(heap.register_type(TypeLayout::new(s.name.clone(), slots)));
        }
        let int_cell = heap.register_type(TypeLayout::data("__int_cell", 1));
        let desc_ty = heap.register_type(TypeLayout::data("__region_desc", 1));

        // The globals block lives in the malloc heap (the traditional
        // region), one slot per scalar global.
        let gslots: Vec<SlotKind> = c
            .module
            .globals
            .iter()
            .map(|g| if g.array_len.is_some() { SlotKind::Data } else { slot_of(g.ty) })
            .collect();
        let globals_ty = heap.register_type(TypeLayout::new(
            "__globals",
            if gslots.is_empty() { vec![SlotKind::Data] } else { gslots },
        ));
        let globals_obj = startup_alloc(&mut heap, &mut startup_fault, globals_ty);

        // Global arrays are separate traditional-region objects.
        let mut global_arrays = Vec::new();
        for g in &c.module.globals {
            match g.array_len {
                None => global_arrays.push(None),
                Some(n) => {
                    let ty = heap.register_type(TypeLayout::new(
                        format!("__garr_{}", g.name),
                        vec![slot_of(g.ty); n as usize],
                    ));
                    let addr = startup_alloc(&mut heap, &mut startup_fault, ty);
                    global_arrays.push(Some((addr, n)));
                }
            }
        }

        let mut emu = match config.backend {
            Backend::Lea => Some(EmuRegions::new(EmuBackend::MallocFree)),
            Backend::Gc => Some(EmuRegions::new(EmuBackend::Gc)),
            _ => None,
        };

        // Pre-create the traditional-region descriptor. Under the emu
        // backends it is a reserved, never-deleted emulated region (the
        // malloc heap of the original programs).
        let trad_desc = startup_alloc(&mut heap, &mut startup_fault, desc_ty);
        let trad_rt = match &mut emu {
            Some(e) => RtRegion::Emu(e.new_region()),
            None => RtRegion::Real(region_rt::TRADITIONAL),
        };
        let mut desc_map = HashMap::new();
        desc_map.insert(trad_desc, trad_rt);
        let desc_of_real = match trad_rt {
            RtRegion::Real(_) => vec![trad_desc],
            RtRegion::Emu(_) => Vec::new(),
        };

        Interp {
            c,
            config,
            heap,
            emu,
            layouts,
            int_cell,
            desc_ty,
            desc_map,
            desc_of_real,
            emu_owner: HashMap::new(),
            globals_obj,
            global_arrays,
            stack_types: HashMap::new(),
            trad_desc,
            frames: Vec::new(),
            steps: 0,
            base_ops: 0,
            startup_fault,
            observing: config.trace_mask != 0
                || config.sample_interval != 0
                || config.spans
                || config.snapshots,
            snapshots: Vec::new(),
            scope: None,
            gate: Gate::Inline,
            sched: SchedRecorder::root(),
            sealed_sched: None,
            spawn_site: 0,
            moved: HashSet::new(),
            children: Vec::new(),
            shards: Vec::new(),
            facet_desc: Addr::NULL,
            facet: None,
            facet_dead: false,
        }
    }

    fn run_main(&mut self) -> Outcome {
        if let Some(e) = self.startup_fault.take() {
            return Outcome::Aborted(e);
        }
        match self.call(self.c.module.main, Vec::new()) {
            Ok(v) => match v {
                Value::Int(n) => Outcome::Exit(n),
                _ => Outcome::Exit(0),
            },
            Err(h) => halt_outcome(h),
        }
    }

    fn step(&mut self) -> Result<(), Halt> {
        self.steps += 1;
        self.base_ops += 1;
        self.heap.clock.charge(self.config.costs.base_op);
        // Drive the timeline sampler from the step counter so snapshots
        // land at regular points in program execution even when the
        // runtime is idle (one branch when sampling is off).
        self.heap.sample_tick();
        // The deterministic scheduler's preemption point: every step
        // burns one slice unit; an expired slice passes the baton (a
        // no-op branch under the inline and thread schedulers), with
        // release/acquire events stamped around the pass so the
        // scheduler log shows every slice boundary.
        if let Some(ran) = self.gate.tick() {
            self.sched.stamp(self.heap.clock.cycles(), SchedEventKind::BatonRelease { ran });
            let slice = self.gate.yield_now();
            self.sched.stamp(self.heap.clock.cycles(), SchedEventKind::BatonAcquire { slice });
        }
        if self.config.step_limit != 0 && self.steps > self.config.step_limit {
            return Err(Halt::StepLimit);
        }
        Ok(())
    }

    fn func(&self, f: FuncRef) -> &'c HFunc {
        &self.c.module.funcs[f.0 as usize]
    }

    fn call(&mut self, f: FuncRef, args: Vec<Value>) -> Result<Value, Halt> {
        let func = self.func(f);
        let nvars = func.var_count();
        let mut frame = Frame { vals: Vec::with_capacity(nvars), arrays: vec![None; nvars] };
        for (i, p) in func.params.iter().enumerate() {
            frame.vals.push(args.get(i).copied().unwrap_or(Value::default_of(p.ty)));
        }
        for l in &func.locals {
            frame.vals.push(Value::default_of(l.ty));
        }
        // Allocate stack arrays in the traditional region.
        for (i, v) in func.params.iter().chain(func.locals.iter()).enumerate() {
            if let Some(n) = v.array_len {
                let ty = self.stack_array_type(f, i as u32, v, n);
                let addr = self.heap.m_alloc(ty, 1).map_err(Halt::Abort)?;
                frame.arrays[i] = Some(addr);
            }
        }
        self.frames.push(frame);
        if self.frames.len() > 2_000 {
            self.frames.pop();
            return Err(Halt::Abort(RtError::OutOfMemory));
        }

        let mut result = Ok(Value::Int(0));
        match self.exec_block(f, &func.body) {
            Ok(Flow::Normal) => {}
            Ok(Flow::Return(v)) => result = Ok(v),
            Err(h) => result = Err(h),
        }

        // Free stack arrays.
        let frame = self.frames.pop().expect("frame pushed above");
        for a in frame.arrays.into_iter().flatten() {
            // Ignore errors during unwinding: the halt outcome wins.
            let _ = self.heap.m_free(a);
        }
        result
    }

    /// Registers (once per function/var) the layout for a stack array.
    fn stack_array_type(&mut self, _f: FuncRef, _v: u32, var: &HVar, n: u32) -> TypeId {
        // Cache layouts so repeated calls do not bloat the type table.
        let key_name = format!("__stk_{}_{}", var.name, n);
        let slot = match var.ty {
            RcType::Int => SlotKind::Data,
            RcType::Region => SlotKind::Ptr(self.effective_kind(Qual::None)),
            RcType::Ptr { qual, .. } | RcType::IntPtr(qual) => {
                SlotKind::Ptr(self.effective_kind(qual))
            }
        };
        let key = (key_name.clone(), slot_tag(slot));
        if let Some(id) = self.stack_types.get(&key) {
            return *id;
        }
        let id = self
            .heap
            .register_type(TypeLayout::new(key_name, vec![slot; n as usize]));
        self.stack_types.insert(key, id);
        id
    }

    fn effective_kind(&self, q: Qual) -> PtrKind {
        let quals_ignored =
            self.config.backend == Backend::CAt || self.config.checks == CheckMode::Nq;
        if quals_ignored {
            return PtrKind::Counted;
        }
        match q {
            Qual::None => PtrKind::Counted,
            Qual::SameRegion => PtrKind::SameRegion,
            Qual::ParentPtr => PtrKind::ParentPtr,
            Qual::Traditional => PtrKind::Traditional,
        }
    }

    fn exec_block(&mut self, f: FuncRef, stmts: &'c [HStmt]) -> Result<Flow, Halt> {
        for s in stmts {
            match self.exec_stmt(f, s)? {
                Flow::Normal => {}
                r @ Flow::Return(_) => return Ok(r),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, f: FuncRef, s: &'c HStmt) -> Result<Flow, Halt> {
        self.step()?;
        match s {
            HStmt::Expr(e) => {
                self.eval(f, e)?;
                Ok(Flow::Normal)
            }
            HStmt::Return(e) => {
                let v = match e {
                    None => Value::Int(0),
                    Some(e) => self.eval(f, e)?,
                };
                Ok(Flow::Return(v))
            }
            HStmt::If(c, a, b) => {
                let cv = self.eval(f, c)?;
                if cv.truthy() {
                    self.exec_block(f, a)
                } else {
                    self.exec_block(f, b)
                }
            }
            HStmt::While(c, body) => {
                loop {
                    let cv = self.eval(f, c)?;
                    if !cv.truthy() {
                        break;
                    }
                    match self.exec_block(f, body)? {
                        Flow::Normal => {}
                        r @ Flow::Return(_) => return Ok(r),
                    }
                    self.step()?;
                }
                Ok(Flow::Normal)
            }
            HStmt::Spawn { rvar, body, line } => self.exec_spawn(f, *rvar, body, *line),
            HStmt::Join => {
                self.join_children()?;
                Ok(Flow::Normal)
            }
        }
    }

    /// `spawn r { ... }`: moves `r`'s region to a new task and launches
    /// the body against a fresh heap shard. Under the inline scheduler
    /// the body runs to completion right here; under the deterministic
    /// and thread schedulers it runs on a scoped thread, admitted by
    /// this task's [`Gate`] family. Either way the task's effects reach
    /// the parent only at join, as a [`Shard`].
    fn exec_spawn(
        &mut self,
        f: FuncRef,
        rvar: VarRef,
        body: &'c [HStmt],
        line: u32,
    ) -> Result<Flow, Halt> {
        self.set_site(line);
        let rv = self.frame().vals[rvar.0 as usize];
        // Null, dangling and already-moved handles all refuse here, with
        // the same error in every scheduler mode.
        let rt = self.resolve_region(rv)?;
        let desc = rv.addr();
        if desc == self.trad_desc {
            // The traditional region backs the globals block and every
            // activation's stack arrays; it cannot be handed off.
            return Err(Halt::Abort(RtError::WildPointer { addr: desc }));
        }
        let region_id = region_number(rt);
        self.moved.insert(desc);
        let captured = self.capture_frame(f, rvar);
        let gate = if self.scope.is_none() { Gate::Inline } else { self.gate.child() };
        let sched_id = gate.task_id();
        // Stamp the spawn before launching so the child recorder is born
        // at (and its start waits are measured from) the spawn point.
        self.heap.stats.sched_spawns += 1;
        let nth = self.sched.spawns() as u32;
        self.sched.stamp(self.heap.clock.cycles(), SchedEventKind::Spawn { nth });
        let sched = self.sched.child();
        let c = self.c;
        let config = self.config;
        let state = match (config.sched, self.scope) {
            (SchedMode::Inline, _) | (_, None) => TaskState::Done(run_task(
                c, config, f, body, captured, rvar, gate, sched, line, self.scope,
            )),
            (_, Some(s)) => {
                let handle = std::thread::Builder::new()
                    .name("rc-task".into())
                    .stack_size(64 * 1024 * 1024)
                    .spawn_scoped(s, move || {
                        run_task(c, config, f, body, captured, rvar, gate, sched, line, Some(s))
                    })
                    .expect("spawning a task thread");
                TaskState::Running(handle)
            }
        };
        self.children.push(ChildTask { region_desc: desc, region_id, sched_id, state });
        Ok(Flow::Normal)
    }

    /// Builds the value snapshot a task starts from: int scalars are
    /// copied, the spawned region variable is a placeholder the task
    /// replaces with its facet handle, and every other slot is nulled —
    /// sema guarantees the body never reads those.
    fn capture_frame(&self, f: FuncRef, rvar: VarRef) -> Vec<Value> {
        let func = self.func(f);
        let frame = self.frame();
        (0..func.var_count())
            .map(|i| {
                let v = VarRef(i as u32);
                let hv = func.var(v);
                if v == rvar {
                    Value::Region(Addr::NULL)
                } else if hv.ty == RcType::Int && hv.array_len.is_none() {
                    frame.vals[i]
                } else {
                    Value::default_of(hv.ty)
                }
            })
            .collect()
    }

    /// `join;` (and the implicit join at a body's or the program's end):
    /// waits for every outstanding task, returns region ownership to
    /// this task, and absorbs the tasks' shards in spawn order. The
    /// earliest-spawned failure propagates; region returns happen for
    /// all children regardless, so telemetry and audits stay complete.
    fn join_children(&mut self) -> Result<(), Halt> {
        if self.children.is_empty() {
            return Ok(());
        }
        let children = std::mem::take(&mut self.children);
        let any_running = children.iter().any(|ch| matches!(ch.state, TaskState::Running(_)));
        // The join is a program point in every mode; the wait bracket is
        // stamped even when nothing actually blocks (inline) so event
        // pairing is schedule-invariant.
        self.heap.stats.sched_joins += 1;
        self.sched.stamp(
            self.heap.clock.cycles(),
            SchedEventKind::JoinWaitBegin { pending: children.len() as u32 },
        );
        // Hand our turn/permit back while blocked in OS joins so the
        // children we are waiting on can actually run.
        if any_running {
            if self.gate.is_threads() {
                self.sched.stamp(self.heap.clock.cycles(), SchedEventKind::SemaBlock);
            }
            let waiting_on: Vec<usize> = children
                .iter()
                .filter(|ch| matches!(ch.state, TaskState::Running(_)))
                .map(|ch| ch.sched_id)
                .collect();
            self.gate.begin_wait(&waiting_on);
        }
        let collected: Vec<(Addr, RegionId, TaskDone)> = children
            .into_iter()
            .map(|ch| {
                let done = match ch.state {
                    TaskState::Done(d) => d,
                    TaskState::Running(h) => match h.join() {
                        Ok(d) => d,
                        Err(payload) => std::panic::resume_unwind(payload),
                    },
                };
                (ch.region_desc, ch.region_id, done)
            })
            .collect();
        if any_running {
            self.gate.end_wait();
            if self.gate.is_threads() {
                self.sched.stamp(self.heap.clock.cycles(), SchedEventKind::SemaAdmit);
            }
        }
        self.sched.stamp(self.heap.clock.cycles(), SchedEventKind::JoinWaitEnd);
        let mut first_halt: Option<Halt> = None;
        let mut dead_regions: Vec<Addr> = Vec::new();
        for (desc, region_id, done) in collected {
            self.moved.remove(&desc);
            self.base_ops += done.base_ops;
            let facet_dead = done.shards.first().is_some_and(|s| s.facet_dead);
            absorb_child_shards(&mut self.shards, done.shards, region_id);
            if let Some(h) = done.halt {
                if first_halt.is_none() {
                    first_halt = Some(h);
                }
            } else if facet_dead {
                dead_regions.push(desc);
            }
        }
        // A task that deleted its facet semantically deleted the whole
        // moved region: mirror that on the original now that ownership
        // is back (under `Fail` semantics an unsafe mirror delete is
        // skipped, exactly like a failing `deleteregion`).
        if first_halt.is_none() {
            for desc in dead_regions {
                if let Err(h) = self.delete_region(Value::Region(desc)) {
                    if self.config.delete_semantics == DeleteSemantics::Fail
                        && matches!(
                            h,
                            Halt::Abort(
                                RtError::DeleteWithLiveRefs { .. }
                                    | RtError::DeleteWithSubregions { .. }
                            )
                        )
                    {
                        continue;
                    }
                    first_halt = Some(h);
                    break;
                }
            }
        }
        match first_halt {
            None => Ok(()),
            Some(h) => Err(h),
        }
    }

    /// Finalizes a finished task into its [`TaskDone`]: one shard for
    /// this task's own heap, then the already-collected nested shards.
    fn into_task_done(mut self, halt: Option<Halt>) -> TaskDone {
        self.heap.sample_now();
        let _ = self.heap.seal_spans();
        let spans = self.heap.take_spans();
        let tracer = self.heap.take_tracer();
        let timeline = self.heap.take_timeline();
        let facet = self.facet.unwrap_or(Facet::Real(RegionId(0)));
        // Seal the scheduler log: the task's final cycle count becomes
        // its `task_end` stamp. `run_task` seals before releasing the
        // gate (see `sealed_sched`); inline tasks seal here.
        let sched = match self.sealed_sched.take() {
            Some(s) => s,
            None => self.sched.finish(self.heap.clock.cycles()),
        };
        let mut shards = Vec::with_capacity(1 + self.shards.len());
        shards.push(Shard {
            id: ShardId(0),
            handoff: Handoff {
                seq: 0,
                from: ShardId(0),
                to: ShardId(0),
                region: RegionId(0),
            },
            heap: Box::new(self.heap),
            emu: self.emu,
            facet,
            facet_dead: self.facet_dead,
            spans,
            tracer,
            timeline,
            steps: self.steps,
            sched,
            spawn_site: self.spawn_site,
        });
        shards.append(&mut self.shards);
        TaskDone { halt, shards, base_ops: self.base_ops }
    }

    fn frame(&self) -> &Frame {
        self.frames.last().expect("executing inside a frame")
    }

    fn frame_mut(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("executing inside a frame")
    }

    fn eval(&mut self, f: FuncRef, e: &HExpr) -> Result<Value, Halt> {
        self.step()?;
        match e {
            HExpr::Int(n) => Ok(Value::Int(*n)),
            HExpr::Null(ty) => Ok(Value::default_of(*ty)),
            HExpr::ReadLocal(v) => Ok(self.frame().vals[v.0 as usize]),
            HExpr::ReadGlobal(g) => {
                let ty = self.c.module.global(*g).ty;
                let raw = self
                    .heap
                    .read_word(self.globals_obj, g.0 as usize)
                    .map_err(Halt::Abort)?;
                Ok(Value::from_raw(ty, raw))
            }
            HExpr::AssignLocal { v, val } => {
                let value = self.eval(f, val)?;
                self.heap.stats.assigns_local += 1;
                self.frame_mut().vals[v.0 as usize] = value;
                Ok(value)
            }
            HExpr::AssignGlobal { g, val, site } => {
                let value = self.eval(f, val)?;
                let ty = self.c.module.global(*g).ty;
                self.write_slot(self.globals_obj, g.0 as usize, value, ty, *site)?;
                Ok(value)
            }
            HExpr::ReadField { obj, s, field } => {
                let o = self.eval(f, obj)?;
                let addr = self.nonnull(o)?;
                let fty = self.c.module.struct_def(*s).fields[*field as usize].ty;
                let raw = self.heap.read_word(addr, *field as usize).map_err(Halt::Abort)?;
                Ok(Value::from_raw(fty, raw))
            }
            HExpr::AssignField { obj, s, field, val, site } => {
                let o = self.eval(f, obj)?;
                let addr = self.nonnull(o)?;
                let value = self.eval(f, val)?;
                let fty = self.c.module.struct_def(*s).fields[*field as usize].ty;
                self.write_slot(addr, *field as usize, value, fty, *site)?;
                Ok(value)
            }
            HExpr::ReadArraySlot { base, idx, elem } => {
                let (addr, len) = self.array_base(f, *base)?;
                let i = self.index_in(f, idx, len)?;
                let raw = self.heap.read_word(addr, i).map_err(Halt::Abort)?;
                Ok(Value::from_raw(*elem, raw))
            }
            HExpr::AssignArraySlot { base, idx, val, elem, site } => {
                let (addr, len) = self.array_base(f, *base)?;
                let i = self.index_in(f, idx, len)?;
                let value = self.eval(f, val)?;
                self.write_slot(addr, i, value, *elem, *site)?;
                Ok(value)
            }
            HExpr::PtrElem { ptr, idx, s } => {
                let p = self.eval(f, ptr)?;
                let addr = self.nonnull(p)?;
                let i = self.eval_int(f, idx)?;
                if i < 0 {
                    return Err(Halt::Abort(RtError::WildPointer { addr }));
                }
                let size = self.c.module.struct_def(*s).fields.len().max(1);
                Ok(Value::Ptr(addr.offset(i as usize * size)))
            }
            HExpr::ReadIntElem { ptr, idx } => {
                let p = self.eval(f, ptr)?;
                let addr = self.nonnull(p)?;
                let i = self.eval_int(f, idx)?;
                if i < 0 {
                    return Err(Halt::Abort(RtError::WildPointer { addr }));
                }
                let raw = self.heap.read_word(addr, i as usize).map_err(Halt::Abort)?;
                Ok(Value::Int(raw as i64))
            }
            HExpr::AssignIntElem { ptr, idx, val } => {
                let p = self.eval(f, ptr)?;
                let addr = self.nonnull(p)?;
                let i = self.eval_int(f, idx)?;
                if i < 0 {
                    return Err(Halt::Abort(RtError::WildPointer { addr }));
                }
                let value = self.eval(f, val)?;
                self.heap.write_int(addr, i as usize, value.raw()).map_err(Halt::Abort)?;
                Ok(value)
            }
            HExpr::Bin(op, l, r) => self.eval_bin(f, *op, l, r),
            HExpr::Un(op, inner) => {
                let v = self.eval(f, inner)?;
                Ok(match op {
                    crate::ast::UnOp::Neg => match v {
                        Value::Int(n) => Value::Int(n.wrapping_neg()),
                        _ => Value::Int(0),
                    },
                    crate::ast::UnOp::Not => Value::Int(i64::from(!v.truthy())),
                })
            }
            HExpr::Call { f: callee, args, pin } => {
                let vals = args
                    .iter()
                    .map(|a| self.eval(f, a))
                    .collect::<Result<Vec<_>, _>>()?;
                let pins = self.pin_for_deletes(f, *callee, *pin);
                let r = self.call(*callee, vals);
                self.unpin(pins);
                r
            }
            HExpr::Ralloc { region, s, line } => {
                let r = self.eval(f, region)?;
                self.set_site(*line);
                self.alloc(r, self.layouts[s.0 as usize], 1)
            }
            HExpr::RallocStructArray { region, count, s, line } => {
                let r = self.eval(f, region)?;
                let n = self.eval_int(f, count)?.max(1) as u32;
                self.set_site(*line);
                self.alloc(r, self.layouts[s.0 as usize], n)
            }
            HExpr::RallocIntArray { region, count, line } => {
                let r = self.eval(f, region)?;
                let n = self.eval_int(f, count)?.max(1) as u32;
                self.set_site(*line);
                self.alloc(r, self.int_cell, n)
            }
            HExpr::NewRegion => self.new_region(None),
            HExpr::TraditionalRegion => Ok(Value::Region(self.trad_desc)),
            HExpr::NewSubregion(parent) => {
                let p = self.eval(f, parent)?;
                self.new_region(Some(p))
            }
            HExpr::DeleteRegion(r, pin) => {
                let rv = self.eval(f, r)?;
                let pins = self.pin_list(f, *pin);
                let pinned = self.do_pins(&pins);
                let res = self.delete_region(rv);
                self.unpin(pinned);
                match res {
                    Ok(()) => Ok(Value::Int(0)),
                    Err(halt) => {
                        if self.config.delete_semantics == DeleteSemantics::Fail {
                            // The paper's second option: "simply return a
                            // failure code from deleteregion when its use
                            // would be unsafe."
                            if let Halt::Abort(
                                RtError::DeleteWithLiveRefs { .. }
                                | RtError::DeleteWithSubregions { .. },
                            ) = halt
                            {
                                return Ok(Value::Int(1));
                            }
                        }
                        Err(halt)
                    }
                }
            }
            HExpr::RegionOf(x) => {
                let v = self.eval(f, x)?;
                let addr = self.nonnull(v)?;
                let desc = self.descriptor_of(addr)?;
                Ok(Value::Region(desc))
            }
            HExpr::Assert(e) => {
                let v = self.eval(f, e)?;
                if v.truthy() {
                    Ok(Value::Int(0))
                } else {
                    Err(Halt::AssertFailed)
                }
            }
        }
    }

    fn eval_bin(
        &mut self,
        f: FuncRef,
        op: crate::ast::BinOp,
        l: &HExpr,
        r: &HExpr,
    ) -> Result<Value, Halt> {
        use crate::ast::BinOp::*;
        // Short-circuit forms first.
        match op {
            And => {
                let lv = self.eval(f, l)?;
                if !lv.truthy() {
                    return Ok(Value::Int(0));
                }
                let rv = self.eval(f, r)?;
                return Ok(Value::Int(i64::from(rv.truthy())));
            }
            Or => {
                let lv = self.eval(f, l)?;
                if lv.truthy() {
                    return Ok(Value::Int(1));
                }
                let rv = self.eval(f, r)?;
                return Ok(Value::Int(i64::from(rv.truthy())));
            }
            _ => {}
        }
        let lv = self.eval(f, l)?;
        let rv = self.eval(f, r)?;
        let out = match op {
            Add => Value::Int(int(lv).wrapping_add(int(rv))),
            Sub => Value::Int(int(lv).wrapping_sub(int(rv))),
            Mul => Value::Int(int(lv).wrapping_mul(int(rv))),
            Div => {
                let d = int(rv);
                Value::Int(if d == 0 { 0 } else { int(lv).wrapping_div(d) })
            }
            Rem => {
                let d = int(rv);
                Value::Int(if d == 0 { 0 } else { int(lv).wrapping_rem(d) })
            }
            Lt => Value::Int(i64::from(int(lv) < int(rv))),
            Le => Value::Int(i64::from(int(lv) <= int(rv))),
            Gt => Value::Int(i64::from(int(lv) > int(rv))),
            Ge => Value::Int(i64::from(int(lv) >= int(rv))),
            Eq => Value::Int(i64::from(lv.raw() == rv.raw())),
            Ne => Value::Int(i64::from(lv.raw() != rv.raw())),
            And | Or => unreachable!("handled above"),
        };
        Ok(out)
    }

    fn eval_int(&mut self, f: FuncRef, e: &HExpr) -> Result<i64, Halt> {
        Ok(int(self.eval(f, e)?))
    }

    fn nonnull(&self, v: Value) -> Result<Addr, Halt> {
        let a = v.addr();
        if a.is_null() {
            return Err(Halt::Abort(RtError::WildPointer { addr: Addr::NULL }));
        }
        Ok(a)
    }

    fn index_in(&mut self, f: FuncRef, idx: &HExpr, len: u32) -> Result<usize, Halt> {
        let i = self.eval_int(f, idx)?;
        if i < 0 || i >= len as i64 {
            return Err(Halt::Abort(RtError::WildPointer { addr: Addr::NULL }));
        }
        Ok(i as usize)
    }

    fn array_base(&mut self, f: FuncRef, base: ArrayBase) -> Result<(Addr, u32), Halt> {
        match base {
            ArrayBase::Local(v) => {
                let frame = self.frame();
                let addr = frame.arrays[v.0 as usize].expect("sema guarantees array local");
                let len = self.func(f).var(v).array_len.expect("array local");
                Ok((addr, len))
            }
            ArrayBase::Global(g) => {
                let (addr, len) =
                    self.global_arrays[g.0 as usize].expect("sema guarantees array global");
                Ok((addr, len))
            }
        }
    }

    /// Figure 3(a)/(b): dispatches a heap slot write through the barrier
    /// selected by the slot's type, the configuration and the analysis.
    fn write_slot(
        &mut self,
        obj: Addr,
        field: usize,
        val: Value,
        slot_ty: RcType,
        site: SiteId,
    ) -> Result<(), Halt> {
        match slot_ty {
            RcType::Int => {
                self.heap.write_int(obj, field, val.raw()).map_err(Halt::Abort)
            }
            _ => {
                let qual = slot_ty.qual().unwrap_or(Qual::None);
                let mode = self.write_mode(qual, site);
                if self.observing {
                    let line =
                        self.c.module.site_lines.get(site.0 as usize).copied().unwrap_or(0);
                    self.heap.set_trace_site(line);
                }
                if self.config.count_checks || self.config.spans {
                    self.heap.set_check_site(site.0);
                }
                if self.config.spans {
                    // Stamp the static verdict so the span layer's check
                    // events carry their inference provenance.
                    self.heap.set_check_verdict(self.c.analysis.is_safe(site));
                }
                self.heap.write_ptr(obj, field, val.addr(), mode).map_err(Halt::Abort)
            }
        }
    }

    /// Attributes subsequent runtime events to a source line (telemetry
    /// only; a no-op branch when neither tracing nor sampling is on).
    #[inline]
    fn set_site(&mut self, line: u32) {
        if self.observing {
            self.heap.set_trace_site(line);
        }
    }

    fn write_mode(&self, qual: Qual, site: SiteId) -> WriteMode {
        match self.config.backend {
            Backend::Lea | Backend::Gc | Backend::NoRc => return WriteMode::Raw,
            Backend::CAt => return WriteMode::Counted,
            Backend::Rc => {}
        }
        let kind = match qual {
            Qual::None => return WriteMode::Counted,
            Qual::SameRegion => PtrKind::SameRegion,
            Qual::ParentPtr => PtrKind::ParentPtr,
            Qual::Traditional => PtrKind::Traditional,
        };
        // Measurement mode: tally the predicate per site, never abort,
        // keep counts maintained (observationally `nq`).
        if self.config.count_checks {
            return WriteMode::CountedCheck(kind);
        }
        match self.config.checks {
            CheckMode::Nq => WriteMode::Counted,
            CheckMode::Qs => WriteMode::Check(kind),
            CheckMode::Inf => {
                if self.c.analysis.is_safe(site) {
                    WriteMode::Safe
                } else {
                    WriteMode::Check(kind)
                }
            }
            CheckMode::Nc => WriteMode::Raw,
        }
    }

    // ---- regions -------------------------------------------------------

    fn new_region(&mut self, parent: Option<Value>) -> Result<Value, Halt> {
        let desc = self.heap.m_alloc(self.desc_ty, 1).map_err(Halt::Abort)?;
        let rt = match &mut self.emu {
            Some(emu) => RtRegion::Emu(emu.new_region()),
            None => {
                let rid = match parent {
                    None => self.heap.new_region(),
                    Some(p) => {
                        // `resolve_region` also refuses moved parents:
                        // a subregion of a handed-off region would dodge
                        // the ownership transfer.
                        match self.resolve_region(p)? {
                            RtRegion::Real(prid) => {
                                self.heap.new_subregion(prid).map_err(Halt::Abort)?
                            }
                            RtRegion::Emu(_) => {
                                return Err(Halt::Abort(RtError::WildPointer {
                                    addr: p.addr(),
                                }))
                            }
                        }
                    }
                };
                while self.desc_of_real.len() <= rid.0 as usize {
                    self.desc_of_real.push(Addr::NULL);
                }
                self.desc_of_real[rid.0 as usize] = desc;
                RtRegion::Real(rid)
            }
        };
        self.desc_map.insert(desc, rt);
        Ok(Value::Region(desc))
    }

    fn resolve_region(&self, v: Value) -> Result<RtRegion, Halt> {
        let desc = v.addr();
        if desc.is_null() {
            return Err(Halt::Abort(RtError::WildPointer { addr: desc }));
        }
        let rt = self
            .desc_map
            .get(&desc)
            .copied()
            .ok_or(Halt::Abort(RtError::WildPointer { addr: desc }))?;
        self.check_not_moved(desc)?;
        Ok(rt)
    }

    /// Refuses handle-level touches of a region whose ownership is
    /// currently with a spawned task. (Ordinary loads/stores through
    /// pre-spawn pointers need no check: the child works on its own
    /// shard, so there is nothing to race with — this is the handle
    /// chokepoint for `ralloc`/`deleteregion`/`newsubregion`/`regionof`
    /// and re-`spawn`.)
    fn check_not_moved(&self, desc: Addr) -> Result<(), Halt> {
        if self.moved.contains(&desc) {
            let region = self
                .desc_map
                .get(&desc)
                .copied()
                .map(region_number)
                .unwrap_or(RegionId(0));
            return Err(Halt::Abort(RtError::RegionMoved { region }));
        }
        Ok(())
    }

    fn alloc(&mut self, region: Value, ty: TypeId, n: u32) -> Result<Value, Halt> {
        match self.resolve_region(region)? {
            RtRegion::Real(rid) => {
                let a = self.heap.rarray_alloc(rid, ty, n).map_err(Halt::Abort)?;
                Ok(Value::Ptr(a))
            }
            RtRegion::Emu(eid) => {
                let emu = self.emu.as_mut().expect("emu backend");
                let a = emu.alloc(&mut self.heap, eid, ty, n).map_err(Halt::Abort)?;
                self.emu_owner.insert(a, region.addr());
                self.maybe_collect();
                Ok(Value::Ptr(a))
            }
        }
    }

    fn delete_region(&mut self, region: Value) -> Result<(), Halt> {
        let desc = region.addr();
        let res = match self.resolve_region(region)? {
            RtRegion::Real(rid) => {
                // C@ scanned the stack at deleteregion instead of pinning
                // at deletes calls; charge that scan.
                if self.config.backend == Backend::CAt {
                    let slots: u64 = self
                        .frames
                        .iter()
                        .map(|fr| {
                            fr.vals
                                .iter()
                                .filter(|v| matches!(v, Value::Ptr(_) | Value::Region(_)))
                                .count() as u64
                        })
                        .sum();
                    let cost = slots * self.config.costs.cat_stack_scan_per_slot;
                    self.heap.stats.rc_cycles += cost;
                    self.heap.clock.charge(cost);
                }
                self.heap.delete_region(rid).map_err(Halt::Abort)
            }
            RtRegion::Emu(eid) => {
                let emu = self.emu.as_mut().expect("emu backend");
                emu.delete_region(&mut self.heap, eid).map_err(Halt::Abort)?;
                self.maybe_collect();
                Ok(())
            }
        };
        if res.is_ok() && desc == self.facet_desc {
            // The task deleted the region it was handed; the joining
            // parent mirrors the delete on the original.
            self.facet_dead = true;
        }
        res
    }

    fn descriptor_of(&mut self, obj: Addr) -> Result<Addr, Halt> {
        if self.emu.is_some() {
            let desc = self
                .emu_owner
                .get(&obj)
                .copied()
                .ok_or(Halt::Abort(RtError::WildPointer { addr: obj }))?;
            self.check_not_moved(desc)?;
            return Ok(desc);
        }
        let rid = self
            .heap
            .try_region_of(obj)
            .ok_or(Halt::Abort(RtError::WildPointer { addr: obj }))?;
        if let Some(&d) = self.desc_of_real.get(rid.0 as usize) {
            if !d.is_null() {
                self.check_not_moved(d)?;
                return Ok(d);
            }
        }
        // Objects in the traditional region (malloc'd) have no user-created
        // descriptor; lazily create one.
        let desc = self.heap.m_alloc(self.desc_ty, 1).map_err(Halt::Abort)?;
        while self.desc_of_real.len() <= rid.0 as usize {
            self.desc_of_real.push(Addr::NULL);
        }
        self.desc_of_real[rid.0 as usize] = desc;
        self.desc_map.insert(desc, RtRegion::Real(rid));
        Ok(desc)
    }

    fn maybe_collect(&mut self) {
        if self.config.backend != Backend::Gc || !self.heap.gc_should_collect() {
            return;
        }
        let mut roots: Vec<u64> = Vec::new();
        for fr in &self.frames {
            roots.extend(fr.vals.iter().map(|v| v.raw()));
            roots.extend(fr.arrays.iter().flatten().map(|a| a.raw()));
        }
        // Globals block and global arrays are conservative roots too: scan
        // their slots.
        let gl = self.c.module.globals.len().max(1);
        for i in 0..gl {
            if let Ok(w) = self.heap.read_word(self.globals_obj, i) {
                roots.push(w);
            }
        }
        let garrs: Vec<(Addr, u32)> = self.global_arrays.iter().flatten().copied().collect();
        for (addr, len) in garrs {
            for i in 0..len as usize {
                if let Ok(w) = self.heap.read_word(addr, i) {
                    roots.push(w);
                }
            }
        }
        if let Some(emu) = &self.emu {
            roots.extend(emu.all_roots());
        }
        self.heap.gc_collect(&roots);
        // A per-pause capture: what the collection kept alive, for the
        // offline analyzer's gc-vs-lea retention diffs.
        if self.config.snapshots {
            self.snapshots.push(self.heap.snapshot(SnapshotReason::Gc));
        }
    }

    // ---- deletes pinning -----------------------------------------------

    fn pin_for_deletes(&mut self, f: FuncRef, callee: FuncRef, pin: u32) -> Vec<RegionId> {
        if !self.func(callee).deletes {
            return Vec::new();
        }
        let pins = self.pin_list(f, pin);
        self.do_pins(&pins)
    }

    fn pin_list(&self, f: FuncRef, pin: u32) -> Vec<Addr> {
        if self.config.backend != Backend::Rc {
            return Vec::new();
        }
        let frame = self.frame();
        self.c.pins[f.0 as usize]
            .pins(pin)
            .iter()
            .filter_map(|&v| {
                let val = frame.vals[v.0 as usize];
                match val {
                    Value::Ptr(a) if !a.is_null() => Some(a),
                    _ => None,
                }
            })
            .collect()
    }

    fn do_pins(&mut self, ptrs: &[Addr]) -> Vec<RegionId> {
        let mut pinned = Vec::new();
        for &a in ptrs {
            if let Some(rid) = self.heap.try_region_of(a) {
                self.heap.pin_region(rid);
                pinned.push(rid);
            }
        }
        pinned
    }

    fn unpin(&mut self, pinned: Vec<RegionId>) {
        for rid in pinned {
            self.heap.unpin_region(rid);
        }
    }

    // ---- fault recovery ------------------------------------------------

    /// Tears the program's memory down after a trapped fault: drops every
    /// frame (freeing stack arrays), deletes the emulated regions, and
    /// unwinds the real region stack via [`Heap::unwind_regions`]. Called
    /// with the fault arms already detached, so none of this can re-fault;
    /// residual errors are ignored (the trap outcome wins).
    fn unwind_after_fault(&mut self) {
        while let Some(frame) = self.frames.pop() {
            for a in frame.arrays.into_iter().flatten() {
                let _ = self.heap.m_free(a);
            }
        }
        if let Some(emu) = &mut self.emu {
            let trad = match self.desc_map.get(&self.trad_desc) {
                Some(RtRegion::Emu(id)) => Some(*id),
                _ => None,
            };
            for id in emu.live_regions() {
                if Some(id) == trad {
                    continue;
                }
                let _ = emu.delete_region(&mut self.heap, id);
            }
            self.emu_owner.clear();
        }
        self.heap.unwind_regions();
    }
}

/// Executes one spawned task to completion: fresh interpreter (its own
/// isolated heap shard), a facet region standing in for the moved one, a
/// frame cloned from the captured values, the body, and an implicit join
/// of any tasks the body spawned. Runs on the spawning thread (inline
/// scheduler) or a scoped task thread (the other two) — the [`Gate`]
/// makes both paths take the same schedule-visible transitions.
#[allow(clippy::too_many_arguments)]
fn run_task<'c, 'scope, 'env>(
    c: &'c Compiled,
    config: &'c RunConfig,
    f: FuncRef,
    body: &'c [HStmt],
    mut captured: Vec<Value>,
    rvar: VarRef,
    gate: Gate,
    mut sched: SchedRecorder,
    spawn_site: u32,
    scope: Option<&'scope std::thread::Scope<'scope, 'env>>,
) -> TaskDone
where
    'c: 'scope,
{
    gate.start();
    // Stamp the start before the task heap exists (local 0): everything
    // between the spawn and here was time spent waiting to be scheduled.
    if gate.is_threads() {
        sched.stamp(0, SchedEventKind::SemaAdmit);
    }
    sched.stamp(0, SchedEventKind::TaskStart);
    let mut interp = Interp::new(c, config);
    interp.gate = gate;
    interp.sched = sched;
    interp.spawn_site = spawn_site;
    interp.scope = scope;
    let mut halt = interp.startup_fault.take().map(Halt::Abort);
    if halt.is_none() {
        match interp.new_region(None) {
            Ok(v) => {
                interp.facet = Some(match interp.resolve_region(v).expect("fresh region") {
                    RtRegion::Real(r) => Facet::Real(r),
                    RtRegion::Emu(e) => Facet::Emu(e),
                });
                interp.facet_desc = v.addr();
                captured[rvar.0 as usize] = v;
                let n = captured.len();
                interp.frames.push(Frame { vals: captured, arrays: vec![None; n] });
                halt = interp.exec_block(f, body).err();
                interp.frames.pop();
            }
            Err(h) => halt = Some(h),
        }
    }
    // A body that ends without `join` joins implicitly: nested tasks
    // never outlive their parent task.
    if let Err(h) = interp.join_children() {
        halt.get_or_insert(h);
    }
    if matches!(halt, Some(Halt::Abort(_))) && config.on_fault == OnFault::TrapAndUnwind {
        // Leave the shard audit-clean, like the root does before
        // reporting `Trapped`; the root converts the outcome.
        interp.unwind_after_fault();
    }
    // Seal the scheduler log (the `task_end` stamp) *before* releasing
    // the gate: sealing afterwards would race the next baton-holder's
    // stamps on the shared clock and break per-seed determinism.
    let cycles = interp.heap.clock.cycles();
    let sealed = std::mem::replace(&mut interp.sched, SchedRecorder::root()).finish(cycles);
    interp.sealed_sched = Some(sealed);
    interp.gate.finish();
    interp.into_task_done(halt)
}

/// Appends a joined child's shard subtree to the collecting task's list,
/// renumbering the child-local ids into the collector's space: the
/// collector is 0, already-collected shards are 1..=len, the child's
/// subtree lands right after. `from` links are child-local too and get
/// the same offset — except the child's own shard, whose `from` is the
/// collector (0). The scheme composes: when the collector is itself
/// collected, one more uniform offset fixes everything up, so after the
/// root's join the ids are the global DFS numbering, fixed entirely by
/// program order.
fn absorb_child_shards(dst: &mut Vec<Shard>, mut shards: Vec<Shard>, region: RegionId) {
    let base = dst.len() as u32 + 1;
    for (i, s) in shards.iter_mut().enumerate() {
        s.id.0 += base;
        s.handoff.to = s.id;
        if i == 0 {
            s.handoff.from = ShardId(0);
            s.handoff.region = region;
        } else {
            s.handoff.from.0 += base;
        }
    }
    dst.append(&mut shards);
}

/// The user-facing region number behind a descriptor, for error
/// payloads (emulated regions report their emu index).
fn region_number(rt: RtRegion) -> RegionId {
    match rt {
        RtRegion::Real(rid) => rid,
        RtRegion::Emu(eid) => RegionId(eid.0),
    }
}

/// A startup-image allocation: on failure, records the first fault and
/// yields NULL (`run_main` reports the fault before touching user code).
fn startup_alloc(heap: &mut Heap, fault: &mut Option<RtError>, ty: TypeId) -> Addr {
    match heap.m_alloc(ty, 1) {
        Ok(a) => a,
        Err(e) => {
            fault.get_or_insert(e);
            Addr::NULL
        }
    }
}

fn int(v: Value) -> i64 {
    match v {
        Value::Int(n) => n,
        _ => 0,
    }
}

fn slot_tag(s: SlotKind) -> u8 {
    match s {
        SlotKind::Data => 0,
        SlotKind::Ptr(PtrKind::Counted) => 1,
        SlotKind::Ptr(PtrKind::SameRegion) => 2,
        SlotKind::Ptr(PtrKind::ParentPtr) => 3,
        SlotKind::Ptr(PtrKind::Traditional) => 4,
        SlotKind::RegionHandle => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CheckMode, RunConfig};

    fn go(src: &str, config: RunConfig) -> RunResult {
        let c = prepare(src).unwrap();
        let r = run_audited(&c, &config);
        if let Some(Err(e)) = &r.audit {
            panic!("audit failed: {e} (outcome {:?})", r.outcome);
        }
        r
    }

    fn exit_code(src: &str, config: RunConfig) -> i64 {
        let r = go(src, config);
        match r.outcome {
            Outcome::Exit(n) => n,
            other => panic!("program did not exit cleanly: {other:?}"),
        }
    }

    pub const FIG1: &str = r#"
        struct finfo { int sz; };
        struct rlist {
            struct rlist *sameregion next;
            struct finfo *sameregion data;
        };
        int main() deletes {
            struct rlist *rl;
            struct rlist *last = null;
            region r = newregion();
            int i;
            int total = 0;
            for (i = 0; i < 50; i = i + 1) {
                rl = ralloc(r, struct rlist);
                rl->data = ralloc(r, struct finfo);
                rl->data->sz = i;
                rl->next = last;
                last = rl;
            }
            while (last != null) {
                total = total + last->data->sz;
                last = last->next;
            }
            deleteregion(r);
            return total;
        }
    "#;

    #[test]
    fn figure1_runs_under_all_configurations() {
        let expected = (0..50).sum::<i64>();
        for (name, cfg) in RunConfig::figure7() {
            assert_eq!(exit_code(FIG1, cfg), expected, "config {name}");
        }
        for (name, cfg) in RunConfig::figure8() {
            assert_eq!(exit_code(FIG1, cfg), expected, "config {name}");
        }
    }

    #[test]
    fn figure1_inf_eliminates_all_checks() {
        let r = go(FIG1, RunConfig::rc(CheckMode::Inf));
        assert!(r.stats.assigns_safe > 0);
        assert_eq!(r.stats.checks_sameregion, 0, "all checks statically removed");
        let qs = go(FIG1, RunConfig::rc(CheckMode::Qs));
        assert!(qs.stats.checks_sameregion > 0, "qs executes the checks");
        assert!(qs.cycles >= r.cycles, "inf is no slower than qs");
        let nq = go(FIG1, RunConfig::rc(CheckMode::Nq));
        assert!(
            nq.stats.rc_cycles > qs.stats.rc_cycles,
            "ignoring annotations does more refcount work"
        );
    }

    #[test]
    fn unsafe_delete_aborts() {
        // A global keeps a counted pointer into the region: deletion must
        // fail under RC.
        let src = r#"
            struct t { int x; };
            struct t *keep;
            int main() deletes {
                region r = newregion();
                keep = ralloc(r, struct t);
                deleteregion(r);
                return 0;
            }
        "#;
        let c = prepare(src).unwrap();
        let r = run(&c, &RunConfig::rc_inf());
        assert!(
            matches!(r.outcome, Outcome::Aborted(RtError::DeleteWithLiveRefs { .. })),
            "{:?}",
            r.outcome
        );
        // With reference counting disabled the delete (unsafely) succeeds.
        let r2 = run(&c, &RunConfig::norc());
        assert!(r2.outcome.is_exit());
    }

    #[test]
    fn clearing_the_reference_allows_delete() {
        let src = r#"
            struct t { int x; };
            struct t *keep;
            int main() deletes {
                region r = newregion();
                keep = ralloc(r, struct t);
                keep = null;
                deleteregion(r);
                return 0;
            }
        "#;
        assert_eq!(exit_code(src, RunConfig::rc_inf()), 0);
    }

    #[test]
    fn sameregion_violation_aborts_under_qs() {
        let src = r#"
            struct t { struct t *sameregion next; };
            int main() {
                region a = newregion();
                region b = newregion();
                struct t *x = ralloc(a, struct t);
                struct t *y = ralloc(b, struct t);
                x->next = y;
                return 0;
            }
        "#;
        let c = prepare(src).unwrap();
        let r = run(&c, &RunConfig::rc(CheckMode::Qs));
        assert!(
            matches!(r.outcome, Outcome::Aborted(RtError::CheckFailed { kind: PtrKind::SameRegion, .. })),
            "{:?}",
            r.outcome
        );
        // nc removes the check: the bad store goes through (unsafe).
        let r2 = run(&c, &RunConfig::rc(CheckMode::Nc));
        assert!(r2.outcome.is_exit());
    }

    #[test]
    fn parentptr_violation_aborts() {
        let src = r#"
            struct t { struct t *parentptr up; };
            int main() {
                region a = newregion();
                region b = newregion();
                struct t *x = ralloc(a, struct t);
                struct t *y = ralloc(b, struct t);
                x->up = y;
                return 0;
            }
        "#;
        let c = prepare(src).unwrap();
        let r = run(&c, &RunConfig::rc(CheckMode::Qs));
        assert!(matches!(
            r.outcome,
            Outcome::Aborted(RtError::CheckFailed { kind: PtrKind::ParentPtr, .. })
        ));
    }

    #[test]
    fn parentptr_to_parent_is_ok() {
        let src = r#"
            struct t { struct t *parentptr up; };
            int main() deletes {
                region r = newregion();
                region sub = newsubregion(r);
                struct t *p = ralloc(r, struct t);
                struct t *c = ralloc(sub, struct t);
                c->up = p;
                assert(c->up != null);
                deleteregion(sub);
                deleteregion(r);
                return 7;
            }
        "#;
        assert_eq!(exit_code(src, RunConfig::rc(CheckMode::Qs)), 7);
    }

    #[test]
    fn subregion_order_enforced() {
        let src = r#"
            int main() deletes {
                region r = newregion();
                region sub = newsubregion(r);
                deleteregion(r);
                return 0;
            }
        "#;
        let c = prepare(src).unwrap();
        let r = run(&c, &RunConfig::rc_inf());
        assert!(matches!(r.outcome, Outcome::Aborted(RtError::DeleteWithSubregions { .. })));
    }

    #[test]
    fn deletes_pinning_protects_live_locals() {
        // f deletes its scratch region; the caller's live pointer into
        // another region is pinned and unpinned without incident, while a
        // live pointer into the *deleted* region makes the delete abort.
        let src = r#"
            struct t { int x; };
            static void cleanup(region r) deletes { deleteregion(r); }
            int main() deletes {
                region scratch = newregion();
                struct t *dangling = ralloc(scratch, struct t);
                cleanup(scratch);
                dangling->x = 1;
                return 0;
            }
        "#;
        let c = prepare(src).unwrap();
        let r = run(&c, &RunConfig::rc_inf());
        // dangling is live across the call → pinned → delete fails.
        assert!(
            matches!(r.outcome, Outcome::Aborted(RtError::DeleteWithLiveRefs { .. })),
            "{:?}",
            r.outcome
        );
        assert!(r.stats.local_pins > 0);
    }

    #[test]
    fn dead_locals_do_not_block_delete() {
        let src = r#"
            struct t { int x; };
            static void cleanup(region r) deletes { deleteregion(r); }
            int main() deletes {
                region scratch = newregion();
                struct t *tmp = ralloc(scratch, struct t);
                tmp->x = 3;
                cleanup(scratch);
                return 0;
            }
        "#;
        assert_eq!(exit_code(src, RunConfig::rc_inf()), 0);
    }

    #[test]
    fn regionof_and_subregions() {
        let src = r#"
            struct t { int x; };
            int main() deletes {
                region r = newregion();
                struct t *p = ralloc(r, struct t);
                assert(regionof(p) == r);
                struct t *q = ralloc(regionof(p), struct t);
                assert(regionof(q) == r);
                q = null;
                p = null;
                deleteregion(r);
                return 0;
            }
        "#;
        assert_eq!(exit_code(src, RunConfig::rc_inf()), 0);
    }

    #[test]
    fn arrays_and_globals_work() {
        let src = r#"
            struct t { int v; };
            struct t *cache[8];
            int hits;
            int main() deletes {
                region r = newregion();
                int i;
                for (i = 0; i < 8; i = i + 1) {
                    cache[i] = ralloc(r, struct t);
                    cache[i]->v = i * i;
                }
                for (i = 0; i < 8; i = i + 1) {
                    hits = hits + cache[i]->v;
                }
                for (i = 0; i < 8; i = i + 1) {
                    cache[i] = null;
                }
                deleteregion(r);
                return hits;
            }
        "#;
        let expected: i64 = (0..8).map(|i| i * i).sum();
        assert_eq!(exit_code(src, RunConfig::rc_inf()), expected);
        assert_eq!(exit_code(src, RunConfig::lea()), expected);
        assert_eq!(exit_code(src, RunConfig::gc()), expected);
    }

    #[test]
    fn int_arrays_round_trip() {
        let src = r#"
            int main() deletes {
                region r = newregion();
                int *a = rarrayalloc(r, 16, int);
                int i;
                int s = 0;
                for (i = 0; i < 16; i = i + 1) { a[i] = i; }
                for (i = 0; i < 16; i = i + 1) { s = s + a[i]; }
                a = null;
                deleteregion(r);
                return s;
            }
        "#;
        assert_eq!(exit_code(src, RunConfig::rc_inf()), 120);
    }

    #[test]
    fn struct_array_elements() {
        let src = r#"
            struct pt { int x; int y; };
            int main() deletes {
                region r = newregion();
                struct pt *ps = rarrayalloc(r, 5, struct pt);
                int i;
                for (i = 0; i < 5; i = i + 1) {
                    ps[i]->x = i;
                    ps[i]->y = 2 * i;
                }
                int s = ps[4]->x + ps[4]->y;
                ps = null;
                deleteregion(r);
                return s;
            }
        "#;
        assert_eq!(exit_code(src, RunConfig::rc_inf()), 12);
    }

    #[test]
    fn stack_arrays_are_per_call() {
        let src = r#"
            static int fill(int seed) {
                int buf[4];
                int i;
                for (i = 0; i < 4; i = i + 1) { buf[i] = seed + i; }
                return buf[3];
            }
            int main() {
                return fill(10) + fill(20);
            }
        "#;
        assert_eq!(exit_code(src, RunConfig::rc_inf()), 13 + 23);
    }

    #[test]
    fn gc_backend_collects_garbage() {
        let src = r#"
            struct t { int x; };
            int main() deletes {
                int i;
                for (i = 0; i < 5000; i = i + 1) {
                    region r = newregion();
                    struct t *p = ralloc(r, struct t);
                    p->x = i;
                    deleteregion(r);
                }
                return 0;
            }
        "#;
        let mut cfg = RunConfig::gc();
        cfg.gc_threshold_words = 2048;
        let r = go(src, cfg);
        assert!(r.outcome.is_exit());
        assert!(r.stats.gc_collections > 0, "collections must have run");
        assert!(r.stats.gc_swept_objects > 0);
    }

    #[test]
    fn lea_backend_frees_per_object() {
        let src = r#"
            struct t { int x; };
            int main() deletes {
                region r = newregion();
                int i;
                for (i = 0; i < 100; i = i + 1) {
                    struct t *p = ralloc(r, struct t);
                    p->x = i;
                }
                deleteregion(r);
                return 0;
            }
        "#;
        let r = go(src, RunConfig::lea());
        assert!(r.outcome.is_exit());
        assert_eq!(r.stats.free_calls, 100, "region emulation frees each object");
    }

    #[test]
    fn traditional_annotation_checked() {
        let src = r#"
            struct buf { int c; };
            struct holder { struct buf *traditional b; };
            int main() {
                region r = newregion();
                struct holder *h = ralloc(r, struct holder);
                struct buf *bad = ralloc(r, struct buf);
                h->b = bad;
                return 0;
            }
        "#;
        let c = prepare(src).unwrap();
        let r = run(&c, &RunConfig::rc(CheckMode::Qs));
        assert!(matches!(
            r.outcome,
            Outcome::Aborted(RtError::CheckFailed { kind: PtrKind::Traditional, .. })
        ));
    }

    #[test]
    fn cat_config_counts_everything() {
        let r_cat = go(FIG1, RunConfig::cat());
        let r_rc = go(FIG1, RunConfig::rc_inf());
        assert!(r_cat.outcome.is_exit());
        assert!(
            r_cat.stats.rc_cycles > r_rc.stats.rc_cycles,
            "C@ does strictly more refcount work ({} vs {})",
            r_cat.stats.rc_cycles,
            r_rc.stats.rc_cycles
        );
        assert!(r_cat.cycles > r_rc.cycles, "RC beats C@ end to end");
    }

    #[test]
    fn assert_failure_is_reported() {
        let src = "int main() { assert(1 == 2); return 0; }";
        let c = prepare(src).unwrap();
        let r = run(&c, &RunConfig::rc_inf());
        assert_eq!(r.outcome, Outcome::AssertFailed);
    }

    #[test]
    fn step_limit_halts_infinite_loops() {
        let src = "int main() { while (1) { } return 0; }";
        let c = prepare(src).unwrap();
        let mut cfg = RunConfig::rc_inf();
        cfg.step_limit = 10_000;
        let r = run(&c, &cfg);
        assert_eq!(r.outcome, Outcome::StepLimit);
    }

    #[test]
    fn out_of_bounds_array_aborts() {
        let src = r#"
            int g[4];
            int main() { g[7] = 1; return 0; }
        "#;
        let c = prepare(src).unwrap();
        let r = run(&c, &RunConfig::rc_inf());
        assert!(matches!(r.outcome, Outcome::Aborted(RtError::WildPointer { .. })));
    }

    #[test]
    fn null_dereference_aborts() {
        let src = r#"
            struct t { int x; };
            int main() { struct t *p = null; return p->x; }
        "#;
        let c = prepare(src).unwrap();
        let r = run(&c, &RunConfig::rc_inf());
        assert!(matches!(r.outcome, Outcome::Aborted(RtError::WildPointer { .. })));
    }

    #[test]
    fn region_handles_in_structs() {
        let src = r#"
            struct env { region r; struct env *parent; };
            int main() deletes {
                region outer = newregion();
                struct env *top = ralloc(outer, struct env);
                top->r = newregion();
                struct env *inner = ralloc(top->r, struct env);
                inner->parent = top;
                inner->r = null;
                inner = null;
                deleteregion(top->r);
                top->parent = null;
                deleteregion(outer);
                return 0;
            }
        "#;
        let r = go(src, RunConfig::rc_inf());
        assert!(r.outcome.is_exit(), "{:?}", r.outcome);
    }

    #[test]
    fn recursion_works() {
        let src = r#"
            static int fib(int n) {
                if (n < 2) { return n; }
                return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(15); }
        "#;
        assert_eq!(exit_code(src, RunConfig::rc_inf()), 610);
    }

    #[test]
    fn cycles_within_a_region_are_free() {
        let src = r#"
            struct node { struct node *next; };
            int main() deletes {
                region r = newregion();
                struct node *a = ralloc(r, struct node);
                struct node *b = ralloc(r, struct node);
                a->next = b;
                b->next = a;
                a = null;
                b = null;
                deleteregion(r);
                return 0;
            }
        "#;
        assert_eq!(exit_code(src, RunConfig::rc_inf()), 0);
    }

    #[test]
    fn cross_region_cycle_blocks_until_broken() {
        let src = r#"
            struct node { struct node *next; };
            int main() deletes {
                region r1 = newregion();
                region r2 = newregion();
                struct node *a = ralloc(r1, struct node);
                struct node *b = ralloc(r2, struct node);
                a->next = b;
                b->next = a;
                a = null;
                b = null;
                deleteregion(r1);
                return 0;
            }
        "#;
        let c = prepare(src).unwrap();
        let r = run(&c, &RunConfig::rc_inf());
        assert!(
            matches!(r.outcome, Outcome::Aborted(RtError::DeleteWithLiveRefs { .. })),
            "cross-region cycles must be broken by the programmer first: {:?}",
            r.outcome
        );
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::config::RunConfig;
    use region_rt::{FaultMode, FaultPlan, FaultPlane};

    #[test]
    fn injected_alloc_fault_aborts_by_default() {
        let c = prepare(super::tests::FIG1).unwrap();
        let cfg = RunConfig::rc_inf()
            .with_faults(FaultPlan::new().fail_alloc(FaultMode::Schedule(vec![10])).sticky());
        let r = run(&c, &cfg);
        assert!(
            matches!(r.outcome, Outcome::Aborted(RtError::OutOfMemory)),
            "{:?}",
            r.outcome
        );
        let report = r.faults.expect("armed plan yields a report");
        assert_eq!(report.first().unwrap().plane, FaultPlane::Alloc);
        assert_eq!(report.first().unwrap().op, 10);
    }

    #[test]
    fn trap_and_unwind_leaves_the_heap_audit_clean() {
        let c = prepare(super::tests::FIG1).unwrap();
        for (name, base) in RunConfig::figure7() {
            let cfg = base
                .trapping()
                .with_faults(FaultPlan::new().fail_alloc(FaultMode::Schedule(vec![10])).sticky());
            let r = run_audited(&c, &cfg);
            assert!(
                matches!(r.outcome, Outcome::Trapped(RtError::OutOfMemory)),
                "config {name}: {:?}",
                r.outcome
            );
            assert!(matches!(r.audit, Some(Ok(()))), "config {name}: {:?}", r.audit);
        }
    }

    #[test]
    fn organic_page_exhaustion_traps_too() {
        let c = prepare(super::tests::FIG1).unwrap();
        let cfg = RunConfig::rc_inf().trapping().with_page_budget(1);
        let r = run_audited(&c, &cfg);
        assert!(
            matches!(r.outcome, Outcome::Trapped(RtError::OutOfMemory)),
            "{:?}",
            r.outcome
        );
        assert!(matches!(r.audit, Some(Ok(()))));
        assert!(r.faults.is_none(), "no arms were installed");
    }

    #[test]
    fn startup_fault_is_reported_not_panicked() {
        let src = r#"
            int g[8];
            int main() { return g[0]; }
        "#;
        let c = prepare(src).unwrap();
        // Fail the very first allocation: the globals block itself.
        let cfg = RunConfig::rc_inf()
            .with_faults(FaultPlan::new().fail_alloc(FaultMode::Schedule(vec![1])).sticky());
        let r = run(&c, &cfg);
        assert!(
            matches!(r.outcome, Outcome::Aborted(RtError::OutOfMemory)),
            "{:?}",
            r.outcome
        );
    }

    #[test]
    fn rc_saturation_fault_traps_cleanly() {
        let c = prepare(super::tests::FIG1).unwrap();
        // Under nq every pointer store is a counted store, so the
        // RcSaturate plane sees every barrier crossing.
        let cfg = RunConfig::rc(CheckMode::Nq)
            .trapping()
            .with_faults(FaultPlan::new().saturate_rc(FaultMode::Schedule(vec![3])).sticky());
        let r = run_audited(&c, &cfg);
        assert!(
            matches!(r.outcome, Outcome::Trapped(RtError::RcOverflow { .. })),
            "{:?}",
            r.outcome
        );
        assert!(matches!(r.audit, Some(Ok(()))), "{:?}", r.audit);
    }

    #[test]
    fn check_fault_surfaces_as_a_failed_check() {
        let c = prepare(super::tests::FIG1).unwrap();
        let cfg = RunConfig::rc(CheckMode::Qs)
            .trapping()
            .with_faults(FaultPlan::new().fail_checks(FaultMode::Schedule(vec![1])).sticky());
        let r = run_audited(&c, &cfg);
        assert!(
            matches!(r.outcome, Outcome::Trapped(RtError::CheckFailed { .. })),
            "{:?}",
            r.outcome
        );
        assert!(matches!(r.audit, Some(Ok(()))), "{:?}", r.audit);
    }

    #[test]
    fn disarmed_plan_changes_nothing() {
        let c = prepare(super::tests::FIG1).unwrap();
        let plain = run(&c, &RunConfig::rc_inf());
        let armed = run(&c, &RunConfig::rc_inf().with_faults(FaultPlan::new()));
        assert_eq!(plain.outcome, armed.outcome);
        assert_eq!(plain.cycles, armed.cycles, "empty plan must not perturb the clock");
        assert!(armed.faults.is_none());
    }
}

#[cfg(test)]
mod delete_semantics_tests {
    use super::*;
    use crate::config::{DeleteSemantics, RunConfig};

    /// A program whose deleteregion fails while a global still points in,
    /// clears the global, then retries.
    const RETRY: &str = r#"
        struct t { int x; };
        struct t *keep;
        int main() deletes {
            region r = newregion();
            keep = ralloc(r, struct t);
            int first = deleteregion(r);
            keep = null;
            int second = deleteregion(r);
            return first * 10 + second;
        }
    "#;

    #[test]
    fn abort_semantics_abort() {
        let c = prepare(RETRY).unwrap();
        let r = run(&c, &RunConfig::rc_inf());
        assert!(matches!(r.outcome, Outcome::Aborted(RtError::DeleteWithLiveRefs { .. })));
    }

    #[test]
    fn fail_semantics_return_a_code() {
        let c = prepare(RETRY).unwrap();
        let mut cfg = RunConfig::rc_inf();
        cfg.delete_semantics = DeleteSemantics::Fail;
        let r = run(&c, &cfg);
        // First delete fails (1), second succeeds (0).
        assert_eq!(r.outcome, Outcome::Exit(10), "{:?}", r.outcome);
    }

    #[test]
    fn deferred_semantics_reclaim_when_clear() {
        let src = r#"
            struct t { int x; };
            struct t *keep;
            int main() deletes {
                region r = newregion();
                keep = ralloc(r, struct t);
                int status = deleteregion(r);   // doomed, not freed
                keep->x = 42;                   // still safely usable!
                int v = keep->x;
                keep = null;                    // last ref: reclaimed now
                return v + status;
            }
        "#;
        let c = prepare(src).unwrap();
        let mut cfg = RunConfig::rc_inf();
        cfg.delete_semantics = DeleteSemantics::Deferred;
        let r = run_audited(&c, &cfg);
        assert_eq!(r.outcome, Outcome::Exit(42), "{:?}", r.outcome);
        assert_eq!(r.stats.regions_deferred, 1);
        assert_eq!(r.stats.regions_deleted, 1, "reclaimed once the global cleared");
        assert!(matches!(r.audit, Some(Ok(()))));
    }

    #[test]
    fn deferred_still_detects_wild_access_after_reclaim() {
        // Once the count hits zero and the region is reclaimed, a stale
        // *uncounted* access (via a dangling handle idiom) is caught by
        // the simulated heap rather than corrupting silently.
        let src = r#"
            struct t { int x; };
            int main() deletes {
                region r = newregion();
                struct t *p = ralloc(r, struct t);
                p->x = 1;
                int unused = deleteregion(r);
                return 0;
            }
        "#;
        let c = prepare(src).unwrap();
        let mut cfg = RunConfig::rc_inf();
        cfg.delete_semantics = DeleteSemantics::Deferred;
        let r = run_audited(&c, &cfg);
        // p is dead at the delete, so the region is reclaimed immediately.
        assert!(r.outcome.is_exit());
        assert_eq!(r.stats.regions_deleted, 1);
    }
}

#[cfg(test)]
mod spawn_tests {
    use super::*;
    use crate::config::{RunConfig, SchedMode};

    fn go(src: &str, config: RunConfig) -> RunResult {
        let c = prepare(src).unwrap();
        let r = run_audited(&c, &config);
        if let Some(Err(e)) = &r.audit {
            panic!("audit failed: {e} (outcome {:?})", r.outcome);
        }
        r
    }

    /// Every scheduler the task machinery supports, with a few seeds and
    /// worker counts.
    fn all_scheds() -> Vec<(&'static str, SchedMode)> {
        vec![
            ("inline", SchedMode::Inline),
            ("det-1", SchedMode::Deterministic { seed: 1 }),
            ("det-42", SchedMode::Deterministic { seed: 42 }),
            ("threads-1", SchedMode::Threads { workers: 1 }),
            ("threads-4", SchedMode::Threads { workers: 4 }),
        ]
    }

    const SPAWN_TWO: &str = r#"
        struct cell { int v; struct cell *sameregion next; };
        int main() deletes {
            region a = newregion();
            region b = newregion();
            int n = 40;
            spawn a {
                struct cell *head = null;
                int i;
                i = 0;
                while (i < n) {
                    struct cell *c = ralloc(a, struct cell);
                    c->v = i;
                    c->next = head;
                    head = c;
                    i = i + 1;
                }
            }
            spawn b {
                struct cell *p = ralloc(b, struct cell);
                p->v = n;
            }
            join;
            deleteregion(a);
            deleteregion(b);
            return n;
        }
    "#;

    #[test]
    fn spawn_runs_under_every_scheduler_with_identical_reports() {
        let mut results = Vec::new();
        for (name, sched) in all_scheds() {
            let r = go(SPAWN_TWO, RunConfig::rc_inf().with_sched(sched));
            assert_eq!(r.outcome, Outcome::Exit(40), "sched {name}");
            assert_eq!(r.handoffs.len(), 2, "sched {name}");
            assert_eq!(r.handoffs[0].seq, 0);
            assert_eq!(r.handoffs[1].seq, 1);
            assert_eq!(r.handoffs[0].from, region_rt::ShardId::ROOT);
            results.push((name, r));
        }
        let (base_name, base) = &results[0];
        for (name, r) in &results[1..] {
            assert_eq!(
                r.stats, base.stats,
                "stats must be schedule-invariant ({name} vs {base_name})"
            );
            assert_eq!(r.cycles, base.cycles, "{name} vs {base_name}");
            assert_eq!(r.steps, base.steps, "{name} vs {base_name}");
            assert_eq!(
                r.stats.parallel_invariant_key().render(),
                base.stats.parallel_invariant_key().render()
            );
        }
    }

    #[test]
    fn task_reports_fold_to_the_merged_view_under_every_scheduler() {
        let mut structural = Vec::new();
        for (name, sched) in all_scheds() {
            let r = go(SPAWN_TWO, RunConfig::rc_inf().with_sched(sched));
            assert_eq!(r.task_reports.len(), r.handoffs.len() + 1, "sched {name}");
            assert!(r.task_reports[0].is_root(), "sched {name}");
            // The merged report is exactly the in-order fold of the
            // per-task facets.
            let folded = r
                .task_reports
                .iter()
                .skip(1)
                .fold(r.task_reports[0].stats.clone(), |acc, t| acc.merge(&t.stats));
            assert_eq!(folded, r.stats, "sched {name}");
            assert_eq!(
                r.task_reports.iter().map(|t| t.cycles).sum::<u64>(),
                r.cycles,
                "sched {name}"
            );
            assert_eq!(
                r.task_reports.iter().map(|t| t.steps).sum::<u64>(),
                r.steps,
                "sched {name}"
            );
            assert_eq!(r.stats.sched_spawns, 2, "sched {name}");
            assert_eq!(r.stats.sched_joins, 1, "sched {name}");
            for t in &r.task_reports {
                assert!(t.sched.balanced(), "sched {name} task {}: {:?}", t.id.0, t.sched);
            }
            // Tasks carry their spawn site; the root has none.
            assert_eq!(r.task_reports[0].spawn_site, 0);
            assert!(r.task_reports.iter().skip(1).all(|t| t.spawn_site > 0), "sched {name}");
            // Work/span come from structural events only, so the
            // critical path is schedule-invariant too.
            let cp = region_rt::critpath::analyze(&r.task_reports)
                .unwrap_or_else(|e| panic!("sched {name}: {e}"));
            assert_eq!(cp.work, r.cycles, "sched {name}");
            assert!(cp.span <= cp.work, "sched {name}");
            let longest = r.task_reports.iter().map(|t| t.cycles).max().unwrap_or(0);
            assert!(cp.span >= longest, "sched {name}");
            structural.push((
                name,
                cp.work,
                cp.span,
                cp.path.iter().map(region_rt::PathSeg::to_json).map(|j| j.render()).collect::<Vec<_>>(),
            ));
        }
        let base = &structural[0];
        for s in &structural[1..] {
            assert_eq!((&s.1, &s.2, &s.3), (&base.1, &base.2, &base.3), "{} vs {}", s.0, base.0);
        }
    }

    #[test]
    fn task_reports_are_byte_deterministic_per_seed() {
        let render = |r: &RunResult| {
            r.task_reports.iter().map(|t| t.to_json().render()).collect::<Vec<_>>().join("\n")
        };
        let a = go(SPAWN_TWO, RunConfig::rc_inf().det_sched(42));
        let b = go(SPAWN_TWO, RunConfig::rc_inf().det_sched(42));
        assert_eq!(render(&a), render(&b), "same seed, same per-task reports");
        // A different seed interleaves differently (different baton
        // traffic) but the structural identities still hold.
        let c = go(SPAWN_TWO, RunConfig::rc_inf().det_sched(7));
        assert_eq!(c.stats, a.stats);
        assert_eq!(c.cycles, a.cycles);
    }

    #[test]
    fn per_task_timelines_fold_to_the_merged_timeline() {
        let cfg = RunConfig::rc_inf().det_sched(11).sampled();
        let r = go(SPAWN_TWO, cfg);
        let merged = r.timeline.as_ref().expect("sampling was on");
        let mut folded: Option<Box<region_rt::Timeline>> = None;
        for t in &r.task_reports {
            let tl = t.timeline.as_ref().expect("every task samples");
            match &mut folded {
                Some(acc) => acc.merge(tl),
                None => folded = Some(tl.clone()),
            }
        }
        let folded = folded.expect("at least the root task");
        assert_eq!(folded.to_json().render(), merged.to_json().render());
    }

    #[test]
    fn spawn_free_runs_carry_no_task_reports() {
        let r = go(
            "int main() { return 3; }",
            RunConfig::rc_inf().det_sched(1),
        );
        assert!(r.task_reports.is_empty());
        assert_eq!(r.stats.sched_spawns, 0);
        assert_eq!(r.stats.sched_joins, 0);
    }

    #[test]
    fn spawn_runs_under_every_figure7_backend() {
        for (name, cfg) in RunConfig::figure7() {
            let r = go(SPAWN_TWO, cfg.det_sched(7));
            assert_eq!(r.outcome, Outcome::Exit(40), "backend {name}");
            assert_eq!(r.handoffs.len(), 2, "backend {name}");
        }
    }

    #[test]
    fn touching_a_moved_region_aborts_with_region_moved() {
        let src = r#"
            struct t { int x; };
            int main() deletes {
                region r = newregion();
                int n = 500;
                spawn r {
                    struct t *q = ralloc(r, struct t);
                    int i;
                    i = 0;
                    while (i < n) { i = i + 1; }
                }
                struct t *p = ralloc(r, struct t);
                join;
                return 0;
            }
        "#;
        for (name, sched) in all_scheds() {
            let r = go(src, RunConfig::rc_inf().with_sched(sched));
            assert!(
                matches!(r.outcome, Outcome::Aborted(RtError::RegionMoved { .. })),
                "sched {name}: {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn deleting_and_subregioning_a_moved_region_also_abort() {
        for body in ["deleteregion(r);", "region s = newsubregion(r);"] {
            let src = format!(
                r#"
                struct t {{ int x; }};
                int main() deletes {{
                    region r = newregion();
                    spawn r {{ struct t *q = ralloc(r, struct t); }}
                    {body}
                    join;
                    return 0;
                }}
            "#
            );
            let r = go(&src, RunConfig::rc_inf());
            assert!(
                matches!(r.outcome, Outcome::Aborted(RtError::RegionMoved { .. })),
                "{body}: {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn child_deleting_its_facet_deletes_the_parents_original() {
        let src = r#"
            struct t { int x; };
            int main() deletes {
                region r = newregion();
                spawn r {
                    struct t *p = ralloc(r, struct t);
                    p->x = 1;
                    deleteregion(r);
                }
                join;
                return 0;
            }
        "#;
        for (name, sched) in all_scheds() {
            let r = go(src, RunConfig::rc_inf().with_sched(sched));
            assert_eq!(r.outcome, Outcome::Exit(0), "sched {name}");
            // Both the facet (child shard) and the original (root heap)
            // are gone: two region deletions in the merged stats.
            assert_eq!(r.stats.regions_deleted, 2, "sched {name}");
        }
    }

    #[test]
    fn child_failure_propagates_at_join() {
        let src = r#"
            int main() {
                region r = newregion();
                int n = 3;
                spawn r { assert(n > 5); }
                join;
                return 0;
            }
        "#;
        for (name, sched) in all_scheds() {
            let c = prepare(src).unwrap();
            let r = run(&c, &RunConfig::rc_inf().with_sched(sched));
            assert_eq!(r.outcome, Outcome::AssertFailed, "sched {name}");
        }
    }

    #[test]
    fn program_end_joins_implicitly() {
        let src = r#"
            int main() {
                region r = newregion();
                int n = 3;
                spawn r { assert(n > 5); }
                return 0;
            }
        "#;
        let c = prepare(src).unwrap();
        for (name, sched) in all_scheds() {
            let r = run(&c, &RunConfig::rc_inf().with_sched(sched));
            assert_eq!(r.outcome, Outcome::AssertFailed, "sched {name}");
            assert_eq!(r.handoffs.len(), 1, "the shard is still collected");
        }
    }

    #[test]
    fn nested_spawn_collects_shards_in_dfs_order() {
        let src = r#"
            struct t { int x; };
            int main() deletes {
                region outer = newregion();
                spawn outer {
                    struct t *p = ralloc(outer, struct t);
                    region inner = newsubregion(outer);
                    spawn inner {
                        struct t *q = ralloc(inner, struct t);
                        q->x = 5;
                    }
                    join;
                    p->x = 1;
                }
                join;
                deleteregion(outer);
                return 0;
            }
        "#;
        for (name, sched) in all_scheds() {
            let r = go(src, RunConfig::rc_inf().with_sched(sched));
            assert_eq!(r.outcome, Outcome::Exit(0), "sched {name}");
            assert_eq!(r.handoffs.len(), 2, "sched {name}");
            // DFS: the outer task is shard 1 (spawned by the root), the
            // nested task shard 2 (spawned by shard 1).
            assert_eq!(r.handoffs[0].from, region_rt::ShardId::ROOT);
            assert_eq!(r.handoffs[0].to, region_rt::ShardId(1));
            assert_eq!(r.handoffs[1].from, region_rt::ShardId(1));
            assert_eq!(r.handoffs[1].to, region_rt::ShardId(2));
        }
    }

    #[test]
    fn telemetry_merges_across_shards() {
        let cfg = RunConfig::rc(CheckMode::Qs)
            .det_sched(11)
            .with_spans()
            .traced()
            .sampled()
            .counting_checks();
        let r = go(SPAWN_TWO, cfg);
        assert_eq!(r.outcome, Outcome::Exit(40));
        let spans = r.spans.as_ref().expect("spans on");
        spans.structurally_well_formed().expect("merged span tree is well-formed");
        let profile = r.profile().expect("tracing on");
        assert!(profile.totals.allocs >= 41, "both shards' allocs folded in");
        assert!(r.timeline.is_some());
        // The merged report is identical to the inline scheduler's.
        let inline_r = go(
            SPAWN_TWO,
            RunConfig::rc(CheckMode::Qs).with_spans().traced().sampled().counting_checks(),
        );
        assert_eq!(r.stats, inline_r.stats);
        assert_eq!(r.cycles, inline_r.cycles);
    }
}
