//! Recursive-descent parser for the RC dialect.
//!
//! The grammar is a C subset with region keywords:
//!
//! ```text
//! unit      := (structdef | global | func)*
//! structdef := "struct" IDENT "{" (type IDENT ";")* "}" ";"
//! global    := type IDENT ("[" INT "]")? ";"
//! func      := "static"? ("void" | type) IDENT "(" params? ")" "deletes"? block
//! type      := "int" "*"? | "region" | "struct" IDENT "*" qual?
//! qual      := "sameregion" | "parentptr" | "traditional"
//! block     := "{" (vardecl | stmt)* "}"
//! vardecl   := type IDENT ("[" INT "]")? ("=" expr)? ";"
//! stmt      := expr ";" | ";" | block | "if" ... | "while" ... | "for" ... | "return" expr? ";"
//! expr      := assignment (right-associative "=") over C precedence
//! ```
//!
//! Every assignment gets a fresh [`SiteId`], the currency shared with the
//! rlang translation and check eliminator.

use crate::ast::*;
use crate::error::{CompileError, ErrorKind};
use crate::lexer::lex;
use crate::token::{Spanned, Token};

/// Parses a translation unit.
///
/// # Errors
///
/// Returns the first lexical or syntax error.
pub fn parse(src: &str) -> Result<Ast, CompileError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0, next_site: 0 };
    p.unit()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    next_site: u32,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Token {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].line
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> CompileError {
        CompileError::new(ErrorKind::Parse, self.line(), msg)
    }

    fn expect(&mut self, t: Token, what: &str) -> Result<(), CompileError> {
        if *self.peek() == t {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, CompileError> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn fresh_site(&mut self) -> SiteId {
        let s = SiteId(self.next_site);
        self.next_site += 1;
        s
    }

    fn unit(&mut self) -> Result<Ast, CompileError> {
        let mut ast = Ast::default();
        while *self.peek() != Token::Eof {
            if *self.peek() == Token::KwStruct && matches!(self.peek2(), Token::Ident(_)) {
                // Lookahead for "struct I {" = declaration.
                let save = self.pos;
                self.bump();
                self.bump();
                let is_def = *self.peek() == Token::LBrace;
                self.pos = save;
                if is_def {
                    ast.structs.push(self.struct_def()?);
                    continue;
                }
            }
            self.top_item(&mut ast)?;
        }
        Ok(ast)
    }

    fn struct_def(&mut self) -> Result<StructDef, CompileError> {
        let line = self.line();
        self.expect(Token::KwStruct, "`struct`")?;
        let name = self.ident("struct name")?;
        self.expect(Token::LBrace, "`{`")?;
        let mut fields = Vec::new();
        while *self.peek() != Token::RBrace {
            let ty = self.type_expr()?;
            let fname = self.ident("field name")?;
            self.expect(Token::Semi, "`;`")?;
            fields.push((ty, fname));
        }
        self.expect(Token::RBrace, "`}`")?;
        self.expect(Token::Semi, "`;` after struct")?;
        Ok(StructDef { name, fields, line })
    }

    fn top_item(&mut self, ast: &mut Ast) -> Result<(), CompileError> {
        let line = self.line();
        let is_static = if *self.peek() == Token::KwStatic {
            self.bump();
            true
        } else {
            false
        };
        let ret = if *self.peek() == Token::KwVoid {
            self.bump();
            None
        } else {
            Some(self.type_expr()?)
        };
        let name = self.ident("name")?;
        if *self.peek() == Token::LParen {
            // Function definition.
            self.bump();
            let mut params = Vec::new();
            if *self.peek() != Token::RParen {
                loop {
                    let ty = self.type_expr()?;
                    let pname = self.ident("parameter name")?;
                    params.push((ty, pname));
                    if *self.peek() == Token::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Token::RParen, "`)`")?;
            let deletes = if *self.peek() == Token::KwDeletes {
                self.bump();
                true
            } else {
                false
            };
            let body = self.block()?;
            ast.funcs.push(FuncDefAst { name, is_static, deletes, ret, params, body, line });
        } else {
            // Global variable.
            if is_static {
                // `static` on globals is accepted and ignored (file scope
                // is the only scope).
            }
            let ty = ret.ok_or_else(|| self.err("global variables cannot be void"))?;
            let array_len = self.opt_array_len()?;
            self.expect(Token::Semi, "`;` after global")?;
            ast.globals.push(GlobalDef { ty, name, array_len, line });
        }
        Ok(())
    }

    fn opt_array_len(&mut self) -> Result<Option<u32>, CompileError> {
        if *self.peek() == Token::LBracket {
            self.bump();
            let n = match self.bump() {
                Token::Int(n) if n > 0 => n as u32,
                other => {
                    return Err(self.err(format!("expected positive array length, found {other:?}")))
                }
            };
            self.expect(Token::RBracket, "`]`")?;
            Ok(Some(n))
        } else {
            Ok(None)
        }
    }

    fn type_expr(&mut self) -> Result<TypeExpr, CompileError> {
        match self.bump() {
            Token::KwInt => {
                if *self.peek() == Token::Star {
                    self.bump();
                    Ok(TypeExpr::IntPtr(self.opt_qual()?))
                } else {
                    Ok(TypeExpr::Int)
                }
            }
            Token::KwRegion => Ok(TypeExpr::Region),
            Token::KwStruct => {
                let name = self.ident("struct name")?;
                self.expect(Token::Star, "`*` (struct values must be pointers)")?;
                let qual = self.opt_qual()?;
                Ok(TypeExpr::StructPtr { name, qual })
            }
            other => Err(self.err(format!("expected a type, found {other:?}"))),
        }
    }

    fn opt_qual(&mut self) -> Result<Qual, CompileError> {
        Ok(match self.peek() {
            Token::KwSameRegion => {
                self.bump();
                Qual::SameRegion
            }
            Token::KwParentPtr => {
                self.bump();
                Qual::ParentPtr
            }
            Token::KwTraditional => {
                self.bump();
                Qual::Traditional
            }
            Token::Star => {
                return Err(self.err("pointers to pointers are not supported"));
            }
            _ => Qual::None,
        })
    }

    fn starts_type(&self) -> bool {
        matches!(self.peek(), Token::KwInt | Token::KwRegion | Token::KwStruct)
    }

    fn block(&mut self) -> Result<Vec<BlockItem>, CompileError> {
        self.expect(Token::LBrace, "`{`")?;
        let mut items = Vec::new();
        while *self.peek() != Token::RBrace {
            if self.starts_type() {
                items.push(BlockItem::Decl(self.var_decl()?));
            } else {
                items.push(BlockItem::Stmt(self.stmt()?));
            }
        }
        self.expect(Token::RBrace, "`}`")?;
        Ok(items)
    }

    fn var_decl(&mut self) -> Result<VarDecl, CompileError> {
        let line = self.line();
        let ty = self.type_expr()?;
        let name = self.ident("variable name")?;
        let array_len = self.opt_array_len()?;
        let init = if *self.peek() == Token::Assign {
            self.bump();
            Some(self.expr()?)
        } else {
            None
        };
        self.expect(Token::Semi, "`;` after declaration")?;
        Ok(VarDecl { ty, name, array_len, init, line })
    }

    fn stmt(&mut self) -> Result<Stmt, CompileError> {
        match self.peek() {
            Token::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Token::LBrace => Ok(Stmt::Block(self.block()?)),
            Token::KwIf => {
                self.bump();
                self.expect(Token::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(Token::RParen, "`)`")?;
                let then_s = Box::new(self.stmt()?);
                let else_s = if *self.peek() == Token::KwElse {
                    self.bump();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(cond, then_s, else_s))
            }
            Token::KwWhile => {
                self.bump();
                self.expect(Token::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Stmt::While(cond, Box::new(self.stmt()?)))
            }
            Token::KwFor => {
                self.bump();
                self.expect(Token::LParen, "`(`")?;
                let init = if *self.peek() == Token::Semi { None } else { Some(self.expr()?) };
                self.expect(Token::Semi, "`;`")?;
                let cond = if *self.peek() == Token::Semi { None } else { Some(self.expr()?) };
                self.expect(Token::Semi, "`;`")?;
                let step = if *self.peek() == Token::RParen { None } else { Some(self.expr()?) };
                self.expect(Token::RParen, "`)`")?;
                Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)))
            }
            Token::KwReturn => {
                let line = self.line();
                self.bump();
                let e = if *self.peek() == Token::Semi { None } else { Some(self.expr()?) };
                self.expect(Token::Semi, "`;` after return")?;
                Ok(Stmt::Return(e, line))
            }
            Token::KwSpawn => {
                let line = self.line();
                self.bump();
                let region = self.ident("region variable after `spawn`")?;
                let body = self.block()?;
                Ok(Stmt::Spawn { region, body, line })
            }
            Token::KwJoin => {
                let line = self.line();
                self.bump();
                self.expect(Token::Semi, "`;` after join")?;
                Ok(Stmt::Join(line))
            }
            _ => {
                let e = self.expr()?;
                self.expect(Token::Semi, "`;` after expression")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn expr(&mut self) -> Result<Expr, CompileError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        let lhs = self.or_expr()?;
        if *self.peek() == Token::Assign {
            self.bump();
            let rhs = self.assignment()?;
            let site = self.fresh_site();
            Ok(Expr::Assign { lhs: Box::new(lhs), rhs: Box::new(rhs), site, line })
        } else {
            Ok(lhs)
        }
    }

    fn or_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.and_expr()?;
        while *self.peek() == Token::OrOr {
            self.bump();
            let r = self.and_expr()?;
            l = Expr::Bin(BinOp::Or, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn and_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.cmp_expr()?;
        while *self.peek() == Token::AndAnd {
            self.bump();
            let r = self.cmp_expr()?;
            l = Expr::Bin(BinOp::And, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn cmp_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Token::Eq => BinOp::Eq,
                Token::Ne => BinOp::Ne,
                Token::Lt => BinOp::Lt,
                Token::Le => BinOp::Le,
                Token::Gt => BinOp::Gt,
                Token::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let r = self.add_expr()?;
            l = Expr::Bin(op, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn add_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinOp::Add,
                Token::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let r = self.mul_expr()?;
            l = Expr::Bin(op, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn mul_expr(&mut self) -> Result<Expr, CompileError> {
        let mut l = self.unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinOp::Mul,
                Token::Slash => BinOp::Div,
                Token::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let r = self.unary()?;
            l = Expr::Bin(op, Box::new(l), Box::new(r));
        }
        Ok(l)
    }

    fn unary(&mut self) -> Result<Expr, CompileError> {
        match self.peek() {
            Token::Minus => {
                self.bump();
                Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)))
            }
            Token::Not => {
                self.bump();
                Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, CompileError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Token::Arrow => {
                    let line = self.line();
                    self.bump();
                    let name = self.ident("field name")?;
                    e = Expr::Field { obj: Box::new(e), name, line };
                }
                Token::LBracket => {
                    let line = self.line();
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Token::RBracket, "`]`")?;
                    e = Expr::Index { arr: Box::new(e), idx: Box::new(idx), line };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, CompileError> {
        let line = self.line();
        match self.bump() {
            Token::Int(n) => Ok(Expr::Int(n)),
            Token::KwNull => Ok(Expr::Null),
            Token::LParen => {
                let e = self.expr()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(e)
            }
            Token::KwNewRegion => {
                self.expect(Token::LParen, "`(`")?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::NewRegion)
            }
            Token::KwTraditionalRegion => {
                self.expect(Token::LParen, "`(`")?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::TraditionalRegion)
            }
            Token::KwNewSubregion => {
                self.expect(Token::LParen, "`(`")?;
                let r = self.expr()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::NewSubregion(Box::new(r)))
            }
            Token::KwDeleteRegion => {
                self.expect(Token::LParen, "`(`")?;
                let r = self.expr()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::DeleteRegion(Box::new(r), line))
            }
            Token::KwRegionOf => {
                self.expect(Token::LParen, "`(`")?;
                let r = self.expr()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::RegionOf(Box::new(r), line))
            }
            Token::KwAssert => {
                self.expect(Token::LParen, "`(`")?;
                let e = self.expr()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::Assert(Box::new(e), line))
            }
            Token::KwRalloc => {
                self.expect(Token::LParen, "`(`")?;
                let region = self.expr()?;
                self.expect(Token::Comma, "`,`")?;
                let ty = self.alloc_type()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::Ralloc { region: Box::new(region), ty, line })
            }
            Token::KwRarrayAlloc => {
                self.expect(Token::LParen, "`(`")?;
                let region = self.expr()?;
                self.expect(Token::Comma, "`,`")?;
                let count = self.expr()?;
                self.expect(Token::Comma, "`,`")?;
                let ty = self.alloc_type()?;
                self.expect(Token::RParen, "`)`")?;
                Ok(Expr::RarrayAlloc { region: Box::new(region), count: Box::new(count), ty, line })
            }
            Token::Ident(name) => {
                if *self.peek() == Token::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Token::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == Token::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Token::RParen, "`)`")?;
                    Ok(Expr::Call { name, args, line })
                } else {
                    Ok(Expr::Var(name, line))
                }
            }
            other => Err(self.err(format!("expected an expression, found {other:?}"))),
        }
    }

    /// The type argument of `ralloc`/`rarrayalloc`: `struct T` or `int`
    /// (no `*` — it names the *allocated* type, as in the paper's
    /// `ralloc(r, struct rlist)`).
    fn alloc_type(&mut self) -> Result<TypeExpr, CompileError> {
        match self.bump() {
            Token::KwStruct => {
                let name = self.ident("struct name")?;
                Ok(TypeExpr::StructPtr { name, qual: Qual::None })
            }
            Token::KwInt => Ok(TypeExpr::Int),
            other => Err(self.err(format!("expected `struct T` or `int`, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure1() {
        let src = r#"
            struct finfo { int sz; };
            struct rlist {
                struct rlist *sameregion next;
                struct finfo *sameregion data;
            };
            int main() deletes {
                struct rlist *rl;
                struct rlist *last = null;
                region r = newregion();
                int i = 0;
                while (i < 100) {
                    rl = ralloc(r, struct rlist);
                    rl->data = ralloc(r, struct finfo);
                    rl->data->sz = i;
                    rl->next = last;
                    last = rl;
                    i = i + 1;
                }
                deleteregion(r);
                return 0;
            }
        "#;
        let ast = parse(src).unwrap();
        assert_eq!(ast.structs.len(), 2);
        assert_eq!(ast.funcs.len(), 1);
        assert!(ast.funcs[0].deletes);
        assert_eq!(ast.structs[1].fields.len(), 2);
    }

    #[test]
    fn parses_globals_and_arrays() {
        let src = r#"
            struct t { int x; };
            struct t *objects[100];
            int counter;
            region current;
            void f() {
                int stack[16];
                stack[0] = 1;
                objects[3] = null;
            }
        "#;
        let ast = parse(src).unwrap();
        assert_eq!(ast.globals.len(), 3);
        assert_eq!(ast.globals[0].array_len, Some(100));
        assert_eq!(ast.globals[1].array_len, None);
    }

    #[test]
    fn parses_qualifiers() {
        let src = r#"
            struct n {
                struct n *sameregion a;
                struct n *parentptr b;
                struct n *traditional c;
                struct n *d;
            };
        "#;
        let ast = parse(src).unwrap();
        let q = |i: usize| match &ast.structs[0].fields[i].0 {
            TypeExpr::StructPtr { qual, .. } => *qual,
            _ => panic!(),
        };
        assert_eq!(q(0), Qual::SameRegion);
        assert_eq!(q(1), Qual::ParentPtr);
        assert_eq!(q(2), Qual::Traditional);
        assert_eq!(q(3), Qual::None);
    }

    #[test]
    fn sites_are_unique() {
        let src = "void f() { int a; int b; a = 1; b = 2; a = b; }";
        let ast = parse(src).unwrap();
        let mut sites = Vec::new();
        fn collect(e: &Expr, out: &mut Vec<SiteId>) {
            if let Expr::Assign { site, rhs, lhs, .. } = e {
                out.push(*site);
                collect(lhs, out);
                collect(rhs, out);
            }
        }
        for item in &ast.funcs[0].body {
            if let BlockItem::Stmt(Stmt::Expr(e)) = item {
                collect(e, &mut sites);
            }
        }
        sites.sort();
        sites.dedup();
        assert_eq!(sites.len(), 3);
    }

    #[test]
    fn rejects_pointer_to_pointer() {
        assert!(parse("struct t { int x; }; struct t **p;").is_err());
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse("void f() { return 1 }").is_err());
    }

    #[test]
    fn parses_for_loops_and_operators() {
        let src = r#"
            int sum() {
                int s = 0;
                int i;
                for (i = 0; i < 10 && s >= 0; i = i + 1) {
                    s = s + i * 2 % 7 - 1 / 1;
                }
                for (;;) { return s; }
                return -s;
            }
        "#;
        assert!(parse(src).is_ok());
    }

    #[test]
    fn parses_region_api() {
        let src = r#"
            struct t { int x; };
            void f() deletes {
                region r = newregion();
                region s = newsubregion(r);
                struct t *p = ralloc(s, struct t);
                int *a = rarrayalloc(r, 10, int);
                assert(regionof(p) == s);
                deleteregion(s);
                deleteregion(r);
            }
        "#;
        assert!(parse(src).is_ok(), "{:?}", parse(src));
    }
}
