//! Execution configurations: the compiler/allocator matrix of the paper's
//! evaluation.
//!
//! Figure 7 compares five configurations per benchmark — C@ (the authors'
//! previous region compiler), "lea" (malloc/free), "GC" (Boehm–Weiser),
//! "norc" (RC with reference counting disabled) and "RC" — and Figure 8
//! compares four check regimes under RC: `nq` (annotations ignored), `qs`
//! (annotations checked at runtime), `inf` (provably-safe checks removed)
//! and `nc` (all checks unsafely removed).

use region_rt::{CostModel, FaultPlan, NumberingScheme};

/// What the interpreter does when the runtime reports a fault (injected or
/// organic): abort immediately, or trap it — unwind the region stack,
/// release everything except the traditional region, and report a typed
/// [`crate::interp::Outcome::Trapped`] with the heap left audit-clean.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnFault {
    /// Stop at the fault and report [`crate::interp::Outcome::Aborted`]
    /// (the historical behaviour, and the paper's: region failures abort).
    #[default]
    Abort,
    /// Trap the fault: tear down the program's regions, null counted
    /// pointers, and report [`crate::interp::Outcome::Trapped`]. The heap
    /// stays usable and audit-clean afterwards.
    TrapAndUnwind,
}

/// What `deleteregion` does when references remain — the paper's three
/// memory-safety options (§3): abort the program, return a failure code,
/// or defer the deletion until the count drops to zero (GC-like).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeleteSemantics {
    /// Abort the program (the paper's chosen default).
    #[default]
    Abort,
    /// `deleteregion` evaluates to 1 on failure, 0 on success, and the
    /// program continues.
    Fail,
    /// Doom the region; reclaim when the last reference disappears.
    Deferred,
}

/// How annotated pointer stores are treated (Figure 8's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// "nq": the annotations are ignored — every pointer store maintains
    /// reference counts.
    Nq,
    /// "qs": the annotations are used and checked at runtime.
    Qs,
    /// "inf": the constraint inference removed provably-safe checks.
    Inf,
    /// "nc": all runtime checks are (unsafely) removed — the lower bound
    /// on what inference could achieve.
    Nc,
}

/// How `spawn`ed tasks are scheduled (see [`crate::parallel`] and
/// `region_rt::shard`). Because every task runs against its own isolated
/// heap shard and sema forbids any data from crossing the task boundary
/// except the handed-off region and int copies, all three modes produce
/// byte-identical merged telemetry — the modes differ only in *when*
/// bodies execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedMode {
    /// Execute each task body synchronously at its `spawn` point (the
    /// conformance baseline; no threads).
    #[default]
    Inline,
    /// Real threads serialized by a baton: exactly one task runs at a
    /// time, preempted at step granularity with slice lengths drawn from
    /// a per-task SplitMix64 stream seeded here. Different seeds explore
    /// different interleavings; every run with the same seed replays the
    /// same schedule.
    Deterministic {
        /// Root of the per-task slice-length streams.
        seed: u64,
    },
    /// Real `std::thread` pool: at most `workers` tasks (including the
    /// spawning parent) execute concurrently, admission-controlled by a
    /// counting semaphore. Non-deterministic timing, deterministic
    /// results.
    Threads {
        /// Concurrency cap (clamped to at least 1).
        workers: u32,
    },
}

/// Which allocator/runtime backs the execution (Figure 7's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// RC with reference counting enabled.
    Rc,
    /// RC with reference counting disabled ("norc"): fast but unsafe.
    NoRc,
    /// C@, the authors' previous system: no annotations, stack scanning at
    /// `deleteregion`, slower base compiler (lcc vs gcc).
    CAt,
    /// "lea": malloc/free with the region-emulation library.
    Lea,
    /// "GC": the conservative collector with the region-emulation library
    /// (deleteregion drops the object list; the collector reclaims).
    Gc,
}

/// A complete run configuration.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The allocator/runtime.
    pub backend: Backend,
    /// The check regime (only meaningful for [`Backend::Rc`]).
    pub checks: CheckMode,
    /// Interpreter step budget (0 = unlimited); exceeded → the run stops
    /// with [`crate::interp::Outcome::StepLimit`].
    pub step_limit: u64,
    /// GC heap-growth threshold in words.
    pub gc_threshold_words: u64,
    /// Cost constants.
    pub costs: CostModel,
    /// `deleteregion` failure semantics.
    pub delete_semantics: DeleteSemantics,
    /// Hierarchy numbering scheme (ablation knob).
    pub numbering: NumberingScheme,
    /// Telemetry event mask (see [`region_rt::mask`]); 0 = tracing off,
    /// which costs a single predictable branch per instrumented
    /// operation.
    pub trace_mask: u32,
    /// Capacity of the telemetry ring buffer (recent raw events kept;
    /// folded profile totals stay exact regardless).
    pub trace_capacity: usize,
    /// Timeline sampling interval in runtime events (interpreter steps and
    /// runtime operations); 0 = sampling off, which costs a single
    /// predictable branch per instrumented operation.
    pub sample_interval: u64,
    /// Maximum retained timeline samples before decimation.
    pub sample_cap: usize,
    /// Page budget handed to the heap (0 = unlimited): the torture
    /// harness sweeps this to provoke organic out-of-memory conditions.
    pub page_budget: usize,
    /// Deterministic fault-injection plan (empty = no injection, which
    /// costs one predictable branch per instrumented operation).
    pub faults: FaultPlan,
    /// What to do when the runtime faults.
    pub on_fault: OnFault,
    /// Per-site check counting (differential-harness measurement mode,
    /// [`Backend::Rc`] only): every annotated store evaluates its
    /// annotation predicate and tallies the outcome per check site, then
    /// performs the full reference-count update instead of aborting —
    /// observationally identical to [`CheckMode::Nq`]. The tallies come
    /// back in [`crate::interp::RunResult::check_counts`].
    pub count_checks: bool,
    /// Region lifecycle spans ([`region_rt::span`]): model every
    /// `newregion`…`deleteregion` interval as a span with alloc/RC/check
    /// annotations carrying static↔dynamic provenance, verified against
    /// the heap's region tree at run end and returned in
    /// [`crate::interp::RunResult::spans`]. Off by default (one
    /// predictable branch per instrumented operation).
    pub spans: bool,
    /// How `spawn`ed tasks are scheduled; merged results are identical
    /// across all modes (isolation makes the schedule unobservable).
    pub sched: SchedMode,
    /// Post-mortem heap snapshots ([`region_rt::snapshot`]): capture a
    /// byte-deterministic [`region_rt::HeapSnapshot`] at program exit,
    /// after every GC pause, and — on a trapped fault — of the pre-unwind
    /// heap, returned in [`crate::interp::RunResult::snapshots`]. Off by
    /// default; enabling it also publishes allocation sites so snapshots
    /// can attribute retained words to source lines.
    pub snapshots: bool,
}

impl RunConfig {
    fn base(backend: Backend, checks: CheckMode) -> RunConfig {
        RunConfig {
            backend,
            checks,
            step_limit: 500_000_000,
            gc_threshold_words: 4 * 1024,
            costs: CostModel::paper(),
            delete_semantics: DeleteSemantics::Abort,
            numbering: NumberingScheme::RenumberOnCreate,
            trace_mask: 0,
            trace_capacity: region_rt::DEFAULT_RING_CAPACITY,
            sample_interval: 0,
            sample_cap: region_rt::DEFAULT_TIMELINE_CAP,
            page_budget: 0,
            faults: FaultPlan::new(),
            on_fault: OnFault::Abort,
            count_checks: false,
            spans: false,
            sched: SchedMode::Inline,
            snapshots: false,
        }
    }

    /// The same configuration with a chosen task scheduler.
    pub fn with_sched(mut self, sched: SchedMode) -> RunConfig {
        self.sched = sched;
        self
    }

    /// The same configuration under the deterministic (seeded-baton)
    /// scheduler.
    pub fn det_sched(self, seed: u64) -> RunConfig {
        self.with_sched(SchedMode::Deterministic { seed })
    }

    /// The same configuration under the real-thread scheduler with a
    /// concurrency cap.
    pub fn threaded(self, workers: u32) -> RunConfig {
        self.with_sched(SchedMode::Threads { workers })
    }

    /// The same configuration with region lifecycle spans enabled.
    pub fn with_spans(mut self) -> RunConfig {
        self.spans = true;
        self
    }

    /// The same configuration with post-mortem heap snapshots enabled.
    pub fn with_snapshots(mut self) -> RunConfig {
        self.snapshots = true;
        self
    }

    /// The same configuration with per-site check counting enabled.
    pub fn counting_checks(mut self) -> RunConfig {
        self.count_checks = true;
        self
    }

    /// The same configuration with [`OnFault::TrapAndUnwind`] recovery.
    pub fn trapping(mut self) -> RunConfig {
        self.on_fault = OnFault::TrapAndUnwind;
        self
    }

    /// The same configuration with a fault-injection plan installed.
    pub fn with_faults(mut self, plan: FaultPlan) -> RunConfig {
        self.faults = plan;
        self
    }

    /// The same configuration with a heap page budget (0 = unlimited).
    pub fn with_page_budget(mut self, pages: usize) -> RunConfig {
        self.page_budget = pages;
        self
    }

    /// The same configuration with full event tracing enabled.
    pub fn traced(mut self) -> RunConfig {
        self.trace_mask = region_rt::mask::ALL;
        self
    }

    /// The same configuration with timeline sampling enabled at the
    /// default interval.
    pub fn sampled(self) -> RunConfig {
        self.with_sampling(
            region_rt::DEFAULT_SAMPLE_INTERVAL,
            region_rt::DEFAULT_TIMELINE_CAP,
        )
    }

    /// The same configuration with timeline sampling at a chosen interval
    /// (in runtime events) and sample cap.
    pub fn with_sampling(mut self, interval: u64, cap: usize) -> RunConfig {
        self.sample_interval = interval;
        self.sample_cap = cap;
        self
    }

    /// RC with the given check regime.
    pub fn rc(checks: CheckMode) -> RunConfig {
        RunConfig::base(Backend::Rc, checks)
    }

    /// The paper's headline "RC" configuration (annotations + inference).
    pub fn rc_inf() -> RunConfig {
        RunConfig::rc(CheckMode::Inf)
    }

    /// "norc": reference counting disabled.
    pub fn norc() -> RunConfig {
        RunConfig::base(Backend::NoRc, CheckMode::Nc)
    }

    /// C@.
    pub fn cat() -> RunConfig {
        RunConfig::base(Backend::CAt, CheckMode::Nq)
    }

    /// "lea": malloc/free.
    pub fn lea() -> RunConfig {
        RunConfig::base(Backend::Lea, CheckMode::Nc)
    }

    /// "GC": conservative collection.
    pub fn gc() -> RunConfig {
        RunConfig::base(Backend::Gc, CheckMode::Nc)
    }

    /// All five Figure 7 configurations with their display names.
    pub fn figure7() -> Vec<(&'static str, RunConfig)> {
        vec![
            ("C@", RunConfig::cat()),
            ("lea", RunConfig::lea()),
            ("GC", RunConfig::gc()),
            ("norc", RunConfig::norc()),
            ("RC", RunConfig::rc_inf()),
        ]
    }

    /// The four Figure 8 check regimes with their display names.
    pub fn figure8() -> Vec<(&'static str, RunConfig)> {
        vec![
            ("nq", RunConfig::rc(CheckMode::Nq)),
            ("qs", RunConfig::rc(CheckMode::Qs)),
            ("inf", RunConfig::rc(CheckMode::Inf)),
            ("nc", RunConfig::rc(CheckMode::Nc)),
        ]
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::rc_inf()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_cover_the_paper_matrix() {
        assert_eq!(RunConfig::figure7().len(), 5);
        assert_eq!(RunConfig::figure8().len(), 4);
        assert_eq!(RunConfig::rc_inf().backend, Backend::Rc);
        assert_eq!(RunConfig::rc_inf().checks, CheckMode::Inf);
        assert_eq!(RunConfig::default().backend, Backend::Rc);
    }
}
