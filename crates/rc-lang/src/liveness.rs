//! Local-variable liveness for the `deletes` pinning protocol.
//!
//! "When calling a function that may delete a region, RC increments the
//! reference count of all regions referred to by live local variables and
//! decrements these reference counts on return" (paper §3.3.2). Liveness is
//! what makes the protocol usable: in Figure 1, `rl` and `last` still point
//! into region `r` at `deleteregion(r)` — but they are *dead* there, so
//! they are not pinned and the deletion succeeds.
//!
//! This module computes, per function, a *pin set* for every call site
//! (indexed by the `pin` ids minted in [`crate::sema`]): the
//! pointer-typed locals live after the statement containing the call,
//! minus the statement's own assignment target. The interpreter pins the
//! regions of those locals' current (non-null) values around calls to
//! `deletes` functions. The granularity is the enclosing statement — a
//! sound simplification of the paper's optimal-placement scheme, which
//! they found "had little benefit" over a simple approach.

use std::collections::BTreeSet;

use crate::hir::{HExpr, HFunc, HStmt, VarRef};

/// Pin sets for one function, indexed by pin-site id.
#[derive(Debug, Clone, Default)]
pub struct PinSets {
    sets: Vec<Vec<VarRef>>,
}

impl PinSets {
    /// The pointer locals to pin around pin-site `pin`.
    pub fn pins(&self, pin: u32) -> &[VarRef] {
        self.sets.get(pin as usize).map(|v| v.as_slice()).unwrap_or(&[])
    }
}

/// Computes pin sets for every call site in `f`.
pub fn pin_sets(f: &HFunc) -> PinSets {
    let n_pins = count_pins_stmts(&f.body);
    let mut cx = Cx { f, sets: vec![Vec::new(); n_pins as usize], recording: true };
    cx.block(&f.body, BTreeSet::new());
    PinSets { sets: cx.sets }
}

fn count_pins_stmts(stmts: &[HStmt]) -> u32 {
    let mut max = 0;
    for s in stmts {
        visit_stmt(s, &mut |e| {
            if let HExpr::Call { pin, .. } | HExpr::DeleteRegion(_, pin) = e {
                max = max.max(pin + 1);
            }
        });
    }
    max
}

fn visit_stmt(s: &HStmt, f: &mut impl FnMut(&HExpr)) {
    match s {
        HStmt::Expr(e) => visit_expr(e, f),
        HStmt::Return(Some(e)) => visit_expr(e, f),
        HStmt::Return(None) => {}
        HStmt::If(c, a, b) => {
            visit_expr(c, f);
            a.iter().for_each(|s| visit_stmt(s, f));
            b.iter().for_each(|s| visit_stmt(s, f));
        }
        HStmt::While(c, body) => {
            visit_expr(c, f);
            body.iter().for_each(|s| visit_stmt(s, f));
        }
        HStmt::Spawn { body, .. } => body.iter().for_each(|s| visit_stmt(s, f)),
        HStmt::Join => {}
    }
}

fn visit_expr(e: &HExpr, f: &mut impl FnMut(&HExpr)) {
    f(e);
    match e {
        HExpr::Int(_)
        | HExpr::Null(_)
        | HExpr::ReadLocal(_)
        | HExpr::ReadGlobal(_)
        | HExpr::NewRegion
        | HExpr::TraditionalRegion => {}
        HExpr::AssignLocal { val, .. } => visit_expr(val, f),
        HExpr::AssignGlobal { val, .. } => visit_expr(val, f),
        HExpr::ReadField { obj, .. } => visit_expr(obj, f),
        HExpr::AssignField { obj, val, .. } => {
            visit_expr(obj, f);
            visit_expr(val, f);
        }
        HExpr::ReadArraySlot { idx, .. } => visit_expr(idx, f),
        HExpr::AssignArraySlot { idx, val, .. } => {
            visit_expr(idx, f);
            visit_expr(val, f);
        }
        HExpr::PtrElem { ptr, idx, .. } | HExpr::ReadIntElem { ptr, idx } => {
            visit_expr(ptr, f);
            visit_expr(idx, f);
        }
        HExpr::AssignIntElem { ptr, idx, val } => {
            visit_expr(ptr, f);
            visit_expr(idx, f);
            visit_expr(val, f);
        }
        HExpr::Bin(_, l, r) => {
            visit_expr(l, f);
            visit_expr(r, f);
        }
        HExpr::Un(_, inner) | HExpr::Assert(inner) => visit_expr(inner, f),
        HExpr::Call { args, .. } => args.iter().for_each(|a| visit_expr(a, f)),
        HExpr::Ralloc { region, .. } => visit_expr(region, f),
        HExpr::RallocStructArray { region, count, .. }
        | HExpr::RallocIntArray { region, count, .. } => {
            visit_expr(region, f);
            visit_expr(count, f);
        }
        HExpr::NewSubregion(r) | HExpr::DeleteRegion(r, _) | HExpr::RegionOf(r) => {
            visit_expr(r, f)
        }
    }
}

struct Cx<'a> {
    f: &'a HFunc,
    sets: Vec<Vec<VarRef>>,
    recording: bool,
}

impl Cx<'_> {
    /// Backward pass over a block: `live_out` are the variables live after
    /// it; returns the variables live before it.
    fn block(&mut self, stmts: &[HStmt], live_out: BTreeSet<VarRef>) -> BTreeSet<VarRef> {
        let mut live = live_out;
        for s in stmts.iter().rev() {
            live = self.stmt(s, live);
        }
        live
    }

    fn stmt(&mut self, s: &HStmt, live_out: BTreeSet<VarRef>) -> BTreeSet<VarRef> {
        match s {
            HStmt::Expr(e) => {
                let mut live = live_out;
                // Kill an unconditional top-level local assignment before
                // recording: the destination's *old* value must not be
                // pinned.
                if let HExpr::AssignLocal { v, .. } = e {
                    live.remove(v);
                }
                self.record(e, &live);
                add_uses(e, &mut live);
                live
            }
            HStmt::Return(e) => {
                // Nothing in this frame is live after a return.
                let mut live = BTreeSet::new();
                if let Some(e) = e {
                    self.record(e, &live);
                    add_uses(e, &mut live);
                }
                live
            }
            HStmt::If(c, a, b) => {
                let la = self.block(a, live_out.clone());
                let lb = self.block(b, live_out);
                let mut live: BTreeSet<VarRef> = la.union(&lb).copied().collect();
                self.record(c, &live);
                add_uses(c, &mut live);
                live
            }
            HStmt::While(c, body) => {
                // Two rounds reach the fixpoint for reducible single-loop
                // liveness at statement granularity.
                let mut live = live_out.clone();
                for _ in 0..2 {
                    let mut inner: BTreeSet<VarRef> = live.union(&live_out).copied().collect();
                    add_uses(c, &mut inner);
                    let lb = self.block_no_record(body, inner.clone());
                    live = lb.union(&inner).copied().collect();
                }
                // Recording pass with the stable live set.
                let mut inner = live.clone();
                add_uses(c, &mut inner);
                self.record(c, &inner);
                self.block(body, inner.clone());
                inner
            }
            HStmt::Spawn { rvar, body, .. } => {
                // The body runs as a task over a cloned frame, so its call
                // sites take pin sets from the body's own liveness (the
                // task ends after the body — nothing is live out). Captured
                // variables are regions and int scalars, which are never
                // pinned; the parent just keeps the region handle live.
                self.block(body, BTreeSet::new());
                let mut live = live_out;
                live.insert(*rvar);
                live
            }
            HStmt::Join => live_out,
        }
    }

    fn block_no_record(&mut self, stmts: &[HStmt], live_out: BTreeSet<VarRef>) -> BTreeSet<VarRef> {
        // Compute liveness without recording pins (used while iterating
        // loops to a fixpoint); recording happens in a final pass.
        let saved = self.recording;
        self.recording = false;
        let r = self.block(stmts, live_out);
        self.recording = saved;
        r
    }

    /// Records the pin set for every call site in expression `e`: the
    /// pointer-typed locals in `live_out` (the statement-level
    /// continuation).
    fn record(&mut self, e: &HExpr, live_out: &BTreeSet<VarRef>) {
        if !self.recording {
            return;
        }
        let pins: Vec<VarRef> = live_out
            .iter()
            .copied()
            .filter(|&v| {
                let hv = self.f.var(v);
                hv.array_len.is_none() && hv.ty.is_heap_ptr()
            })
            .collect();
        let sets = &mut self.sets;
        visit_expr(e, &mut |node| {
            if let HExpr::Call { pin, .. } | HExpr::DeleteRegion(_, pin) = node {
                sets[*pin as usize] = pins.clone();
            }
        });
    }
}

fn add_uses(e: &HExpr, live: &mut BTreeSet<VarRef>) {
    visit_expr(e, &mut |node| {
        if let HExpr::ReadLocal(v) = node {
            live.insert(*v);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    /// Pin sets of `main`, as variable names, per pin site.
    fn main_pins(src: &str) -> Vec<Vec<String>> {
        let m = compile(src).unwrap();
        let f = m.func(m.main);
        let ps = pin_sets(f);
        ps.sets
            .iter()
            .map(|s| s.iter().map(|&v| f.var(v).name.clone()).collect())
            .collect()
    }

    #[test]
    fn dead_pointers_are_not_pinned_at_delete() {
        // Figure 1: rl/last are dead at deleteregion(r) — no pins.
        let src = r#"
            struct t { struct t *sameregion next; };
            int main() deletes {
                region r = newregion();
                struct t *rl = ralloc(r, struct t);
                struct t *last = rl;
                deleteregion(r);
                return 0;
            }
        "#;
        let pins = main_pins(src);
        assert_eq!(pins.len(), 1);
        assert!(pins[0].is_empty(), "{pins:?}");
    }

    #[test]
    fn live_pointers_are_pinned() {
        let src = r#"
            struct t { int x; };
            static void cleanup(region r) deletes { deleteregion(r); }
            int main() deletes {
                region r = newregion();
                region r2 = newregion();
                struct t *keep = ralloc(r2, struct t);
                cleanup(r);
                keep->x = 1;
                deleteregion(r2);
                return 0;
            }
        "#;
        let pins = main_pins(src);
        // Pin site 0 = cleanup(r): keep is used afterwards → pinned.
        assert_eq!(pins[0], vec!["keep".to_string()]);
        // Pin site 1 = deleteregion(r2): nothing pointer-typed live after.
        assert!(pins[1].is_empty());
    }

    #[test]
    fn assignment_target_is_not_pinned() {
        let src = r#"
            struct t { int x; };
            static struct t *make(region r) deletes { return ralloc(r, struct t); }
            int main() deletes {
                region r = newregion();
                struct t *p = null;
                p = make(r);
                p->x = 1;
                p = null;
                deleteregion(r);
                return 0;
            }
        "#;
        let pins = main_pins(src);
        // p = make(r): p's *old* value must not be pinned even though p is
        // live after the statement.
        assert!(pins[0].is_empty(), "{pins:?}");
    }

    #[test]
    fn loop_carried_pointers_stay_live() {
        let src = r#"
            struct t { int x; };
            static void tick(region scratch) deletes { deleteregion(scratch); }
            int main() deletes {
                region keepr = newregion();
                struct t *acc = ralloc(keepr, struct t);
                int i;
                for (i = 0; i < 3; i = i + 1) {
                    region s = newregion();
                    tick(s);
                    acc->x = acc->x + 1;
                }
                deleteregion(keepr);
                return 0;
            }
        "#;
        let pins = main_pins(src);
        // tick(s): acc is live around the loop → pinned.
        assert_eq!(pins[0], vec!["acc".to_string()]);
        // final deleteregion(keepr): acc dead.
        assert!(pins[1].is_empty());
    }

    #[test]
    fn region_handles_are_never_pinned() {
        // Region-typed locals do not hold pointers to objects *in* the
        // region; they must not block deletion.
        let src = r#"
            static void nuke(region r) deletes { deleteregion(r); }
            int main() deletes {
                region r = newregion();
                nuke(r);
                region dead = r;
                dead = null;
                return 0;
            }
        "#;
        let pins = main_pins(src);
        assert!(pins[0].is_empty(), "{pins:?}");
    }
}
