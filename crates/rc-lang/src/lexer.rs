//! Lexer for the RC dialect.

use crate::error::{CompileError, ErrorKind};
use crate::token::{Spanned, Token};

/// Tokenises RC source text.
///
/// Supports `//` line comments and `/* ... */` block comments, decimal
/// integer literals, identifiers/keywords, and the operator set of
/// [`Token`].
///
/// # Errors
///
/// Returns a [`CompileError`] on an unrecognised character, an unterminated
/// block comment, or an integer literal that does not fit in `i64`.
pub fn lex(src: &str) -> Result<Vec<Spanned>, CompileError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    macro_rules! push {
        ($tok:expr) => {
            out.push(Spanned { tok: $tok, line })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start_line = line;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(CompileError::new(
                            ErrorKind::Lex,
                            start_line,
                            "unterminated block comment",
                        ));
                    }
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: i64 = text.parse().map_err(|_| {
                    CompileError::new(
                        ErrorKind::Lex,
                        line,
                        format!("integer literal `{text}` out of range"),
                    )
                })?;
                push!(Token::Int(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &src[start..i];
                match Token::keyword(word) {
                    Some(t) => push!(t),
                    None => push!(Token::Ident(word.to_string())),
                }
            }
            '{' => {
                push!(Token::LBrace);
                i += 1;
            }
            '}' => {
                push!(Token::RBrace);
                i += 1;
            }
            '(' => {
                push!(Token::LParen);
                i += 1;
            }
            ')' => {
                push!(Token::RParen);
                i += 1;
            }
            '[' => {
                push!(Token::LBracket);
                i += 1;
            }
            ']' => {
                push!(Token::RBracket);
                i += 1;
            }
            ';' => {
                push!(Token::Semi);
                i += 1;
            }
            ',' => {
                push!(Token::Comma);
                i += 1;
            }
            '*' => {
                push!(Token::Star);
                i += 1;
            }
            '+' => {
                push!(Token::Plus);
                i += 1;
            }
            '%' => {
                push!(Token::Percent);
                i += 1;
            }
            '/' => {
                push!(Token::Slash);
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(Token::Arrow);
                    i += 2;
                } else {
                    push!(Token::Minus);
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Token::Eq);
                    i += 2;
                } else {
                    push!(Token::Assign);
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Token::Ne);
                    i += 2;
                } else {
                    push!(Token::Not);
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Token::Le);
                    i += 2;
                } else {
                    push!(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Token::Ge);
                    i += 2;
                } else {
                    push!(Token::Gt);
                    i += 1;
                }
            }
            '&' if bytes.get(i + 1) == Some(&b'&') => {
                push!(Token::AndAnd);
                i += 2;
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                push!(Token::OrOr);
                i += 2;
            }
            other => {
                return Err(CompileError::new(
                    ErrorKind::Lex,
                    line,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    out.push(Spanned { tok: Token::Eof, line });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lexes_figure1_fragment() {
        let t = toks("struct rlist { struct rlist *sameregion next; } *rl;");
        assert_eq!(
            t,
            vec![
                Token::KwStruct,
                Token::Ident("rlist".into()),
                Token::LBrace,
                Token::KwStruct,
                Token::Ident("rlist".into()),
                Token::Star,
                Token::KwSameRegion,
                Token::Ident("next".into()),
                Token::Semi,
                Token::RBrace,
                Token::Star,
                Token::Ident("rl".into()),
                Token::Semi,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        let t = toks("a->b == c != d <= e >= f && g || !h");
        assert!(t.contains(&Token::Arrow));
        assert!(t.contains(&Token::Eq));
        assert!(t.contains(&Token::Ne));
        assert!(t.contains(&Token::Le));
        assert!(t.contains(&Token::Ge));
        assert!(t.contains(&Token::AndAnd));
        assert!(t.contains(&Token::OrOr));
        assert!(t.contains(&Token::Not));
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let s = lex("// one\n/* two\nthree */ x").unwrap();
        assert_eq!(s[0].tok, Token::Ident("x".into()));
        assert_eq!(s[0].line, 3);
    }

    #[test]
    fn unterminated_comment_is_an_error() {
        assert!(lex("/* nope").is_err());
    }

    #[test]
    fn bad_character_is_an_error() {
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn huge_literal_is_an_error() {
        assert!(lex("99999999999999999999999999").is_err());
    }
}
