//! The typed high-level IR produced by semantic analysis.
//!
//! All names are resolved to indices, every expression is typed, `for`
//! loops are desugared to `while`, and declarations with initialisers have
//! become assignments. Both back ends — the rlang translator
//! ([`crate::to_rlang`]) and the interpreter ([`crate::interp`]) — consume
//! this form, which is what keeps the statically-analysed program and the
//! executed program in sync: they share [`SiteId`]s minted by the parser.

use crate::ast::Qual;
pub use rlang::SiteId;

/// Index of a struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructRef(pub u32);

/// Index of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncRef(pub u32);

/// Index of a global.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalRef(pub u32);

/// Index of a variable within a function (parameters first, then locals —
/// the same numbering the rlang translation uses for its abstract
/// regions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarRef(pub u32);

/// A resolved RC type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RcType {
    /// `int`
    Int,
    /// `region`
    Region,
    /// `struct T *qual`
    Ptr {
        /// Target struct.
        target: StructRef,
        /// Pointer qualifier.
        qual: Qual,
    },
    /// `int *qual` (pointer to an int array)
    IntPtr(Qual),
}

impl RcType {
    /// The qualifier if this is a pointer type.
    pub fn qual(self) -> Option<Qual> {
        match self {
            RcType::Ptr { qual, .. } => Some(qual),
            RcType::IntPtr(q) => Some(q),
            _ => None,
        }
    }

    /// Whether values of this type are heap pointers (structs or int
    /// arrays) — the things reference counting is about.
    pub fn is_heap_ptr(self) -> bool {
        matches!(self, RcType::Ptr { .. } | RcType::IntPtr(_))
    }

    /// Whether values carry an address at all (pointers or region
    /// handles).
    pub fn is_addr(self) -> bool {
        self.is_heap_ptr() || matches!(self, RcType::Region)
    }
}

/// A struct definition.
#[derive(Debug, Clone, PartialEq)]
pub struct HStruct {
    /// Name.
    pub name: String,
    /// Fields in order (one word each).
    pub fields: Vec<HField>,
}

/// A struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct HField {
    /// Name.
    pub name: String,
    /// Type.
    pub ty: RcType,
}

/// A global variable (scalar or array).
#[derive(Debug, Clone, PartialEq)]
pub struct HGlobal {
    /// Name.
    pub name: String,
    /// Element type (the scalar's type when not an array).
    pub ty: RcType,
    /// `Some(n)` for arrays.
    pub array_len: Option<u32>,
}

/// A variable (parameter or local).
#[derive(Debug, Clone, PartialEq)]
pub struct HVar {
    /// Name.
    pub name: String,
    /// Element type.
    pub ty: RcType,
    /// `Some(n)` for local arrays (storage in the traditional region for
    /// the call's duration, like a C stack array).
    pub array_len: Option<u32>,
}

/// A function.
#[derive(Debug, Clone, PartialEq)]
pub struct HFunc {
    /// Name.
    pub name: String,
    /// Declared `deletes`.
    pub deletes: bool,
    /// Visible outside the file (non-`static`, or `main`).
    pub exported: bool,
    /// Parameters.
    pub params: Vec<HVar>,
    /// Locals (declaration order, flattened across blocks).
    pub locals: Vec<HVar>,
    /// Return type (None = void).
    pub ret: Option<RcType>,
    /// Body.
    pub body: Vec<HStmt>,
}

impl HFunc {
    /// Looks up a variable.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn var(&self, v: VarRef) -> &HVar {
        let i = v.0 as usize;
        if i < self.params.len() {
            &self.params[i]
        } else {
            &self.locals[i - self.params.len()]
        }
    }

    /// Total variable count.
    pub fn var_count(&self) -> usize {
        self.params.len() + self.locals.len()
    }
}

/// The base storage of an indexable array variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrayBase {
    /// A local array (`T x[N];`).
    Local(VarRef),
    /// A global array (`T g[N];`).
    Global(GlobalRef),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum HStmt {
    /// Expression statement.
    Expr(HExpr),
    /// `if`.
    If(HExpr, Vec<HStmt>, Vec<HStmt>),
    /// `while`.
    While(HExpr, Vec<HStmt>),
    /// `return`.
    Return(Option<HExpr>),
    /// `spawn r { ... }`: run the body as a task with exclusive ownership
    /// of `rvar`'s region subtree. Sema guarantees the body touches only
    /// that subtree, int-typed captures (copied by value), and
    /// spawn-safe callees — see [`crate::sema`].
    Spawn {
        /// The region variable handed to the task.
        rvar: VarRef,
        /// The task body.
        body: Vec<HStmt>,
        /// Source line, for telemetry attribution.
        line: u32,
    },
    /// `join;`: block until every task spawned so far by this function
    /// activation has finished, reclaiming their regions.
    Join,
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum HExpr {
    /// Integer literal.
    Int(i64),
    /// `null`, typed by context.
    Null(RcType),
    /// Read a scalar variable.
    ReadLocal(VarRef),
    /// Read a scalar global.
    ReadGlobal(GlobalRef),
    /// `x = e` for a local.
    AssignLocal {
        /// Variable.
        v: VarRef,
        /// Value.
        val: Box<HExpr>,
    },
    /// `g = e` for a scalar global — a heap store into the traditional
    /// region's globals block.
    AssignGlobal {
        /// Global.
        g: GlobalRef,
        /// Value.
        val: Box<HExpr>,
        /// Shared program point.
        site: SiteId,
    },
    /// `obj->field` read.
    ReadField {
        /// Object.
        obj: Box<HExpr>,
        /// Struct.
        s: StructRef,
        /// Field index.
        field: u32,
    },
    /// `obj->field = e`.
    AssignField {
        /// Object.
        obj: Box<HExpr>,
        /// Struct.
        s: StructRef,
        /// Field index.
        field: u32,
        /// Value.
        val: Box<HExpr>,
        /// Shared program point.
        site: SiteId,
    },
    /// `arr[i]` where `arr` is a declared array variable: reads the slot.
    ReadArraySlot {
        /// The array.
        base: ArrayBase,
        /// Index.
        idx: Box<HExpr>,
        /// Element type.
        elem: RcType,
    },
    /// `arr[i] = e` for a declared array variable.
    AssignArraySlot {
        /// The array.
        base: ArrayBase,
        /// Index.
        idx: Box<HExpr>,
        /// Value.
        val: Box<HExpr>,
        /// Element type.
        elem: RcType,
        /// Shared program point.
        site: SiteId,
    },
    /// `p[i]` where `p: struct T*` — the address of the i-th element of a
    /// `rarrayalloc`'d struct array (pointer arithmetic; region-preserving).
    PtrElem {
        /// Array base pointer.
        ptr: Box<HExpr>,
        /// Index.
        idx: Box<HExpr>,
        /// Element struct.
        s: StructRef,
    },
    /// `p[i]` read where `p: int*`.
    ReadIntElem {
        /// Array base pointer.
        ptr: Box<HExpr>,
        /// Index.
        idx: Box<HExpr>,
    },
    /// `p[i] = e` where `p: int*`.
    AssignIntElem {
        /// Array base pointer.
        ptr: Box<HExpr>,
        /// Index.
        idx: Box<HExpr>,
        /// Value.
        val: Box<HExpr>,
    },
    /// Binary operation (`&&`/`||` short-circuit).
    Bin(crate::ast::BinOp, Box<HExpr>, Box<HExpr>),
    /// Unary operation.
    Un(crate::ast::UnOp, Box<HExpr>),
    /// Call to a user function.
    Call {
        /// Callee.
        f: FuncRef,
        /// Arguments.
        args: Vec<HExpr>,
        /// Pin-site index (per function) for the `deletes` local-pinning
        /// protocol; see [`crate::liveness`].
        pin: u32,
    },
    /// `ralloc(r, struct T)`.
    Ralloc {
        /// Region handle.
        region: Box<HExpr>,
        /// Struct.
        s: StructRef,
        /// Source line, for telemetry attribution.
        line: u32,
    },
    /// `rarrayalloc(r, n, struct T)`.
    RallocStructArray {
        /// Region handle.
        region: Box<HExpr>,
        /// Element count.
        count: Box<HExpr>,
        /// Struct.
        s: StructRef,
        /// Source line, for telemetry attribution.
        line: u32,
    },
    /// `rarrayalloc(r, n, int)`.
    RallocIntArray {
        /// Region handle.
        region: Box<HExpr>,
        /// Element count.
        count: Box<HExpr>,
        /// Source line, for telemetry attribution.
        line: u32,
    },
    /// `newregion()`.
    NewRegion,
    /// `traditionalregion()`.
    TraditionalRegion,
    /// `newsubregion(r)`.
    NewSubregion(Box<HExpr>),
    /// `deleteregion(r)` (void). Carries a pin-site index like calls —
    /// `deleteregion` is itself a `deletes` operation.
    DeleteRegion(Box<HExpr>, u32),
    /// `regionof(x)`.
    RegionOf(Box<HExpr>),
    /// `assert(e)` (void; aborts when false).
    Assert(Box<HExpr>),
}

/// A whole checked module.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Structs.
    pub structs: Vec<HStruct>,
    /// Globals.
    pub globals: Vec<HGlobal>,
    /// Functions.
    pub funcs: Vec<HFunc>,
    /// Entry point.
    pub main: FuncRef,
    /// Total number of assignment sites minted by the parser.
    pub n_sites: u32,
    /// Source line of each assignment site (indexed by
    /// [`rlang::SiteId`]), for telemetry attribution; 0 = unknown.
    pub site_lines: Vec<u32>,
}

impl Module {
    /// Looks up a struct.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn struct_def(&self, s: StructRef) -> &HStruct {
        &self.structs[s.0 as usize]
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn func(&self, f: FuncRef) -> &HFunc {
        &self.funcs[f.0 as usize]
    }

    /// Looks up a global.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn global(&self, g: GlobalRef) -> &HGlobal {
        &self.globals[g.0 as usize]
    }
}
