#![warn(missing_docs)]

//! # rc-lang — the RC dialect of C with regions
//!
//! Front end, static analysis glue, and interpreter for **RC**, the
//! region-based dialect of C from Gay & Aiken, *Language Support for
//! Regions* (PLDI 2001).

pub mod ast;
pub mod error;
pub mod hir;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod sema;
pub mod to_rlang;
pub mod token;

pub use error::CompileError;
pub use hir::Module;

/// Parses and checks an RC source file.
///
/// # Errors
///
/// Returns the first lexical, syntax or semantic error.
pub fn compile(src: &str) -> Result<Module, CompileError> {
    let ast = parser::parse(src)?;
    sema::check(&ast)
}

pub mod config;
pub mod interp;
pub mod liveness;
pub mod parallel;
pub mod supervise;

pub use config::{Backend, CheckMode, DeleteSemantics, OnFault, RunConfig, SchedMode};
pub use interp::{prepare, run, run_audited, Compiled, Outcome, RunResult};
pub use supervise::{
    supervise, supervise_compiled, AttemptReport, RecoveryPolicy, Rung, SupervisionOutcome,
    SupervisionReport,
};
pub use to_rlang::{site_verdicts, SiteVerdict};
