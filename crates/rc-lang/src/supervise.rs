//! Supervised re-execution: checkpoints as *recovery*, not just forensics.
//!
//! [`supervise`] runs a program under trap-and-unwind recovery with
//! post-mortem snapshots armed. When a run traps — an injected fault, an
//! organic out-of-memory under a page budget, a saturated reference
//! count — the supervisor:
//!
//! 1. takes the **checkpoint**: the pre-unwind trap snapshot (or, for
//!    other endings, the last GC/exit capture) from
//!    [`RunResult::snapshots`](crate::interp::RunResult::snapshots);
//! 2. **validates** it by round-tripping through
//!    [`region_rt::Heap::restore`] — the restored heap must verify,
//!    audit and re-snapshot byte-identically, proving the checkpoint is
//!    actionable state and not just a log line;
//! 3. applies the next rung of the [`RecoveryPolicy`] — a page-budget
//!    escalation or a step down the `qs → nq → norc` degradation
//!    ladder — burns the scheduled virtual-cycle backoff, and
//!    re-executes.
//!
//! Every attempt is recorded in a typed, JSON-exportable
//! [`SupervisionReport`]: the trigger fault, the rung applied, the
//! cycles burned, the checkpoint verdict and the outcome. The report
//! ends [`Completed`](SupervisionOutcome::Completed) (an attempt
//! exited), [`PolicyExhausted`](SupervisionOutcome::PolicyExhausted)
//! (attempts or rungs ran out while still trapping) or
//! [`Unrecoverable`](SupervisionOutcome::Unrecoverable) (an ending
//! re-execution cannot help: abort, assertion failure, step limit).
//! Everything is virtual-clock deterministic: the same source, config
//! and policy produce a byte-identical rendered report. The
//! `recovery-matrix` binary in rc-bench sweeps this over the Figure 7
//! workloads; see `docs/ROBUSTNESS.md`.

use std::fmt;

use region_rt::{Heap, Json};

use crate::config::{Backend, CheckMode, RunConfig};
use crate::error::CompileError;
use crate::interp::{prepare, run_audited, Compiled, Outcome};

/// One rung of the recovery ladder: the configuration adjustment applied
/// before a re-execution attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rung {
    /// Raise the heap page budget to this many pages (0 lifts it).
    PageBudget(usize),
    /// Step down the degradation ladder: `qs` re-runs with annotations
    /// unchecked (`nq`).
    DegradeNq,
    /// Final ladder step: reference counting off entirely (`norc`) —
    /// gives up safety checks to let the program complete.
    DegradeNoRc,
}

impl Rung {
    /// Applies the rung to a configuration.
    fn apply(self, cfg: &mut RunConfig) {
        match self {
            Rung::PageBudget(pages) => cfg.page_budget = pages,
            Rung::DegradeNq => cfg.checks = CheckMode::Nq,
            Rung::DegradeNoRc => {
                cfg.backend = Backend::NoRc;
                cfg.checks = CheckMode::Nc;
            }
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rung::PageBudget(0) => write!(f, "page-budget=unlimited"),
            Rung::PageBudget(pages) => write!(f, "page-budget={pages}"),
            Rung::DegradeNq => write!(f, "degrade=nq"),
            Rung::DegradeNoRc => write!(f, "degrade=norc"),
        }
    }
}

/// A recovery policy: how many attempts the supervisor may spend, the
/// virtual-cycle backoff between them, and the rungs it may climb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Total attempts allowed, including the first (min 1).
    pub max_attempts: u32,
    /// Virtual-cycle backoff before retry *n* (`backoff_cycles[n-1]`;
    /// the last entry repeats; empty = no backoff). Backoff burns the
    /// supervisor's virtual clock, not wall time.
    pub backoff_cycles: Vec<u64>,
    /// Page-budget escalation steps, tried in order. Steps that do not
    /// actually loosen the starting budget are skipped (raising an
    /// unlimited budget is meaningless).
    pub page_budget_steps: Vec<usize>,
    /// Whether to walk the `qs → nq → norc` degradation ladder after the
    /// page-budget rungs are spent.
    pub degrade: bool,
}

impl RecoveryPolicy {
    /// The standard policy: five attempts, exponential virtual backoff,
    /// no page-budget escalation, degradation ladder on.
    pub fn standard() -> RecoveryPolicy {
        RecoveryPolicy {
            max_attempts: 5,
            backoff_cycles: vec![1_000, 10_000, 100_000],
            page_budget_steps: Vec::new(),
            degrade: true,
        }
    }

    /// A bare policy: one attempt, no rungs — supervision as observation.
    pub fn none() -> RecoveryPolicy {
        RecoveryPolicy {
            max_attempts: 1,
            backoff_cycles: Vec::new(),
            page_budget_steps: Vec::new(),
            degrade: false,
        }
    }

    /// The same policy with the given attempt cap.
    pub fn with_max_attempts(mut self, n: u32) -> RecoveryPolicy {
        self.max_attempts = n;
        self
    }

    /// The same policy with page-budget escalation steps.
    pub fn with_page_budget_steps(mut self, steps: Vec<usize>) -> RecoveryPolicy {
        self.page_budget_steps = steps;
        self
    }

    /// The backoff burned before retry `n` (1-based; 0 = the first run,
    /// which never waits).
    pub fn backoff_for(&self, retry: u32) -> u64 {
        if retry == 0 || self.backoff_cycles.is_empty() {
            return 0;
        }
        let i = (retry as usize - 1).min(self.backoff_cycles.len() - 1);
        self.backoff_cycles[i]
    }

    /// The rung sequence for a run starting from `config`: applicable
    /// page-budget escalations first, then the degradation ladder from
    /// the configuration's position on it.
    pub fn rungs_for(&self, config: &RunConfig) -> Vec<Rung> {
        let mut rungs = Vec::new();
        if config.page_budget != 0 {
            let mut budget = config.page_budget;
            for &step in &self.page_budget_steps {
                if step == 0 || step > budget {
                    rungs.push(Rung::PageBudget(step));
                    budget = step;
                    if step == 0 {
                        break;
                    }
                }
            }
        }
        if self.degrade && config.backend == Backend::Rc {
            if config.checks == CheckMode::Qs {
                rungs.push(Rung::DegradeNq);
            }
            rungs.push(Rung::DegradeNoRc);
        }
        rungs
    }

    /// Encodes the policy as one JSON object (embedded in the report).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("max_attempts", Json::U(self.max_attempts as u64)),
            ("backoff_cycles", Json::A(self.backoff_cycles.iter().map(|&c| Json::U(c)).collect())),
            (
                "page_budget_steps",
                Json::A(self.page_budget_steps.iter().map(|&p| Json::U(p as u64)).collect()),
            ),
            ("degrade", Json::Bool(self.degrade)),
        ])
    }
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attempts<={}", self.max_attempts)?;
        if !self.backoff_cycles.is_empty() {
            write!(f, " backoff={:?}", self.backoff_cycles)?;
        }
        if !self.page_budget_steps.is_empty() {
            write!(f, " budgets={:?}", self.page_budget_steps)?;
        }
        if self.degrade {
            write!(f, " ladder=qs>nq>norc")?;
        }
        Ok(())
    }
}

/// How a supervised execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisionOutcome {
    /// Some attempt ran to an orderly exit.
    Completed,
    /// Every allowed attempt trapped; the policy has no rungs (or
    /// attempts) left.
    PolicyExhausted,
    /// An attempt ended in a way re-execution cannot help: an abort, an
    /// assertion failure, or the step limit.
    Unrecoverable,
}

impl SupervisionOutcome {
    /// The serialized tag.
    pub fn as_str(self) -> &'static str {
        match self {
            SupervisionOutcome::Completed => "completed",
            SupervisionOutcome::PolicyExhausted => "policy-exhausted",
            SupervisionOutcome::Unrecoverable => "unrecoverable",
        }
    }
}

impl fmt::Display for SupervisionOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One supervised attempt: what ran, what triggered recovery, and the
/// checkpoint verdict.
#[derive(Debug, Clone)]
pub struct AttemptReport {
    /// 1-based attempt number.
    pub attempt: u32,
    /// The rung applied before this attempt (`"initial"` for the first).
    pub rung: String,
    /// Virtual-cycle backoff burned before this attempt started.
    pub backoff_cycles: u64,
    /// How the attempt ended: `exit`, `trapped`, `aborted`,
    /// `assert-failed` or `step-limit`.
    pub outcome: String,
    /// The typed error's stable kind tag, for trapped/aborted attempts.
    pub error_kind: Option<String>,
    /// Total fault injections that fired during the attempt.
    pub injected: u64,
    /// Ordinal of the triggering injection on its plane (0 = organic).
    pub trigger_op: u64,
    /// Virtual time of the triggering injection (0 = organic).
    pub trigger_at: u64,
    /// Whether the end-of-attempt heap audit passed.
    pub audit_clean: bool,
    /// Virtual cycles the attempt itself burned.
    pub cycles: u64,
    /// Interpreter steps executed.
    pub steps: u64,
    /// The checkpoint's capture reason (`trap`, `exit` or `gc`), if the
    /// attempt produced any snapshot.
    pub checkpoint: Option<String>,
    /// Whether the checkpoint restored: [`Heap::restore`] succeeded,
    /// which gates verification, audit and the re-snapshot fixpoint.
    pub checkpoint_ok: bool,
    /// Live words captured in the checkpoint (0 without one).
    pub checkpoint_live_words: u64,
}

impl AttemptReport {
    /// Encodes the attempt as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("attempt", Json::U(self.attempt as u64)),
            ("rung", Json::s(&*self.rung)),
            ("backoff_cycles", Json::U(self.backoff_cycles)),
            ("outcome", Json::s(&*self.outcome)),
            (
                "error_kind",
                match &self.error_kind {
                    Some(k) => Json::s(&**k),
                    None => Json::Null,
                },
            ),
            ("injected", Json::U(self.injected)),
            ("trigger_op", Json::U(self.trigger_op)),
            ("trigger_at", Json::U(self.trigger_at)),
            ("audit_clean", Json::Bool(self.audit_clean)),
            ("cycles", Json::U(self.cycles)),
            ("steps", Json::U(self.steps)),
            (
                "checkpoint",
                match &self.checkpoint {
                    Some(r) => Json::s(&**r),
                    None => Json::Null,
                },
            ),
            ("checkpoint_ok", Json::Bool(self.checkpoint_ok)),
            ("checkpoint_live_words", Json::U(self.checkpoint_live_words)),
        ])
    }
}

impl fmt::Display for AttemptReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} [{}] {}{}",
            self.attempt,
            self.rung,
            self.outcome,
            match &self.error_kind {
                Some(k) => format!(" ({k})"),
                None => String::new(),
            },
        )?;
        if let Some(ck) = &self.checkpoint {
            write!(
                f,
                " checkpoint={ck}:{}",
                if self.checkpoint_ok { "restored" } else { "UNRESTORABLE" }
            )?;
        }
        write!(f, " cycles={}", self.cycles)
    }
}

/// The full supervision record: every attempt plus the verdict.
#[derive(Debug, Clone)]
pub struct SupervisionReport {
    /// How supervision ended.
    pub outcome: SupervisionOutcome,
    /// Exit code of the completing attempt, when [`SupervisionOutcome::Completed`].
    pub final_exit: Option<i64>,
    /// Every attempt, in execution order (never empty).
    pub attempts: Vec<AttemptReport>,
    /// Virtual cycles burned executing attempts.
    pub run_cycles: u64,
    /// Virtual cycles burned backing off between attempts.
    pub backoff_cycles: u64,
    /// The policy that governed the run (echoed into the artifact).
    pub policy: RecoveryPolicy,
}

impl SupervisionReport {
    /// Total virtual cycles the supervised execution consumed.
    pub fn total_cycles(&self) -> u64 {
        self.run_cycles + self.backoff_cycles
    }

    /// Whether the program completed only *because* of recovery (a retry
    /// exited after at least one trap).
    pub fn recovered(&self) -> bool {
        self.outcome == SupervisionOutcome::Completed && self.attempts.len() > 1
    }

    /// Whether every checkpoint taken along the way proved restorable.
    pub fn checkpoints_ok(&self) -> bool {
        self.attempts.iter().all(|a| a.checkpoint.is_none() || a.checkpoint_ok)
    }

    /// Encodes the report as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("outcome", Json::s(self.outcome.as_str())),
            (
                "final_exit",
                match self.final_exit {
                    Some(c) => Json::I(c),
                    None => Json::Null,
                },
            ),
            ("run_cycles", Json::U(self.run_cycles)),
            ("backoff_cycles", Json::U(self.backoff_cycles)),
            ("total_cycles", Json::U(self.total_cycles())),
            ("recovered", Json::Bool(self.recovered())),
            ("checkpoints_ok", Json::Bool(self.checkpoints_ok())),
            ("policy", self.policy.to_json()),
            ("attempts", Json::A(self.attempts.iter().map(AttemptReport::to_json).collect())),
        ])
    }
}

impl fmt::Display for SupervisionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "supervision: {} after {} attempt(s), {} cycles ({} backoff)",
            self.outcome,
            self.attempts.len(),
            self.total_cycles(),
            self.backoff_cycles,
        )?;
        for a in &self.attempts {
            writeln!(f, "  {a}")?;
        }
        Ok(())
    }
}

/// Compiles `source` and supervises its execution under `policy`.
///
/// # Errors
///
/// Returns the first compile error; execution failures are *data* — they
/// land in the report, never in `Err`.
pub fn supervise(
    source: &str,
    config: &RunConfig,
    policy: &RecoveryPolicy,
) -> Result<SupervisionReport, CompileError> {
    Ok(supervise_compiled(&prepare(source)?, config, policy))
}

/// Supervises an already-compiled program (the recovery matrix compiles
/// each workload once and sweeps policies).
///
/// Snapshots and trap-and-unwind recovery are forced on regardless of
/// `config`: without them there is no checkpoint to recover from.
pub fn supervise_compiled(
    c: &Compiled,
    config: &RunConfig,
    policy: &RecoveryPolicy,
) -> SupervisionReport {
    let base = config.clone().with_snapshots().trapping();
    let mut rungs = policy.rungs_for(&base).into_iter();
    let mut cfg = base.clone();
    let mut attempts: Vec<AttemptReport> = Vec::new();
    let mut run_cycles = 0u64;
    let mut backoff_total = 0u64;
    let mut next_rung = "initial".to_string();
    let mut next_backoff = 0u64;
    let mut outcome = SupervisionOutcome::PolicyExhausted;
    let mut final_exit = None;
    let max = policy.max_attempts.max(1);

    for attempt in 1..=max {
        // The fault plan's arm state is consumed by a run; every attempt
        // re-installs the original plan so injections replay identically.
        let mut acfg = cfg.clone();
        acfg.faults = base.faults.clone();
        let r = run_audited(c, &acfg);
        run_cycles += r.cycles;

        let (tag, error_kind) = match &r.outcome {
            Outcome::Exit(_) => ("exit", None),
            Outcome::Trapped(e) => ("trapped", Some(e.kind_name().to_string())),
            Outcome::Aborted(e) => ("aborted", Some(e.kind_name().to_string())),
            Outcome::AssertFailed => ("assert-failed", None),
            Outcome::StepLimit => ("step-limit", None),
        };
        let first = r.faults.as_ref().and_then(|f| f.first());
        // The checkpoint is the last capture: the pre-unwind trap
        // snapshot for trapped runs, else the exit/GC state.
        let checkpoint = r.snapshots.last();
        let (ck_reason, ck_ok, ck_words) = match checkpoint {
            Some(s) => (
                Some(s.reason.as_str().to_string()),
                Heap::restore(s).is_ok(),
                s.stats.live_words,
            ),
            None => (None, false, 0),
        };
        attempts.push(AttemptReport {
            attempt,
            rung: next_rung.clone(),
            backoff_cycles: next_backoff,
            outcome: tag.to_string(),
            error_kind,
            injected: r.faults.as_ref().map_or(0, |f| f.total_injected() as u64),
            trigger_op: first.map_or(0, |f| f.op),
            trigger_at: first.map_or(0, |f| f.at),
            audit_clean: matches!(r.audit, Some(Ok(()))),
            cycles: r.cycles,
            steps: r.steps,
            checkpoint: ck_reason,
            checkpoint_ok: ck_ok,
            checkpoint_live_words: ck_words,
        });

        match &r.outcome {
            Outcome::Exit(code) => {
                final_exit = Some(*code);
                outcome = SupervisionOutcome::Completed;
                break;
            }
            Outcome::Trapped(_) => {
                if attempt == max {
                    outcome = SupervisionOutcome::PolicyExhausted;
                    break;
                }
                match rungs.next() {
                    Some(rung) => {
                        rung.apply(&mut cfg);
                        next_rung = rung.to_string();
                        next_backoff = policy.backoff_for(attempt);
                        backoff_total += next_backoff;
                    }
                    None => {
                        outcome = SupervisionOutcome::PolicyExhausted;
                        break;
                    }
                }
            }
            _ => {
                outcome = SupervisionOutcome::Unrecoverable;
                break;
            }
        }
    }

    SupervisionReport {
        outcome,
        final_exit,
        attempts,
        run_cycles,
        backoff_cycles: backoff_total,
        policy: policy.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use region_rt::{FaultMode, FaultPlan};

    const LOOPER: &str = r#"
        struct cell { int v; };
        int main() deletes {
            int i;
            int total = 0;
            for (i = 0; i < 40; i = i + 1) {
                region r = newregion();
                struct cell *p = ralloc(r, struct cell);
                p->v = i;
                total = total + p->v;
                deleteregion(r);
            }
            return 0;
        }
    "#;

    #[test]
    fn clean_run_completes_on_the_first_attempt() {
        let rep =
            supervise(LOOPER, &RunConfig::rc_inf(), &RecoveryPolicy::standard()).unwrap();
        assert_eq!(rep.outcome, SupervisionOutcome::Completed);
        assert_eq!(rep.final_exit, Some(0));
        assert_eq!(rep.attempts.len(), 1);
        assert_eq!(rep.attempts[0].rung, "initial");
        assert_eq!(rep.attempts[0].outcome, "exit");
        assert_eq!(rep.attempts[0].checkpoint.as_deref(), Some("exit"));
        assert!(rep.attempts[0].checkpoint_ok, "exit checkpoint must restore");
        assert!(!rep.recovered());
        assert!(rep.checkpoints_ok());
        assert_eq!(rep.backoff_cycles, 0);
    }

    #[test]
    fn sticky_fault_exhausts_the_policy_with_restorable_checkpoints() {
        let cfg = RunConfig::rc_inf()
            .with_faults(FaultPlan::new().fail_alloc(FaultMode::Schedule(vec![5])).sticky());
        let policy = RecoveryPolicy::standard().with_max_attempts(3);
        let rep = supervise(LOOPER, &cfg, &policy).unwrap();
        assert_eq!(rep.outcome, SupervisionOutcome::PolicyExhausted);
        // inf has a single ladder rung (norc), so the policy is out of
        // rungs after the second trap even though attempts remain.
        assert_eq!(rep.attempts.len(), 2);
        for a in &rep.attempts {
            assert_eq!(a.outcome, "trapped", "{a}");
            assert!(a.audit_clean, "post-trap audit must pass");
            assert_eq!(a.checkpoint.as_deref(), Some("trap"));
            assert!(a.checkpoint_ok, "trap checkpoint must restore: {a}");
            assert!(a.injected > 0);
            assert_eq!(a.trigger_op, 5);
        }
        // Rungs applied in order: the qs ladder was skipped (config is
        // inf), so norc came first.
        assert_eq!(rep.attempts[1].rung, "degrade=norc");
        // Backoff schedule consumed.
        assert_eq!(rep.attempts[1].backoff_cycles, 1_000);
        assert_eq!(rep.backoff_cycles, 1_000);
        assert!(rep.final_exit.is_none());
    }

    #[test]
    fn one_shot_fault_recovers_on_retry() {
        // Non-sticky: the injection fires once per armed plan; the retry
        // re-installs the plan, but degradation to norc skips the RC
        // allocation path sufficiency differently — what matters is the
        // schedule replays deterministically and the retry completes.
        let cfg = RunConfig::rc_inf()
            .with_faults(FaultPlan::new().fail_alloc(FaultMode::Schedule(vec![10_000])).sticky());
        let rep = supervise(LOOPER, &cfg, &RecoveryPolicy::standard()).unwrap();
        // The schedule never fires (op 10000 unreached): clean completion.
        assert_eq!(rep.outcome, SupervisionOutcome::Completed);
        assert_eq!(rep.attempts.len(), 1);
        assert_eq!(rep.attempts[0].injected, 0);
        assert_eq!(rep.attempts[0].trigger_op, 0);
    }

    #[test]
    fn page_budget_escalation_recovers_an_organic_oom() {
        let cfg = RunConfig::rc_inf().with_page_budget(1);
        let policy = RecoveryPolicy::standard().with_page_budget_steps(vec![2, 64, 0]);
        let rep = supervise(LOOPER, &cfg, &policy).unwrap();
        assert_eq!(rep.outcome, SupervisionOutcome::Completed, "{rep}");
        assert!(rep.recovered(), "completion must come from an escalated retry");
        assert!(rep.attempts[0].outcome == "trapped");
        assert!(rep.attempts.iter().any(|a| a.rung.starts_with("page-budget=")));
        assert!(rep.checkpoints_ok());
    }

    #[test]
    fn qs_ladder_walks_nq_before_norc() {
        let policy = RecoveryPolicy::standard();
        let rungs = policy.rungs_for(&RunConfig::rc(CheckMode::Qs));
        assert_eq!(rungs, vec![Rung::DegradeNq, Rung::DegradeNoRc]);
        let rungs = policy.rungs_for(&RunConfig::rc(CheckMode::Nq));
        assert_eq!(rungs, vec![Rung::DegradeNoRc]);
        let rungs = policy.rungs_for(&RunConfig::lea());
        assert!(rungs.is_empty(), "non-RC backends have no ladder");
        // Budget steps that don't loosen the budget are skipped; 0
        // (unlimited) terminates the escalation.
        let cfg = RunConfig::rc(CheckMode::Qs).with_page_budget(8);
        let policy = policy.with_page_budget_steps(vec![4, 16, 0, 9999]);
        assert_eq!(
            policy.rungs_for(&cfg),
            vec![
                Rung::PageBudget(16),
                Rung::PageBudget(0),
                Rung::DegradeNq,
                Rung::DegradeNoRc,
            ]
        );
    }

    #[test]
    fn backoff_schedule_clamps_to_its_last_entry() {
        let p = RecoveryPolicy::standard();
        assert_eq!(p.backoff_for(0), 0);
        assert_eq!(p.backoff_for(1), 1_000);
        assert_eq!(p.backoff_for(3), 100_000);
        assert_eq!(p.backoff_for(99), 100_000);
        assert_eq!(RecoveryPolicy::none().backoff_for(5), 0);
    }

    #[test]
    fn display_and_json_cover_every_variant() {
        // Exhaustive: every Rung and SupervisionOutcome variant has a
        // stable rendering (no wildcard — adding a variant fails here or
        // fails to compile).
        for rung in [
            Rung::PageBudget(0),
            Rung::PageBudget(64),
            Rung::DegradeNq,
            Rung::DegradeNoRc,
        ] {
            let s = match rung {
                Rung::PageBudget(_) | Rung::DegradeNq | Rung::DegradeNoRc => rung.to_string(),
            };
            assert!(!s.is_empty());
        }
        assert_eq!(Rung::PageBudget(0).to_string(), "page-budget=unlimited");
        assert_eq!(Rung::PageBudget(64).to_string(), "page-budget=64");
        assert_eq!(Rung::DegradeNq.to_string(), "degrade=nq");
        assert_eq!(Rung::DegradeNoRc.to_string(), "degrade=norc");
        for o in [
            SupervisionOutcome::Completed,
            SupervisionOutcome::PolicyExhausted,
            SupervisionOutcome::Unrecoverable,
        ] {
            let tag = match o {
                SupervisionOutcome::Completed => "completed",
                SupervisionOutcome::PolicyExhausted => "policy-exhausted",
                SupervisionOutcome::Unrecoverable => "unrecoverable",
            };
            assert_eq!(o.as_str(), tag);
            assert_eq!(o.to_string(), tag);
        }

        // The policy's Display and JSON carry every field.
        let policy = RecoveryPolicy::standard()
            .with_max_attempts(7)
            .with_page_budget_steps(vec![8, 0]);
        let shown = policy.to_string();
        for needle in ["attempts<=7", "backoff=", "budgets=", "ladder=qs>nq>norc"] {
            assert!(shown.contains(needle), "{shown:?} missing {needle}");
        }
        let pj = policy.to_json();
        for key in ["max_attempts", "backoff_cycles", "page_budget_steps", "degrade"] {
            assert!(pj.get(key).is_some(), "policy JSON missing {key}");
        }

        // A real report round-trips every attempt field through JSON and
        // renders each attempt line.
        let rep = supervise(LOOPER, &RunConfig::rc_inf(), &policy).unwrap();
        let shown = rep.to_string();
        assert!(shown.contains("supervision: completed"));
        assert!(shown.contains("#1 [initial] exit"));
        let doc = rep.to_json();
        for key in [
            "outcome",
            "final_exit",
            "run_cycles",
            "backoff_cycles",
            "total_cycles",
            "recovered",
            "checkpoints_ok",
            "policy",
            "attempts",
        ] {
            assert!(doc.get(key).is_some(), "report JSON missing {key}");
        }
        let attempt = &doc.get("attempts").and_then(Json::as_array).unwrap()[0];
        for key in [
            "attempt",
            "rung",
            "backoff_cycles",
            "outcome",
            "error_kind",
            "injected",
            "trigger_op",
            "trigger_at",
            "audit_clean",
            "cycles",
            "steps",
            "checkpoint",
            "checkpoint_ok",
            "checkpoint_live_words",
        ] {
            assert!(attempt.get(key).is_some(), "attempt JSON missing {key}");
        }
    }

    #[test]
    fn report_json_is_deterministic_and_self_describing() {
        let cfg = RunConfig::rc_inf()
            .with_faults(FaultPlan::new().fail_alloc(FaultMode::Schedule(vec![5])).sticky());
        let policy = RecoveryPolicy::standard().with_max_attempts(2);
        let a = supervise(LOOPER, &cfg, &policy).unwrap().to_json().render_pretty();
        let b = supervise(LOOPER, &cfg, &policy).unwrap().to_json().render_pretty();
        assert_eq!(a, b, "same inputs must produce byte-identical reports");
        let doc = Json::parse(&a).unwrap();
        assert_eq!(doc.get("outcome").and_then(Json::as_str), Some("policy-exhausted"));
        assert!(doc.get("policy").is_some());
        assert_eq!(doc.get("attempts").and_then(Json::as_array).map(|a| a.len()), Some(2));
    }
}
