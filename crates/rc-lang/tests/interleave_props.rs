//! Interleaving exploration: the deterministic scheduler under many
//! seeds must be observationally identical to the inline baseline.
//!
//! Region ownership transfer is the whole argument for the parallel
//! design — once a `spawn` moves a region subtree into its own shard,
//! no interleaving of task execution can be observed from outside. This
//! harness makes that claim empirical: 48 SplitMix64-derived baton
//! seeds each drive [`rc_lang::RunConfig::det_sched`] over a fixed
//! spawn/join program (straight tasks, a nested spawn, an in-task
//! subregion), and every schedule must produce
//!
//! - the same outcome as the inline baseline,
//! - a clean post-join heap audit,
//! - *byte-identical* merged telemetry (stats, virtual cycles, steps,
//!   handoffs), and
//! - a structurally well-formed merged span tree.

use rc_lang::{prepare, run_audited, Outcome, RunConfig};

/// Three top-level tasks: a list builder with an in-task subregion, a
/// task that spawns a nested task in a region it declares itself, and a
/// pure accumulator. Every task asserts its own invariants internally —
/// shards are separate heaps, so the parent cannot inspect child-built
/// data after the join.
const PROGRAM: &str = "
struct node { int v; struct node *sameregion next; };

int main() deletes {
    region a = newregion();
    region b = newregion();
    region c = newregion();
    spawn a {
        struct node *h = null;
        int q;
        for (q = 0; q < 12; q = q + 1) {
            struct node *m = ralloc(a, struct node);
            m->v = q * 3;
            m->next = h;
            h = m;
        }
        if (h != null) { assert(h->v == 33); }
        region a2 = newsubregion(a);
        struct node *x = ralloc(a2, struct node);
        x->v = 7;
        assert(x->v == 7);
        deleteregion(a2);
    }
    spawn b {
        region b2 = newregion();
        spawn b2 {
            struct node *y = ralloc(b2, struct node);
            y->v = 5;
            assert(y->v == 5);
        }
        join;
        struct node *z = ralloc(b, struct node);
        z->v = 1;
        assert(z->v == 1);
        deleteregion(b2);
    }
    spawn c {
        struct node *h = null;
        int w = 0;
        int q;
        for (q = 0; q < 6; q = q + 1) {
            struct node *m = ralloc(c, struct node);
            m->v = q;
            m->next = h;
            h = m;
            w = w + m->v;
        }
        assert(w == 15);
    }
    join;
    deleteregion(c);
    deleteregion(b);
    deleteregion(a);
    return 3;
}
";

/// Sebastiano Vigna's SplitMix64 — the standard seed sequencer, so the
/// 48 baton seeds are well-scattered rather than consecutive integers.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[test]
fn every_seeded_schedule_matches_the_inline_baseline() {
    let compiled = prepare(PROGRAM).expect("compiles");
    let base_cfg = RunConfig::rc_inf().with_spans();
    let base = run_audited(&compiled, &base_cfg);
    assert!(matches!(base.outcome, Outcome::Exit(3)), "baseline: {:?}", base.outcome);
    assert_eq!(base.audit, Some(Ok(())), "baseline audit");
    assert_eq!(base.handoffs.len(), 4, "three top-level spawns plus one nested");

    let mut state = 0x0ddc_0ffe_e000_1dea_u64;
    for i in 0..48 {
        let seed = splitmix64(&mut state);
        let cfg = RunConfig::rc_inf().det_sched(seed).with_spans();
        let r = run_audited(&compiled, &cfg);

        assert!(
            matches!(r.outcome, Outcome::Exit(3)),
            "schedule {i} (seed {seed:#x}): outcome {:?}",
            r.outcome
        );
        assert_eq!(r.audit, Some(Ok(())), "schedule {i} (seed {seed:#x}): audit");
        assert_eq!(r.stats, base.stats, "schedule {i} (seed {seed:#x}): merged stats");
        assert_eq!(r.cycles, base.cycles, "schedule {i} (seed {seed:#x}): virtual cycles");
        assert_eq!(r.steps, base.steps, "schedule {i} (seed {seed:#x}): steps");
        assert_eq!(r.handoffs, base.handoffs, "schedule {i} (seed {seed:#x}): handoffs");

        let spans = r.spans.as_deref().expect("spans were requested");
        spans
            .structurally_well_formed()
            .unwrap_or_else(|e| panic!("schedule {i} (seed {seed:#x}): malformed spans: {e}"));
    }
}

#[test]
fn seeded_schedules_are_individually_reproducible() {
    // The baton seed fully determines the schedule: the same seed twice
    // must give byte-identical telemetry (this is what lets a CI failure
    // under seed N be replayed locally under seed N).
    let compiled = prepare(PROGRAM).expect("compiles");
    for seed in [1u64, 0xdead_beef, u64::MAX] {
        let cfg = RunConfig::rc_inf().det_sched(seed).with_spans();
        let a = run_audited(&compiled, &cfg);
        let b = run_audited(&compiled, &cfg);
        assert!(matches!(a.outcome, Outcome::Exit(3)));
        assert!(matches!(b.outcome, Outcome::Exit(3)));
        assert_eq!(a.stats, b.stats, "seed {seed:#x}");
        assert_eq!(a.cycles, b.cycles, "seed {seed:#x}");
        assert_eq!(a.handoffs, b.handoffs, "seed {seed:#x}");
        assert_eq!(a.spans, b.spans, "seed {seed:#x}: span trees");
    }
}
