//! End-to-end telemetry through the interpreter: tracing a real program
//! must fold to totals that exactly equal the run's `Stats`, attribute
//! events to the source lines that caused them, and never perturb the
//! run itself.

use rc_lang::interp::{prepare, run};
use rc_lang::{CheckMode, RunConfig};
use region_rt::mask;

/// The paper's Figure 1 program (nested sameregion list), with known
/// line numbers: the rallocs sit on lines 12 and 13, the annotated
/// stores on lines 13–15.
const FIG1: &str = "\
struct finfo { int sz; };
struct rlist {
    struct rlist *sameregion next;
    struct finfo *sameregion data;
};
int main() deletes {
    struct rlist *rl;
    struct rlist *last = null;
    region r = newregion();
    int i; int total = 0;
    for (i = 0; i < 50; i = i + 1) {
        rl = ralloc(r, struct rlist);
        rl->data = ralloc(r, struct finfo);
        rl->data->sz = i;
        rl->next = last;
        last = rl;
    }
    while (last != null) {
        total = total + last->data->sz;
        last = last->next;
    }
    deleteregion(r);
    return total;
}
";

#[test]
fn traced_profile_totals_equal_stats() {
    let c = prepare(FIG1).unwrap();
    // qs so the annotated stores actually execute checks.
    let r = run(&c, &RunConfig::rc(CheckMode::Qs).traced());
    assert_eq!(r.outcome, rc_lang::interp::Outcome::Exit((0..50).sum()));
    let p = r.profile().expect("tracing was on");
    let s = &r.stats;
    assert_eq!(p.totals.allocs, s.objects_allocated);
    assert_eq!(p.totals.alloc_words, s.words_allocated);
    assert_eq!(p.totals.rc_updates_full, s.rc_updates_full);
    assert_eq!(p.totals.rc_updates_same, s.rc_updates_same);
    assert_eq!(p.totals.checks_sameregion, s.checks_sameregion);
    assert_eq!(p.totals.checks_parentptr, s.checks_parentptr);
    assert_eq!(p.totals.checks_traditional, s.checks_traditional);
    assert_eq!(p.totals.regions_created, s.regions_created);
    assert_eq!(p.totals.regions_deleted, s.regions_deleted);
    assert_eq!(p.totals.gc_collections, s.gc_collections);
    assert!(p.totals.checks_total() > 0, "qs must have run checks");
}

#[test]
fn events_attribute_to_the_right_source_lines() {
    let c = prepare(FIG1).unwrap();
    let r = run(&c, &RunConfig::rc(CheckMode::Qs).traced());
    let p = r.profile().unwrap();
    // The two rallocs in the loop body, 50 iterations each.
    let l12 = p.sites().find(|s| s.line == 12).expect("ralloc on line 12");
    assert_eq!(l12.allocs, 50);
    let l13 = p.sites().find(|s| s.line == 13).expect("ralloc + store on line 13");
    assert_eq!(l13.allocs, 50);
    // Lines 13 and 15 hold the sameregion stores (`rl->data = …` and
    // `rl->next = …`): one check each per iteration under qs.
    assert_eq!(l13.checks_sameregion, 50);
    let l15 = p.sites().find(|s| s.line == 15).expect("store on line 15");
    assert_eq!(l15.checks_sameregion, 50);
    // The hot-check-site table surfaces those lines first.
    let hot = p.hot_check_sites(5);
    assert!(!hot.is_empty());
    let hot_lines: Vec<u32> = hot.iter().map(|s| s.line).collect();
    assert!(hot_lines.contains(&13) && hot_lines.contains(&15), "{hot_lines:?}");
}

#[test]
fn tracing_does_not_perturb_the_run() {
    let c = prepare(FIG1).unwrap();
    let plain = run(&c, &RunConfig::rc_inf());
    let traced = run(&c, &RunConfig::rc_inf().traced());
    assert_eq!(plain.outcome, traced.outcome);
    assert_eq!(plain.stats, traced.stats, "telemetry must be observation-only");
    assert_eq!(plain.cycles, traced.cycles);
    assert!(plain.tracer.is_none());
    assert!(traced.tracer.is_some());
}

#[test]
fn flamegraph_renders_the_subregion_hierarchy() {
    let src = "\
struct t { int x; };
int main() deletes {
    region outer = newregion();
    region mid = newsubregion(outer);
    region inner = newsubregion(mid);
    struct t *a = ralloc(outer, struct t);
    struct t *b = ralloc(mid, struct t);
    struct t *c = ralloc(inner, struct t);
    c->x = 1; b->x = 2; a->x = 3;
    a = null; b = null; c = null;
    deleteregion(inner);
    deleteregion(mid);
    deleteregion(outer);
    return 0;
}
";
    let c = prepare(src).unwrap();
    let r = run(&c, &RunConfig::rc_inf().traced());
    assert!(r.outcome.is_exit(), "{:?}", r.outcome);
    let fg = r.profile().unwrap().flamegraph();
    // Successive user regions are nested one level deeper each.
    let depth_of = |rname: &str| {
        fg.lines()
            .find(|l| l.trim_start().starts_with(rname))
            .map(|l| l.len() - l.trim_start().len())
            .unwrap_or_else(|| panic!("{rname} missing from flamegraph:\n{fg}"))
    };
    let (d1, d2, d3) = (depth_of("r1"), depth_of("r2"), depth_of("r3"));
    assert!(d1 < d2 && d2 < d3, "nesting not reflected: {d1} {d2} {d3}\n{fg}");
}

#[test]
fn masked_tracing_filters_event_kinds() {
    let c = prepare(FIG1).unwrap();
    let mut cfg = RunConfig::rc(CheckMode::Qs);
    cfg.trace_mask = mask::CHECK_RUN;
    let r = run(&c, &cfg);
    let t = r.tracer.as_ref().unwrap();
    assert!(t.recorded() > 0);
    assert_eq!(r.profile().unwrap().totals.allocs, 0, "alloc events masked out");
}

#[test]
fn sampling_does_not_perturb_the_run_and_aligns_sites() {
    let c = prepare(FIG1).unwrap();
    let plain = run(&c, &RunConfig::rc(CheckMode::Qs));
    let sampled = run(&c, &RunConfig::rc(CheckMode::Qs).with_sampling(64, 64));
    assert_eq!(plain.outcome, sampled.outcome);
    assert_eq!(plain.stats, sampled.stats, "sampling must be observation-only");
    assert_eq!(plain.cycles, sampled.cycles);
    assert!(plain.timeline.is_none());
    let tl = sampled.timeline.as_ref().expect("timeline present when sampling on");
    assert!(tl.len() > 3, "interval 64 over this run must yield several samples");
    let s = tl.samples();
    // Virtual time is monotone across snapshots and the windowed cycle
    // deltas re-sum to the last snapshot's clock.
    assert!(s.windows(2).all(|w| w[0].at_cycles <= w[1].at_cycles));
    let total: u64 = s.iter().map(|x| x.d_cycles).sum();
    assert_eq!(total, s.last().unwrap().at_cycles);
    // Snapshots align with source phases: the samples taken inside the
    // allocation loop carry its line numbers (the loop body spans lines
    // 12–16 of FIG1).
    assert!(
        s.iter().any(|x| (12..=16).contains(&x.site)),
        "no sample attributed to the hot loop: {:?}",
        s.iter().map(|x| x.site).collect::<Vec<_>>()
    );
}
