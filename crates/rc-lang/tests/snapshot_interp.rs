//! End-to-end heap snapshots through the interpreter: every capture point
//! (exit, GC pause, trap) must produce a self-consistent snapshot whose
//! totals agree with the run's `Stats`, byte-for-byte deterministically.

use rc_lang::interp::{prepare, run, Outcome};
use rc_lang::RunConfig;
use region_rt::{FaultMode, FaultPlan, HeapSnapshot, Json, SnapshotReason};

const FIG1: &str = "\
struct finfo { int sz; };
struct rlist {
    struct rlist *sameregion next;
    struct finfo *sameregion data;
};
int main() deletes {
    struct rlist *rl;
    struct rlist *last = null;
    region r = newregion();
    int i; int total = 0;
    for (i = 0; i < 50; i = i + 1) {
        rl = ralloc(r, struct rlist);
        rl->data = ralloc(r, struct finfo);
        rl->data->sz = i;
        rl->next = last;
        last = rl;
    }
    while (last != null) {
        total = total + last->data->sz;
        last = last->next;
    }
    deleteregion(r);
    return total;
}
";

/// Keeps a region alive to exit so the snapshot has live words to show.
const LEAKY: &str = "\
struct cell { int v; };
int main() {
    region r = newregion();
    struct cell *c = ralloc(r, struct cell);
    c->v = 7;
    return c->v;
}
";

#[test]
fn exit_snapshot_matches_stats_and_round_trips() {
    let c = prepare(LEAKY).unwrap();
    let r = run(&c, &RunConfig::rc_inf().with_spans().with_snapshots());
    assert_eq!(r.outcome, Outcome::Exit(7));
    assert_eq!(r.snapshots.len(), 1, "one exit snapshot");
    let snap = &r.snapshots[0];
    assert_eq!(snap.reason, SnapshotReason::Exit);
    assert_eq!(snap.stats, r.stats);
    assert_eq!(snap.total_live_words(), r.stats.live_words);
    assert!(snap.region_live_words() > 0, "the leaked region shows up");
    // The ralloc on line 4 owns the leaked cell.
    assert!(
        snap.sites.iter().any(|s| s.site == 4 && s.words > 0),
        "leak attributed to line 4: {:?}",
        snap.sites
    );
    let doc = Json::parse(&snap.render()).unwrap();
    assert_eq!(&HeapSnapshot::from_json(&doc).unwrap(), snap);
}

#[test]
fn snapshots_are_byte_deterministic_across_runs() {
    let c = prepare(FIG1).unwrap();
    let cfg = RunConfig::rc_inf().with_spans().with_snapshots();
    let a = run(&c, &cfg);
    let b = run(&c, &cfg);
    assert_eq!(a.snapshots.len(), b.snapshots.len());
    for (x, y) in a.snapshots.iter().zip(&b.snapshots) {
        assert_eq!(x.render(), y.render());
    }
}

#[test]
fn gc_backend_captures_a_snapshot_per_pause() {
    let c = prepare(FIG1).unwrap();
    let mut cfg = RunConfig::gc().with_snapshots();
    cfg.gc_threshold_words = 64; // force several collections
    let r = run(&c, &cfg);
    assert!(matches!(r.outcome, Outcome::Exit(_)));
    let gc_snaps =
        r.snapshots.iter().filter(|s| s.reason == SnapshotReason::Gc).count() as u64;
    assert_eq!(gc_snaps, r.stats.gc_collections, "one snapshot per pause");
    assert_eq!(r.snapshots.last().unwrap().reason, SnapshotReason::Exit);
    for s in &r.snapshots {
        assert_eq!(
            s.total_live_words(),
            s.stats.live_words,
            "identity holds at every pause"
        );
    }
}

#[test]
fn trapped_run_dumps_the_pre_unwind_heap() {
    let c = prepare(FIG1).unwrap();
    let cfg = RunConfig::rc_inf()
        .with_snapshots()
        .trapping()
        .with_faults(FaultPlan::new().fail_alloc(FaultMode::Schedule(vec![10])).sticky());
    let r = run(&c, &cfg);
    assert!(matches!(r.outcome, Outcome::Trapped(_)));
    assert_eq!(r.snapshots.len(), 1, "the trap snapshot is the last word");
    let snap = &r.snapshots[0];
    assert_eq!(snap.reason, SnapshotReason::Trap);
    assert!(
        snap.region_live_words() > 0,
        "captured before the unwind released the regions"
    );
    assert_eq!(snap.total_live_words(), snap.stats.live_words);
    // Deterministic even through the fault path.
    let again = run(&c, &cfg);
    assert_eq!(again.snapshots[0].render(), snap.render());
}

#[test]
fn snapshots_off_means_empty_and_unperturbed() {
    let c = prepare(FIG1).unwrap();
    let plain = run(&c, &RunConfig::rc_inf());
    assert!(plain.snapshots.is_empty());
    let observed = run(&c, &RunConfig::rc_inf().with_snapshots());
    assert_eq!(plain.stats, observed.stats, "capture charges no cycles");
    assert_eq!(plain.cycles, observed.cycles);
}
