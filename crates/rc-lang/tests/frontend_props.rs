//! Robustness properties of the RC front end: the compiler must never
//! panic — any input is either accepted or rejected with a diagnostic —
//! and accepted programs must run deterministically.

use proptest::prelude::*;
use rc_lang::interp::{prepare, run, Outcome};
use rc_lang::RunConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the lexer/parser/sema pipeline.
    #[test]
    fn compiler_never_panics_on_garbage(src in "\\PC{0,200}") {
        let _ = rc_lang::compile(&src);
    }

    /// Token-shaped soup (keywords, punctuation, idents) never panics.
    #[test]
    fn compiler_never_panics_on_token_soup(
        toks in proptest::collection::vec(
            prop_oneof![
                Just("struct"), Just("int"), Just("region"), Just("if"),
                Just("while"), Just("return"), Just("deletes"), Just("null"),
                Just("sameregion"), Just("parentptr"), Just("traditional"),
                Just("ralloc"), Just("newregion"), Just("deleteregion"),
                Just("{"), Just("}"), Just("("), Just(")"), Just(";"),
                Just("*"), Just("="), Just("=="), Just("->"), Just("["),
                Just("]"), Just(","), Just("x"), Just("main"), Just("7"),
            ],
            0..60,
        )
    ) {
        let src = toks.join(" ");
        let _ = rc_lang::compile(&src);
    }

    /// A generated family of straight-line list programs: compile, run
    /// under RC and under lea, and agree on the exit code.
    #[test]
    fn generated_list_programs_agree_across_backends(
        n in 1..40u32,
        vals in proptest::collection::vec(0..100i64, 1..8),
    ) {
        let stores: String = vals
            .iter()
            .enumerate()
            .map(|(i, v)| format!("n->v = n->v + {v} * {};\n", i + 1))
            .collect();
        let src = format!(
            r#"
            struct cell {{ int v; struct cell *sameregion next; }};
            int main() deletes {{
                region r = newregion();
                struct cell *list = null;
                int i;
                for (i = 0; i < {n}; i = i + 1) {{
                    struct cell *n = ralloc(r, struct cell);
                    n->v = i;
                    {stores}
                    n->next = list;
                    list = n;
                }}
                int sum = 0;
                while (list != null) {{ sum = (sum + list->v) % 65536; list = list->next; }}
                deleteregion(r);
                return sum;
            }}
            "#
        );
        let c = prepare(&src).expect("generated program compiles");
        let rc = run(&c, &RunConfig::rc_inf());
        let lea = run(&c, &RunConfig::lea());
        let (Outcome::Exit(a), Outcome::Exit(b)) = (&rc.outcome, &lea.outcome) else {
            panic!("runs did not exit: {:?} / {:?}", rc.outcome, lea.outcome);
        };
        prop_assert_eq!(a, b);
        // Everything was in one region: all sameregion checks eliminated.
        prop_assert_eq!(rc.stats.checks_sameregion, 0);
    }

    /// Run determinism: the same compiled program under the same config
    /// produces identical stats.
    #[test]
    fn runs_are_deterministic(n in 1..30u32) {
        let src = format!(
            r#"
            struct t {{ int x; struct t *next; }};
            int main() deletes {{
                region a = newregion();
                region b = newregion();
                struct t *p = ralloc(a, struct t);
                int i;
                for (i = 0; i < {n}; i = i + 1) {{
                    struct t *q = ralloc(b, struct t);
                    p->next = q;
                    q->x = i;
                }}
                p->next = null;
                p = null;
                deleteregion(b);
                deleteregion(a);
                return 0;
            }}
            "#
        );
        let c = prepare(&src).expect("compiles");
        let r1 = run(&c, &RunConfig::rc_inf());
        let r2 = run(&c, &RunConfig::rc_inf());
        prop_assert_eq!(r1.outcome, r2.outcome);
        prop_assert_eq!(r1.stats, r2.stats);
        prop_assert_eq!(r1.cycles, r2.cycles);
    }
}
