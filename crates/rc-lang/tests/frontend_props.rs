//! Robustness properties of the RC front end: the compiler must never
//! panic — any input is either accepted or rejected with a diagnostic —
//! and accepted programs must run deterministically.
//!
//! The randomness is a hand-rolled SplitMix64 over fixed seeds (the build
//! environment is offline, so no proptest): every failure reproduces by
//! seed, and every run covers exactly the same cases.

use rc_lang::interp::{prepare, run, Outcome};
use rc_lang::RunConfig;

/// SplitMix64: tiny, well-distributed, and deterministic across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }
}

/// Arbitrary byte soup never panics the lexer/parser/sema pipeline.
#[test]
fn compiler_never_panics_on_garbage() {
    for seed in 0..256u64 {
        let mut rng = Rng::new(seed);
        let len = rng.below(201);
        // A mix of printable ASCII, exotic unicode and raw control bytes.
        let src: String = (0..len)
            .map(|_| match rng.below(8) {
                0..=4 => (0x20 + rng.below(0x5F) as u8) as char,
                5 => char::from_u32(rng.next() as u32 % 0xD800).unwrap_or('\u{fffd}'),
                6 => (rng.below(0x20) as u8) as char,
                _ => ['λ', '∀', '🦀', '\u{202e}', '\0', '\t', '\n'][rng.below(7)],
            })
            .collect();
        let _ = rc_lang::compile(&src);
    }
}

/// Token-shaped soup (keywords, punctuation, idents) never panics.
#[test]
fn compiler_never_panics_on_token_soup() {
    const TOKS: &[&str] = &[
        "struct", "int", "region", "if", "while", "return", "deletes", "null", "sameregion",
        "parentptr", "traditional", "ralloc", "newregion", "deleteregion", "{", "}", "(", ")",
        ";", "*", "=", "==", "->", "[", "]", ",", "x", "main", "7",
    ];
    for seed in 0..256u64 {
        let mut rng = Rng::new(0x70C5 ^ seed);
        let n = rng.below(60);
        let src = (0..n).map(|_| TOKS[rng.below(TOKS.len())]).collect::<Vec<_>>().join(" ");
        let _ = rc_lang::compile(&src);
    }
}

/// A generated family of straight-line list programs: compile, run under
/// RC and under lea, and agree on the exit code.
#[test]
fn generated_list_programs_agree_across_backends() {
    for seed in 0..32u64 {
        let mut rng = Rng::new(0x1157 ^ seed);
        let n = rng.range(1, 40);
        let vals: Vec<i64> = (0..rng.range(1, 8)).map(|_| rng.below(100) as i64).collect();
        let stores: String = vals
            .iter()
            .enumerate()
            .map(|(i, v)| format!("n->v = n->v + {v} * {};\n", i + 1))
            .collect();
        let src = format!(
            r#"
            struct cell {{ int v; struct cell *sameregion next; }};
            int main() deletes {{
                region r = newregion();
                struct cell *list = null;
                int i;
                for (i = 0; i < {n}; i = i + 1) {{
                    struct cell *n = ralloc(r, struct cell);
                    n->v = i;
                    {stores}
                    n->next = list;
                    list = n;
                }}
                int sum = 0;
                while (list != null) {{ sum = (sum + list->v) % 65536; list = list->next; }}
                deleteregion(r);
                return sum;
            }}
            "#
        );
        let c = prepare(&src).expect("generated program compiles");
        let rc = run(&c, &RunConfig::rc_inf());
        let lea = run(&c, &RunConfig::lea());
        let (Outcome::Exit(a), Outcome::Exit(b)) = (&rc.outcome, &lea.outcome) else {
            panic!("seed {seed}: runs did not exit: {:?} / {:?}", rc.outcome, lea.outcome);
        };
        assert_eq!(a, b, "seed {seed}: backends disagree");
        // Everything was in one region: all sameregion checks eliminated.
        assert_eq!(rc.stats.checks_sameregion, 0, "seed {seed}");
    }
}

/// Run determinism: the same compiled program under the same config
/// produces identical stats.
#[test]
fn runs_are_deterministic() {
    for seed in 0..16u64 {
        let mut rng = Rng::new(0xDE7E ^ seed);
        let n = rng.range(1, 30);
        let src = format!(
            r#"
            struct t {{ int x; struct t *next; }};
            int main() deletes {{
                region a = newregion();
                region b = newregion();
                struct t *p = ralloc(a, struct t);
                int i;
                for (i = 0; i < {n}; i = i + 1) {{
                    struct t *q = ralloc(b, struct t);
                    p->next = q;
                    q->x = i;
                }}
                p->next = null;
                p = null;
                deleteregion(b);
                deleteregion(a);
                return 0;
            }}
            "#
        );
        let c = prepare(&src).expect("compiles");
        let r1 = run(&c, &RunConfig::rc_inf());
        let r2 = run(&c, &RunConfig::rc_inf());
        assert_eq!(r1.outcome, r2.outcome, "seed {seed}");
        assert_eq!(r1.stats, r2.stats, "seed {seed}");
        assert_eq!(r1.cycles, r2.cycles, "seed {seed}");
    }
}
