//! Diagnostic coverage: every class of compile-time error the RC front
//! end reports, with its phase and message content, plus edge cases of
//! the surface language.

use rc_lang::error::ErrorKind;
use rc_lang::interp::{prepare, run, Outcome};
use rc_lang::RunConfig;

fn err(src: &str) -> rc_lang::CompileError {
    rc_lang::compile(src).expect_err("expected a compile error")
}

fn ok(src: &str) {
    rc_lang::compile(src).unwrap_or_else(|e| panic!("should compile: {e}"));
}

// ---- lexical --------------------------------------------------------

#[test]
fn lex_errors() {
    assert_eq!(err("int main() { return 0 @ 1; }").kind, ErrorKind::Lex);
    assert_eq!(err("/* unterminated").kind, ErrorKind::Lex);
    assert_eq!(err("int x = 99999999999999999999;").kind, ErrorKind::Lex);
}

// ---- syntactic ------------------------------------------------------

#[test]
fn parse_errors() {
    for src in [
        "int main() { return 0 }",              // missing semicolon
        "int main( { return 0; }",               // bad parameter list
        "struct t { int x; }",                   // missing `;` after struct
        "int main() { if return; }",             // bad condition
        "struct t { int x; }; struct t **p;",    // pointer to pointer
        "int main() { int a[0]; return 0; }",    // zero-length array
        "void g(void x) { }",                    // void parameter
        "int main() { ralloc(1); return 0; }",   // ralloc arity
    ] {
        assert_eq!(err(src).kind, ErrorKind::Parse, "src: {src}");
    }
}

// ---- semantic -------------------------------------------------------

#[test]
fn sema_errors_name_resolution() {
    assert!(err("int main() { return y; }").msg.contains("unknown variable"));
    assert!(err("int main() { g(); return 0; }").msg.contains("unknown function"));
    assert!(err("struct a { struct b *p; }; int main() { return 0; }")
        .msg
        .contains("unknown struct"));
    assert!(err("struct t { int x; int x; }; int main() { return 0; }")
        .msg
        .contains("duplicate field"));
    assert!(err("int g; int g; int main() { return 0; }").msg.contains("duplicate global"));
    assert!(err("void f() {} void f() {} int main() { return 0; }")
        .msg
        .contains("duplicate function"));
}

#[test]
fn sema_errors_types() {
    let t = "struct t { int x; };";
    assert!(err(&format!("{t} int main() {{ struct t *p; return p; }}"))
        .msg
        .contains("type mismatch"));
    assert!(err(&format!("{t} int main() {{ struct t *p; p->nope = 1; return 0; }}"))
        .msg
        .contains("no field"));
    assert!(err(&format!("{t} int main() {{ int x; x->x = 1; return 0; }}"))
        .msg
        .contains("->"));
    assert!(err("int main() { int x; x = null; return 0; }").msg.contains("null"));
    assert!(err("int main() { return 1 + null; }").msg.contains("operator"));
    assert!(err(&format!(
        "{t} int main() {{ region r = newregion(); struct t *p = ralloc(r, struct t); return p[0 ==  1]; }}"
    ))
    .msg
    .contains("type mismatch"), "indexing a struct ptr yields a ptr, not an int");
}

#[test]
fn sema_errors_regions() {
    assert!(err("int main() { deleteregion(3); return 0; }").msg.contains("expected a region"));
    assert!(err("int main() { regionof(4); return 0; }").msg.contains("pointer"));
    assert!(err("struct t { int x; }; int main() { ralloc(7, struct t); return 0; }")
        .msg
        .contains("expected a region"));
}

#[test]
fn sema_errors_deletes_rule() {
    // Direct, indirect, and via-deleteregion each require the qualifier.
    let direct = "int main() { region r = newregion(); deleteregion(r); return 0; }";
    assert!(err(direct).msg.contains("deletes"));
    let indirect = r#"
        static void inner() deletes { region r = newregion(); deleteregion(r); }
        static void middle() { inner(); }
        int main() { return 0; }
    "#;
    assert!(err(indirect).msg.contains("middle"));
}

#[test]
fn sema_errors_returns() {
    assert!(err("void f() { return 3; } int main() { return 0; }")
        .msg
        .contains("void function"));
    assert!(err("static int f() { return; } int main() { return f(); }")
        .msg
        .contains("must return a value"));
}

// ---- accepted edge cases -------------------------------------------

#[test]
fn edge_cases_compile() {
    // Shadowing in nested blocks.
    ok(r#"
        int main() {
            int x = 1;
            { int x = 2; x = x + 1; }
            return x;
        }
    "#);
    // Empty statements and blocks.
    ok("int main() { ;;; {} return 0; }");
    // Deeply nested expressions.
    ok("int main() { return ((((1 + 2) * 3) - 4) / 5) % 6; }");
    // Region arrays.
    ok(r#"
        region pool[4];
        int main() deletes {
            pool[0] = newregion();
            region r = pool[0];
            pool[0] = null;
            deleteregion(r);
            return 0;
        }
    "#);
    // A function named like a variable elsewhere.
    ok(r#"
        static int count() { return 1; }
        int main() { int counted = count(); return counted; }
    "#);
}

#[test]
fn shadowing_runs_correctly() {
    let c = prepare(
        r#"
        int main() {
            int x = 10;
            int sum = 0;
            {
                int x = 1;
                sum = sum + x;
            }
            sum = sum + x;
            return sum;
        }
    "#,
    )
    .unwrap();
    let r = run(&c, &RunConfig::rc_inf());
    assert_eq!(r.outcome, Outcome::Exit(11));
}

#[test]
fn division_by_zero_is_defined() {
    // The dialect defines x/0 = x%0 = 0 (no UB in the interpreter).
    let c = prepare("int main() { int z = 0; return 7 / z + 7 % z; }").unwrap();
    let r = run(&c, &RunConfig::rc_inf());
    assert_eq!(r.outcome, Outcome::Exit(0));
}

#[test]
fn short_circuit_evaluation_observable() {
    // `p != null && p->x == 1` must not dereference a null p.
    let c = prepare(
        r#"
        struct t { int x; };
        int main() {
            struct t *p = null;
            if (p != null && p->x == 1) { return 1; }
            if (p == null || p->x == 2) { return 2; }
            return 3;
        }
    "#,
    )
    .unwrap();
    let r = run(&c, &RunConfig::rc_inf());
    assert_eq!(r.outcome, Outcome::Exit(2));
}

#[test]
fn comparison_chains_and_negation() {
    let c = prepare(
        r#"
        int main() {
            int a = 5;
            int ok = 0;
            if (!(a < 5) && a <= 5 && a >= 5 && a > 4 && a == 5 && a != 6) { ok = 1; }
            return ok - -1;
        }
    "#,
    )
    .unwrap();
    assert_eq!(run(&c, &RunConfig::rc_inf()).outcome, Outcome::Exit(2));
}

#[test]
fn error_lines_are_plausible() {
    let e = err("struct t { int x; };\n\nint main() {\n    unknown = 1;\n    return 0;\n}\n");
    assert_eq!(e.line, 4, "error should point at the offending line: {e}");
}
