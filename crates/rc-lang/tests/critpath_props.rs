//! Critical-path properties under seeded schedules.
//!
//! The work/span analyzer ([`region_rt::critpath_analyze`]) consumes
//! only *structural* scheduler events (task start/end, spawn, join
//! waits), so its verdict must not depend on the baton seed at all —
//! and the per-task reports it consumes must be an exact decomposition
//! of the merged run. 48 SplitMix64-derived baton seeds each drive
//! [`rc_lang::RunConfig::det_sched`] over a fixed spawn/join program
//! (straight tasks plus a nested spawn), checking per seed:
//!
//! - **work identity** — `work` equals Σ per-task cycles *and* the
//!   merged virtual clock (telemetry is an exact shard merge);
//! - **span bounds** — `0 < span ≤ work`, the path decomposes it
//!   exactly (`Σ link lengths == span`, so `work − span ==
//!   overlapped`), and the root executes the path's first link;
//! - **timeline fold** — the per-task timelines merge to byte-identical
//!   JSON with the run's merged timeline;
//! - **reproducibility** — the same seed twice yields byte-identical
//!   per-task report JSON and critical-path JSON.
//!
//! Work, span and the path itself must also be *identical across all 48
//! seeds*: the spawn tree is fixed by program order, not by timing.

use rc_lang::{prepare, run_audited, Outcome, RunConfig};
use region_rt::{critpath_analyze, Json};

/// Two straight tasks plus a task that spawns a nested child: enough
/// tree shape for the path to have real fork/join structure.
const PROGRAM: &str = "
struct node { int v; struct node *sameregion next; };

int main() deletes {
    region a = newregion();
    region b = newregion();
    region c = newregion();
    spawn a {
        struct node *h = null;
        int q;
        for (q = 0; q < 16; q = q + 1) {
            struct node *m = ralloc(a, struct node);
            m->v = q;
            m->next = h;
            h = m;
        }
        if (h != null) { assert(h->v == 15); }
    }
    spawn b {
        region b2 = newregion();
        spawn b2 {
            struct node *y = ralloc(b2, struct node);
            y->v = 5;
            assert(y->v == 5);
        }
        join;
        deleteregion(b2);
    }
    spawn c {
        int w = 0;
        int q;
        for (q = 0; q < 9; q = q + 1) { w = w + q; }
        assert(w == 36);
    }
    join;
    deleteregion(c);
    deleteregion(b);
    deleteregion(a);
    return 3;
}
";

/// Sebastiano Vigna's SplitMix64 — the standard seed sequencer, so the
/// 48 baton seeds are well-scattered rather than consecutive integers.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Serializes a run's task reports (the byte-reproducibility unit).
fn reports_json(r: &rc_lang::RunResult) -> String {
    Json::A(r.task_reports.iter().map(|t| t.to_json()).collect()).render()
}

#[test]
fn work_span_identities_hold_under_48_seeds() {
    let compiled = prepare(PROGRAM).expect("compiles");
    let mut state = 0x0c17_9a7e_57a7_e5ee_u64;
    let mut first: Option<(u64, u64, String)> = None;
    for i in 0..48 {
        let seed = splitmix64(&mut state);
        let cfg = RunConfig::rc_inf().det_sched(seed).sampled();
        let r = run_audited(&compiled, &cfg);
        assert!(
            matches!(r.outcome, Outcome::Exit(3)),
            "seed {seed:#x}: outcome {:?}",
            r.outcome
        );
        assert_eq!(r.audit, Some(Ok(())), "seed {seed:#x}: audit");
        assert_eq!(r.task_reports.len(), 5, "seed {seed:#x}: root + 4 tasks");

        let cp = critpath_analyze(&r.task_reports)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: {e}"));

        // Work identity: Σ per-task cycles, and the merged clock — the
        // shard merge is exact, not an approximation.
        let task_sum: u64 = r.task_reports.iter().map(|t| t.cycles).sum();
        assert_eq!(cp.work, task_sum, "seed {seed:#x}: work vs Σ task cycles");
        assert_eq!(cp.work, r.cycles, "seed {seed:#x}: work vs merged clock");

        // Span bounds and exact path decomposition.
        assert!(cp.span > 0, "seed {seed:#x}: empty span");
        assert!(cp.span <= cp.work, "seed {seed:#x}: span {} > work {}", cp.span, cp.work);
        let link_sum: u64 = cp.path.iter().map(|s| s.len()).sum();
        assert_eq!(link_sum, cp.span, "seed {seed:#x}: path does not decompose the span");
        assert_eq!(cp.span + cp.overlapped(), cp.work, "seed {seed:#x}");
        assert_eq!(
            cp.path.first().map(|s| s.task),
            Some(region_rt::ShardId::ROOT),
            "seed {seed:#x}: the path must start at the root"
        );
        let bd_sum: u64 = cp.tasks.iter().map(|t| t.on_path_cycles).sum();
        assert_eq!(bd_sum, cp.span, "seed {seed:#x}: per-task on-path shares");

        // Timeline fold: per-task samplers merge to the run's merged
        // timeline, byte-for-byte.
        let merged = r.timeline.as_ref().expect("sampling was on");
        let mut folded: Option<Box<region_rt::Timeline>> = None;
        for t in &r.task_reports {
            let tl = t.timeline.as_ref().expect("every task samples");
            match &mut folded {
                Some(acc) => acc.merge(tl),
                None => folded = Some(tl.clone()),
            }
        }
        let folded = folded.expect("at least the root task");
        assert_eq!(
            folded.to_json().render(),
            merged.to_json().render(),
            "seed {seed:#x}: timeline fold"
        );

        // The decomposition is schedule-invariant: every seed sees the
        // same work, span and path.
        let path = Json::A(cp.path.iter().map(|s| s.to_json()).collect()).render();
        match &first {
            None => first = Some((cp.work, cp.span, path)),
            Some((w, s, p)) => {
                assert_eq!(cp.work, *w, "seed {seed:#x} (schedule {i}): work drifted");
                assert_eq!(cp.span, *s, "seed {seed:#x} (schedule {i}): span drifted");
                assert_eq!(&path, p, "seed {seed:#x} (schedule {i}): path drifted");
            }
        }
    }
}

#[test]
fn per_seed_reports_and_paths_are_byte_reproducible() {
    let compiled = prepare(PROGRAM).expect("compiles");
    let mut state = 0xbeef_ca4e_0000_0010_u64;
    for _ in 0..8 {
        let seed = splitmix64(&mut state);
        let cfg = RunConfig::rc_inf().det_sched(seed);
        let a = run_audited(&compiled, &cfg);
        let b = run_audited(&compiled, &cfg);
        assert_eq!(reports_json(&a), reports_json(&b), "seed {seed:#x}: task reports");
        let cpa = critpath_analyze(&a.task_reports).unwrap();
        let cpb = critpath_analyze(&b.task_reports).unwrap();
        assert_eq!(
            cpa.to_json().render(),
            cpb.to_json().render(),
            "seed {seed:#x}: critical path"
        );
    }
}
