//! Table-driven accept/reject matrix for the three pointer qualifiers
//! (`sameregion`, `parentptr`, `traditional` — paper §3.2, Table 1).
//!
//! The matrix has two halves, mirroring how RC actually enforces
//! qualifiers:
//!
//! * **Static rows** run `sema::check` alone. Qualifier semantics are
//!   dynamic in RC, so the type checker accepts any qualifier mixing on
//!   assignment ("no special treatment when mixing region and
//!   traditional pointers") — but it still rejects programs whose
//!   *erased* types are wrong. Each reject row pins the error to a
//!   message substring so a reworded diagnostic is a conscious change.
//!
//! * **Dynamic rows** run the same store under `CheckMode::Qs` (all
//!   qualifier checks live) and assert the Table-1 verdict: a
//!   conforming store exits, a violating one aborts with
//!   `check_failed`. Every violating row is also rerun under
//!   `CheckMode::Nq` to confirm the failure really is the *qualifier*
//!   check and not an unsafe deletion (the programs null the offending
//!   field back out before teardown, so `nq` runs them to completion).

use rc_lang::{prepare, run, CheckMode, Outcome, RunConfig};

// ---------------------------------------------------------------------------
// Static half: sema accept/reject.
// ---------------------------------------------------------------------------

enum Static {
    /// `sema::check` succeeds.
    Accept,
    /// `sema::check` fails and the message contains the substring.
    Reject(&'static str),
}

/// Shared preamble: one struct carrying all three qualified fields.
const PREAMBLE: &str = "
struct node {
    int v;
    struct node *sameregion sr;
    struct node *parentptr pp;
    struct node *traditional tr;
    struct node *plain;
};
";

fn with_preamble(body: &str) -> String {
    format!("{PREAMBLE}\n{body}")
}

static STATIC_MATRIX: &[(&str, &str, Static)] = &[
    (
        "sameregion slot accepts an unqualified pointer",
        "int main() deletes {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            struct node *b = ralloc(r, struct node);
            a->sr = b;
            deleteregion(r);
            return 0;
        }",
        Static::Accept,
    ),
    (
        "parentptr slot accepts an unqualified pointer",
        "int main() deletes {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            a->pp = a;
            deleteregion(r);
            return 0;
        }",
        Static::Accept,
    ),
    (
        "traditional slot accepts an unqualified pointer",
        "int main() deletes {
            region t = traditionalregion();
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            struct node *b = ralloc(t, struct node);
            a->tr = b;
            a->tr = null;
            deleteregion(r);
            return 0;
        }",
        Static::Accept,
    ),
    (
        "every qualified slot accepts null",
        "int main() {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            a->sr = null;
            a->pp = null;
            a->tr = null;
            return 0;
        }",
        Static::Accept,
    ),
    (
        "qualified pointers may be read back and compared",
        "int main() {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            a->sr = a;
            if (a->sr == a->pp) { return 1; }
            return 0;
        }",
        Static::Accept,
    ),
    (
        "an int cannot be stored into a sameregion slot",
        "int main() {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            a->sr = 3;
            return 0;
        }",
        Static::Reject("type mismatch"),
    ),
    (
        "a pointer of the wrong struct type is rejected despite the qualifier",
        "struct other { int w; };
        int main() {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            struct other *o = ralloc(r, struct other);
            a->tr = o;
            return 0;
        }",
        Static::Reject("type mismatch"),
    ),
    (
        "a region handle is not a pointer value",
        "int main() {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            a->pp = r;
            return 0;
        }",
        Static::Reject("type mismatch"),
    ),
    (
        "null cannot initialise an int field",
        "int main() {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            a->v = null;
            return 0;
        }",
        Static::Reject("null assigned to an int"),
    ),
    (
        "a qualified field of an unknown struct is rejected",
        "struct bad { struct ghost *sameregion g; };
        int main() {
            region r = newregion();
            struct bad *b = ralloc(r, struct bad);
            return 0;
        }",
        Static::Reject("unknown struct"),
    ),
    (
        "deleteregion still demands a deletes annotation",
        "int main() {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            a->sr = a;
            deleteregion(r);
            return 0;
        }",
        Static::Reject("deletes"),
    ),
    (
        "qualifiers do not create new field names",
        "int main() {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            a->sr_missing = a;
            return 0;
        }",
        Static::Reject("no field"),
    ),
];

#[test]
fn static_qualifier_matrix() {
    for (name, body, want) in STATIC_MATRIX {
        let src = with_preamble(body);
        let got = rc_lang::compile(&src);
        match want {
            Static::Accept => {
                assert!(got.is_ok(), "{name}: expected accept, got {:?}", got.err());
            }
            Static::Reject(needle) => match got {
                Ok(_) => panic!("{name}: expected rejection mentioning `{needle}`, but sema accepted"),
                Err(e) => {
                    let msg = e.to_string();
                    assert!(
                        msg.contains(needle),
                        "{name}: error does not mention `{needle}`: {msg}"
                    );
                }
            },
        }
    }
}

// ---------------------------------------------------------------------------
// Dynamic half: Table-1 verdicts under CheckMode::Qs.
// ---------------------------------------------------------------------------

enum Dynamic {
    /// The store conforms: the program exits with this code under `qs`.
    Pass(i64),
    /// The store violates its qualifier: `qs` aborts with
    /// `check_failed`, while `nq` still exits with this code.
    FailCheck(i64),
}

static DYNAMIC_MATRIX: &[(&str, &str, Dynamic)] = &[
    // --- sameregion: target must live in the same region (or be null).
    (
        "sameregion: same-region store conforms",
        "int main() deletes {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            struct node *b = ralloc(r, struct node);
            b->v = 7;
            a->sr = b;
            int out = a->sr->v;
            deleteregion(r);
            return out;
        }",
        Dynamic::Pass(7),
    ),
    (
        "sameregion: null store conforms",
        "int main() deletes {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            a->sr = null;
            deleteregion(r);
            return 1;
        }",
        Dynamic::Pass(1),
    ),
    (
        "sameregion: cross-region store violates",
        "int main() deletes {
            region r1 = newregion();
            region r2 = newregion();
            struct node *a = ralloc(r1, struct node);
            struct node *b = ralloc(r2, struct node);
            a->sr = b;
            a->sr = null;
            deleteregion(r2);
            deleteregion(r1);
            return 2;
        }",
        Dynamic::FailCheck(2),
    ),
    (
        "sameregion: store into a traditional object from a region violates",
        "int main() deletes {
            region t = traditionalregion();
            region r = newregion();
            struct node *a = ralloc(t, struct node);
            struct node *b = ralloc(r, struct node);
            a->sr = b;
            a->sr = null;
            deleteregion(r);
            return 3;
        }",
        Dynamic::FailCheck(3),
    ),
    // --- parentptr: target must live in an ancestor region (or the same
    // --- region, or be null).
    (
        "parentptr: store up to the parent conforms",
        "int main() deletes {
            region p = newregion();
            region c = newsubregion(p);
            struct node *up = ralloc(p, struct node);
            struct node *kid = ralloc(c, struct node);
            up->v = 9;
            kid->pp = up;
            int out = kid->pp->v;
            deleteregion(c);
            deleteregion(p);
            return out;
        }",
        Dynamic::Pass(9),
    ),
    (
        "parentptr: same-region store conforms",
        "int main() deletes {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            a->pp = a;
            deleteregion(r);
            return 4;
        }",
        Dynamic::Pass(4),
    ),
    (
        "parentptr: store up to the grandparent conforms",
        "int main() deletes {
            region g = newregion();
            region p = newsubregion(g);
            region c = newsubregion(p);
            struct node *top = ralloc(g, struct node);
            struct node *kid = ralloc(c, struct node);
            top->v = 11;
            kid->pp = top;
            int out = kid->pp->v;
            deleteregion(c);
            deleteregion(p);
            deleteregion(g);
            return out;
        }",
        Dynamic::Pass(11),
    ),
    (
        "parentptr: store down into a child violates",
        "int main() deletes {
            region p = newregion();
            region c = newsubregion(p);
            struct node *up = ralloc(p, struct node);
            struct node *kid = ralloc(c, struct node);
            up->pp = kid;
            up->pp = null;
            deleteregion(c);
            deleteregion(p);
            return 5;
        }",
        Dynamic::FailCheck(5),
    ),
    (
        "parentptr: store across siblings violates",
        "int main() deletes {
            region p = newregion();
            region c1 = newsubregion(p);
            region c2 = newsubregion(p);
            struct node *a = ralloc(c1, struct node);
            struct node *b = ralloc(c2, struct node);
            a->pp = b;
            a->pp = null;
            deleteregion(c2);
            deleteregion(c1);
            deleteregion(p);
            return 6;
        }",
        Dynamic::FailCheck(6),
    ),
    // --- traditional: target must live in a traditional region (or be
    // --- null).
    (
        "traditional: store of a traditional object conforms",
        "int main() deletes {
            region t = traditionalregion();
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            struct node *b = ralloc(t, struct node);
            b->v = 13;
            a->tr = b;
            int out = a->tr->v;
            a->tr = null;
            deleteregion(r);
            return out;
        }",
        Dynamic::Pass(13),
    ),
    (
        "traditional: null store conforms",
        "int main() deletes {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            a->tr = null;
            deleteregion(r);
            return 8;
        }",
        Dynamic::Pass(8),
    ),
    (
        "traditional: store of a region object violates",
        "int main() deletes {
            region r = newregion();
            struct node *a = ralloc(r, struct node);
            struct node *b = ralloc(r, struct node);
            a->tr = b;
            a->tr = null;
            deleteregion(r);
            return 9;
        }",
        Dynamic::FailCheck(9),
    ),
    // --- unqualified pointers are never qualifier-checked.
    (
        "plain: cross-region store is not a qualifier violation",
        "int main() deletes {
            region r1 = newregion();
            region r2 = newregion();
            struct node *a = ralloc(r1, struct node);
            struct node *b = ralloc(r2, struct node);
            b->v = 10;
            a->plain = b;
            int out = a->plain->v;
            a->plain = null;
            deleteregion(r2);
            deleteregion(r1);
            return out;
        }",
        Dynamic::Pass(10),
    ),
];

fn outcome_key(o: &Outcome) -> String {
    match o {
        Outcome::Exit(code) => format!("exit:{code}"),
        Outcome::Aborted(e) => format!("abort:{}", e.kind_name()),
        Outcome::Trapped(e) => format!("trap:{}", e.kind_name()),
        Outcome::AssertFailed => "assert-failed".to_string(),
        Outcome::StepLimit => "step-limit".to_string(),
    }
}

fn run_with(src: &str, config: RunConfig) -> String {
    let compiled = prepare(src).expect("dynamic matrix programs compile");
    outcome_key(&run(&compiled, &config).outcome)
}

#[test]
fn dynamic_qualifier_matrix_under_qs() {
    for (name, body, want) in DYNAMIC_MATRIX {
        let src = with_preamble(body);
        let qs = run_with(&src, RunConfig::rc(CheckMode::Qs));
        match want {
            Dynamic::Pass(code) => {
                assert_eq!(qs, format!("exit:{code}"), "{name}: expected a clean qs run");
            }
            Dynamic::FailCheck(_) => {
                assert_eq!(qs, "abort:check_failed", "{name}: expected the qualifier check to fire");
            }
        }
    }
}

#[test]
fn violating_rows_pass_without_qualifier_checks() {
    // The same programs with checks off (`nq`) run to completion: the
    // abort under `qs` is attributable to the qualifier check alone,
    // not to an unsafe deletion or a wild pointer.
    for (name, body, want) in DYNAMIC_MATRIX {
        if let Dynamic::FailCheck(code) = want {
            let src = with_preamble(body);
            let nq = run_with(&src, RunConfig::rc(CheckMode::Nq));
            assert_eq!(
                nq,
                format!("exit:{code}"),
                "{name}: violating program should still complete under nq"
            );
        }
    }
}
