//! Critical-path collection: work/span attribution for one parallel
//! workload cell, rendered three ways.
//!
//! [`collect`] runs a [`rc_workloads::parspawn`] variant under the
//! deterministic scheduler and feeds its per-task reports through
//! [`region_rt::critpath_analyze`]. The result is emitted as:
//!
//! - a schema-stamped JSON report ([`CritPathRun::to_json`]) whose
//!   numbers are all virtual-clock, hence byte-deterministic per seed;
//! - a human rendering ([`CritPathRun::render_text`]) that walks the
//!   critical path link by link with `workload:line` spawn-site
//!   attribution (the `rc-bench-critpath` CLI output);
//! - a multi-track Chrome trace-event JSON ([`multi_track_trace`]):
//!   one Perfetto track per task — an `"X"` slice spanning the task's
//!   shared-clock lifetime, scheduler events as `"i"` instants on the
//!   task's track — so spawn fan-out, baton slices and join stalls are
//!   visible on one timeline. Byte-deterministic under `det_sched`
//!   because every timestamp is the shared virtual clock.

use rc_lang::{run_audited, RunConfig, RunResult};
use rc_workloads::parspawn::par_source;
use rc_workloads::Scale;
use region_rt::{critpath_analyze, CritPath, Json, ShardId, TaskReport};

use crate::parallelmatrix::outcome_key;

/// Schema identifier embedded in every report; bumped on layout change
/// (registered in [`crate::schema`]).
pub const SCHEMA: &str = crate::schema::Schema::CritPath.id();

/// The default deterministic-scheduler seed (shared with the parallel
/// matrix so the two artifacts describe the same schedule).
pub const DET_SEED: u64 = crate::parallelmatrix::DET_SEED;

/// One analyzed cell: the run's identity, its task reports, and the
/// work/span decomposition.
#[derive(Debug, Clone)]
pub struct CritPathRun {
    /// Workload name.
    pub workload: String,
    /// Spawned task count.
    pub tasks: u32,
    /// Configuration display name.
    pub config: String,
    /// Workload scale.
    pub scale: u32,
    /// Deterministic-scheduler seed.
    pub seed: u64,
    /// Outcome key (`exit:N` on success).
    pub outcome: String,
    /// Merged virtual cycles.
    pub cycles: u64,
    /// The per-task reports the analysis consumed (root first).
    pub reports: Vec<TaskReport>,
    /// The work/span decomposition.
    pub cp: CritPath,
}

/// Runs one `workload × tasks` cell under `cfg` with the deterministic
/// scheduler seeded `seed`, and analyzes its critical path.
pub fn collect(
    workload: &str,
    tasks: u32,
    config_name: &str,
    cfg: &RunConfig,
    scale: Scale,
    seed: u64,
) -> Result<CritPathRun, String> {
    let src = par_source(workload, scale, tasks)
        .ok_or_else(|| format!("{workload}: no parallel variant"))?;
    let compiled =
        rc_lang::prepare(&src).map_err(|e| format!("{workload}/t{tasks}: does not compile: {e}"))?;
    let r = run_audited(&compiled, &cfg.clone().det_sched(seed));
    if !matches!(r.audit, Some(Ok(()))) {
        return Err(format!("{workload}/t{tasks}/{config_name}: post-run audit failed"));
    }
    let cp = critpath_analyze(&r.task_reports)
        .map_err(|e| format!("{workload}/t{tasks}/{config_name}: {e}"))?;
    Ok(CritPathRun {
        workload: workload.to_string(),
        tasks,
        config: config_name.to_string(),
        scale: scale.0,
        seed,
        outcome: outcome_key(&r.outcome),
        cycles: r.cycles,
        reports: r.task_reports,
        cp,
    })
}

impl CritPathRun {
    /// `workload:line` attribution for a task's spawn site (the root
    /// task has no spawn site).
    fn site(&self, id: ShardId) -> String {
        match self.cp.tasks.iter().find(|t| t.id == id) {
            Some(t) if t.spawn_site != 0 => format!("{}:{}", self.workload, t.spawn_site),
            _ => "(root)".to_string(),
        }
    }

    /// Encodes the run, schema string first; all virtual-clock numbers,
    /// so byte-deterministic per seed.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::s(SCHEMA)),
            ("workload", Json::s(&*self.workload)),
            ("tasks", Json::U(u64::from(self.tasks))),
            ("config", Json::s(&*self.config)),
            ("scale", Json::U(u64::from(self.scale))),
            ("seed", Json::U(self.seed)),
            ("outcome", Json::s(&*self.outcome)),
            ("cycles", Json::U(self.cycles)),
            ("critpath", self.cp.to_json()),
        ])
    }

    /// Renders the report as pretty-printed JSON.
    pub fn render(&self) -> String {
        let mut s = self.to_json().render_pretty();
        s.push('\n');
        s
    }

    /// The human rendering: headline work/span numbers, the critical
    /// path link by link with spawn-site attribution, then the per-task
    /// breakdown table.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical path — {} ×{} ({}, seed {:#x})",
            self.workload, self.tasks, self.config, self.seed
        );
        let m = self.cp.ideal_parallelism_milli();
        let _ = writeln!(
            out,
            "work {} cycles, span {} cycles, ideal parallelism {}.{:02}x",
            self.cp.work,
            self.cp.span,
            m / 1000,
            m % 1000 / 10,
        );
        let _ = writeln!(
            out,
            "root-serial {} cycles, overlappable {} cycles, blocked (observed) {} cycles",
            self.cp.root_serial(),
            self.cp.overlapped(),
            self.cp.blocked_total(),
        );
        let _ = writeln!(out, "path ({} links):", self.cp.path.len());
        for seg in &self.cp.path {
            let _ = writeln!(
                out,
                "  task {:<3} {:<12} [{}..{})  {} cycles",
                seg.task.0,
                self.site(seg.task),
                seg.from_local,
                seg.to_local,
                seg.len(),
            );
        }
        let _ = writeln!(out, "per-task:");
        let _ = writeln!(out, "  task  parent  site          cycles  on-path  off-path  blocked");
        for t in &self.cp.tasks {
            let _ = writeln!(
                out,
                "  {:<4}  {:<6}  {:<12}  {:<6}  {:<7}  {:<8}  {}{}",
                t.id.0,
                t.parent.0,
                self.site(t.id),
                t.cycles,
                t.on_path_cycles,
                t.off_path_cycles,
                t.blocked_cycles,
                if t.on_path { "  *" } else { "" },
            );
        }
        out
    }
}

/// Builds the multi-track Chrome trace-event JSON for a parallel run:
/// pid 1 is the run, each task is a track (`tid` = shard id). Per track:
/// a `"task"` `"X"` slice from the task's first to last shared-clock
/// stamp (args carry its cycles, blocked time, and critical-path
/// share), then every retained scheduler event as an `"i"` instant.
/// Timestamps are the shared virtual clock throughout — byte-identical
/// across runs under the deterministic scheduler.
pub fn multi_track_trace(run: &CritPathRun) -> Json {
    let mut events: Vec<Json> = Vec::new();
    for r in &run.reports {
        let bd = run.cp.tasks.iter().find(|t| t.id == r.id);
        let name = if r.is_root() {
            "task 0 (root)".to_string()
        } else {
            format!("task {} ({}:{})", r.id.0, run.workload, r.spawn_site)
        };
        events.push(Json::obj(vec![
            ("name", Json::S(name)),
            ("cat", Json::s("task")),
            ("ph", Json::s("X")),
            ("pid", Json::U(1)),
            ("tid", Json::U(r.id.0 as u64)),
            ("ts", Json::U(r.sched.born_at)),
            ("dur", Json::U(r.sched.ended_at.saturating_sub(r.sched.born_at))),
            (
                "args",
                Json::obj(vec![
                    ("parent", Json::U(r.parent.0 as u64)),
                    ("seq", Json::U(r.seq)),
                    ("cycles", Json::U(r.cycles)),
                    ("steps", Json::U(r.steps)),
                    ("blocked_cycles", Json::U(r.sched.blocked_cycles)),
                    ("on_path_cycles", Json::U(bd.map_or(0, |t| t.on_path_cycles))),
                    ("on_path", Json::Bool(bd.is_some_and(|t| t.on_path))),
                    ("events_dropped", Json::U(r.sched.dropped)),
                ]),
            ),
        ]));
        for e in &r.sched.events {
            events.push(Json::obj(vec![
                ("name", Json::s(e.kind.name())),
                ("cat", Json::s("sched")),
                ("ph", Json::s("i")),
                ("s", Json::s("t")),
                ("pid", Json::U(1)),
                ("tid", Json::U(r.id.0 as u64)),
                ("ts", Json::U(e.at)),
                (
                    "args",
                    Json::obj(vec![
                        ("local", Json::U(e.local)),
                        ("arg", Json::U(e.kind.arg())),
                    ]),
                ),
            ]));
        }
    }
    Json::obj(vec![
        ("traceEvents", Json::A(events)),
        ("displayTimeUnit", Json::s("ns")),
        (
            "otherData",
            Json::obj(vec![
                ("schema", Json::s(SCHEMA)),
                ("workload", Json::s(&*run.workload)),
                ("config", Json::s(&*run.config)),
                ("tasks", Json::U(u64::from(run.tasks))),
                ("seed", Json::U(run.seed)),
                ("work", Json::U(run.cp.work)),
                ("span", Json::U(run.cp.span)),
                ("ideal_parallelism_milli", Json::U(run.cp.ideal_parallelism_milli())),
            ]),
        ),
    ])
}

/// Convenience: `collect` with the lea configuration and [`DET_SEED`]
/// (what the CLI defaults to).
pub fn collect_default(workload: &str, tasks: u32, scale: Scale) -> Result<CritPathRun, String> {
    collect(workload, tasks, "lea", &RunConfig::lea(), scale, DET_SEED)
}

/// Re-exported for callers that already hold a run: the analysis side
/// only needs the reports.
pub fn analyze_result(r: &RunResult) -> Result<CritPath, String> {
    critpath_analyze(&r.task_reports)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CritPathRun {
        collect_default("moss", 4, Scale::TINY).expect("moss ×4 collects")
    }

    #[test]
    fn collects_and_identities_hold() {
        let run = tiny();
        assert_eq!(run.outcome, "exit:4");
        assert_eq!(run.cp.work, run.cycles, "no base factor under lea");
        assert!(run.cp.span <= run.cp.work);
        assert_eq!(run.cp.span + run.cp.overlapped(), run.cp.work);
        assert_eq!(run.reports.len(), 5, "root + 4 tasks");
        assert_eq!(run.cp.tasks.len(), 5);
    }

    #[test]
    fn text_rendering_walks_the_path_with_sites() {
        let run = tiny();
        let text = run.render_text();
        assert!(text.contains("critical path — moss ×4"), "{text}");
        assert!(text.contains("ideal parallelism"), "{text}");
        assert!(text.contains("(root)"), "{text}");
        assert!(text.contains("moss:"), "spawn-site attribution missing:\n{text}");
        assert!(text.contains("per-task:"), "{text}");
    }

    #[test]
    fn json_and_trace_are_byte_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.render(), b.render());
        let ta = multi_track_trace(&a).render_pretty();
        let tb = multi_track_trace(&b).render_pretty();
        assert_eq!(ta, tb, "multi-track export must be byte-identical per seed");
        assert!(a.render().contains(SCHEMA));
        assert!(ta.contains(SCHEMA));
    }

    #[test]
    fn trace_has_one_track_per_task_plus_sched_instants() {
        let run = tiny();
        let doc = multi_track_trace(&run);
        let evs = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let slices: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert_eq!(slices.len(), run.reports.len(), "one X slice per task");
        let instants = evs.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"));
        let total_events: usize = run.reports.iter().map(|r| r.sched.events.len()).sum();
        assert_eq!(instants.count(), total_events, "one instant per retained sched event");
        // Every task id appears as a tid.
        for r in &run.reports {
            assert!(
                slices
                    .iter()
                    .any(|e| e.get("tid").and_then(Json::as_u64) == Some(r.id.0 as u64)),
                "task {} has no track",
                r.id.0
            );
        }
    }

    #[test]
    fn unknown_workload_is_an_error() {
        assert!(collect_default("nope", 2, Scale::TINY).is_err());
    }
}
