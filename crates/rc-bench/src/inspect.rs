//! The offline snapshot analyzer behind the `rc-inspect` binary.
//!
//! Loads one or two `rc-bench-snapshot/v1` documents (captured by the
//! interpreter's exit/GC/trap hooks) and answers post-mortem queries:
//! `summary` (region tree with occupancy), `top` (largest regions and
//! allocation sites by retained words), `leaks` (words retained past a
//! region's last touch, attributed to `label:line`), and `diff` (two
//! snapshots — e.g. gc vs lea — with per-region and per-site
//! retained-word deltas). All renderings are pure functions of the
//! snapshots, so output is byte-deterministic.

use std::fmt::Write as _;

use rc_lang::interp::{prepare, run, Outcome};
use rc_lang::RunConfig;
use rc_workloads::{Scale, Workload};
use region_rt::{HeapSnapshot, Json};

/// The snapshot schema this analyzer accepts (defined in `region_rt`,
/// registered in [`crate::schema`]).
pub const SCHEMA: &str = region_rt::SNAPSHOT_SCHEMA;

/// Parses a serialized snapshot document.
///
/// # Errors
///
/// Returns a message on malformed JSON, a wrong schema tag, or missing
/// fields.
pub fn load(text: &str) -> Result<HeapSnapshot, String> {
    let doc = Json::parse(text).map_err(|e| format!("not JSON: {e:?}"))?;
    HeapSnapshot::from_json(&doc)
}

/// Runs `workload` under `config` with snapshots (and spans) enabled and
/// returns the final snapshot — the trap capture if the run trapped, the
/// exit capture otherwise — labeled `workload/config_name`.
///
/// # Errors
///
/// Returns a message if the run ends without producing a snapshot (e.g.
/// aborts without trapping).
pub fn dump(
    workload: &Workload,
    config_name: &str,
    config: &RunConfig,
    scale: Scale,
) -> Result<HeapSnapshot, String> {
    let source = (workload.source)(scale);
    let c = prepare(&source)
        .map_err(|e| format!("{}: does not compile: {e:?}", workload.name))?;
    let r = run(&c, &config.clone().with_spans().with_snapshots());
    match r.outcome {
        Outcome::Exit(_) | Outcome::Trapped(_) => {}
        other => return Err(format!("{}/{config_name}: {other:?}", workload.name)),
    }
    let mut snap = r
        .snapshots
        .into_iter()
        .next_back()
        .ok_or_else(|| format!("{}/{config_name}: no snapshot captured", workload.name))?;
    snap.label = format!("{}/{config_name}", workload.name);
    Ok(snap)
}

fn header(s: &HeapSnapshot) -> String {
    let label = if s.label.is_empty() { "<unlabeled>" } else { &s.label };
    let mut out = format!(
        "{label} — reason {}, at {} cycles\n\
         live words : {} (regions {}, malloc {}, gc {})\n\
         pages      : {} committed, {} free; malloc free slots {}, gc free slots {}\n",
        s.reason.as_str(),
        s.at_cycles,
        s.total_live_words(),
        s.region_live_words(),
        s.malloc_live_words,
        s.gc_live_words,
        s.pages.len(),
        s.free_chain.len(),
        s.malloc_free_depths.iter().map(|&d| d as u64).sum::<u64>(),
        s.gc_free_depths.iter().map(|&d| d as u64).sum::<u64>(),
    );
    // Parallel runs only: the merged scheduler counters (per-task detail
    // lives in the run's `TaskReport`s, not in heap snapshots).
    if s.stats.sched_spawns + s.stats.sched_joins > 0 {
        let _ = writeln!(
            out,
            "tasks      : {} spawned, {} join points",
            s.stats.sched_spawns, s.stats.sched_joins,
        );
    }
    out
}

fn region_line(s: &HeapSnapshot, idx: usize, depth: usize) -> String {
    let r = &s.regions[idx];
    let state = if r.doomed {
        "doomed"
    } else if r.alive {
        "live"
    } else {
        "closed"
    };
    let name = if r.region == 0 { "region 0 (traditional)".to_string() } else { format!("region {}", r.region) };
    format!(
        "{:indent$}{name} [{state}] {} words, {} objects, {} pages, rc {}\n",
        "",
        r.live_words,
        r.objects,
        r.pages.len(),
        r.rc,
        indent = depth * 2,
    )
}

/// `summary`: the header plus the region tree with per-region occupancy.
/// Reclaimed regions lose their parent link at reclaim time, so they are
/// listed flat after the live tree.
pub fn summary(s: &HeapSnapshot) -> String {
    let mut out = header(s);
    out.push('\n');
    // Children lists from the surviving parent links.
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); s.regions.len()];
    for (i, r) in s.regions.iter().enumerate() {
        if let Some(p) = r.parent {
            children[p as usize].push(i);
        }
    }
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    while let Some((idx, depth)) = stack.pop() {
        out.push_str(&region_line(s, idx, depth));
        for &c in children[idx].iter().rev() {
            stack.push((c, depth + 1));
        }
    }
    let closed: Vec<&region_rt::RegionSnapshot> =
        s.regions.iter().filter(|r| !r.alive && r.parent.is_none() && r.region != 0).collect();
    if !closed.is_empty() {
        let _ = writeln!(out, "\nreclaimed ({}):", closed.len());
        for r in closed {
            let _ = writeln!(
                out,
                "  region {} freed {} words{}",
                r.region,
                r.freed_words,
                r.closed_at.map_or(String::new(), |c| format!(" at {c} cycles")),
            );
        }
    }
    out
}

/// One site rendered as `label:line` (line 0 = unattributed).
fn site_name(s: &HeapSnapshot, site: u32) -> String {
    let label = if s.label.is_empty() { "<unlabeled>" } else { &s.label };
    if site == 0 {
        format!("{label}:<unattributed>")
    } else {
        format!("{label}:{site}")
    }
}

/// Retained `(words, objects)` per region, folded from the site table —
/// unlike `RegionSnapshot::live_words`, this counts the traditional
/// region's malloc and gc objects too.
fn retained_by_region(s: &HeapSnapshot) -> Vec<(u64, u64)> {
    let mut held = vec![(0u64, 0u64); s.regions.len()];
    for e in &s.sites {
        if let Some(h) = held.get_mut(e.region as usize) {
            h.0 += e.words;
            h.1 += e.objects;
        }
    }
    held
}

/// `top`: the `limit` largest regions and allocation sites by retained
/// words.
pub fn top(s: &HeapSnapshot, limit: usize) -> String {
    let mut out = header(s);
    let held = retained_by_region(s);
    let mut regions: Vec<(u32, u64, u64)> = held
        .iter()
        .enumerate()
        .filter(|(_, h)| h.0 > 0)
        .map(|(i, h)| (i as u32, h.0, h.1))
        .collect();
    regions.sort_by_key(|&(r, w, _)| (std::cmp::Reverse(w), r));
    let _ = writeln!(out, "\ntop regions by retained words:");
    for (r, words, objects) in regions.iter().take(limit) {
        let _ =
            writeln!(out, "  region {r:>4} : {words:>10} words in {objects} objects");
    }
    let mut sites: Vec<_> = s.sites.iter().filter(|e| e.words > 0).collect();
    sites.sort_by_key(|e| (std::cmp::Reverse(e.words), e.region, e.site));
    let _ = writeln!(out, "\ntop sites by retained words:");
    for e in sites.iter().take(limit) {
        let _ = writeln!(
            out,
            "  {} (region {}) : {} words in {} objects",
            site_name(s, e.site),
            e.region,
            e.words,
            e.objects
        );
    }
    out
}

/// `leaks`: regions still holding words, ranked by how long they have
/// been idle (virtual cycles since the last span note touched them),
/// with each one's retained words attributed to allocation sites.
pub fn leaks(s: &HeapSnapshot, limit: usize) -> String {
    let mut out = header(s);
    let held = retained_by_region(s);
    let mut holders: Vec<&region_rt::RegionSnapshot> =
        s.regions.iter().filter(|r| held[r.region as usize].0 > 0).collect();
    // Untouched regions (last_touch 0: spans off or notes decimated) sort
    // last — idleness is unknown, not maximal.
    holders.sort_by_key(|r| {
        let idle = if r.last_touch == 0 { 0 } else { s.at_cycles.saturating_sub(r.last_touch) };
        (std::cmp::Reverse(idle), r.region)
    });
    let _ = writeln!(out, "\nretained past last touch:");
    if holders.is_empty() {
        let _ = writeln!(out, "  (nothing retained)");
    }
    for r in holders.iter().take(limit) {
        let idle = if r.last_touch == 0 {
            "idle unknown (no span notes)".to_string()
        } else {
            format!("idle {} cycles", s.at_cycles.saturating_sub(r.last_touch))
        };
        let _ = writeln!(
            out,
            "  region {} : {} words, {idle}",
            r.region,
            held[r.region as usize].0
        );
        for e in s.sites.iter().filter(|e| e.region == r.region && e.words > 0) {
            let _ = writeln!(
                out,
                "    {} : {} words in {} objects",
                site_name(s, e.site),
                e.words,
                e.objects
            );
        }
    }
    out
}

/// `diff`: per-region and per-site retained-word deltas between two
/// snapshots (`b` minus `a`) — the gc-vs-lea retention gap, attributed.
/// Totals are cross-checked against each snapshot's own `Stats` gauge, so
/// the printed gap is exactly the live-word difference the benchmark
/// tables report.
pub fn diff(a: &HeapSnapshot, b: &HeapSnapshot, limit: usize) -> String {
    let la = if a.label.is_empty() { "A" } else { &a.label };
    let lb = if b.label.is_empty() { "B" } else { &b.label };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "retained words: {la} {} vs {lb} {} (delta {:+})",
        a.total_live_words(),
        b.total_live_words(),
        b.total_live_words() as i64 - a.total_live_words() as i64,
    );
    let _ = writeln!(
        out,
        "stats gauge   : {la} {} vs {lb} {} — identity {}",
        a.stats.live_words,
        b.stats.live_words,
        if a.stats.live_words == a.total_live_words()
            && b.stats.live_words == b.total_live_words()
        {
            "holds on both sides"
        } else {
            "BROKEN"
        },
    );

    // Per-region deltas, matched by index (region ids are creation order,
    // comparable when both runs execute the same program).
    let mut region_deltas: Vec<(u32, i64)> = Vec::new();
    for i in 0..a.regions.len().max(b.regions.len()) {
        let wa = a.regions.get(i).map_or(0, |r| r.live_words) as i64;
        let wb = b.regions.get(i).map_or(0, |r| r.live_words) as i64;
        if wa != wb {
            region_deltas.push((i as u32, wb - wa));
        }
    }
    region_deltas.sort_by_key(|&(r, d)| (std::cmp::Reverse(d.unsigned_abs()), r));
    let _ = writeln!(out, "\nregion deltas ({}):", region_deltas.len());
    if region_deltas.is_empty() {
        let _ = writeln!(out, "  (no per-region differences)");
    }
    for (r, d) in region_deltas.iter().take(limit) {
        let _ = writeln!(out, "  region {r} : {d:+} words");
    }

    // Per-site deltas keyed by (region, site); both site tables are
    // sorted by key, so a merge walks them deterministically.
    let mut site_deltas: Vec<(u32, u32, i64)> = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.sites.len() || j < b.sites.len() {
        let ka = a.sites.get(i).map(|e| (e.region, e.site));
        let kb = b.sites.get(j).map(|e| (e.region, e.site));
        match (ka, kb) {
            (Some(x), Some(y)) if x == y => {
                let d = b.sites[j].words as i64 - a.sites[i].words as i64;
                if d != 0 {
                    site_deltas.push((x.0, x.1, d));
                }
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if x < y => {
                site_deltas.push((x.0, x.1, -(a.sites[i].words as i64)));
                i += 1;
            }
            (Some(_), Some(y)) => {
                site_deltas.push((y.0, y.1, b.sites[j].words as i64));
                j += 1;
            }
            (Some(x), None) => {
                site_deltas.push((x.0, x.1, -(a.sites[i].words as i64)));
                i += 1;
            }
            (None, Some(y)) => {
                site_deltas.push((y.0, y.1, b.sites[j].words as i64));
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    let explained: i64 = site_deltas.iter().map(|&(_, _, d)| d).sum();
    site_deltas.sort_by_key(|&(r, s, d)| (std::cmp::Reverse(d.unsigned_abs()), r, s));
    let _ = writeln!(
        out,
        "\nsite deltas ({}, explaining {explained:+} of the gap):",
        site_deltas.len()
    );
    if site_deltas.is_empty() {
        let _ = writeln!(out, "  (no per-site differences)");
    }
    for (r, site, d) in site_deltas.iter().take(limit) {
        let name = if *site == 0 { "<unattributed>".to_string() } else { format!("line {site}") };
        let _ = writeln!(out, "  {name} (region {r}) : {d:+} words");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_lang::CheckMode;

    fn snap(config_name: &str, config: RunConfig) -> HeapSnapshot {
        let w = rc_workloads::by_name("cfrac").unwrap();
        dump(&w, config_name, &config, Scale::TINY).unwrap()
    }

    #[test]
    fn dump_is_deterministic_and_loads_back() {
        let a = snap("inf", RunConfig::rc_inf());
        let b = snap("inf", RunConfig::rc_inf());
        assert_eq!(a.render(), b.render());
        assert_eq!(a.label, "cfrac/inf");
        let back = load(&a.render()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn load_rejects_other_schemas() {
        assert!(load("{\"schema\": \"rc-bench-trajectory/v1\"}")
            .unwrap_err()
            .contains("schema mismatch"));
        assert!(load("not json").unwrap_err().contains("not JSON"));
    }

    #[test]
    fn queries_render_the_snapshot() {
        let s = snap("qs", RunConfig::rc(CheckMode::Qs));
        let sum = summary(&s);
        assert!(sum.contains("cfrac/qs"), "{sum}");
        assert!(sum.contains("region 0 (traditional)"));
        let t = top(&s, 10);
        assert!(t.contains("top sites by retained words"));
        let l = leaks(&s, 10);
        assert!(l.contains("retained past last touch"));
        // cfrac's globals survive to exit, so something is attributed.
        assert!(l.contains("cfrac/qs:"), "{l}");
    }

    #[test]
    fn summary_shows_task_counters_only_for_parallel_runs() {
        let mut s = snap("qs", RunConfig::rc(CheckMode::Qs));
        // Sequential runs never spawned, so the line must be absent.
        assert!(!summary(&s).contains("tasks      :"), "{}", summary(&s));
        s.stats.sched_spawns = 4;
        s.stats.sched_joins = 1;
        let sum = summary(&s);
        assert!(sum.contains("tasks      : 4 spawned, 1 join points"), "{sum}");
    }

    #[test]
    fn gc_vs_lea_diff_attributes_the_gap() {
        let gc = snap("gc", RunConfig::gc());
        let lea = snap("lea", RunConfig::lea());
        let d = diff(&lea, &gc, 10);
        assert!(d.contains("identity holds on both sides"), "{d}");
        // The GC heap retains floating garbage that lea freed eagerly, so
        // the diff must attribute a nonzero gap to concrete sites.
        let gap = gc.total_live_words() as i64 - lea.total_live_words() as i64;
        assert_ne!(gap, 0, "configs should retain differently");
        assert!(d.contains(&format!("(delta {gap:+})")), "{d}");
        assert!(d.contains("site deltas"), "{d}");
        assert!(d.contains(&format!("explaining {gap:+} of the gap")), "{d}");
    }
}
