//! The registry of rc-bench JSON schema identifiers.
//!
//! Every machine-readable artifact this crate emits is stamped with a
//! schema string (`"<family>/v<N>"`); consumers — the CI determinism
//! gates, `bench-diff`, the docs — refuse mismatched versions. This
//! module is the single source of those strings: each report module
//! re-exports its own `SCHEMA` from here, and the exhaustive-match test
//! below guarantees a new artifact cannot ship without registering its
//! identifier (and that no two artifacts share one).

/// Every schema-versioned artifact rc-bench produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schema {
    /// Benchmark trajectories + regression gate (`BENCH_rc.json`).
    Trajectory,
    /// Fault-injection torture matrix.
    FaultMatrix,
    /// Differential-fuzzing report.
    FuzzReport,
    /// Perfetto-loadable provenance trace export.
    TraceExport,
    /// Post-mortem heap snapshot (`rc-inspect` input).
    Snapshot,
    /// Checkpoint-recovery matrix (supervised re-execution).
    RecoveryMatrix,
    /// Parallel spawn/join execution matrix (scheduler equivalence).
    ParallelMatrix,
    /// Work/span critical-path report for one parallel workload cell.
    CritPath,
}

impl Schema {
    /// Every registered schema, in introduction order.
    pub const ALL: [Schema; 8] = [
        Schema::Trajectory,
        Schema::FaultMatrix,
        Schema::FuzzReport,
        Schema::TraceExport,
        Schema::Snapshot,
        Schema::RecoveryMatrix,
        Schema::ParallelMatrix,
        Schema::CritPath,
    ];

    /// The identifier embedded in the artifact; bumped on layout change.
    pub const fn id(self) -> &'static str {
        match self {
            Schema::Trajectory => "rc-bench-trajectory/v1",
            Schema::FaultMatrix => "rc-bench-faultmatrix/v1",
            Schema::FuzzReport => "rc-fuzz-report/v1",
            Schema::TraceExport => "rc-trace-export/v1",
            Schema::Snapshot => "rc-bench-snapshot/v1",
            Schema::RecoveryMatrix => "rc-bench-recoverymatrix/v1",
            Schema::ParallelMatrix => "rc-bench-parallelmatrix/v1",
            Schema::CritPath => "rc-bench-critpath/v1",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive: every registered schema has a distinct, versioned id,
    /// and the per-module `SCHEMA` re-exports agree with the registry.
    #[test]
    fn every_schema_is_registered_versioned_and_distinct() {
        let mut seen = Vec::new();
        for s in Schema::ALL {
            // No wildcard: adding a variant without extending ALL (or the
            // match in `id`) fails to compile or fails here.
            let id = match s {
                Schema::Trajectory => s.id(),
                Schema::FaultMatrix => s.id(),
                Schema::FuzzReport => s.id(),
                Schema::TraceExport => s.id(),
                Schema::Snapshot => s.id(),
                Schema::RecoveryMatrix => s.id(),
                Schema::ParallelMatrix => s.id(),
                Schema::CritPath => s.id(),
            };
            assert!(
                id.rsplit_once("/v").and_then(|(_, v)| v.parse::<u32>().ok()).is_some(),
                "{id:?} must end in a /vN version suffix"
            );
            assert!(!seen.contains(&id), "{id:?} registered twice");
            seen.push(id);
        }
        assert_eq!(seen.len(), Schema::ALL.len());
        assert_eq!(crate::trajectory::SCHEMA, Schema::Trajectory.id());
        assert_eq!(crate::faultmatrix::SCHEMA, Schema::FaultMatrix.id());
        assert_eq!(crate::fuzzreport::SCHEMA, Schema::FuzzReport.id());
        assert_eq!(crate::provenance::SCHEMA, Schema::TraceExport.id());
        // The snapshot schema is defined in region-rt (the capture side);
        // the registry and the runtime must agree on the string.
        assert_eq!(crate::inspect::SCHEMA, Schema::Snapshot.id());
        assert_eq!(region_rt::SNAPSHOT_SCHEMA, Schema::Snapshot.id());
        assert_eq!(crate::recoverymatrix::SCHEMA, Schema::RecoveryMatrix.id());
        assert_eq!(crate::parallelmatrix::SCHEMA, Schema::ParallelMatrix.id());
        assert_eq!(crate::critpath::SCHEMA, Schema::CritPath.id());
    }
}
