//! A minimal wall-clock benchmark harness (the build environment is
//! offline, so no criterion). Each benchmark auto-calibrates an iteration
//! count so one sample takes a few milliseconds, collects a fixed number
//! of samples, and reports `min / median / max` nanoseconds per
//! iteration. Benchmarks run with `cargo bench -p rc-bench`; an optional
//! positional argument substring-filters benchmark names, exactly like
//! criterion's CLI.

use std::time::{Duration, Instant};

/// Target wall time for a single sample during measurement.
const SAMPLE_TARGET: Duration = Duration::from_millis(4);

/// A benchmark runner for one process: parses the CLI once, then runs
/// groups.
pub struct Bench {
    filter: Option<String>,
    samples: usize,
}

impl Bench {
    /// Parses `cargo bench` CLI arguments (`--bench` is swallowed, a bare
    /// word is a name filter, `--samples N` overrides the sample count).
    pub fn from_args() -> Bench {
        let mut filter = None;
        let mut samples = 30;
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--bench" | "--test" => {}
                "--samples" => {
                    if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                        samples = v;
                    }
                }
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Bench { filter, samples }
    }

    /// As [`Bench::from_args`], with an explicit sample count (criterion's
    /// `sample_size`).
    pub fn sample_size(mut self, samples: usize) -> Bench {
        self.samples = samples;
        self
    }

    /// Starts a named benchmark group.
    pub fn group(&self, name: &str) -> Group<'_> {
        Group { bench: self, name: name.to_string() }
    }
}

/// A named group; benchmark ids print as `group/name`.
pub struct Group<'a> {
    bench: &'a Bench,
    name: String,
}

impl Group<'_> {
    /// Runs one benchmark: calibrates, samples, prints a summary line.
    pub fn bench<F: FnMut()>(&self, name: &str, mut f: F) {
        let id = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.bench.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }

        // Calibration: grow the per-sample iteration count until one
        // sample meets the target, so timer overhead stays negligible.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            let el = t.elapsed();
            if el >= SAMPLE_TARGET || iters >= 1 << 24 {
                break;
            }
            iters = if el.is_zero() {
                iters * 16
            } else {
                // Aim straight for the target, with headroom.
                (iters as u128 * SAMPLE_TARGET.as_nanos() / el.as_nanos().max(1)) as u64 + 1
            };
        }

        let mut per_iter: Vec<f64> = (0..self.bench.samples.max(1))
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(|a, b| a.total_cmp(b));
        let min = per_iter[0];
        let med = per_iter[per_iter.len() / 2];
        let max = per_iter[per_iter.len() - 1];
        println!(
            "{id:<50} time: [{} {} {}]  ({} samples × {iters} iters)",
            fmt_ns(min),
            fmt_ns(med),
            fmt_ns(max),
            per_iter.len(),
        );
    }
}

/// Human units, criterion-style.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_units() {
        assert_eq!(fmt_ns(12.5), "12.50 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.00 ms");
    }

    #[test]
    fn runs_a_trivial_bench() {
        // Smoke: a cheap closure measures without panicking.
        let b = Bench { filter: None, samples: 3 };
        b.group("smoke").bench("noop", || {
            std::hint::black_box(1 + 1);
        });
    }

    #[test]
    fn filter_skips_nonmatching() {
        let b = Bench { filter: Some("zzz_never".into()), samples: 3 };
        // Would run forever per-sample if not filtered out.
        b.group("g").bench("slow", || std::thread::sleep(Duration::from_secs(60)));
    }
}
