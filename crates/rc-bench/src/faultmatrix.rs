//! The fault-injection torture matrix.
//!
//! [`collect`] sweeps the Figure 7 workloads under every allocator
//! configuration crossed with a set of deterministic [`FaultScenario`]s —
//! scheduled fault injections on each runtime plane plus organic
//! page-budget squeezes — always under
//! [`OnFault::TrapAndUnwind`](rc_lang::OnFault) recovery. Each run is
//! checked for the robustness contract:
//!
//! 1. **no panics** — every failure surfaces as a typed
//!    [`Outcome::Trapped`]/[`Outcome::Aborted`], never an unwind out of
//!    the interpreter;
//! 2. **post-fault audit cleanliness** — after the trap handler tears the
//!    region stack down, `Heap::audit()` must pass;
//! 3. **cross-config agreement** — for allocation-plane scenarios, all
//!    five allocators must agree on *where* the injected OOM lands (the
//!    same allocation ordinal), since the Alloc plane counts allocations
//!    backend-independently.
//!
//! Violations are collected into the report (and fail the gate) rather
//! than thrown, so one bad cell never hides the rest of the matrix.
//! Every number is virtual-clock, so two reports from the same tree are
//! byte-identical — same property the trajectory gate relies on. The
//! schema string [`SCHEMA`] names the layout; see `docs/ROBUSTNESS.md`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rc_lang::interp::{run_audited, Outcome, RunResult};
use rc_lang::RunConfig;
use rc_workloads::driver::prepare_workload;
use rc_workloads::{Scale, Workload};
use region_rt::{FaultMode, FaultPlan, Json};

/// Schema identifier embedded in every report; bumped on layout change
/// (registered in [`crate::schema`]).
pub const SCHEMA: &str = crate::schema::Schema::FaultMatrix.id();

/// One column of the torture matrix: a fault plan and/or a page budget.
#[derive(Debug, Clone)]
pub struct FaultScenario {
    /// Scenario name (stable; part of a run's identity key).
    pub name: &'static str,
    /// The injection plan (empty for organic page-budget scenarios).
    pub plan: FaultPlan,
    /// Heap page budget (0 = unlimited).
    pub page_budget: usize,
}

impl FaultScenario {
    /// Whether this scenario arms the allocation plane (and therefore
    /// participates in the cross-config agreement check).
    pub fn gates_alloc_agreement(&self) -> bool {
        self.plan.alloc.is_some()
    }
}

/// The standard scenario sweep: one scheduled, sticky injection per
/// plane (early and late on the allocation plane) plus two organic
/// page-budget squeezes.
pub fn scenarios() -> Vec<FaultScenario> {
    let inject = |name, plan: FaultPlan| FaultScenario { name, plan: plan.sticky(), page_budget: 0 };
    vec![
        inject("alloc-early", FaultPlan::new().fail_alloc(FaultMode::Schedule(vec![5]))),
        inject("alloc-late", FaultPlan::new().fail_alloc(FaultMode::Schedule(vec![150]))),
        inject("page-squeeze", FaultPlan::new().fail_page_acquire(FaultMode::Schedule(vec![3]))),
        inject("rc-saturate", FaultPlan::new().saturate_rc(FaultMode::Schedule(vec![40]))),
        inject("check-chaos", FaultPlan::new().fail_checks(FaultMode::Schedule(vec![10]))),
        FaultScenario { name: "budget-4", plan: FaultPlan::new(), page_budget: 4 },
        FaultScenario { name: "budget-64", plan: FaultPlan::new(), page_budget: 64 },
    ]
}

/// One workload × scenario × configuration cell.
#[derive(Debug, Clone)]
pub struct FaultRun {
    /// Workload name.
    pub workload: String,
    /// Scenario name.
    pub scenario: String,
    /// Configuration display name (Figure 7 column).
    pub config: String,
    /// How the run ended: `exit`, `trapped`, `aborted`, `assert-failed`,
    /// `step-limit` or `panicked`.
    pub outcome: String,
    /// The typed error's stable kind tag, for trapped/aborted runs.
    pub error_kind: Option<String>,
    /// Total injections that fired.
    pub injected: u64,
    /// Ordinal of the first injection on its plane (0 = none fired).
    pub first_op: u64,
    /// Virtual time of the first injection (0 = none fired).
    pub first_at: u64,
    /// Whether the end-of-run heap audit passed.
    pub audit_clean: bool,
    /// Total virtual cycles.
    pub cycles: u64,
    /// Interpreter steps executed.
    pub steps: u64,
}

impl FaultRun {
    /// The cell's identity: `workload/scenario/config`.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.workload, self.scenario, self.config)
    }

    /// Encodes the cell as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::s(&*self.workload)),
            ("scenario", Json::s(&*self.scenario)),
            ("config", Json::s(&*self.config)),
            ("outcome", Json::s(&*self.outcome)),
            (
                "error_kind",
                match &self.error_kind {
                    Some(k) => Json::s(&**k),
                    None => Json::Null,
                },
            ),
            ("injected", Json::U(self.injected)),
            ("first_op", Json::U(self.first_op)),
            ("first_at", Json::U(self.first_at)),
            ("audit_clean", Json::Bool(self.audit_clean)),
            ("cycles", Json::U(self.cycles)),
            ("steps", Json::U(self.steps)),
        ])
    }
}

/// The full matrix report: every cell plus the contract violations.
#[derive(Debug, Clone)]
pub struct FaultMatrixReport {
    /// Workload scale the matrix ran at.
    pub scale: u32,
    /// All cells, workload-major, scenario-then-configuration order.
    pub runs: Vec<FaultRun>,
    /// Robustness-contract violations (empty = the gate passes).
    pub violations: Vec<String>,
}

impl FaultMatrixReport {
    /// Whether the robustness gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Encodes the report, schema string first.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::s(SCHEMA)),
            ("scale", Json::U(self.scale as u64)),
            ("passed", Json::Bool(self.passed())),
            ("violations", Json::A(self.violations.iter().map(|v| Json::s(&**v)).collect())),
            ("runs", Json::A(self.runs.iter().map(FaultRun::to_json).collect())),
        ])
    }

    /// Renders the report as pretty-printed JSON (the
    /// `FAULTMATRIX_rc.json` format).
    pub fn render(&self) -> String {
        let mut s = self.to_json().render_pretty();
        s.push('\n');
        s
    }

    /// A short human summary: cell counts by outcome, then violations.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let count = |tag: &str| self.runs.iter().filter(|r| r.outcome == tag).count();
        let _ = writeln!(
            out,
            "fault-matrix: {} cells — {} exited, {} trapped, {} other",
            self.runs.len(),
            count("exit"),
            count("trapped"),
            self.runs.len() - count("exit") - count("trapped"),
        );
        let injected: u64 = self.runs.iter().map(|r| r.injected).sum();
        let _ = writeln!(out, "injections fired: {injected}");
        if self.passed() {
            let _ = writeln!(out, "robustness gate: PASS");
        } else {
            let _ = writeln!(out, "robustness gate: FAIL ({} violations)", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  - {v}");
            }
        }
        out
    }
}

/// Runs the full matrix over all eight workloads.
pub fn collect(scale: Scale) -> FaultMatrixReport {
    collect_for(scale, &rc_workloads::all())
}

/// Runs the matrix over the given workloads: every [`scenarios`] column
/// under every Figure 7 configuration, trap-and-unwind recovery on.
pub fn collect_for(scale: Scale, workloads: &[Workload]) -> FaultMatrixReport {
    let mut runs = Vec::new();
    let mut violations = Vec::new();
    for w in workloads {
        let c = prepare_workload(w, scale);
        for scenario in scenarios() {
            for (name, cfg) in RunConfig::figure7() {
                let cfg = cfg
                    .trapping()
                    .with_faults(scenario.plan.clone())
                    .with_page_budget(scenario.page_budget);
                let key = format!("{}/{}/{name}", w.name, scenario.name);
                // `run_audited` re-raises interpreter-thread panics on
                // this thread, so a catch here observes them all.
                let cell = match catch_unwind(AssertUnwindSafe(|| run_audited(&c, &cfg))) {
                    Ok(r) => cell_of(w.name, scenario.name, name, &r),
                    Err(payload) => {
                        violations.push(format!("{key}: panicked: {}", panic_msg(&payload)));
                        panicked_cell(w.name, scenario.name, name)
                    }
                };
                if cell.outcome != "panicked" && !cell.audit_clean {
                    violations.push(format!("{key}: post-fault heap audit failed"));
                }
                if cell.outcome == "aborted" {
                    violations.push(format!(
                        "{key}: aborted ({}) despite trap-and-unwind recovery",
                        cell.error_kind.as_deref().unwrap_or("?"),
                    ));
                }
                runs.push(cell);
            }
        }
    }
    check_alloc_agreement(&runs, &mut violations);
    FaultMatrixReport { scale: scale.0, runs, violations }
}

/// The cross-config agreement check: within one workload × alloc-plane
/// scenario, every configuration must land the injected OOM at the same
/// allocation ordinal (or agree that the schedule never fires).
fn check_alloc_agreement(runs: &[FaultRun], violations: &mut Vec<String>) {
    let alloc_scenarios: Vec<FaultScenario> =
        scenarios().into_iter().filter(FaultScenario::gates_alloc_agreement).collect();
    let mut seen: Vec<(String, String)> = Vec::new();
    for r in runs {
        if !alloc_scenarios.iter().any(|s| s.name == r.scenario) {
            continue;
        }
        let group = (r.workload.clone(), r.scenario.clone());
        if seen.contains(&group) {
            continue;
        }
        seen.push(group);
        let cells: Vec<&FaultRun> = runs
            .iter()
            .filter(|c| c.workload == r.workload && c.scenario == r.scenario)
            .collect();
        let landing = |c: &FaultRun| (c.outcome.clone(), c.first_op);
        let first = landing(cells[0]);
        for c in &cells[1..] {
            if landing(c) != first {
                violations.push(format!(
                    "{}/{}: configs disagree on OOM landing: {}={:?} vs {}={:?}",
                    r.workload,
                    r.scenario,
                    cells[0].config,
                    first,
                    c.config,
                    landing(c),
                ));
                break;
            }
        }
    }
}

fn cell_of(workload: &str, scenario: &str, config: &str, r: &RunResult) -> FaultRun {
    let (outcome, error_kind) = match &r.outcome {
        Outcome::Exit(_) => ("exit", None),
        Outcome::Trapped(e) => ("trapped", Some(e.kind_name().to_string())),
        Outcome::Aborted(e) => ("aborted", Some(e.kind_name().to_string())),
        Outcome::AssertFailed => ("assert-failed", None),
        Outcome::StepLimit => ("step-limit", None),
    };
    let first = r.faults.as_ref().and_then(|f| f.first());
    FaultRun {
        workload: workload.to_string(),
        scenario: scenario.to_string(),
        config: config.to_string(),
        outcome: outcome.to_string(),
        error_kind,
        injected: r.faults.as_ref().map_or(0, |f| f.total_injected() as u64),
        first_op: first.map_or(0, |f| f.op),
        first_at: first.map_or(0, |f| f.at),
        audit_clean: matches!(r.audit, Some(Ok(()))),
        cycles: r.cycles,
        steps: r.steps,
    }
}

/// A placeholder cell for a run that panicked (already a violation; the
/// zeros keep the report shape uniform).
fn panicked_cell(workload: &str, scenario: &str, config: &str) -> FaultRun {
    FaultRun {
        workload: workload.to_string(),
        scenario: scenario.to_string(),
        config: config.to_string(),
        outcome: "panicked".to_string(),
        error_kind: None,
        injected: 0,
        first_op: 0,
        first_at: 0,
        audit_clean: false,
        cycles: 0,
        steps: 0,
    }
}

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Parses a serialized matrix report, validating the schema string, and
/// returns `(passed, violations)`.
pub fn parse_report(text: &str) -> Result<(bool, Vec<String>), String> {
    let doc = Json::parse(text).map_err(|e| format!("fault-matrix report: not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("fault-matrix report: schema {s:?}, expected {SCHEMA:?}")),
        None => return Err("fault-matrix report: missing schema field".to_string()),
    }
    let passed = doc
        .get("passed")
        .and_then(Json::as_bool)
        .ok_or_else(|| "fault-matrix report: missing passed flag".to_string())?;
    let violations = doc
        .get("violations")
        .and_then(Json::as_array)
        .ok_or_else(|| "fault-matrix report: missing violations array".to_string())?
        .iter()
        .filter_map(|v| v.as_str().map(str::to_string))
        .collect();
    Ok((passed, violations))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_matrix() -> FaultMatrixReport {
        collect_for(Scale::TINY, &[rc_workloads::by_name("tile").unwrap()])
    }

    #[test]
    fn matrix_covers_scenarios_by_configs_and_passes() {
        let rep = tiny_matrix();
        assert_eq!(rep.runs.len(), scenarios().len() * 5);
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        // Injection scenarios actually fire somewhere in the matrix.
        assert!(rep.runs.iter().any(|r| r.outcome == "trapped" && r.injected > 0));
        // Organic budget squeezes trap too, with no arms installed.
        assert!(rep
            .runs
            .iter()
            .any(|r| r.scenario == "budget-4" && r.outcome == "trapped" && r.injected == 0));
        let summary = rep.summary();
        assert!(summary.contains("PASS"), "{summary}");
    }

    #[test]
    fn report_is_byte_deterministic_and_round_trips() {
        let a = tiny_matrix().render();
        let b = tiny_matrix().render();
        assert_eq!(a, b, "same tree must produce byte-identical reports");
        let (passed, violations) = parse_report(&a).unwrap();
        assert!(passed);
        assert!(violations.is_empty());
        assert!(parse_report("not json").is_err());
        let other = a.replace(SCHEMA, "rc-bench-faultmatrix/v0");
        assert!(parse_report(&other).unwrap_err().contains("schema"));
    }
}
