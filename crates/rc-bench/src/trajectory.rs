//! Machine-readable benchmark trajectories and the regression gate.
//!
//! [`collect`] reruns the paper's Figure 7/8 workload × configuration
//! matrix with the timeline sampler on and assembles a
//! schema-versioned [`BenchReport`]: per-run virtual-clock totals plus
//! the periodic [`MetricsSnapshot`] series. The report serializes to
//! `BENCH_rc.json`; because every number is virtual-clock (deterministic
//! across machines and runs), two reports from the same source tree are
//! byte-identical, which is what makes a committed baseline and a hard
//! CI gate feasible.
//!
//! [`diff_reports`] compares two serialized reports run-by-run and
//! metric-by-metric. Only two metrics *gate* (fail CI): total `cycles`
//! beyond [`CYCLE_REGRESSION_PCT`] and `peak_live_words` beyond
//! [`PEAK_REGRESSION_PCT`]. Everything else is reported as context. A
//! run present in the baseline but missing from the new report is a
//! regression; a new run is reported but does not gate (adding coverage
//! must not fail the gate).
//!
//! The schema string [`SCHEMA`] names the JSON layout. Any change to
//! key names, key meanings, or units bumps the version suffix, and
//! [`diff_reports`] refuses mismatched schemas — see
//! `docs/OBSERVABILITY.md` for the policy.

use rc_lang::interp::{run, Outcome};
use rc_lang::RunConfig;
use rc_workloads::driver::prepare_workload;
use rc_workloads::{Scale, Workload};
use region_rt::{sparkline, Json, MetricsSnapshot};

/// Schema identifier embedded in every report; bumped on layout change
/// (registered in [`crate::schema`]).
pub const SCHEMA: &str = crate::schema::Schema::Trajectory.id();

/// Gate threshold: a run regresses when total cycles grow by more than
/// this percentage over the baseline.
pub const CYCLE_REGRESSION_PCT: f64 = 5.0;

/// Gate threshold: a run regresses when peak live words grow by more
/// than this percentage over the baseline.
pub const PEAK_REGRESSION_PCT: f64 = 10.0;

/// Sampling interval (runtime events per snapshot) used by [`collect`] —
/// coarse enough to keep the committed baseline small.
pub const BENCH_SAMPLE_INTERVAL: u64 = 512;

/// Sample cap used by [`collect`]; decimation keeps longer runs under
/// this many snapshots, bounding the committed baseline's size.
pub const BENCH_SAMPLE_CAP: usize = 48;

/// One workload × configuration execution: end-of-run totals plus the
/// sampled timeline.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// Workload name (Table 1 row).
    pub workload: String,
    /// Configuration display name (Figure 7/8 column).
    pub config: String,
    /// Total virtual cycles.
    pub cycles: u64,
    /// Interpreter steps executed.
    pub steps: u64,
    /// Peak live words.
    pub peak_live_words: u64,
    /// Live words at exit.
    pub final_live_words: u64,
    /// Annotation checks executed (sameregion + parentptr + traditional).
    pub checks: u64,
    /// Reference-count updates (full + early-exit).
    pub rc_updates: u64,
    /// Objects allocated.
    pub objects_allocated: u64,
    /// Words allocated.
    pub words_allocated: u64,
    /// The sampled timeline (empty when the `telemetry` feature is off).
    pub samples: Vec<MetricsSnapshot>,
}

impl BenchRun {
    /// The identity runs are matched by when diffing: `workload/config`.
    pub fn key(&self) -> String {
        format!("{}/{}", self.workload, self.config)
    }

    /// Encodes the run as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::s(&*self.workload)),
            ("config", Json::s(&*self.config)),
            ("cycles", Json::U(self.cycles)),
            ("steps", Json::U(self.steps)),
            ("peak_live_words", Json::U(self.peak_live_words)),
            ("final_live_words", Json::U(self.final_live_words)),
            ("checks", Json::U(self.checks)),
            ("rc_updates", Json::U(self.rc_updates)),
            ("objects_allocated", Json::U(self.objects_allocated)),
            ("words_allocated", Json::U(self.words_allocated)),
            (
                "samples",
                Json::A(self.samples.iter().map(MetricsSnapshot::to_json).collect()),
            ),
        ])
    }
}

/// A full trajectory report: every Figure 7/8 run at one scale.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Workload scale the report was collected at.
    pub scale: u32,
    /// All runs, in workload-major, configuration-minor order.
    pub runs: Vec<BenchRun>,
}

impl BenchReport {
    /// Encodes the report, schema string first.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::s(SCHEMA)),
            ("scale", Json::U(self.scale as u64)),
            ("runs", Json::A(self.runs.iter().map(BenchRun::to_json).collect())),
        ])
    }

    /// Renders the report as pretty-printed JSON (the `BENCH_rc.json`
    /// format).
    pub fn render(&self) -> String {
        let mut s = self.to_json().render_pretty();
        s.push('\n');
        s
    }

    /// Renders the baseline variant: same schema, sample series dropped.
    /// The regression gate compares only the scalar totals, so the
    /// committed `baselines/BENCH_baseline.json` stays a few kilobytes
    /// instead of megabytes of snapshot history.
    pub fn render_baseline(&self) -> String {
        let stripped = BenchReport {
            scale: self.scale,
            runs: self
                .runs
                .iter()
                .map(|r| BenchRun { samples: Vec::new(), ..r.clone() })
                .collect(),
        };
        stripped.render()
    }
}

/// The Figure 7 and Figure 8 configuration columns, deduplicated: the
/// paper's "RC" (Figure 7) and "inf" (Figure 8) are the same
/// configuration, so it appears once, under "RC".
fn configs() -> Vec<(&'static str, RunConfig)> {
    let mut cfgs = RunConfig::figure7();
    cfgs.extend(RunConfig::figure8().into_iter().filter(|(n, _)| *n != "inf"));
    cfgs
}

/// Collects the full trajectory report for all eight workloads.
pub fn collect(scale: Scale) -> BenchReport {
    collect_for(scale, &rc_workloads::all())
}

/// Collects a trajectory report for the given workloads (all Figure 7/8
/// configurations each), sampling at [`BENCH_SAMPLE_INTERVAL`].
pub fn collect_for(scale: Scale, workloads: &[Workload]) -> BenchReport {
    let mut runs = Vec::new();
    for w in workloads {
        let c = prepare_workload(w, scale);
        for (name, cfg) in configs() {
            let cfg = cfg.with_sampling(BENCH_SAMPLE_INTERVAL, BENCH_SAMPLE_CAP);
            let r = run(&c, &cfg);
            match r.outcome {
                Outcome::Exit(_) => {}
                ref other => panic!("{}/{name}: did not exit cleanly: {other:?}", w.name),
            }
            let s = &r.stats;
            runs.push(BenchRun {
                workload: w.name.to_string(),
                config: name.to_string(),
                cycles: r.cycles,
                steps: r.steps,
                peak_live_words: s.peak_live_words,
                final_live_words: s.live_words,
                checks: s.checks_sameregion + s.checks_parentptr + s.checks_traditional,
                rc_updates: s.rc_updates_full + s.rc_updates_same,
                objects_allocated: s.objects_allocated,
                words_allocated: s.words_allocated,
                samples: r.timeline.map(|t| t.samples().to_vec()).unwrap_or_default(),
            });
        }
    }
    BenchReport { scale: scale.0, runs }
}

/// Renders the timeline section for `EXPERIMENTS.md`: per workload, the
/// RC configuration's live-heap and pages-in-use series as sparklines
/// with their peaks, so heap phases are visible at a glance.
pub fn timeline_section(report: &BenchReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Sampled every {BENCH_SAMPLE_INTERVAL} runtime events on the virtual \
         clock (deterministic; see `docs/OBSERVABILITY.md`). Each row charts \
         the RC configuration's run from start to exit.\n"
    );
    let _ = writeln!(out, "```");
    for r in report.runs.iter().filter(|r| r.config == "RC") {
        let live: Vec<u64> = r.samples.iter().map(|s| s.live_words).collect();
        let pages: Vec<u64> = r.samples.iter().map(|s| s.gauges.pages_in_use as u64).collect();
        let checks: Vec<u64> = r.samples.iter().map(|s| s.d_checks).collect();
        let _ = writeln!(out, "{}", r.workload);
        let _ = writeln!(
            out,
            "  live words    |{}| peak {}",
            sparkline(&live),
            r.peak_live_words
        );
        let _ = writeln!(
            out,
            "  pages in use  |{}| max {}",
            sparkline(&pages),
            pages.iter().max().copied().unwrap_or(0)
        );
        let _ = writeln!(
            out,
            "  checks/window |{}| total {}",
            sparkline(&checks),
            r.checks
        );
    }
    let _ = writeln!(out, "```");
    out
}

/// One compared metric of one run.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// `workload/config` identity.
    pub key: String,
    /// Metric name.
    pub metric: &'static str,
    /// Baseline value.
    pub old: u64,
    /// New value.
    pub new: u64,
    /// Signed percentage change ((new-old)/old × 100; 0 when old is 0
    /// and new is 0, +∞ shown as the raw delta otherwise).
    pub delta_pct: f64,
    /// The gate threshold, for gated metrics.
    pub gate_pct: Option<f64>,
    /// Whether this row trips its gate.
    pub regressed: bool,
}

/// The outcome of diffing two reports.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Per-metric comparisons for runs present in both reports.
    pub rows: Vec<DiffRow>,
    /// Runs present in the baseline but missing from the new report
    /// (each one is a regression).
    pub missing: Vec<String>,
    /// Runs present only in the new report (informational).
    pub added: Vec<String>,
}

impl DiffReport {
    /// Whether any gate tripped: a gated metric beyond threshold, or a
    /// baseline run that disappeared.
    pub fn regressed(&self) -> bool {
        !self.missing.is_empty() || self.rows.iter().any(|r| r.regressed)
    }

    /// Renders the aligned delta table (changed rows and every gated
    /// metric; unchanged ungated metrics are omitted for signal).
    pub fn table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<24} {:>16} {:>14} {:>14} {:>9}  verdict",
            "run", "metric", "old", "new", "delta"
        );
        for r in &self.rows {
            if r.gate_pct.is_none() && r.old == r.new {
                continue;
            }
            let verdict = match (r.gate_pct, r.regressed) {
                (Some(_), true) => "REGRESSED",
                (Some(g), false) => {
                    if r.delta_pct < 0.0 {
                        "improved"
                    } else if r.delta_pct == 0.0 {
                        "ok"
                    } else {
                        // Grew, but within the gate.
                        let _ = g;
                        "ok (within gate)"
                    }
                }
                (None, _) => "info",
            };
            let _ = writeln!(
                out,
                "{:<24} {:>16} {:>14} {:>14} {:>+8.2}%  {}",
                r.key, r.metric, r.old, r.new, r.delta_pct, verdict
            );
        }
        for key in &self.missing {
            let _ = writeln!(out, "{key:<24} {:>16}  missing from new report  REGRESSED", "run");
        }
        for key in &self.added {
            let _ = writeln!(out, "{key:<24} {:>16}  new run (not in baseline)  info", "run");
        }
        out
    }
}

/// Metrics compared per run: `(name, gate percentage)`. `None` = report
/// only, never gate.
const METRICS: &[(&str, Option<f64>)] = &[
    ("cycles", Some(CYCLE_REGRESSION_PCT)),
    ("peak_live_words", Some(PEAK_REGRESSION_PCT)),
    ("steps", None),
    ("final_live_words", None),
    ("checks", None),
    ("rc_updates", None),
    ("objects_allocated", None),
    ("words_allocated", None),
];

fn pct(old: u64, new: u64) -> f64 {
    if old == new {
        0.0
    } else if old == 0 {
        100.0 * new as f64
    } else {
        (new as f64 - old as f64) / old as f64 * 100.0
    }
}

/// Parses a serialized report and indexes its runs by key, validating
/// the schema string.
fn parse_report(text: &str, label: &str) -> Result<Vec<(String, Json)>, String> {
    let doc = Json::parse(text).map_err(|e| format!("{label}: not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => return Err(format!("{label}: schema {s:?}, expected {SCHEMA:?}")),
        None => return Err(format!("{label}: missing schema field")),
    }
    let runs = doc
        .get("runs")
        .and_then(Json::as_array)
        .ok_or_else(|| format!("{label}: missing runs array"))?;
    let mut out = Vec::new();
    for r in runs {
        let w = r.get("workload").and_then(Json::as_str);
        let c = r.get("config").and_then(Json::as_str);
        match (w, c) {
            (Some(w), Some(c)) => out.push((format!("{w}/{c}"), r.clone())),
            _ => return Err(format!("{label}: run without workload/config")),
        }
    }
    Ok(out)
}

/// Diffs two serialized reports (baseline first). Errors are malformed
/// input — schema mismatch, bad JSON, missing fields — as opposed to
/// regressions, which come back inside the [`DiffReport`].
pub fn diff_reports(old_text: &str, new_text: &str) -> Result<DiffReport, String> {
    let old = parse_report(old_text, "baseline")?;
    let new = parse_report(new_text, "new report")?;
    let mut diff = DiffReport::default();
    for (key, o) in &old {
        let Some((_, n)) = new.iter().find(|(k, _)| k == key) else {
            diff.missing.push(key.clone());
            continue;
        };
        for &(metric, gate_pct) in METRICS {
            let ov = o.get(metric).and_then(Json::as_u64).ok_or_else(|| {
                format!("baseline: run {key} missing metric {metric}")
            })?;
            let nv = n.get(metric).and_then(Json::as_u64).ok_or_else(|| {
                format!("new report: run {key} missing metric {metric}")
            })?;
            let delta_pct = pct(ov, nv);
            diff.rows.push(DiffRow {
                key: key.clone(),
                metric,
                old: ov,
                new: nv,
                delta_pct,
                gate_pct,
                regressed: gate_pct.is_some_and(|g| delta_pct > g),
            });
        }
    }
    for (key, _) in &new {
        if !old.iter().any(|(k, _)| k == key) {
            diff.added.push(key.clone());
        }
    }
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        collect_for(Scale::TINY, &[rc_workloads::by_name("tile").unwrap()])
    }

    #[test]
    fn collect_covers_the_config_matrix_and_round_trips() {
        let rep = tiny_report();
        // 5 Figure 7 configs + 3 Figure 8 configs (inf folded into RC).
        assert_eq!(rep.runs.len(), 8);
        assert!(rep.runs.iter().all(|r| r.cycles > 0 && r.steps > 0));
        let text = rep.render();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(
            doc.get("runs").and_then(Json::as_array).unwrap().len(),
            rep.runs.len()
        );
        // Self-diff is clean: every gated metric identical.
        let diff = diff_reports(&text, &text).unwrap();
        assert!(!diff.regressed(), "{}", diff.table());
        assert!(diff.rows.iter().all(|r| r.delta_pct == 0.0));
        // The samples-stripped baseline variant gates identically: the
        // diff reads only the scalar totals.
        let diff = diff_reports(&rep.render_baseline(), &text).unwrap();
        assert!(!diff.regressed(), "{}", diff.table());
    }

    #[test]
    fn sampling_is_present_when_telemetry_is_on() {
        let rep = tiny_report();
        let rc = rep.runs.iter().find(|r| r.config == "RC").unwrap();
        // rc-bench builds region-rt with its default features, but probe
        // the runtime rather than hard-coding that assumption.
        let telemetry_on = {
            let mut h = region_rt::Heap::with_defaults();
            h.enable_sampling(1, 8);
            h.sampling_enabled()
        };
        if telemetry_on {
            assert!(!rc.samples.is_empty(), "RC run must carry samples");
            assert!(rc.samples.len() <= BENCH_SAMPLE_CAP);
            let section = timeline_section(&rep);
            assert!(section.contains("tile"), "{section}");
            assert!(section.contains("live words"), "{section}");
        } else {
            assert!(rc.samples.is_empty());
        }
    }

    #[test]
    fn injected_regressions_trip_the_gates() {
        let rep = tiny_report();
        let base = rep.render();
        // +10% cycles on every run: regression.
        let mut bumped = rep.clone();
        for r in &mut bumped.runs {
            r.cycles += r.cycles / 10 + 1;
        }
        let diff = diff_reports(&base, &bumped.render()).unwrap();
        assert!(diff.regressed(), "10% cycle growth must trip the 5% gate");
        assert!(diff.table().contains("REGRESSED"));
        // +4% cycles: within the gate.
        let mut mild = rep.clone();
        for r in &mut mild.runs {
            r.cycles += r.cycles * 4 / 100;
        }
        let diff = diff_reports(&base, &mild.render()).unwrap();
        assert!(!diff.regressed(), "4% cycle growth is within the 5% gate:\n{}", diff.table());
        // +12% peak memory: regression; improvement is not.
        let mut fat = rep.clone();
        for r in &mut fat.runs {
            r.peak_live_words += r.peak_live_words * 12 / 100 + 1;
        }
        assert!(diff_reports(&base, &fat.render()).unwrap().regressed());
        let mut slim = rep.clone();
        for r in &mut slim.runs {
            r.cycles -= r.cycles / 10;
        }
        assert!(!diff_reports(&base, &slim.render()).unwrap().regressed());
    }

    #[test]
    fn missing_runs_regress_and_added_runs_do_not() {
        let rep = tiny_report();
        let base = rep.render();
        let mut fewer = rep.clone();
        fewer.runs.pop();
        let diff = diff_reports(&base, &fewer.render()).unwrap();
        assert!(diff.regressed(), "a vanished run is a regression");
        assert_eq!(diff.missing.len(), 1);
        // The reverse direction only reports the extra run.
        let diff = diff_reports(&fewer.render(), &base).unwrap();
        assert!(!diff.regressed());
        assert_eq!(diff.added.len(), 1);
    }

    #[test]
    fn schema_mismatch_is_an_error_not_a_regression() {
        let rep = tiny_report().render();
        let other = rep.replace(SCHEMA, "rc-bench-trajectory/v0");
        assert!(diff_reports(&other, &rep).unwrap_err().contains("schema"));
        assert!(diff_reports(&rep, "not json").is_err());
    }
}
