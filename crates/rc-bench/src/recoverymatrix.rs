//! The checkpoint-recovery matrix.
//!
//! [`collect`] sweeps the Figure 7 workloads under five allocator/check
//! configurations (`lea`, `GC`, `nq`, `qs`, `inf`) crossed with a set of
//! [`RecoveryScenario`]s — a clean baseline, scheduled fault injections,
//! and organic page-budget squeezes — each paired with the
//! [`RecoveryPolicy`] meant to survive it. Every cell runs under
//! [`rc_lang::supervise`]: trap → checkpoint → validate by
//! [`region_rt::Heap::restore`] → apply the next rung → re-execute. The
//! recovery contract gated here:
//!
//! 1. **no panics** — supervision ends in a typed
//!    [`rc_lang::SupervisionOutcome`], never an unwind;
//! 2. **checkpoints are actionable** — every snapshot taken along the
//!    way must restore (which transitively gates verification, audit
//!    and the re-snapshot byte fixpoint);
//! 3. **post-recovery audit cleanliness** — every attempt leaves the
//!    heap audit-clean;
//! 4. **recovery works** — scenarios the policy can answer (budget
//!    squeezes, RC saturation, check chaos) must end
//!    [`Completed`](rc_lang::SupervisionOutcome::Completed); unanswerable ones
//!    (sticky backend-independent OOM) must end
//!    [`PolicyExhausted`](rc_lang::SupervisionOutcome::PolicyExhausted) — nothing
//!    lands [`Unrecoverable`](rc_lang::SupervisionOutcome::Unrecoverable).
//!
//! Violations are collected into the report (and fail the gate) rather
//! than thrown, so one bad cell never hides the rest. Every number is
//! virtual-clock, so two reports from the same tree are byte-identical —
//! CI runs the binary twice and `cmp`s. The schema string [`SCHEMA`]
//! names the layout; see `docs/ROBUSTNESS.md`.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rc_lang::{supervise_compiled, CheckMode, RecoveryPolicy, RunConfig, SupervisionReport};
use rc_workloads::driver::prepare_workload;
use rc_workloads::{Scale, Workload};
use region_rt::{FaultMode, FaultPlan, Json};

/// Schema identifier embedded in every report; bumped on layout change
/// (registered in [`crate::schema`]).
pub const SCHEMA: &str = crate::schema::Schema::RecoveryMatrix.id();

/// What a scenario's supervision must end as for the gate to pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// Must end [`rc_lang::SupervisionOutcome::Completed`] — the policy answers
    /// this failure.
    Complete,
    /// Must end [`rc_lang::SupervisionOutcome::PolicyExhausted`] *if the fault
    /// fires* — no rung can answer it, but degradation must stay orderly.
    /// Cells where the schedule never fires complete cleanly instead.
    Exhaust,
}

/// One column of the recovery matrix: a failure to inject and the policy
/// meant to survive it.
#[derive(Debug, Clone)]
pub struct RecoveryScenario {
    /// Scenario name (stable; part of a cell's identity key).
    pub name: &'static str,
    /// The injection plan (empty for clean/organic scenarios).
    pub plan: FaultPlan,
    /// Heap page budget (0 = unlimited).
    pub page_budget: usize,
    /// The recovery policy supervising this scenario.
    pub policy: RecoveryPolicy,
    /// The gated verdict.
    pub expect: Expect,
}

/// The standard scenario sweep.
///
/// Each scenario pairs a failure with the policy rung that answers it:
/// the page-budget squeeze escalates its budget away, RC saturation and
/// check chaos degrade down the `qs → nq → norc` ladder until the
/// faulting plane goes quiet, and the sticky backend-independent OOM
/// proves orderly exhaustion.
pub fn scenarios() -> Vec<RecoveryScenario> {
    vec![
        RecoveryScenario {
            name: "clean",
            plan: FaultPlan::new(),
            page_budget: 0,
            policy: RecoveryPolicy::standard(),
            expect: Expect::Complete,
        },
        RecoveryScenario {
            name: "oom-sticky",
            plan: FaultPlan::new().fail_alloc(FaultMode::Schedule(vec![5])).sticky(),
            page_budget: 0,
            policy: RecoveryPolicy::standard(),
            expect: Expect::Exhaust,
        },
        RecoveryScenario {
            name: "budget-squeeze",
            plan: FaultPlan::new(),
            page_budget: 4,
            policy: RecoveryPolicy::standard().with_page_budget_steps(vec![16, 64, 0]),
            expect: Expect::Complete,
        },
        RecoveryScenario {
            name: "rc-saturate",
            plan: FaultPlan::new().saturate_rc(FaultMode::Schedule(vec![40])).sticky(),
            page_budget: 0,
            policy: RecoveryPolicy::standard(),
            expect: Expect::Complete,
        },
        RecoveryScenario {
            name: "check-chaos",
            plan: FaultPlan::new().fail_checks(FaultMode::Schedule(vec![10])).sticky(),
            page_budget: 0,
            policy: RecoveryPolicy::standard(),
            expect: Expect::Complete,
        },
    ]
}

/// The configuration axis: the acceptance sweep `lea`, `GC`, `nq`, `qs`,
/// `inf` — two emulation backends plus the three safe RC check regimes
/// (the ladder's own rungs).
pub fn configs() -> Vec<(&'static str, RunConfig)> {
    vec![
        ("lea", RunConfig::lea()),
        ("GC", RunConfig::gc()),
        ("nq", RunConfig::rc(CheckMode::Nq)),
        ("qs", RunConfig::rc(CheckMode::Qs)),
        ("inf", RunConfig::rc(CheckMode::Inf)),
    ]
}

/// One workload × scenario × configuration cell.
#[derive(Debug, Clone)]
pub struct RecoveryRun {
    /// Workload name.
    pub workload: String,
    /// Scenario name.
    pub scenario: String,
    /// Configuration display name.
    pub config: String,
    /// How supervision ended: `completed`, `policy-exhausted`,
    /// `unrecoverable` or `panicked`.
    pub outcome: String,
    /// Attempts executed.
    pub attempts: u32,
    /// Whether completion came from a retry (recovery actually happened).
    pub recovered: bool,
    /// Whether every checkpoint taken restored cleanly.
    pub checkpoints_ok: bool,
    /// Whether every attempt left the heap audit-clean.
    pub audits_clean: bool,
    /// Total fault injections across all attempts.
    pub injected: u64,
    /// Virtual cycles executing attempts.
    pub run_cycles: u64,
    /// Virtual cycles burned in backoff.
    pub backoff_cycles: u64,
    /// The full supervision record (absent for panicked cells).
    pub supervision: Option<SupervisionReport>,
}

impl RecoveryRun {
    /// The cell's identity: `workload/scenario/config`.
    pub fn key(&self) -> String {
        format!("{}/{}/{}", self.workload, self.scenario, self.config)
    }

    /// Encodes the cell as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::s(&*self.workload)),
            ("scenario", Json::s(&*self.scenario)),
            ("config", Json::s(&*self.config)),
            ("outcome", Json::s(&*self.outcome)),
            ("attempts", Json::U(self.attempts as u64)),
            ("recovered", Json::Bool(self.recovered)),
            ("checkpoints_ok", Json::Bool(self.checkpoints_ok)),
            ("audits_clean", Json::Bool(self.audits_clean)),
            ("injected", Json::U(self.injected)),
            ("run_cycles", Json::U(self.run_cycles)),
            ("backoff_cycles", Json::U(self.backoff_cycles)),
            (
                "supervision",
                match &self.supervision {
                    Some(rep) => rep.to_json(),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// The full matrix report: every cell plus the contract violations.
#[derive(Debug, Clone)]
pub struct RecoveryMatrixReport {
    /// Workload scale the matrix ran at.
    pub scale: u32,
    /// All cells, workload-major, scenario-then-configuration order.
    pub runs: Vec<RecoveryRun>,
    /// Recovery-contract violations (empty = the gate passes).
    pub violations: Vec<String>,
}

impl RecoveryMatrixReport {
    /// Whether the recovery gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Encodes the report, schema string first.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::s(SCHEMA)),
            ("scale", Json::U(self.scale as u64)),
            ("passed", Json::Bool(self.passed())),
            ("violations", Json::A(self.violations.iter().map(|v| Json::s(&**v)).collect())),
            ("runs", Json::A(self.runs.iter().map(RecoveryRun::to_json).collect())),
        ])
    }

    /// Renders the report as pretty-printed JSON (the
    /// `RECOVERYMATRIX_rc.json` format).
    pub fn render(&self) -> String {
        let mut s = self.to_json().render_pretty();
        s.push('\n');
        s
    }

    /// A short human summary: cell counts by verdict, then violations.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let count = |tag: &str| self.runs.iter().filter(|r| r.outcome == tag).count();
        let _ = writeln!(
            out,
            "recovery-matrix: {} cells — {} completed ({} via recovery), {} exhausted, {} other",
            self.runs.len(),
            count("completed"),
            self.runs.iter().filter(|r| r.recovered).count(),
            count("policy-exhausted"),
            self.runs.len() - count("completed") - count("policy-exhausted"),
        );
        let retries: u64 = self.runs.iter().map(|r| r.attempts.saturating_sub(1) as u64).sum();
        let _ = writeln!(out, "re-executions: {retries}");
        if self.passed() {
            let _ = writeln!(out, "recovery gate: PASS");
        } else {
            let _ = writeln!(out, "recovery gate: FAIL ({} violations)", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  - {v}");
            }
        }
        out
    }
}

/// Runs the full matrix over all eight workloads.
pub fn collect(scale: Scale) -> RecoveryMatrixReport {
    collect_for(scale, &rc_workloads::all())
}

/// Runs the matrix over the given workloads: every [`scenarios`] column
/// under every [`configs`] configuration, supervised.
pub fn collect_for(scale: Scale, workloads: &[Workload]) -> RecoveryMatrixReport {
    let mut runs = Vec::new();
    let mut violations = Vec::new();
    for w in workloads {
        let c = prepare_workload(w, scale);
        for scenario in scenarios() {
            for (name, cfg) in configs() {
                let cfg = cfg
                    .with_faults(scenario.plan.clone())
                    .with_page_budget(scenario.page_budget);
                let key = format!("{}/{}/{name}", w.name, scenario.name);
                // `supervise_compiled` runs the interpreter on a scoped
                // thread that re-raises panics here, so the catch
                // observes them all.
                let cell = match catch_unwind(AssertUnwindSafe(|| {
                    supervise_compiled(&c, &cfg, &scenario.policy)
                })) {
                    Ok(rep) => cell_of(w.name, scenario.name, name, rep),
                    Err(payload) => {
                        violations.push(format!("{key}: panicked: {}", panic_msg(&payload)));
                        panicked_cell(w.name, scenario.name, name)
                    }
                };
                gate_cell(&key, &scenario, &cell, &mut violations);
                runs.push(cell);
            }
        }
    }
    RecoveryMatrixReport { scale: scale.0, runs, violations }
}

/// Applies the recovery contract to one cell.
fn gate_cell(
    key: &str,
    scenario: &RecoveryScenario,
    cell: &RecoveryRun,
    violations: &mut Vec<String>,
) {
    if cell.outcome == "panicked" {
        return; // already a violation
    }
    if !cell.checkpoints_ok {
        violations.push(format!("{key}: a checkpoint failed to restore"));
    }
    if !cell.audits_clean {
        violations.push(format!("{key}: an attempt left the heap audit-unclean"));
    }
    match scenario.expect {
        Expect::Complete => {
            if cell.outcome != "completed" {
                violations.push(format!(
                    "{key}: expected completion, got {}",
                    cell.outcome
                ));
            }
        }
        Expect::Exhaust => {
            // Orderly exhaustion when the fault fires; cells the schedule
            // never reaches complete cleanly instead.
            let ok = cell.outcome == "policy-exhausted"
                || (cell.outcome == "completed" && cell.injected == 0);
            if !ok {
                violations.push(format!(
                    "{key}: expected orderly exhaustion, got {} ({} injections)",
                    cell.outcome, cell.injected
                ));
            }
        }
    }
}

fn cell_of(workload: &str, scenario: &str, config: &str, rep: SupervisionReport) -> RecoveryRun {
    RecoveryRun {
        workload: workload.to_string(),
        scenario: scenario.to_string(),
        config: config.to_string(),
        outcome: rep.outcome.as_str().to_string(),
        attempts: rep.attempts.len() as u32,
        recovered: rep.recovered(),
        checkpoints_ok: rep.checkpoints_ok(),
        audits_clean: rep.attempts.iter().all(|a| a.audit_clean),
        injected: rep.attempts.iter().map(|a| a.injected).sum(),
        run_cycles: rep.run_cycles,
        backoff_cycles: rep.backoff_cycles,
        supervision: Some(rep),
    }
}

/// A placeholder cell for a run that panicked (already a violation; the
/// zeros keep the report shape uniform).
fn panicked_cell(workload: &str, scenario: &str, config: &str) -> RecoveryRun {
    RecoveryRun {
        workload: workload.to_string(),
        scenario: scenario.to_string(),
        config: config.to_string(),
        outcome: "panicked".to_string(),
        attempts: 0,
        recovered: false,
        checkpoints_ok: false,
        audits_clean: false,
        injected: 0,
        run_cycles: 0,
        backoff_cycles: 0,
        supervision: None,
    }
}

fn panic_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Parses a serialized matrix report, validating the schema string, and
/// returns `(passed, violations)`.
pub fn parse_report(text: &str) -> Result<(bool, Vec<String>), String> {
    let doc =
        Json::parse(text).map_err(|e| format!("recovery-matrix report: not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => {
            return Err(format!("recovery-matrix report: schema {s:?}, expected {SCHEMA:?}"))
        }
        None => return Err("recovery-matrix report: missing schema field".to_string()),
    }
    let passed = doc
        .get("passed")
        .and_then(Json::as_bool)
        .ok_or_else(|| "recovery-matrix report: missing passed flag".to_string())?;
    let violations = doc
        .get("violations")
        .and_then(Json::as_array)
        .ok_or_else(|| "recovery-matrix report: missing violations array".to_string())?
        .iter()
        .filter_map(|v| v.as_str().map(str::to_string))
        .collect();
    Ok((passed, violations))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_matrix() -> RecoveryMatrixReport {
        collect_for(Scale::TINY, &[rc_workloads::by_name("tile").unwrap()])
    }

    #[test]
    fn matrix_covers_scenarios_by_configs_and_passes() {
        let rep = tiny_matrix();
        assert_eq!(rep.runs.len(), scenarios().len() * configs().len());
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        // The clean column is the restore-fixpoint acceptance sweep:
        // every config completes with a restorable exit checkpoint.
        for r in rep.runs.iter().filter(|r| r.scenario == "clean") {
            assert_eq!(r.outcome, "completed", "{}", r.key());
            assert_eq!(r.attempts, 1, "{}", r.key());
            assert!(r.checkpoints_ok, "{}", r.key());
        }
        // Recovery genuinely happened somewhere (a retry completed).
        assert!(rep.runs.iter().any(|r| r.recovered), "no cell recovered");
        // And orderly exhaustion happened somewhere too, with restorable
        // trap checkpoints all the way down.
        assert!(rep
            .runs
            .iter()
            .any(|r| r.outcome == "policy-exhausted" && r.checkpoints_ok && r.attempts > 1));
        // The budget squeeze recovers by escalation on every config.
        for r in rep.runs.iter().filter(|r| r.scenario == "budget-squeeze") {
            assert_eq!(r.outcome, "completed", "{}", r.key());
        }
        let summary = rep.summary();
        assert!(summary.contains("PASS"), "{summary}");
    }

    #[test]
    fn report_is_byte_deterministic_and_round_trips() {
        let a = tiny_matrix().render();
        let b = tiny_matrix().render();
        assert_eq!(a, b, "same tree must produce byte-identical reports");
        let (passed, violations) = parse_report(&a).unwrap();
        assert!(passed);
        assert!(violations.is_empty());
        assert!(parse_report("not json").is_err());
        let other = a.replace(SCHEMA, "rc-bench-recoverymatrix/v0");
        assert!(parse_report(&other).unwrap_err().contains("schema"));
    }
}
