//! The differential-fuzzing report schema (`rc-fuzz-report/v1`).
//!
//! Pure data: the rc-fuzz harness fills these rows in; this module owns
//! the JSON layout so report consumers (CI's determinism gate, the docs)
//! depend on rc-bench alone. Like the fault matrix and the trajectory
//! exports, every field is virtual — seeds, step counts, outcome keys —
//! so two reports generated from the same tree are byte-identical, which
//! is exactly what CI's double-run `cmp` asserts.

use region_rt::Json;

/// Schema identifier embedded in every report; bumped on layout change
/// (registered in [`crate::schema`]).
pub const SCHEMA: &str = crate::schema::Schema::FuzzReport.id();

/// One generated program's trip through the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// The generator seed.
    pub seed: u64,
    /// Outcome key every configuration agreed on (baseline's when they
    /// did not agree).
    pub outcome: String,
    /// Whether every oracle assertion held.
    pub passed: bool,
    /// Human-readable violation descriptions, detection order.
    pub violations: Vec<String>,
    /// Interpreter steps summed over all oracle runs.
    pub steps: u64,
    /// Check sites the inference eliminated.
    pub eliminated_sites: u64,
    /// Annotation predicates evaluated in the counting rerun.
    pub checks_counted: u64,
    /// Annotation predicates that failed in the counting rerun.
    pub checks_fired: u64,
    /// Statement count of the shrunk repro, for failing cases.
    pub shrunk_statements: Option<u64>,
    /// Regression file the shrunk repro was written to, if any.
    pub repro: Option<String>,
}

impl FuzzCase {
    /// Encodes the case as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", Json::U(self.seed)),
            ("outcome", Json::s(&*self.outcome)),
            ("passed", Json::Bool(self.passed)),
            (
                "violations",
                Json::A(self.violations.iter().map(Json::s).collect()),
            ),
            ("steps", Json::U(self.steps)),
            ("eliminated_sites", Json::U(self.eliminated_sites)),
            ("checks_counted", Json::U(self.checks_counted)),
            ("checks_fired", Json::U(self.checks_fired)),
            (
                "shrunk_statements",
                self.shrunk_statements.map_or(Json::Null, Json::U),
            ),
            (
                "repro",
                self.repro.as_deref().map_or(Json::Null, Json::s),
            ),
        ])
    }
}

/// A full campaign: the generation parameters plus every case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzReport {
    /// Number of seeds swept (seeds `0..seeds`).
    pub seeds: u64,
    /// Generator size knob.
    pub size: u32,
    /// Per-run step budget (0 = unlimited).
    pub budget_steps: u64,
    /// Per-case results, in seed order.
    pub cases: Vec<FuzzCase>,
}

impl FuzzReport {
    /// Whether every case passed.
    pub fn passed(&self) -> bool {
        self.cases.iter().all(|c| c.passed)
    }

    /// The failing cases.
    pub fn failures(&self) -> Vec<&FuzzCase> {
        self.cases.iter().filter(|c| !c.passed).collect()
    }

    /// Encodes the report (schema header included).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::s(SCHEMA)),
            ("seeds", Json::U(self.seeds)),
            ("size", Json::U(self.size as u64)),
            ("budget_steps", Json::U(self.budget_steps)),
            ("passed", Json::Bool(self.passed())),
            (
                "totals",
                Json::obj(vec![
                    ("cases", Json::U(self.cases.len() as u64)),
                    (
                        "failures",
                        Json::U(self.failures().len() as u64),
                    ),
                    (
                        "steps",
                        Json::U(self.cases.iter().map(|c| c.steps).sum()),
                    ),
                    (
                        "eliminated_sites",
                        Json::U(self.cases.iter().map(|c| c.eliminated_sites).sum()),
                    ),
                    (
                        "checks_counted",
                        Json::U(self.cases.iter().map(|c| c.checks_counted).sum()),
                    ),
                    (
                        "checks_fired",
                        Json::U(self.cases.iter().map(|c| c.checks_fired).sum()),
                    ),
                ]),
            ),
            (
                "cases",
                Json::A(self.cases.iter().map(FuzzCase::to_json).collect()),
            ),
        ])
    }

    /// Pretty-printed JSON (stable field order; byte-deterministic).
    pub fn render(&self) -> String {
        self.to_json().render_pretty()
    }

    /// A one-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "rc-fuzz: {} seeds, {} failures, {} checks counted ({} fired), {} sites eliminated",
            self.seeds,
            self.failures().len(),
            self.cases.iter().map(|c| c.checks_counted).sum::<u64>(),
            self.cases.iter().map(|c| c.checks_fired).sum::<u64>(),
            self.cases.iter().map(|c| c.eliminated_sites).sum::<u64>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FuzzReport {
        FuzzReport {
            seeds: 2,
            size: 6,
            budget_steps: 1000,
            cases: vec![
                FuzzCase {
                    seed: 0,
                    outcome: "exit:7".into(),
                    passed: true,
                    violations: vec![],
                    steps: 420,
                    eliminated_sites: 3,
                    checks_counted: 11,
                    checks_fired: 0,
                    shrunk_statements: None,
                    repro: None,
                },
                FuzzCase {
                    seed: 1,
                    outcome: "exit:0".into(),
                    passed: false,
                    violations: vec!["divergence: qs saw abort:check_failed, baseline saw exit:0".into()],
                    steps: 99,
                    eliminated_sites: 0,
                    checks_counted: 4,
                    checks_fired: 2,
                    shrunk_statements: Some(5),
                    repro: Some("seed0001-divergence.rc".into()),
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_and_is_deterministic() {
        let r = sample();
        assert!(!r.passed());
        assert_eq!(r.failures().len(), 1);
        let a = r.render();
        let b = r.render();
        assert_eq!(a, b);
        let parsed = Json::parse(&a).expect("valid JSON");
        let Json::O(fields) = &parsed else { panic!("not an object") };
        assert_eq!(fields[0].0, "schema");
        assert_eq!(fields[0].1, Json::s(SCHEMA));
        assert!(a.contains("checks_fired"));
        assert!(r.summary().contains("1 failures"));
    }
}
