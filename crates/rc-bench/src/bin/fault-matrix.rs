//! Runs the fault-injection torture matrix and gates on the robustness
//! contract.
//!
//! Usage: `cargo run -p rc-bench --bin fault-matrix -- [--scale N]
//! [--out FAULTMATRIX_rc.json]`.
//!
//! Sweeps the Figure 7 workloads under every allocator configuration ×
//! every fault scenario (scheduled injections per plane plus page-budget
//! squeezes) with trap-and-unwind recovery on. Prints a summary, writes
//! the byte-deterministic JSON report when `--out` is given, and exits 0
//! when the gate passes (no panics, post-fault audits clean, allocator
//! configs agreeing on OOM landings), 1 on a violation, 2 on I/O errors.

use std::process::ExitCode;

use rc_bench::faultmatrix;

fn main() -> ExitCode {
    let scale = rc_bench::scale_from_args();
    let report = faultmatrix::collect(scale);
    print!("{}", report.summary());
    if let Some(path) = rc_bench::value_from_args("--out") {
        if let Err(e) = std::fs::write(&path, report.render()) {
            eprintln!("fault-matrix: {path}: {e}");
            return ExitCode::from(2);
        }
        println!("report written to {path}");
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
