//! Offline heap-snapshot analyzer.
//!
//! Usage:
//!
//! ```text
//! rc-inspect dump --workload cfrac --config gc [--scale N] --out PATH
//! rc-inspect summary PATH
//! rc-inspect top PATH [--limit N]
//! rc-inspect leaks PATH [--limit N]
//! rc-inspect diff PATH_A PATH_B [--limit N]
//! ```
//!
//! `dump` runs a workload with snapshots enabled and writes the final
//! (exit or trap) snapshot, byte-deterministically. The query commands
//! load `rc-bench-snapshot/v1` documents from disk; `diff` prints
//! per-region and per-site retained-word deltas of the second snapshot
//! against the first (the gc-vs-lea retention gap, attributed to source
//! lines). Exits 0 on success, 2 on bad arguments, unknown schemas, or
//! I/O errors; `diff` is informational and never fails on differences.

use std::process::ExitCode;

use rc_bench::inspect;
use rc_lang::{CheckMode, RunConfig};

const USAGE: &str = "\
usage: rc-inspect <command>
  dump --workload NAME --config cat|lea|gc|norc|nq|qs|inf|nc [--scale N] --out PATH
  summary PATH
  top PATH [--limit N]
  leaks PATH [--limit N]
  diff PATH_A PATH_B [--limit N]";

fn config_by_name(name: &str) -> Option<RunConfig> {
    Some(match name {
        "cat" => RunConfig::cat(),
        "lea" => RunConfig::lea(),
        "gc" => RunConfig::gc(),
        "norc" => RunConfig::norc(),
        "nq" => RunConfig::rc(CheckMode::Nq),
        "qs" => RunConfig::rc(CheckMode::Qs),
        "inf" => RunConfig::rc_inf(),
        "nc" => RunConfig::rc(CheckMode::Nc),
        _ => return None,
    })
}

fn load_file(path: &str) -> Result<region_rt::HeapSnapshot, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    inspect::load(&text).map_err(|e| format!("{path}: {e}"))
}

fn limit_from_args() -> usize {
    rc_bench::value_from_args("--limit").and_then(|v| v.parse().ok()).unwrap_or(20)
}

/// The first positional (non `--flag value`) arguments after the
/// subcommand.
fn positionals() -> Vec<String> {
    let args: Vec<String> = std::env::args().skip(2).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i].starts_with("--") {
            i += 2;
        } else {
            out.push(args[i].clone());
            i += 1;
        }
    }
    out
}

fn cmd_dump() -> Result<(), String> {
    let wname = rc_bench::value_from_args("--workload").ok_or("dump needs --workload")?;
    let cname = rc_bench::value_from_args("--config").ok_or("dump needs --config")?;
    let out = rc_bench::value_from_args("--out").ok_or("dump needs --out")?;
    let workload =
        rc_workloads::by_name(&wname).ok_or_else(|| format!("unknown workload {wname:?}"))?;
    let config =
        config_by_name(&cname).ok_or_else(|| format!("unknown config {cname:?}"))?;
    let snap = inspect::dump(&workload, &cname, &config, rc_bench::scale_from_args())?;
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    }
    std::fs::write(&out, snap.render()).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "{} — reason {}, {} live words, {} pages → {out}",
        snap.label,
        snap.reason.as_str(),
        snap.total_live_words(),
        snap.pages.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let cmd = match std::env::args().nth(1) {
        Some(c) => c,
        None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "dump" => cmd_dump(),
        "summary" | "top" | "leaks" => {
            let pos = positionals();
            match pos.first() {
                None => Err(format!("{cmd} needs a snapshot path\n{USAGE}")),
                Some(path) => load_file(path).map(|s| {
                    print!(
                        "{}",
                        match cmd.as_str() {
                            "summary" => inspect::summary(&s),
                            "top" => inspect::top(&s, limit_from_args()),
                            _ => inspect::leaks(&s, limit_from_args()),
                        }
                    );
                }),
            }
        }
        "diff" => {
            let pos = positionals();
            match (pos.first(), pos.get(1)) {
                (Some(a), Some(b)) => load_file(a).and_then(|sa| {
                    load_file(b).map(|sb| {
                        print!("{}", inspect::diff(&sa, &sb, limit_from_args()));
                    })
                }),
                _ => Err(format!("diff needs two snapshot paths\n{USAGE}")),
            }
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rc-inspect: {e}");
            ExitCode::from(2)
        }
    }
}
