//! Regenerates the paper's fig9. Usage: `cargo run -p rc-bench --bin fig9 [--scale N]`.

fn main() {
    let scale = rc_bench::scale_from_args();
    let rows = rc_bench::report::fig9(scale);
    println!("{}", rc_bench::report::text_table(&rows));
}
