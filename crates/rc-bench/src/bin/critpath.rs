//! Renders the critical path of one parallel workload cell.
//!
//! Usage: `cargo run -p rc-bench --bin critpath -- [--workload moss]
//! [--tasks 4] [--config lea|GC|qs] [--scale N] [--det-seed N]
//! [--out CRITPATH_rc.json]`.
//!
//! Runs the workload's spawn/join variant under the seeded deterministic
//! scheduler, computes the work/span decomposition from the per-task
//! reports, and prints the critical path link by link with
//! `workload:line` spawn-site attribution. With `--out`, also writes the
//! byte-deterministic JSON report (CI runs the binary twice and `cmp`s).
//! Exits 0 when the work/span identities hold, 1 when they do not, 2 on
//! bad arguments or I/O errors.

use std::process::ExitCode;

use rc_bench::critpath;
use rc_lang::{CheckMode, RunConfig};

fn main() -> ExitCode {
    let scale = rc_bench::scale_from_args();
    let wname = rc_bench::value_from_args("--workload").unwrap_or_else(|| "moss".to_string());
    let tasks: u32 = match rc_bench::value_from_args("--tasks").map(|v| v.parse()) {
        None => 4,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("critpath: --tasks wants a number");
            return ExitCode::from(2);
        }
    };
    let seed: u64 = match rc_bench::value_from_args("--det-seed").map(|v| v.parse()) {
        None => critpath::DET_SEED,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("critpath: --det-seed wants a number");
            return ExitCode::from(2);
        }
    };
    let cname = rc_bench::value_from_args("--config").unwrap_or_else(|| "lea".to_string());
    let config = match cname.as_str() {
        "lea" => RunConfig::lea(),
        "GC" => RunConfig::gc(),
        "qs" => RunConfig::rc(CheckMode::Qs),
        other => {
            eprintln!("critpath: unknown config {other:?} (want lea|GC|qs)");
            return ExitCode::from(2);
        }
    };

    let run = match critpath::collect(&wname, tasks, &cname, &config, scale, seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("critpath: {e}");
            return ExitCode::from(2);
        }
    };

    print!("{}", run.render_text());

    if let Some(path) = rc_bench::value_from_args("--out") {
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("critpath: {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
        if let Err(e) = std::fs::write(&path, run.render()) {
            eprintln!("critpath: {path}: {e}");
            return ExitCode::from(2);
        }
        println!("report written to {path}");
    }

    // The work/span identities the matrix gates cell by cell, re-checked
    // here so a standalone invocation still fails loudly.
    let cp = &run.cp;
    let task_sum: u64 = cp.tasks.iter().map(|t| t.cycles).sum();
    if cp.work != task_sum || cp.span > cp.work || cp.span + cp.overlapped() != cp.work {
        eprintln!(
            "critpath: identity violation — work {} (Σ tasks {}), span {}, overlapped {}",
            cp.work,
            task_sum,
            cp.span,
            cp.overlapped()
        );
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
