//! Runs the checkpoint-recovery matrix and gates on the recovery
//! contract.
//!
//! Usage: `cargo run -p rc-bench --bin recovery-matrix -- [--scale N]
//! [--out RECOVERYMATRIX_rc.json] [--dump-pair DIR]`.
//!
//! Sweeps the Figure 7 workloads under the `lea`/`GC`/`nq`/`qs`/`inf`
//! configurations × every recovery scenario (clean baseline, scheduled
//! injections, page-budget squeezes), each supervised by its paired
//! recovery policy: trap → checkpoint → restore-validate → next rung →
//! re-execute. Prints a summary, writes the byte-deterministic JSON
//! report when `--out` is given, and exits 0 when the gate passes (no
//! panics, every checkpoint restorable, post-recovery audits clean,
//! recoverable scenarios completed, unrecoverable ones exhausted in
//! order), 1 on a violation, 2 on I/O errors.
//!
//! `--dump-pair DIR` instead replays one budget-squeeze recovery on
//! `moss/qs` and writes the pre-unwind trap snapshot
//! (`recovery_trap.json`) and the recovered retry's exit snapshot
//! (`recovery_exit.json`) for `rc-inspect diff` — the CI job greps the
//! diff for non-empty site attribution.

use std::process::ExitCode;

use rc_bench::recoverymatrix;
use rc_lang::{run_audited, CheckMode, Outcome, RunConfig};
use rc_workloads::driver::prepare_workload;
use rc_workloads::Scale;
use region_rt::SnapshotReason;

fn main() -> ExitCode {
    let scale = rc_bench::scale_from_args();
    if let Some(dir) = rc_bench::value_from_args("--dump-pair") {
        return dump_pair(&dir, scale);
    }
    let report = recoverymatrix::collect(scale);
    print!("{}", report.summary());
    if let Some(path) = rc_bench::value_from_args("--out") {
        if let Err(e) = std::fs::write(&path, report.render()) {
            eprintln!("recovery-matrix: {path}: {e}");
            return ExitCode::from(2);
        }
        println!("report written to {path}");
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Replays the budget-squeeze recovery story on `moss/qs` — the
/// squeezed first attempt traps, the budget-lifted retry (the policy's
/// final escalation rung) completes — and writes both checkpoints.
fn dump_pair(dir: &str, scale: Scale) -> ExitCode {
    let Some(w) = rc_workloads::by_name("moss") else {
        eprintln!("recovery-matrix: workload moss not registered");
        return ExitCode::from(2);
    };
    let c = prepare_workload(&w, scale);
    let squeezed =
        RunConfig::rc(CheckMode::Qs).trapping().with_snapshots().with_page_budget(4);

    let r = run_audited(&c, &squeezed);
    if !matches!(r.outcome, Outcome::Trapped(_)) {
        eprintln!("recovery-matrix: squeezed run did not trap ({:?})", r.outcome);
        return ExitCode::from(1);
    }
    let Some(trap) = r.snapshots.last().filter(|s| s.reason == SnapshotReason::Trap) else {
        eprintln!("recovery-matrix: trapped run carried no trap snapshot");
        return ExitCode::from(1);
    };
    let mut trap = trap.clone();
    trap.label = "moss/qs+budget4".to_string();

    let lifted = squeezed.with_page_budget(0);
    let r = run_audited(&c, &lifted);
    if !r.outcome.is_exit() {
        eprintln!("recovery-matrix: lifted retry did not complete ({:?})", r.outcome);
        return ExitCode::from(1);
    }
    let Some(exit) = r.snapshots.last().filter(|s| s.reason == SnapshotReason::Exit) else {
        eprintln!("recovery-matrix: completed retry carried no exit snapshot");
        return ExitCode::from(1);
    };
    let mut exit = exit.clone();
    exit.label = "moss/qs".to_string();

    for (name, snap) in [("recovery_trap.json", &trap), ("recovery_exit.json", &exit)] {
        let path = format!("{dir}/{name}");
        if let Err(e) = std::fs::write(&path, snap.render()) {
            eprintln!("recovery-matrix: {path}: {e}");
            return ExitCode::from(2);
        }
        println!("snapshot written to {path}");
    }
    ExitCode::SUCCESS
}
