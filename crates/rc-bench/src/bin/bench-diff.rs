//! Compares two `BENCH_rc.json` trajectory reports and gates on
//! regressions.
//!
//! Usage: `cargo run -p rc-bench --bin bench-diff -- <baseline.json>
//! <new.json>`.
//!
//! Prints a per-metric delta table and exits 0 when every gated metric
//! stays within threshold (cycles ≤ +5%, peak live words ≤ +10%, no
//! baseline run missing), 1 on a regression, 2 on usage or input errors
//! (unreadable files, invalid JSON, schema mismatch).

use std::process::ExitCode;

use rc_bench::trajectory::{self, CYCLE_REGRESSION_PCT, PEAK_REGRESSION_PCT};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let [_, old_path, new_path] = args.as_slice() else {
        eprintln!("usage: bench-diff <baseline.json> <new.json>");
        return ExitCode::from(2);
    };
    let old = match std::fs::read_to_string(old_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-diff: {old_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let new = match std::fs::read_to_string(new_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench-diff: {new_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = match trajectory::diff_reports(&old, &new) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bench-diff: {e}");
            return ExitCode::from(2);
        }
    };
    println!("bench-diff: {old_path} -> {new_path}");
    println!(
        "gates: cycles +{CYCLE_REGRESSION_PCT}%, peak_live_words +{PEAK_REGRESSION_PCT}%\n"
    );
    print!("{}", diff.table());
    if diff.regressed() {
        let tripped = diff.rows.iter().filter(|r| r.regressed).count();
        println!(
            "\nREGRESSION: {tripped} gated metric(s) over threshold, {} run(s) missing",
            diff.missing.len()
        );
        ExitCode::from(1)
    } else {
        println!("\nok: no regressions");
        ExitCode::SUCCESS
    }
}
