//! Regenerates the paper's fig7. Usage: `cargo run -p rc-bench --bin fig7 [--scale N]`.

fn main() {
    let scale = rc_bench::scale_from_args();
    let rows = rc_bench::report::fig7(scale);
    println!("{}", rc_bench::report::text_table(&rows));
}
