//! Exports one workload run as a Perfetto-loadable provenance trace.
//!
//! Usage: `cargo run -p rc-bench --bin trace-export -- [--workload cfrac]
//! [--config nq|qs|inf|nc] [--scale N] [--out PATH]`.
//!
//! Runs the workload with region lifecycle spans on, joins every dynamic
//! check against the static inference verdict and reason, and writes
//! Chrome trace-event JSON (open in <https://ui.perfetto.dev>). The
//! export is byte-deterministic — CI runs it twice and `cmp`s — and the
//! per-site coverage table is printed to stdout. Exits 0 on success, 2 on
//! bad arguments or I/O errors.

use std::process::ExitCode;

use rc_bench::provenance;
use rc_lang::{CheckMode, RunConfig};

fn main() -> ExitCode {
    let scale = rc_bench::scale_from_args();
    let wname = rc_bench::value_from_args("--workload").unwrap_or_else(|| "cfrac".to_string());
    let cname = rc_bench::value_from_args("--config").unwrap_or_else(|| "qs".to_string());

    let Some(workload) = rc_workloads::by_name(&wname) else {
        eprintln!("trace-export: unknown workload {wname:?}");
        return ExitCode::from(2);
    };
    let config = match cname.as_str() {
        "nq" => RunConfig::rc(CheckMode::Nq),
        "qs" => RunConfig::rc(CheckMode::Qs),
        "inf" => RunConfig::rc_inf(),
        "nc" => RunConfig::rc(CheckMode::Nc),
        other => {
            eprintln!("trace-export: unknown config {other:?} (want nq|qs|inf|nc)");
            return ExitCode::from(2);
        }
    };

    let export = provenance::collect(&workload, &cname, &config, scale);
    let out = rc_bench::value_from_args("--out")
        .unwrap_or_else(|| format!("target/experiments/trace_{wname}_{cname}.json"));

    print!("{}", provenance::coverage_markdown(&export));
    println!(
        "\n{} spans ({} closed), {} notes ({} dropped)",
        export.spans.spans().len(),
        export.spans.closed_count(),
        export.spans.notes().len(),
        export.spans.notes_dropped()
    );

    let json = provenance::chrome_trace(&export).render_pretty();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("trace-export: {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("trace-export: {out}: {e}");
        return ExitCode::from(2);
    }
    println!("trace written to {out} (load in https://ui.perfetto.dev)");
    ExitCode::SUCCESS
}
