//! Exports one workload run as a Perfetto-loadable trace.
//!
//! Usage: `cargo run -p rc-bench --bin trace-export -- [--workload cfrac]
//! [--config nq|qs|inf|nc] [--scale N] [--out PATH]`, or, for a parallel
//! run, `-- --parallel [--workload moss] [--tasks 4] [--det-seed N]
//! [--scale N] [--out PATH]`.
//!
//! The default mode runs the workload with region lifecycle spans on,
//! joins every dynamic check against the static inference verdict and
//! reason, and writes Chrome trace-event JSON (open in
//! <https://ui.perfetto.dev>) — one track per region.
//!
//! `--parallel` instead runs the workload's spawn/join variant under the
//! seeded deterministic scheduler and writes a *multi-track* trace: one
//! track per task (an `"X"` slice over the task's shared-clock lifetime,
//! scheduler events as instants), with the work/span headline numbers in
//! `otherData`. Both exports are byte-deterministic — CI runs them twice
//! and `cmp`s. Exits 0 on success, 2 on bad arguments or I/O errors.

use std::process::ExitCode;

use rc_bench::{critpath, provenance};
use rc_lang::{CheckMode, RunConfig};

fn main() -> ExitCode {
    if rc_bench::flag_from_args("--parallel") {
        return parallel();
    }
    let scale = rc_bench::scale_from_args();
    let wname = rc_bench::value_from_args("--workload").unwrap_or_else(|| "cfrac".to_string());
    let cname = rc_bench::value_from_args("--config").unwrap_or_else(|| "qs".to_string());

    let Some(workload) = rc_workloads::by_name(&wname) else {
        eprintln!("trace-export: unknown workload {wname:?}");
        return ExitCode::from(2);
    };
    let config = match cname.as_str() {
        "nq" => RunConfig::rc(CheckMode::Nq),
        "qs" => RunConfig::rc(CheckMode::Qs),
        "inf" => RunConfig::rc_inf(),
        "nc" => RunConfig::rc(CheckMode::Nc),
        other => {
            eprintln!("trace-export: unknown config {other:?} (want nq|qs|inf|nc)");
            return ExitCode::from(2);
        }
    };

    let export = provenance::collect(&workload, &cname, &config, scale);
    let out = rc_bench::value_from_args("--out")
        .unwrap_or_else(|| format!("target/experiments/trace_{wname}_{cname}.json"));

    print!("{}", provenance::coverage_markdown(&export));
    println!(
        "\n{} spans ({} closed), {} notes ({} dropped)",
        export.spans.spans().len(),
        export.spans.closed_count(),
        export.spans.notes().len(),
        export.spans.notes_dropped()
    );

    write_trace(&out, provenance::chrome_trace(&export).render_pretty())
}

/// The `--parallel` mode: multi-track task/scheduler trace.
fn parallel() -> ExitCode {
    let scale = rc_bench::scale_from_args();
    let wname = rc_bench::value_from_args("--workload").unwrap_or_else(|| "moss".to_string());
    let tasks: u32 = match rc_bench::value_from_args("--tasks").map(|v| v.parse()) {
        None => 4,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("trace-export: --tasks wants a number");
            return ExitCode::from(2);
        }
    };
    let seed: u64 = match rc_bench::value_from_args("--det-seed").map(|v| v.parse()) {
        None => critpath::DET_SEED,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("trace-export: --det-seed wants a number");
            return ExitCode::from(2);
        }
    };
    let run = match critpath::collect(&wname, tasks, "lea", &RunConfig::lea(), scale, seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace-export: {e}");
            return ExitCode::from(2);
        }
    };
    let events: usize = run.reports.iter().map(|r| r.sched.events.len()).sum();
    let dropped: u64 = run.reports.iter().map(|r| r.sched.dropped).sum();
    println!(
        "{} ×{}: {} tasks, {} scheduler events ({} dropped), work {} / span {} cycles",
        run.workload,
        run.tasks,
        run.reports.len(),
        events,
        dropped,
        run.cp.work,
        run.cp.span
    );
    let out = rc_bench::value_from_args("--out")
        .unwrap_or_else(|| format!("target/experiments/trace_par_{wname}_t{tasks}.json"));
    write_trace(&out, critpath::multi_track_trace(&run).render_pretty())
}

fn write_trace(out: &str, json: String) -> ExitCode {
    if let Some(dir) = std::path::Path::new(out).parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("trace-export: {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    }
    if let Err(e) = std::fs::write(out, json) {
        eprintln!("trace-export: {out}: {e}");
        return ExitCode::from(2);
    }
    println!("trace written to {out} (load in https://ui.perfetto.dev)");
    ExitCode::SUCCESS
}
