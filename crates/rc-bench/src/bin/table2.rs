//! Regenerates the paper's table2. Usage: `cargo run -p rc-bench --bin table2 [--scale N]`.

fn main() {
    let scale = rc_bench::scale_from_args();
    let rows = rc_bench::report::table2(scale);
    println!("{}", rc_bench::report::text_table(&rows));
}
