//! Regenerates the paper's fig8. Usage: `cargo run -p rc-bench --bin fig8 [--scale N]`.

fn main() {
    let scale = rc_bench::scale_from_args();
    let rows = rc_bench::report::fig8(scale);
    println!("{}", rc_bench::report::text_table(&rows));
}
