//! Runs the parallel spawn/join matrix and gates on the parallel
//! contract.
//!
//! Usage: `cargo run -p rc-bench --bin parallel-matrix -- [--scale N]
//! [--out PARALLELMATRIX_rc.json] [--speedup]`.
//!
//! Sweeps the spawn/join variants of the Figure 7 workloads across
//! 1/2/4/8 tasks × `lea`/`GC`/`qs`, running every cell both sequentially
//! and under the seeded deterministic scheduler. Prints a summary, writes
//! the byte-deterministic JSON report when `--out` is given (virtual
//! clock only — CI runs the binary twice and `cmp`s), and exits 0 when
//! the gate passes (every cell outcome-equivalent, audit-clean and
//! report-identical across schedulers), 1 on a violation, 2 on I/O
//! errors.
//!
//! `--speedup` instead measures real-thread wall-clock scaling (1 vs 4
//! workers on each workload's 4-task variant) and requires a ≥2×
//! speedup on at least one workload. On machines reporting fewer than 4
//! hardware threads the probe is skipped with exit 0: no scaling is
//! physically possible there, and wall-clock never gates determinism.

use std::process::ExitCode;

use rc_bench::parallelmatrix;

fn main() -> ExitCode {
    let scale = rc_bench::scale_from_args();
    if rc_bench::flag_from_args("--speedup") {
        return speedup(scale);
    }
    let report = parallelmatrix::collect(scale);
    print!("{}", report.summary());
    if let Some(path) = rc_bench::value_from_args("--out") {
        if let Err(e) = std::fs::write(&path, report.render()) {
            eprintln!("parallel-matrix: {path}: {e}");
            return ExitCode::from(2);
        }
        println!("report written to {path}");
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn speedup(scale: rc_workloads::Scale) -> ExitCode {
    let Some(probes) = parallelmatrix::speedup_probe(scale) else {
        let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        println!(
            "parallel-matrix: speedup probe skipped ({cores} hardware thread(s) < 4); \
             scheduler equivalence is gated by the deterministic matrix instead"
        );
        return ExitCode::SUCCESS;
    };
    let mut best: Option<&parallelmatrix::Speedup> = None;
    for p in &probes {
        println!(
            "{:>8}: 1 worker {:8.2} ms, 4 workers {:8.2} ms — {:.2}x",
            p.workload,
            p.one_ms,
            p.four_ms,
            p.factor()
        );
        if best.is_none_or(|b| p.factor() > b.factor()) {
            best = Some(p);
        }
    }
    match best {
        Some(b) if b.factor() >= 2.0 => {
            println!("best scaling: {} at {:.2}x — speedup gate: PASS", b.workload, b.factor());
            ExitCode::SUCCESS
        }
        Some(b) => {
            eprintln!(
                "speedup gate: FAIL — best was {} at {:.2}x (< 2x)",
                b.workload,
                b.factor()
            );
            ExitCode::from(1)
        }
        None => {
            eprintln!("speedup gate: FAIL — no workload produced a measurement");
            ExitCode::from(1)
        }
    }
}
