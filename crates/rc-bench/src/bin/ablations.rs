//! Design-choice ablations over the full workload suite:
//!
//! 1. **Hierarchy numbering** — eager renumber-on-create (the paper's
//!    implementation) vs gap-based O(1) intervals (the "more efficient
//!    scheme" the paper anticipates).
//! 2. **Delete semantics** — abort vs deferred (GC-like) reclamation.
//! 3. **Check pricing** — Figure 3(b) checks at paper cost vs priced like
//!    full count updates (how much of the win is the cheap check?).
//!
//! Usage: `cargo run --release -p rc-bench --bin ablations
//! [--scale N] [--profile] [--trace <path>]`.
//!
//! `--profile` additionally traces the baseline RC(inf) run of each
//! workload and prints its hot check/alloc sites; `--trace <path>`
//! exports the traced runs' raw events as JSON Lines.

use rc_lang::interp::{run, Outcome};
use rc_lang::{CheckMode, DeleteSemantics, RunConfig};
use rc_workloads::driver::prepare_workload;
use region_rt::NumberingScheme;

fn cycles(c: &rc_lang::Compiled, cfg: &RunConfig) -> u64 {
    let r = run(c, cfg);
    assert!(matches!(r.outcome, Outcome::Exit(_)), "{:?}", r.outcome);
    r.cycles
}

fn main() {
    let scale = rc_bench::scale_from_args();
    let trace_path = rc_bench::value_from_args("--trace");
    let profile = rc_bench::flag_from_args("--profile") || trace_path.is_some();
    let mut trace_out = String::new();
    let mut profiles = String::new();
    println!("workload   renumber    gap-based   Δ%    deferred-Δ%  checks@23-Δ%");
    for w in rc_workloads::all() {
        let c = prepare_workload(&w, scale);

        let base = if profile {
            let r = run(&c, &RunConfig::rc_inf().traced());
            assert!(matches!(r.outcome, Outcome::Exit(_)), "{:?}", r.outcome);
            let t = r.tracer.as_ref().expect("traced");
            trace_out.push_str(&t.events_jsonl(w.name));
            profiles.push_str(&format!("--- {} ---\n{}", w.name, t.profile().text_report(w.name)));
            r.cycles
        } else {
            cycles(&c, &RunConfig::rc_inf())
        };

        let mut gap = RunConfig::rc_inf();
        gap.numbering = NumberingScheme::GapBased;
        let gap_c = cycles(&c, &gap);

        let mut deferred = RunConfig::rc_inf();
        deferred.delete_semantics = DeleteSemantics::Deferred;
        let def_c = cycles(&c, &deferred);

        let mut pricey = RunConfig::rc(CheckMode::Inf);
        pricey.costs.check_sameregion = pricey.costs.rc_update_full;
        pricey.costs.check_parentptr = pricey.costs.rc_update_full;
        pricey.costs.check_traditional = pricey.costs.rc_update_full;
        let pricey_c = cycles(&c, &pricey);

        let pct = |v: u64| 100.0 * (v as f64 - base as f64) / base as f64;
        println!(
            "{:<10} {:<11} {:<11} {:<+5.1} {:<+12.1} {:<+.1}",
            w.name,
            base,
            gap_c,
            pct(gap_c),
            pct(def_c),
            pct(pricey_c),
        );
    }
    println!("\nΔ% columns are relative to the default RC(inf) configuration.");
    if profile {
        println!("\n=== telemetry profiles (RC inf, traced baseline runs) ===\n{profiles}");
    }
    if let Some(path) = trace_path {
        std::fs::write(&path, trace_out).expect("write trace jsonl");
        eprintln!("wrote raw event trace to {path}");
    }
}
