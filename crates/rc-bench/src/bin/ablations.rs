//! Design-choice ablations over the full workload suite:
//!
//! 1. **Hierarchy numbering** — eager renumber-on-create (the paper's
//!    implementation) vs gap-based O(1) intervals (the "more efficient
//!    scheme" the paper anticipates).
//! 2. **Delete semantics** — abort vs deferred (GC-like) reclamation.
//! 3. **Check pricing** — Figure 3(b) checks at paper cost vs priced like
//!    full count updates (how much of the win is the cheap check?).
//!
//! Usage: `cargo run --release -p rc-bench --bin ablations [--scale N]`.

use rc_lang::interp::{run, Outcome};
use rc_lang::{CheckMode, DeleteSemantics, RunConfig};
use rc_workloads::driver::prepare_workload;
use region_rt::NumberingScheme;

fn cycles(c: &rc_lang::Compiled, cfg: &RunConfig) -> u64 {
    let r = run(c, cfg);
    assert!(matches!(r.outcome, Outcome::Exit(_)), "{:?}", r.outcome);
    r.cycles
}

fn main() {
    let scale = rc_bench::scale_from_args();
    println!("workload   renumber    gap-based   Δ%    deferred-Δ%  checks@23-Δ%");
    for w in rc_workloads::all() {
        let c = prepare_workload(&w, scale);

        let base = cycles(&c, &RunConfig::rc_inf());

        let mut gap = RunConfig::rc_inf();
        gap.numbering = NumberingScheme::GapBased;
        let gap_c = cycles(&c, &gap);

        let mut deferred = RunConfig::rc_inf();
        deferred.delete_semantics = DeleteSemantics::Deferred;
        let def_c = cycles(&c, &deferred);

        let mut pricey = RunConfig::rc(CheckMode::Inf);
        pricey.costs.check_sameregion = pricey.costs.rc_update_full;
        pricey.costs.check_parentptr = pricey.costs.rc_update_full;
        pricey.costs.check_traditional = pricey.costs.rc_update_full;
        let pricey_c = cycles(&c, &pricey);

        let pct = |v: u64| 100.0 * (v as f64 - base as f64) / base as f64;
        println!(
            "{:<10} {:<11} {:<11} {:<+5.1} {:<+12.1} {:<+.1}",
            w.name,
            base,
            gap_c,
            pct(gap_c),
            pct(def_c),
            pct(pricey_c),
        );
    }
    println!("\nΔ% columns are relative to the default RC(inf) configuration.");
}
