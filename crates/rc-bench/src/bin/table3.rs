//! Regenerates the paper's table3. Usage: `cargo run -p rc-bench --bin table3 [--scale N]`.

fn main() {
    let scale = rc_bench::scale_from_args();
    let rows = rc_bench::report::table3(scale);
    println!("{}", rc_bench::report::text_table(&rows));
}
