//! The parallel execution matrix.
//!
//! [`collect`] sweeps the spawn/join variants of the Figure 7 workloads
//! ([`rc_workloads::parspawn`]) across 1/2/4/8 tasks under three
//! allocator configurations (`lea`, `GC`, `qs`). Every cell runs the
//! *same program* twice:
//!
//! - **sequentially** — [`SchedMode::Inline`], each spawned body executed
//!   to completion at its spawn point (the baseline);
//! - **virtually interleaved** — [`SchedMode::Deterministic`] with the
//!   fixed seed [`DET_SEED`], real threads serialized by the seeded baton
//!   so preemption points interleave but replay byte-identically.
//!
//! The parallel contract gated here:
//!
//! 1. **outcome equivalence** — the interleaved outcome key equals the
//!    sequential one (task isolation means schedule cannot change
//!    results);
//! 2. **post-join audit cleanliness** — both runs leave every shard's
//!    heap audit-clean;
//! 3. **merged-report identity** — the merged [`region_rt::Stats`],
//!    virtual cycles, step counts and handoff lists are *identical*
//!    between the two runs: telemetry is an exact merge over shards, not
//!    an approximation;
//! 4. **determinism** — the report contains only virtual-clock numbers,
//!    so two runs of the binary are byte-identical (CI `cmp`s a double
//!    run).
//!
//! Real-thread wall-clock scaling is measured separately by
//! [`speedup_probe`] — wall-clock never enters the JSON report, and the
//! probe gates only on machines that actually have cores
//! ([`std::thread::available_parallelism`]).

use std::time::Instant;

use rc_lang::{run_audited, CheckMode, Outcome, RunConfig, SchedMode};
use rc_workloads::parspawn::par_source;
use rc_workloads::Scale;
use region_rt::{critpath_analyze, Json, SchedEventKind, TaskReport};

/// Schema identifier embedded in every report; bumped on layout change
/// (registered in [`crate::schema`]).
pub const SCHEMA: &str = crate::schema::Schema::ParallelMatrix.id();

/// The fixed seed the matrix's deterministic-scheduler runs use.
pub const DET_SEED: u64 = 0x5eed_c0ff_ee00_0009;

/// The worker/task counts swept (one spawned task per worker).
pub const WORKERS: [u32; 4] = [1, 2, 4, 8];

/// The configuration axis: both emulation backends plus the paper's
/// default safe RC regime.
pub fn configs() -> Vec<(&'static str, RunConfig)> {
    vec![
        ("lea", RunConfig::lea()),
        ("GC", RunConfig::gc()),
        ("qs", RunConfig::rc(CheckMode::Qs)),
    ]
}

/// Collapses an [`Outcome`] to a schedule- and allocator-independent key
/// (same shape as the fuzz oracle's).
pub fn outcome_key(o: &Outcome) -> String {
    match o {
        Outcome::Exit(code) => format!("exit:{code}"),
        Outcome::Aborted(e) => format!("abort:{}", e.kind_name()),
        Outcome::Trapped(e) => format!("trap:{}", e.kind_name()),
        Outcome::AssertFailed => "assert-failed".to_string(),
        Outcome::StepLimit => "step-limit".to_string(),
    }
}

/// One workload × workers × configuration cell.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Workload name.
    pub workload: String,
    /// Spawned task count (= worker count).
    pub workers: u32,
    /// Configuration display name.
    pub config: String,
    /// The sequential ([`SchedMode::Inline`]) outcome key — the baseline.
    pub seq_outcome: String,
    /// The deterministic-scheduler outcome key.
    pub det_outcome: String,
    /// Whether the two outcome keys agree.
    pub outcomes_match: bool,
    /// Whether both runs left every shard audit-clean.
    pub audits_clean: bool,
    /// Whether merged `Stats`, cycles and steps are identical between the
    /// sequential and interleaved runs.
    pub reports_match: bool,
    /// Region handoffs recorded (one per spawn, in DFS merge order).
    pub handoffs: u64,
    /// Virtual cycles (identical across schedulers when
    /// `reports_match`).
    pub cycles: u64,
    /// Interpreter steps summed over all shards.
    pub steps: u64,
    /// Objects allocated across all shards.
    pub objects: u64,
    /// Total work: Σ per-task charged cycles (equals `cycles` — the
    /// matrix configurations carry no base-compiler factor).
    pub work: u64,
    /// Critical-path length (work/span model over the spawn/join tree).
    pub span: u64,
    /// Ideal parallelism `work/span`, in permille.
    pub ideal_milli: u64,
    /// Critical-path cycles executed by the root task — the serial
    /// prefix/suffix no schedule can overlap away.
    pub root_serial: u64,
    /// Off-path cycles (`work − span`): exactly the cycle gap between
    /// the sequential run and an ideal parallel schedule.
    pub overlapped: u64,
    /// Shared-clock blocked time summed over all tasks under the
    /// deterministic scheduler.
    pub blocked: u64,
    /// Root cycles after its last `join_wait_end` — the post-join merge
    /// cost, charged serially by construction.
    pub merge_tail: u64,
}

impl ParallelRun {
    /// The cell's identity: `workload/wN/config`.
    pub fn key(&self) -> String {
        format!("{}/w{}/{}", self.workload, self.workers, self.config)
    }

    /// Encodes the cell as one JSON object.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::s(&*self.workload)),
            ("workers", Json::U(u64::from(self.workers))),
            ("config", Json::s(&*self.config)),
            ("seq_outcome", Json::s(&*self.seq_outcome)),
            ("det_outcome", Json::s(&*self.det_outcome)),
            ("outcomes_match", Json::Bool(self.outcomes_match)),
            ("audits_clean", Json::Bool(self.audits_clean)),
            ("reports_match", Json::Bool(self.reports_match)),
            ("handoffs", Json::U(self.handoffs)),
            ("cycles", Json::U(self.cycles)),
            ("steps", Json::U(self.steps)),
            ("objects", Json::U(self.objects)),
            ("work", Json::U(self.work)),
            ("span", Json::U(self.span)),
            ("ideal_milli", Json::U(self.ideal_milli)),
            ("root_serial", Json::U(self.root_serial)),
            ("overlapped", Json::U(self.overlapped)),
            ("blocked", Json::U(self.blocked)),
            ("merge_tail", Json::U(self.merge_tail)),
        ])
    }
}

/// Root cycles after the last `join_wait_end` in the root's scheduler
/// log: everything the main task does once the final child has been
/// merged — shard renumbering, result folding, teardown.
fn merge_tail(reports: &[TaskReport]) -> u64 {
    let Some(root) = reports.first() else { return 0 };
    let last_join = root
        .sched
        .events
        .iter()
        .rev()
        .find(|e| matches!(e.kind, SchedEventKind::JoinWaitEnd))
        .map(|e| e.local)
        .unwrap_or(root.cycles);
    root.cycles.saturating_sub(last_join)
}

/// The full matrix report: every cell plus the contract violations.
#[derive(Debug, Clone)]
pub struct ParallelMatrixReport {
    /// Workload scale the matrix ran at.
    pub scale: u32,
    /// The deterministic-scheduler seed every cell used.
    pub seed: u64,
    /// All cells, workload-major, workers-then-configuration order.
    pub runs: Vec<ParallelRun>,
    /// Parallel-contract violations (empty = the gate passes).
    pub violations: Vec<String>,
}

impl ParallelMatrixReport {
    /// Whether the parallel gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Encodes the report, schema string first. Virtual-clock only: no
    /// wall-clock number ever appears, so the encoding is
    /// byte-deterministic.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::s(SCHEMA)),
            ("scale", Json::U(u64::from(self.scale))),
            ("seed", Json::U(self.seed)),
            ("passed", Json::Bool(self.passed())),
            ("violations", Json::A(self.violations.iter().map(|v| Json::s(&**v)).collect())),
            ("runs", Json::A(self.runs.iter().map(ParallelRun::to_json).collect())),
        ])
    }

    /// Renders the report as pretty-printed JSON (the
    /// `PARALLELMATRIX_rc.json` format).
    pub fn render(&self) -> String {
        let mut s = self.to_json().render_pretty();
        s.push('\n');
        s
    }

    /// A short human summary: cell counts, then violations.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let matching = self.runs.iter().filter(|r| r.outcomes_match).count();
        let clean = self.runs.iter().filter(|r| r.audits_clean).count();
        let identical = self.runs.iter().filter(|r| r.reports_match).count();
        let _ = writeln!(
            out,
            "parallel-matrix: {} cells — {} outcome-equivalent, {} audit-clean, {} report-identical",
            self.runs.len(),
            matching,
            clean,
            identical,
        );
        let handoffs: u64 = self.runs.iter().map(|r| r.handoffs).sum();
        let _ = writeln!(out, "region handoffs observed: {handoffs}");
        if self.passed() {
            let _ = writeln!(out, "parallel gate: PASS");
        } else {
            let _ = writeln!(out, "parallel gate: FAIL ({} violations)", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  - {v}");
            }
        }
        out
    }
}

/// Runs the full matrix over all eight workloads.
pub fn collect(scale: Scale) -> ParallelMatrixReport {
    let names: Vec<&str> = rc_workloads::all().iter().map(|w| w.name).collect();
    collect_for(scale, &names)
}

/// Runs the matrix over the named workloads: every [`WORKERS`] task count
/// under every [`configs`] configuration, sequential vs deterministic.
pub fn collect_for(scale: Scale, workloads: &[&str]) -> ParallelMatrixReport {
    let mut runs = Vec::new();
    let mut violations = Vec::new();
    for &name in workloads {
        for workers in WORKERS {
            let Some(src) = par_source(name, scale, workers) else {
                violations.push(format!("{name}: no parallel variant"));
                continue;
            };
            let compiled = match rc_lang::prepare(&src) {
                Ok(c) => c,
                Err(e) => {
                    violations.push(format!("{name}/w{workers}: does not compile: {e}"));
                    continue;
                }
            };
            for (cfg_name, cfg) in configs() {
                let seq = run_audited(&compiled, &cfg);
                let det = run_audited(&compiled, &cfg.clone().det_sched(DET_SEED));
                let cp = match critpath_analyze(&det.task_reports) {
                    Ok(cp) => Some(cp),
                    Err(e) => {
                        violations.push(format!("{name}/w{workers}/{cfg_name}: critpath: {e}"));
                        None
                    }
                };
                let cell = ParallelRun {
                    workload: name.to_string(),
                    workers,
                    config: cfg_name.to_string(),
                    seq_outcome: outcome_key(&seq.outcome),
                    det_outcome: outcome_key(&det.outcome),
                    outcomes_match: outcome_key(&seq.outcome) == outcome_key(&det.outcome),
                    audits_clean: matches!(seq.audit, Some(Ok(())))
                        && matches!(det.audit, Some(Ok(()))),
                    reports_match: seq.stats == det.stats
                        && seq.cycles == det.cycles
                        && seq.steps == det.steps
                        && seq.handoffs == det.handoffs,
                    handoffs: det.handoffs.len() as u64,
                    cycles: det.cycles,
                    steps: det.steps,
                    objects: det.stats.objects_allocated,
                    work: cp.as_ref().map_or(0, |c| c.work),
                    span: cp.as_ref().map_or(0, |c| c.span),
                    ideal_milli: cp.as_ref().map_or(0, |c| c.ideal_parallelism_milli()),
                    root_serial: cp.as_ref().map_or(0, |c| c.root_serial()),
                    overlapped: cp.as_ref().map_or(0, |c| c.overlapped()),
                    blocked: cp.as_ref().map_or(0, |c| c.blocked_total()),
                    merge_tail: merge_tail(&det.task_reports),
                };
                gate_cell(&cell, workers, cp.is_some(), &mut violations);
                runs.push(cell);
            }
        }
    }
    ParallelMatrixReport { scale: scale.0, seed: DET_SEED, runs, violations }
}

/// Applies the parallel contract to one cell. `critpath_ok` is whether
/// the analyzer accepted the cell's task reports (a rejection already
/// recorded its own violation, so the attribution identities are only
/// checked when it did).
fn gate_cell(cell: &ParallelRun, workers: u32, critpath_ok: bool, violations: &mut Vec<String>) {
    let key = cell.key();
    if !cell.outcomes_match {
        violations.push(format!(
            "{key}: interleaved outcome {} diverged from sequential {}",
            cell.det_outcome, cell.seq_outcome
        ));
    }
    if !cell.audits_clean {
        violations.push(format!("{key}: a post-join audit failed"));
    }
    if !cell.reports_match {
        violations.push(format!("{key}: merged report differs between schedulers"));
    }
    if cell.handoffs != u64::from(workers) {
        violations.push(format!(
            "{key}: expected {workers} region handoffs, saw {}",
            cell.handoffs
        ));
    }
    // Every variant exits with its task count: a self-check failure in any
    // shard would surface as assert-failed instead.
    let expect = format!("exit:{workers}");
    if cell.seq_outcome != expect {
        violations.push(format!("{key}: expected {expect}, got {}", cell.seq_outcome));
    }
    if critpath_ok {
        // Attribution identities. The matrix configurations carry no
        // base-compiler factor, so Σ per-task cycles must equal the
        // merged virtual clock; and because `reports_match` pins the
        // sequential run to the same cycle count, `overlapped` is
        // exactly the sequential-vs-ideal-parallel cycle gap.
        if cell.work != cell.cycles {
            violations.push(format!(
                "{key}: work {} != merged cycles {}",
                cell.work, cell.cycles
            ));
        }
        if cell.span > cell.work {
            violations.push(format!("{key}: span {} exceeds work {}", cell.span, cell.work));
        }
        if cell.span + cell.overlapped != cell.work {
            violations.push(format!(
                "{key}: span {} + overlapped {} != work {}",
                cell.span, cell.overlapped, cell.work
            ));
        }
        if cell.root_serial > cell.span {
            violations.push(format!(
                "{key}: root-serial {} exceeds span {}",
                cell.root_serial, cell.span
            ));
        }
        if cell.merge_tail > cell.root_serial {
            // The merge tail runs after every child has ended, so it is
            // always on the critical path and root-executed.
            violations.push(format!(
                "{key}: merge tail {} exceeds root-serial path share {}",
                cell.merge_tail, cell.root_serial
            ));
        }
    }
}

/// Renders the per-cell speedup-attribution table folded into
/// `EXPERIMENTS.md`: where each cell's cycles sit relative to the ideal
/// (`span + overlapped == work`, gated above), restricted to the `lea`
/// configuration — the attribution is schedule-derived and identical in
/// shape across configurations.
pub fn attribution_markdown(rep: &ParallelMatrixReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| workload | tasks | work | span | ideal× | root-serial | overlapped | blocked | merge-tail |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|");
    for r in rep.runs.iter().filter(|r| r.config == "lea") {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {}.{:02} | {} | {} | {} | {} |",
            r.workload,
            r.workers,
            r.work,
            r.span,
            r.ideal_milli / 1000,
            r.ideal_milli % 1000 / 10,
            r.root_serial,
            r.overlapped,
            r.blocked,
            r.merge_tail,
        );
    }
    out
}

/// One wall-clock scaling measurement from [`speedup_probe`].
#[derive(Debug, Clone)]
pub struct Speedup {
    /// Workload name.
    pub workload: String,
    /// Wall-clock milliseconds with one real worker thread.
    pub one_ms: f64,
    /// Wall-clock milliseconds with four real worker threads.
    pub four_ms: f64,
}

impl Speedup {
    /// `one_ms / four_ms` — how much faster four workers ran.
    pub fn factor(&self) -> f64 {
        if self.four_ms <= 0.0 {
            0.0
        } else {
            self.one_ms / self.four_ms
        }
    }
}

/// Measures real-thread wall-clock scaling: each workload's 4-task
/// variant under [`SchedMode::Threads`] with 1 vs 4 workers (same
/// program, same total iteration budget). Returns `None` — and the
/// caller must skip the speedup gate — when the machine reports fewer
/// than 4 hardware threads, where no scaling is physically possible.
/// Wall-clock numbers never enter the deterministic JSON report.
pub fn speedup_probe(scale: Scale) -> Option<Vec<Speedup>> {
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    if cores < 4 {
        return None;
    }
    let mut out = Vec::new();
    for w in rc_workloads::all() {
        let Some(src) = par_source(w.name, scale, 4) else { continue };
        let compiled = rc_lang::prepare(&src).ok()?;
        let time = |workers: u32| {
            let cfg = RunConfig::lea().with_sched(SchedMode::Threads { workers });
            let t0 = Instant::now();
            let r = rc_lang::run(&compiled, &cfg);
            assert!(r.outcome.is_exit(), "{}: {:?}", w.name, r.outcome);
            t0.elapsed().as_secs_f64() * 1e3
        };
        // Warm up once, then take the best of three per worker count.
        time(1);
        let best = |workers| (0..3).map(|_| time(workers)).fold(f64::MAX, f64::min);
        out.push(Speedup {
            workload: w.name.to_string(),
            one_ms: best(1),
            four_ms: best(4),
        });
    }
    Some(out)
}

/// Parses a serialized matrix report, validating the schema string, and
/// returns `(passed, violations)`.
pub fn parse_report(text: &str) -> Result<(bool, Vec<String>), String> {
    let doc =
        Json::parse(text).map_err(|e| format!("parallel-matrix report: not valid JSON: {e}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        Some(s) => {
            return Err(format!("parallel-matrix report: schema {s:?}, expected {SCHEMA:?}"))
        }
        None => return Err("parallel-matrix report: missing schema field".to_string()),
    }
    let passed = doc
        .get("passed")
        .and_then(Json::as_bool)
        .ok_or_else(|| "parallel-matrix report: missing passed flag".to_string())?;
    let violations = doc
        .get("violations")
        .and_then(Json::as_array)
        .ok_or_else(|| "parallel-matrix report: missing violations array".to_string())?
        .iter()
        .filter_map(|v| v.as_str().map(str::to_string))
        .collect();
    Ok((passed, violations))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_matrix() -> ParallelMatrixReport {
        collect_for(Scale::TINY, &["tile", "moss"])
    }

    #[test]
    fn matrix_covers_workers_by_configs_and_passes() {
        let rep = tiny_matrix();
        assert_eq!(rep.runs.len(), 2 * WORKERS.len() * configs().len());
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        for r in &rep.runs {
            assert!(r.outcomes_match, "{}", r.key());
            assert!(r.audits_clean, "{}", r.key());
            assert!(r.reports_match, "{}", r.key());
            assert_eq!(r.handoffs, u64::from(r.workers), "{}", r.key());
        }
        let summary = rep.summary();
        assert!(summary.contains("PASS"), "{summary}");
    }

    #[test]
    fn attribution_identities_hold_in_every_cell() {
        let rep = tiny_matrix();
        assert!(rep.passed(), "violations: {:?}", rep.violations);
        for r in &rep.runs {
            // Σ per-task cycles == merged clock: the sequential-vs-ideal
            // gap decomposes exactly into span + overlapped.
            assert_eq!(r.work, r.cycles, "{}", r.key());
            assert!(r.span <= r.work, "{}", r.key());
            assert_eq!(r.span + r.overlapped, r.work, "{}", r.key());
            assert!(r.root_serial <= r.span, "{}", r.key());
            assert!(r.merge_tail <= r.root_serial, "{}", r.key());
            assert!(r.span > 0, "{}: span empty", r.key());
            // Spawning real work always leaves some overlappable time.
            if r.workers > 1 {
                assert!(r.overlapped > 0, "{}: nothing overlappable", r.key());
            }
        }
    }

    #[test]
    fn attribution_markdown_lists_lea_cells() {
        let rep = tiny_matrix();
        let md = attribution_markdown(&rep);
        assert!(md.contains("| workload |"), "{md}");
        let rows = md.lines().filter(|l| l.starts_with("| tile") || l.starts_with("| moss"));
        assert_eq!(rows.count(), 2 * WORKERS.len(), "one row per lea cell:\n{md}");
        assert!(!md.contains("| GC |") && !md.contains("| qs |"), "lea only:\n{md}");
    }

    #[test]
    fn report_is_byte_deterministic_and_round_trips() {
        let a = tiny_matrix().render();
        let b = tiny_matrix().render();
        assert_eq!(a, b, "same tree must produce byte-identical reports");
        let (passed, violations) = parse_report(&a).unwrap();
        assert!(passed);
        assert!(violations.is_empty());
        assert!(parse_report("not json").is_err());
        let other = a.replace(SCHEMA, "rc-bench-parallelmatrix/v0");
        assert!(parse_report(&other).unwrap_err().contains("schema"));
    }

    #[test]
    fn speedup_probe_respects_core_count() {
        let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
        match speedup_probe(Scale::TINY) {
            None => assert!(cores < 4, "probe refused to run on a {cores}-core machine"),
            Some(probes) => {
                assert!(cores >= 4);
                assert!(!probes.is_empty());
                for p in &probes {
                    assert!(p.one_ms > 0.0 && p.four_ms > 0.0, "{}", p.workload);
                }
            }
        }
    }
}
