#![warn(missing_docs)]

//! # rc-bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation section
//! from the reimplemented system:
//!
//! | Artifact | Generator |
//! |---|---|
//! | Table 1 (benchmark characteristics) | `cargo run -p rc-bench --bin table1` |
//! | Table 2 (refcount overhead)         | `cargo run -p rc-bench --bin table2` |
//! | Table 3 (annotation statistics)     | `cargo run -p rc-bench --bin table3` |
//! | Figure 7 (exec time, 5 allocators)  | `cargo run -p rc-bench --bin fig7` |
//! | Figure 8 (nq/qs/inf/nc)             | `cargo run -p rc-bench --bin fig8` |
//! | Figure 9 (assignment categories)    | `cargo run -p rc-bench --bin fig9` |
//! | All of the above → EXPERIMENTS.md   | `cargo run -p rc-bench --bin experiments` |
//! | Fault-injection torture matrix      | `cargo run -p rc-bench --bin fault-matrix` |
//! | Checkpoint-recovery matrix          | `cargo run -p rc-bench --bin recovery-matrix` |
//! | Parallel spawn/join matrix          | `cargo run -p rc-bench --bin parallel-matrix` |
//! | Critical-path attribution           | `cargo run -p rc-bench --bin critpath` |
//! | Perfetto provenance trace           | `cargo run -p rc-bench --bin trace-export` |
//! | Heap snapshot dump + analysis       | `cargo run -p rc-bench --bin rc-inspect` |
//!
//! Wall-clock benchmarks live in `benches/` (run with `cargo bench -p
//! rc-bench`), on the dependency-free harness in [`microbench`]. Passing
//! `--profile` to `experiments` or `ablations` adds a telemetry section
//! (per-site hot spots, region flamegraph); `--trace <path>` exports the
//! raw event stream as JSON Lines. See `docs/OBSERVABILITY.md`.

pub mod critpath;
pub mod faultmatrix;
pub mod fuzzreport;
pub mod inspect;
pub mod microbench;
pub mod parallelmatrix;
pub mod provenance;
pub mod recoverymatrix;
pub mod report;
pub mod schema;
pub mod trajectory;

use rc_workloads::Scale;

/// Parses a scale from argv (e.g. `--scale 8`), defaulting to
/// [`Scale::SMALL`].
pub fn scale_from_args() -> Scale {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len() {
        if args[i] == "--scale" {
            if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                return Scale(v);
            }
        }
    }
    Scale::SMALL
}

/// Whether a bare `--flag` is present in argv.
pub fn flag_from_args(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// The value following `--option` in argv, if any.
pub fn value_from_args(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}
