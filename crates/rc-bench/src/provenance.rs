//! Cross-layer provenance: the static↔dynamic check-site join and the
//! Perfetto trace export (`rc-trace-export/v1`).
//!
//! [`collect`] runs one workload with region lifecycle spans on
//! ([`rc_lang::RunConfig::with_spans`]) and joins three layers:
//!
//! - the **static** layer — per check site, the inference verdict and the
//!   [`rlang::ProvenanceReason`] behind it (the lattice meet point or
//!   ⊤-weakening that blocked elimination), via
//!   [`rc_lang::site_verdicts`];
//! - the **dynamic** layer — per site, how often the check actually ran
//!   and failed, from the span tree's exact folded tallies
//!   ([`region_rt::SpanTree`]);
//! - the **structural** layer — every region's `newregion` →
//!   `deleteregion` lifecycle as a span in the parent/child tree.
//!
//! [`chrome_trace`] renders the join as Chrome trace-event JSON that
//! Perfetto loads directly: region spans as `"X"` complete events (one
//! track per region), check/GC/fault notes as `"i"` instants whose args
//! carry `file:line`, the dynamic outcome and the static reason. Every
//! timestamp is virtual-clock, so two exports of the same workload ×
//! configuration are byte-identical — which is what the CI determinism
//! job `cmp`s.

use std::collections::BTreeMap;

use rc_lang::interp::{run, Outcome};
use rc_lang::{site_verdicts, RunConfig, SiteVerdict};
use rc_workloads::driver::prepare_workload;
use rc_workloads::{Scale, Workload};
use region_rt::{Json, PtrKind, SpanNote, SpanTree, NO_CHECK_SITE};

use crate::report::Row;

/// Schema identifier embedded in every export; bumped on layout change
/// (registered in [`crate::schema`]).
pub const SCHEMA: &str = crate::schema::Schema::TraceExport.id();

/// One check site's static↔dynamic coverage row.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteCoverageRow {
    /// Front-end check-site id.
    pub site: u32,
    /// Source line of the annotated store (0 = unknown).
    pub line: u32,
    /// `true` when the inference eliminated the check.
    pub eliminated: bool,
    /// The inference reason (rendered [`rlang::ProvenanceReason`]).
    pub reason: String,
    /// Times the check executed in this run (0 for eliminated sites
    /// under `inf`, where no check is emitted).
    pub fires: u64,
    /// The subset of `fires` that failed.
    pub fails: u64,
}

impl SiteCoverageRow {
    /// A retained check that ran and never failed — dynamic evidence the
    /// static analysis was merely imprecise here, not wrong: the
    /// candidate set for sharpening the inference.
    pub fn eliminable_in_principle(&self) -> bool {
        !self.eliminated && self.fires > 0 && self.fails == 0
    }

    /// Display verdict string.
    pub fn verdict(&self) -> &'static str {
        if self.eliminated { "eliminated" } else { "retained" }
    }
}

impl Row for SiteCoverageRow {
    fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("site", Json::U(self.site as u64)),
            ("line", Json::U(self.line as u64)),
            ("verdict", Json::s(self.verdict())),
            ("reason", Json::s(&*self.reason)),
            ("fires", Json::U(self.fires)),
            ("fails", Json::U(self.fails)),
        ]
    }
}

/// Everything [`collect`] produces for one workload × configuration.
#[derive(Debug)]
pub struct TraceExport {
    /// Workload name.
    pub workload: String,
    /// Configuration display name (`nq`/`qs`/`inf`/`nc`).
    pub config: String,
    /// Per-site coverage, ascending by site id.
    pub coverage: Vec<SiteCoverageRow>,
    /// Sites the inference eliminated (must equal the count of
    /// `eliminated` coverage rows — asserted by [`collect`]).
    pub eliminated_sites: u64,
    /// The verified span tree.
    pub spans: Box<SpanTree>,
    /// End-of-run virtual time (closes still-open spans in the render).
    pub end_cycles: u64,
}

fn kind_name(k: PtrKind) -> &'static str {
    match k {
        PtrKind::Counted => "counted",
        PtrKind::SameRegion => "sameregion",
        PtrKind::ParentPtr => "parentptr",
        PtrKind::Traditional => "traditional",
    }
}

/// Runs `workload` under `config` (with spans forced on) and assembles
/// the provenance join.
///
/// # Panics
///
/// Panics if the run does not exit cleanly, if span verification fails,
/// or if the coverage table disagrees with
/// [`rlang::Analysis::eliminated_sites`] — the acceptance invariant.
pub fn collect(
    workload: &Workload,
    config_name: &str,
    config: &RunConfig,
    scale: Scale,
) -> TraceExport {
    let c = prepare_workload(workload, scale);
    let verdicts: Vec<SiteVerdict> = site_verdicts(&c.module, &c.analysis);
    let r = run(&c, &config.clone().with_spans());
    match r.outcome {
        Outcome::Exit(_) => {}
        ref other => panic!("{}/{config_name}: did not exit cleanly: {other:?}", workload.name),
    }
    let spans = r.spans.expect("spans were enabled");
    if let Some(Err(e)) = spans.verification() {
        panic!("{}/{config_name}: span tree malformed: {e}", workload.name);
    }

    let coverage: Vec<SiteCoverageRow> = verdicts
        .iter()
        .map(|v| {
            let fires = spans.site_fires(v.site);
            SiteCoverageRow {
                site: v.site,
                line: v.line,
                eliminated: v.safe,
                reason: v.reason.clone(),
                fires: fires.map_or(0, |f| f.fires),
                fails: fires.map_or(0, |f| f.fails),
            }
        })
        .collect();
    let eliminated = coverage.iter().filter(|r| r.eliminated).count();
    assert_eq!(
        eliminated,
        c.analysis.eliminated_sites.len(),
        "{}: coverage totals must match Analysis::eliminated_sites",
        workload.name
    );

    TraceExport {
        workload: workload.name.to_string(),
        config: config_name.to_string(),
        coverage,
        eliminated_sites: eliminated as u64,
        spans,
        end_cycles: r.cycles,
    }
}

/// Renders the export as Chrome trace-event JSON (Perfetto-loadable).
///
/// Layout: pid 1 is the run; each region is a thread (track) named
/// `region <id>`; region lifecycles are `"X"` complete events whose args
/// carry the span's exact folded aggregates; checks, collections and
/// injected faults are `"i"` thread-scoped instants. Still-open spans
/// (the traditional region, leaked regions) close at `end_cycles`.
pub fn chrome_trace(x: &TraceExport) -> Json {
    let by_site: BTreeMap<u32, &SiteCoverageRow> =
        x.coverage.iter().map(|r| (r.site, r)).collect();
    let mut events: Vec<Json> = Vec::new();

    for s in x.spans.spans() {
        let dur = s.closed_at.unwrap_or(x.end_cycles).saturating_sub(s.opened_at);
        let name = if s.region == 0 {
            "region 0 (traditional)".to_string()
        } else {
            format!("region {}", s.region)
        };
        events.push(Json::obj(vec![
            ("name", Json::S(name)),
            ("cat", Json::s("region")),
            ("ph", Json::s("X")),
            ("pid", Json::U(1)),
            ("tid", Json::U(s.region as u64)),
            ("ts", Json::U(s.opened_at)),
            ("dur", Json::U(dur)),
            (
                "args",
                Json::obj(vec![
                    ("parent", if s.parent == region_rt::trace::NO_REGION {
                        Json::Null
                    } else {
                        Json::U(s.parent as u64)
                    }),
                    ("live_at_exit", Json::Bool(s.closed_at.is_none())),
                    ("allocs", Json::U(s.allocs)),
                    ("alloc_words", Json::U(s.alloc_words)),
                    ("rc_updates", Json::U(s.rc_updates)),
                    ("checks", Json::U(s.checks)),
                    ("checks_failed", Json::U(s.checks_failed)),
                    ("freed_words", Json::U(s.freed_words)),
                ]),
            ),
        ]));
    }

    for n in x.spans.notes() {
        match *n {
            SpanNote::Check { region, at, site, check_site, kind, passed, statically_safe } => {
                let (line, reason) = match by_site.get(&check_site) {
                    Some(r) => (r.line, r.reason.as_str()),
                    None => (site, ""),
                };
                let verdict = if statically_safe { "eliminated" } else { "retained" };
                events.push(Json::obj(vec![
                    ("name", Json::S(format!("chk {}", kind_name(kind)))),
                    ("cat", Json::s("check")),
                    ("ph", Json::s("i")),
                    ("s", Json::s("t")),
                    ("pid", Json::U(1)),
                    ("tid", Json::U(region as u64)),
                    ("ts", Json::U(at)),
                    (
                        "args",
                        Json::obj(vec![
                            (
                                "src",
                                if check_site == NO_CHECK_SITE {
                                    Json::Null
                                } else {
                                    Json::S(format!("{}:{line}", x.workload))
                                },
                            ),
                            (
                                "site",
                                if check_site == NO_CHECK_SITE {
                                    Json::Null
                                } else {
                                    Json::U(check_site as u64)
                                },
                            ),
                            ("kind", Json::s(kind_name(kind))),
                            ("passed", Json::Bool(passed)),
                            ("verdict", Json::s(verdict)),
                            ("reason", Json::s(reason)),
                        ]),
                    ),
                ]));
            }
            SpanNote::Gc { at, marked_words, swept_objects } => {
                events.push(Json::obj(vec![
                    ("name", Json::s("gc collection")),
                    ("cat", Json::s("gc")),
                    ("ph", Json::s("i")),
                    ("s", Json::s("t")),
                    ("pid", Json::U(1)),
                    ("tid", Json::U(0)),
                    ("ts", Json::U(at)),
                    (
                        "args",
                        Json::obj(vec![
                            ("marked_words", Json::U(marked_words)),
                            ("swept_objects", Json::U(swept_objects)),
                        ]),
                    ),
                ]));
            }
            SpanNote::Fault { at, plane, op } => {
                events.push(Json::obj(vec![
                    ("name", Json::S(format!("fault {}", plane.name()))),
                    ("cat", Json::s("fault")),
                    ("ph", Json::s("i")),
                    ("s", Json::s("t")),
                    ("pid", Json::U(1)),
                    ("tid", Json::U(0)),
                    ("ts", Json::U(at)),
                    ("args", Json::obj(vec![("op", Json::U(op))])),
                ]));
            }
            // Allocs and RC updates appear as exact aggregates in the
            // span args; raw instants for them would dwarf the trace.
            SpanNote::Alloc { .. } | SpanNote::Rc { .. } => {}
        }
    }

    Json::obj(vec![
        ("traceEvents", Json::A(events)),
        ("displayTimeUnit", Json::s("ns")),
        (
            "otherData",
            Json::obj(vec![
                ("schema", Json::s(SCHEMA)),
                ("workload", Json::s(&*x.workload)),
                ("config", Json::s(&*x.config)),
                ("eliminated_sites", Json::U(x.eliminated_sites)),
                ("notes_dropped", Json::U(x.spans.notes_dropped())),
                ("end_cycles", Json::U(x.end_cycles)),
            ]),
        ),
    ])
}

/// One workload's check-site coverage summary (the EXPERIMENTS.md row).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoverageSummaryRow {
    /// Workload name.
    pub workload: String,
    /// Annotated check sites in the generated source.
    pub sites: u64,
    /// Sites the inference eliminated.
    pub eliminated: u64,
    /// Sites retained (checked at runtime under `qs`).
    pub retained: u64,
    /// Retained sites that fired at least once and never failed.
    pub never_failing: u64,
    /// Total dynamic check executions across all sites.
    pub fires: u64,
    /// Total dynamic check failures.
    pub fails: u64,
}

impl Row for CoverageSummaryRow {
    fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("workload", Json::s(&*self.workload)),
            ("sites", Json::U(self.sites)),
            ("eliminated", Json::U(self.eliminated)),
            ("retained", Json::U(self.retained)),
            ("never_failing", Json::U(self.never_failing)),
            ("fires", Json::U(self.fires)),
            ("fails", Json::U(self.fails)),
        ]
    }
}

/// Runs every paper workload under `qs` with spans on and summarizes
/// static↔dynamic check coverage; also returns the full per-site export
/// for `exemplar` (the table EXPERIMENTS.md prints in full).
pub fn summarize(scale: Scale, exemplar: &str) -> (Vec<CoverageSummaryRow>, TraceExport) {
    let qs = RunConfig::rc(rc_lang::CheckMode::Qs);
    let mut rows = Vec::new();
    let mut exemplar_export = None;
    for w in rc_workloads::all() {
        let x = collect(&w, "qs", &qs, scale);
        rows.push(CoverageSummaryRow {
            workload: x.workload.clone(),
            sites: x.coverage.len() as u64,
            eliminated: x.eliminated_sites,
            retained: x.coverage.len() as u64 - x.eliminated_sites,
            never_failing: x.coverage.iter().filter(|r| r.eliminable_in_principle()).count()
                as u64,
            fires: x.coverage.iter().map(|r| r.fires).sum(),
            fails: x.coverage.iter().map(|r| r.fails).sum(),
        });
        if w.name == exemplar {
            exemplar_export = Some(x);
        }
    }
    let exemplar_export =
        exemplar_export.unwrap_or_else(|| panic!("exemplar workload {exemplar:?} not found"));
    (rows, exemplar_export)
}

/// Renders the coverage table as Markdown (the EXPERIMENTS.md section).
pub fn coverage_markdown(x: &TraceExport) -> String {
    let mut out = String::new();
    out.push_str("| site | line | verdict | fires | fails | reason |\n");
    out.push_str("|---|---|---|---|---|---|\n");
    for r in &x.coverage {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            r.site,
            r.line,
            r.verdict(),
            r.fires,
            r.fails,
            r.reason
        ));
    }
    let eliminable = x.coverage.iter().filter(|r| r.eliminable_in_principle()).count();
    out.push_str(&format!(
        "\n{} sites, {} eliminated statically, {} retained-but-never-failing \
         (candidates for a sharper inference).\n",
        x.coverage.len(),
        x.eliminated_sites,
        eliminable
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rc_lang::CheckMode;

    fn export(config_name: &str, cfg: RunConfig) -> TraceExport {
        let w = rc_workloads::by_name("cfrac").expect("cfrac exists");
        collect(&w, config_name, &cfg, Scale::TINY)
    }

    #[test]
    fn coverage_matches_the_analysis_and_spans_verify() {
        let x = export("qs", RunConfig::rc(CheckMode::Qs));
        assert!(!x.coverage.is_empty(), "cfrac has annotated sites");
        // collect() asserts the eliminated totals internally; re-state the
        // dynamic side: under qs every retained *and* eliminated site that
        // executes fires its check.
        let fired: u64 = x.coverage.iter().map(|r| r.fires).sum();
        assert!(fired > 0, "qs executes annotation checks");
        assert_eq!(x.spans.verification(), Some(&Ok(())));
    }

    #[test]
    fn inf_regime_skips_eliminated_sites_dynamically() {
        let x = export("inf", RunConfig::rc_inf());
        for r in &x.coverage {
            if r.eliminated {
                assert_eq!(
                    r.fires, 0,
                    "site {} was eliminated but still fired under inf",
                    r.site
                );
                assert_eq!(r.reason, "entailed by the flow state");
            }
        }
    }

    #[test]
    fn chrome_trace_is_deterministic_and_carries_provenance() {
        let a = chrome_trace(&export("qs", RunConfig::rc(CheckMode::Qs))).render_pretty();
        let b = chrome_trace(&export("qs", RunConfig::rc(CheckMode::Qs))).render_pretty();
        assert_eq!(a, b, "two exports of the same run must be byte-identical");
        assert!(a.contains(r#""schema":"#) && a.contains(SCHEMA));
        assert!(a.contains(r#""ph": "X""#) || a.contains(r#""ph":"X""#), "span events present");
        assert!(a.contains("retained") || a.contains("eliminated"));
        // Valid JSON round trip through our own parser.
        Json::parse(&a).expect("export parses");
    }

    #[test]
    fn coverage_markdown_totals_line_up() {
        let x = export("qs", RunConfig::rc(CheckMode::Qs));
        let md = coverage_markdown(&x);
        assert!(md.contains("| site | line | verdict |"));
        assert!(md.contains(&format!("{} eliminated statically", x.eliminated_sites)));
    }
}
