//! Regeneration of the paper's tables and figures.
//!
//! Each function reruns the eight workloads under the relevant
//! configurations and assembles rows mirroring the paper's evaluation
//! section. Absolute numbers are virtual-clock instruction counts (the
//! substrate is an interpreter, not a 2001 SPARC), so the meaningful
//! comparisons — who wins, relative overheads, crossovers — are reported
//! as ratios and percentages alongside the paper's own values.

use std::collections::BTreeMap;

use rc_lang::interp::{run, Outcome, RunResult};
use rc_lang::RunConfig;
use rc_workloads::driver::{prepare_workload, static_stats};
use rc_workloads::{paper, Scale, Workload};
use serde::Serialize;

/// Table 1: benchmark characteristics.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Lines in our miniature RC source.
    pub lines: usize,
    /// Objects allocated during the run.
    pub allocs: u64,
    /// Total memory allocated (kB).
    pub mem_alloc_kb: u64,
    /// Peak memory in use (kB).
    pub max_use_kb: u64,
    /// The original program's Table 1 row, for scale comparison.
    pub paper_lines: u32,
    /// Paper: number of allocations.
    pub paper_allocs: u64,
}

/// Runs a workload once under a config, panicking on a non-exit.
fn must_run(w: &Workload, scale: Scale, cfg: &RunConfig) -> RunResult {
    let c = prepare_workload(w, scale);
    let r = run(&c, cfg);
    match r.outcome {
        Outcome::Exit(_) => r,
        ref other => panic!("{}: did not exit cleanly: {other:?}", w.name),
    }
}

/// Generates Table 1.
pub fn table1(scale: Scale) -> Vec<Table1Row> {
    rc_workloads::all()
        .iter()
        .map(|w| {
            let src = (w.source)(scale);
            let r = must_run(w, scale, &RunConfig::rc_inf());
            let p = paper::row(w.name).expect("paper row exists");
            Table1Row {
                name: w.name.to_string(),
                lines: src.lines().filter(|l| !l.trim().is_empty()).count(),
                allocs: r.stats.objects_allocated,
                mem_alloc_kb: r.stats.words_allocated * 8 / 1024,
                max_use_kb: r.stats.peak_live_words * 8 / 1024,
                paper_lines: p.lines,
                paper_allocs: p.allocs,
            }
        })
        .collect()
}

/// Table 2: reference-counting overhead.
#[derive(Debug, Clone, Serialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// RC: reference-count work (count updates + local pins) as % of
    /// total execution time, under the qs regime (annotations used, as in
    /// the paper's Table 2).
    pub rc_overhead_pct: f64,
    /// C@: same, under the C@ configuration.
    pub cat_overhead_pct: f64,
    /// Region unscan as % of total execution time (RC).
    pub unscan_pct: f64,
    /// Paper's RC overhead %, where reported.
    pub paper_rc_pct: Option<f64>,
    /// Paper's C@ overhead %, where reported.
    pub paper_cat_pct: Option<f64>,
}

/// Generates Table 2.
pub fn table2(scale: Scale) -> Vec<Table2Row> {
    rc_workloads::all()
        .iter()
        .map(|w| {
            let rc = must_run(w, scale, &RunConfig::rc(rc_lang::CheckMode::Qs));
            let cat = must_run(w, scale, &RunConfig::cat());
            let p = paper::row(w.name).expect("paper row exists");
            let pct = |part: u64, whole: u64| {
                if whole == 0 { 0.0 } else { 100.0 * part as f64 / whole as f64 }
            };
            Table2Row {
                name: w.name.to_string(),
                rc_overhead_pct: pct(rc.stats.rc_cycles, rc.cycles),
                cat_overhead_pct: pct(cat.stats.rc_cycles, cat.cycles),
                unscan_pct: pct(rc.stats.unscan_cycles, rc.cycles),
                paper_rc_pct: p.rc_overhead_pct,
                paper_cat_pct: p.cat_overhead_pct,
            }
        })
        .collect()
}

/// Table 3: annotation statistics and static verification rates.
#[derive(Debug, Clone, Serialize)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Annotation keywords in the source.
    pub keywords: usize,
    /// Annotated assignment sites.
    pub sites: usize,
    /// Sites the inference proved safe.
    pub safe_sites: usize,
    /// % of annotated sites proven safe.
    pub safe_pct: f64,
    /// Paper's % safe.
    pub paper_safe_pct: f64,
    /// Paper's keyword count.
    pub paper_keywords: u32,
}

/// Generates Table 3.
pub fn table3(scale: Scale) -> Vec<Table3Row> {
    rc_workloads::all()
        .iter()
        .map(|w| {
            let s = static_stats(w, scale);
            let p = paper::row(w.name).expect("paper row exists");
            Table3Row {
                name: w.name.to_string(),
                keywords: s.keywords,
                sites: s.sites,
                safe_sites: s.safe_sites,
                safe_pct: s.safe_pct(),
                paper_safe_pct: p.safe_assign_pct,
                paper_keywords: p.keywords,
            }
        })
        .collect()
}

/// Figure 7: execution time per benchmark under the five configurations.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: String,
    /// Virtual cycles per configuration (C@, lea, GC, norc, RC).
    pub cycles: BTreeMap<String, u64>,
    /// Time relative to "lea" (the malloc/free baseline), per config.
    pub rel_to_lea: BTreeMap<String, f64>,
}

/// Generates Figure 7.
pub fn fig7(scale: Scale) -> Vec<Fig7Row> {
    rc_workloads::all()
        .iter()
        .map(|w| {
            let mut cycles = BTreeMap::new();
            for (name, cfg) in RunConfig::figure7() {
                let r = must_run(w, scale, &cfg);
                cycles.insert(name.to_string(), r.cycles);
            }
            let lea = cycles["lea"] as f64;
            let rel_to_lea = cycles
                .iter()
                .map(|(k, &v)| (k.clone(), v as f64 / lea))
                .collect();
            Fig7Row { name: w.name.to_string(), cycles, rel_to_lea }
        })
        .collect()
}

/// Figure 8: execution time under nq / qs / inf / nc.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: String,
    /// Virtual cycles per check regime.
    pub cycles: BTreeMap<String, u64>,
    /// Reference-counting + check overhead as % of execution time, per
    /// regime (the quantity behind "27% instead of 11%").
    pub overhead_pct: BTreeMap<String, f64>,
}

/// Generates Figure 8.
pub fn fig8(scale: Scale) -> Vec<Fig8Row> {
    rc_workloads::all()
        .iter()
        .map(|w| {
            let mut cycles = BTreeMap::new();
            let mut overhead = BTreeMap::new();
            for (name, cfg) in RunConfig::figure8() {
                let r = must_run(w, scale, &cfg);
                cycles.insert(name.to_string(), r.cycles);
                let dynamic =
                    r.stats.rc_cycles + r.stats.check_cycles + r.stats.unscan_cycles;
                overhead.insert(
                    name.to_string(),
                    if r.cycles == 0 { 0.0 } else { 100.0 * dynamic as f64 / r.cycles as f64 },
                );
            }
            Fig8Row { name: w.name.to_string(), cycles, overhead_pct: overhead }
        })
        .collect()
}

/// Figure 9: runtime pointer-assignment categories.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: String,
    /// % of heap pointer assignments with no runtime work (statically
    /// safe).
    pub safe_pct: f64,
    /// % that executed an annotation check.
    pub checked_pct: f64,
    /// % that did reference-count work.
    pub counted_pct: f64,
    /// Local pointer assignments (excluded from the percentages, as in
    /// the paper).
    pub local_assigns: u64,
    /// Total heap pointer assignments.
    pub heap_assigns: u64,
}

/// Generates Figure 9 (measured under the RC "inf" configuration, like
/// the paper).
pub fn fig9(scale: Scale) -> Vec<Fig9Row> {
    use region_rt::AssignCategory;
    rc_workloads::all()
        .iter()
        .map(|w| {
            let r = must_run(w, scale, &RunConfig::rc_inf());
            Fig9Row {
                name: w.name.to_string(),
                safe_pct: r.stats.assign_pct(AssignCategory::Safe),
                checked_pct: r.stats.assign_pct(AssignCategory::Checked),
                counted_pct: r.stats.assign_pct(AssignCategory::Counted),
                local_assigns: r.stats.assigns_local,
                heap_assigns: r.stats.heap_assigns(),
            }
        })
        .collect()
}

/// Formats a sequence of serialisable rows as an aligned text table.
pub fn text_table<T: Serialize>(rows: &[T]) -> String {
    let vals: Vec<serde_json::Value> =
        rows.iter().map(|r| serde_json::to_value(r).expect("serialisable")).collect();
    let Some(first) = vals.first() else { return String::new() };
    let headers: Vec<String> = first
        .as_object()
        .map(|o| o.keys().cloned().collect())
        .unwrap_or_default();
    fn fmt_val(v: &serde_json::Value) -> String {
        match v {
            serde_json::Value::Number(n) => {
                if let Some(f) = n.as_f64() {
                    if n.is_f64() { format!("{f:.1}") } else { n.to_string() }
                } else {
                    n.to_string()
                }
            }
            serde_json::Value::String(s) => s.clone(),
            serde_json::Value::Null => "-".to_string(),
            serde_json::Value::Object(m) => m
                .iter()
                .map(|(k, v)| format!("{k}={}", fmt_val(v)))
                .collect::<Vec<_>>()
                .join(" "),
            other => other.to_string(),
        }
    }
    let mut grid: Vec<Vec<String>> = vec![headers.clone()];
    for v in &vals {
        grid.push(
            headers
                .iter()
                .map(|h| fmt_val(v.get(h).unwrap_or(&serde_json::Value::Null)))
                .collect(),
        );
    }
    let widths: Vec<usize> = (0..headers.len())
        .map(|i| grid.iter().map(|row| row[i].len()).max().unwrap_or(0))
        .collect();
    grid.iter()
        .map(|row| {
            row.iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_formats() {
        #[derive(Serialize)]
        struct R {
            name: String,
            x: u64,
        }
        let t = text_table(&[
            R { name: "aa".into(), x: 1 },
            R { name: "b".into(), x: 123 },
        ]);
        assert!(t.contains("name"));
        assert!(t.contains("123"));
        assert_eq!(t.lines().count(), 3);
    }
}
