//! Regeneration of the paper's tables and figures.
//!
//! Each function reruns the eight workloads under the relevant
//! configurations and assembles rows mirroring the paper's evaluation
//! section. Absolute numbers are virtual-clock instruction counts (the
//! substrate is an interpreter, not a 2001 SPARC), so the meaningful
//! comparisons — who wins, relative overheads, crossovers — are reported
//! as ratios and percentages alongside the paper's own values.
//!
//! Rows serialize through the dependency-free [`Json`] writer (the build
//! environment is offline, so no serde): every row type implements
//! [`Row`], from which both the aligned text tables and the JSON dumps
//! are derived.

use std::collections::BTreeMap;

use rc_lang::interp::{run, Outcome, RunResult};
use rc_lang::RunConfig;
use rc_workloads::driver::{prepare_workload, static_stats};
use rc_workloads::{paper, Scale, Workload};
use region_rt::{Json, Tracer};

/// A table row rendered as ordered `(column, value)` pairs; the single
/// source for both the text tables and the JSON export.
pub trait Row {
    /// The row's columns, in display order.
    fn fields(&self) -> Vec<(&'static str, Json)>;
}

/// Serializes rows as a JSON array of objects.
pub fn rows_json<T: Row>(rows: &[T]) -> Json {
    Json::A(rows.iter().map(|r| Json::obj(r.fields())).collect())
}

fn opt_f(v: Option<f64>) -> Json {
    v.map_or(Json::Null, Json::F)
}

fn map_u(m: &BTreeMap<String, u64>) -> Json {
    Json::O(m.iter().map(|(k, &v)| (k.clone(), Json::U(v))).collect())
}

fn map_f(m: &BTreeMap<String, f64>) -> Json {
    Json::O(m.iter().map(|(k, &v)| (k.clone(), Json::F(v))).collect())
}

/// Table 1: benchmark characteristics.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Lines in our miniature RC source.
    pub lines: usize,
    /// Objects allocated during the run.
    pub allocs: u64,
    /// Total memory allocated (kB).
    pub mem_alloc_kb: u64,
    /// Peak memory in use (kB).
    pub max_use_kb: u64,
    /// The original program's Table 1 row, for scale comparison.
    pub paper_lines: u32,
    /// Paper: number of allocations.
    pub paper_allocs: u64,
}

impl Row for Table1Row {
    fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("name", Json::s(&*self.name)),
            ("lines", Json::U(self.lines as u64)),
            ("allocs", Json::U(self.allocs)),
            ("mem_alloc_kb", Json::U(self.mem_alloc_kb)),
            ("max_use_kb", Json::U(self.max_use_kb)),
            ("paper_lines", Json::U(self.paper_lines as u64)),
            ("paper_allocs", Json::U(self.paper_allocs)),
        ]
    }
}

/// Runs a workload once under a config, panicking on a non-exit.
fn must_run(w: &Workload, scale: Scale, cfg: &RunConfig) -> RunResult {
    let c = prepare_workload(w, scale);
    let r = run(&c, cfg);
    match r.outcome {
        Outcome::Exit(_) => r,
        ref other => panic!("{}: did not exit cleanly: {other:?}", w.name),
    }
}

/// Generates Table 1.
pub fn table1(scale: Scale) -> Vec<Table1Row> {
    rc_workloads::all()
        .iter()
        .map(|w| {
            let src = (w.source)(scale);
            let r = must_run(w, scale, &RunConfig::rc_inf());
            let p = paper::row(w.name).expect("paper row exists");
            Table1Row {
                name: w.name.to_string(),
                lines: src.lines().filter(|l| !l.trim().is_empty()).count(),
                allocs: r.stats.objects_allocated,
                mem_alloc_kb: r.stats.words_allocated * 8 / 1024,
                max_use_kb: r.stats.peak_live_words * 8 / 1024,
                paper_lines: p.lines,
                paper_allocs: p.allocs,
            }
        })
        .collect()
}

/// Table 2: reference-counting overhead.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// RC: reference-count work (count updates + local pins) as % of
    /// total execution time, under the qs regime (annotations used, as in
    /// the paper's Table 2).
    pub rc_overhead_pct: f64,
    /// C@: same, under the C@ configuration.
    pub cat_overhead_pct: f64,
    /// Region unscan as % of total execution time (RC).
    pub unscan_pct: f64,
    /// Paper's RC overhead %, where reported.
    pub paper_rc_pct: Option<f64>,
    /// Paper's C@ overhead %, where reported.
    pub paper_cat_pct: Option<f64>,
}

impl Row for Table2Row {
    fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("name", Json::s(&*self.name)),
            ("rc_overhead_pct", Json::F(self.rc_overhead_pct)),
            ("cat_overhead_pct", Json::F(self.cat_overhead_pct)),
            ("unscan_pct", Json::F(self.unscan_pct)),
            ("paper_rc_pct", opt_f(self.paper_rc_pct)),
            ("paper_cat_pct", opt_f(self.paper_cat_pct)),
        ]
    }
}

/// Generates Table 2.
pub fn table2(scale: Scale) -> Vec<Table2Row> {
    rc_workloads::all()
        .iter()
        .map(|w| {
            let rc = must_run(w, scale, &RunConfig::rc(rc_lang::CheckMode::Qs));
            let cat = must_run(w, scale, &RunConfig::cat());
            let p = paper::row(w.name).expect("paper row exists");
            let pct = |part: u64, whole: u64| {
                if whole == 0 { 0.0 } else { 100.0 * part as f64 / whole as f64 }
            };
            Table2Row {
                name: w.name.to_string(),
                rc_overhead_pct: pct(rc.stats.rc_cycles, rc.cycles),
                cat_overhead_pct: pct(cat.stats.rc_cycles, cat.cycles),
                unscan_pct: pct(rc.stats.unscan_cycles, rc.cycles),
                paper_rc_pct: p.rc_overhead_pct,
                paper_cat_pct: p.cat_overhead_pct,
            }
        })
        .collect()
}

/// Table 3: annotation statistics and static verification rates.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Annotation keywords in the source.
    pub keywords: usize,
    /// Annotated assignment sites.
    pub sites: usize,
    /// Sites the inference proved safe.
    pub safe_sites: usize,
    /// % of annotated sites proven safe.
    pub safe_pct: f64,
    /// Paper's % safe.
    pub paper_safe_pct: f64,
    /// Paper's keyword count.
    pub paper_keywords: u32,
}

impl Row for Table3Row {
    fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("name", Json::s(&*self.name)),
            ("keywords", Json::U(self.keywords as u64)),
            ("sites", Json::U(self.sites as u64)),
            ("safe_sites", Json::U(self.safe_sites as u64)),
            ("safe_pct", Json::F(self.safe_pct)),
            ("paper_safe_pct", Json::F(self.paper_safe_pct)),
            ("paper_keywords", Json::U(self.paper_keywords as u64)),
        ]
    }
}

/// Generates Table 3.
pub fn table3(scale: Scale) -> Vec<Table3Row> {
    rc_workloads::all()
        .iter()
        .map(|w| {
            let s = static_stats(w, scale);
            let p = paper::row(w.name).expect("paper row exists");
            Table3Row {
                name: w.name.to_string(),
                keywords: s.keywords,
                sites: s.sites,
                safe_sites: s.safe_sites,
                safe_pct: s.safe_pct(),
                paper_safe_pct: p.safe_assign_pct,
                paper_keywords: p.keywords,
            }
        })
        .collect()
}

/// Figure 7: execution time per benchmark under the five configurations.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// Benchmark name.
    pub name: String,
    /// Virtual cycles per configuration (C@, lea, GC, norc, RC).
    pub cycles: BTreeMap<String, u64>,
    /// Time relative to "lea" (the malloc/free baseline), per config.
    pub rel_to_lea: BTreeMap<String, f64>,
}

impl Row for Fig7Row {
    fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("name", Json::s(&*self.name)),
            ("cycles", map_u(&self.cycles)),
            ("rel_to_lea", map_f(&self.rel_to_lea)),
        ]
    }
}

/// Generates Figure 7.
pub fn fig7(scale: Scale) -> Vec<Fig7Row> {
    rc_workloads::all()
        .iter()
        .map(|w| {
            let mut cycles = BTreeMap::new();
            for (name, cfg) in RunConfig::figure7() {
                let r = must_run(w, scale, &cfg);
                cycles.insert(name.to_string(), r.cycles);
            }
            let lea = cycles["lea"] as f64;
            let rel_to_lea = cycles
                .iter()
                .map(|(k, &v)| (k.clone(), v as f64 / lea))
                .collect();
            Fig7Row { name: w.name.to_string(), cycles, rel_to_lea }
        })
        .collect()
}

/// Figure 8: execution time under nq / qs / inf / nc.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Benchmark name.
    pub name: String,
    /// Virtual cycles per check regime.
    pub cycles: BTreeMap<String, u64>,
    /// Reference-counting + check overhead as % of execution time, per
    /// regime (the quantity behind "27% instead of 11%").
    pub overhead_pct: BTreeMap<String, f64>,
}

impl Row for Fig8Row {
    fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("name", Json::s(&*self.name)),
            ("cycles", map_u(&self.cycles)),
            ("overhead_pct", map_f(&self.overhead_pct)),
        ]
    }
}

/// Generates Figure 8.
pub fn fig8(scale: Scale) -> Vec<Fig8Row> {
    rc_workloads::all()
        .iter()
        .map(|w| {
            let mut cycles = BTreeMap::new();
            let mut overhead = BTreeMap::new();
            for (name, cfg) in RunConfig::figure8() {
                let r = must_run(w, scale, &cfg);
                cycles.insert(name.to_string(), r.cycles);
                let dynamic =
                    r.stats.rc_cycles + r.stats.check_cycles + r.stats.unscan_cycles;
                overhead.insert(
                    name.to_string(),
                    if r.cycles == 0 { 0.0 } else { 100.0 * dynamic as f64 / r.cycles as f64 },
                );
            }
            Fig8Row { name: w.name.to_string(), cycles, overhead_pct: overhead }
        })
        .collect()
}

/// Figure 9: runtime pointer-assignment categories.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Benchmark name.
    pub name: String,
    /// % of heap pointer assignments with no runtime work (statically
    /// safe).
    pub safe_pct: f64,
    /// % that executed an annotation check.
    pub checked_pct: f64,
    /// % that did reference-count work.
    pub counted_pct: f64,
    /// Local pointer assignments (excluded from the percentages, as in
    /// the paper).
    pub local_assigns: u64,
    /// Total heap pointer assignments.
    pub heap_assigns: u64,
}

impl Row for Fig9Row {
    fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("name", Json::s(&*self.name)),
            ("safe_pct", Json::F(self.safe_pct)),
            ("checked_pct", Json::F(self.checked_pct)),
            ("counted_pct", Json::F(self.counted_pct)),
            ("local_assigns", Json::U(self.local_assigns)),
            ("heap_assigns", Json::U(self.heap_assigns)),
        ]
    }
}

/// Generates Figure 9 (measured under the RC "inf" configuration, like
/// the paper).
pub fn fig9(scale: Scale) -> Vec<Fig9Row> {
    use region_rt::AssignCategory;
    rc_workloads::all()
        .iter()
        .map(|w| {
            let r = must_run(w, scale, &RunConfig::rc_inf());
            Fig9Row {
                name: w.name.to_string(),
                safe_pct: r.stats.assign_pct(AssignCategory::Safe),
                checked_pct: r.stats.assign_pct(AssignCategory::Checked),
                counted_pct: r.stats.assign_pct(AssignCategory::Counted),
                local_assigns: r.stats.assigns_local,
                heap_assigns: r.stats.heap_assigns(),
            }
        })
        .collect()
}

// ---- telemetry ---------------------------------------------------------

/// One workload's telemetry summary (traced run under the qs regime, so
/// the annotation checks actually execute and attribute to sites).
#[derive(Debug, Clone)]
pub struct TelemetryRow {
    /// Benchmark name.
    pub name: String,
    /// Annotation checks executed.
    pub checks: u64,
    /// Reference-count updates (full + early-exit).
    pub rc_updates: u64,
    /// Objects allocated.
    pub allocs: u64,
    /// Regions created.
    pub regions: u64,
    /// Top check sites as `name:line` → check count, hottest first.
    pub top_check_sites: Vec<(String, u64)>,
}

impl Row for TelemetryRow {
    fn fields(&self) -> Vec<(&'static str, Json)> {
        vec![
            ("name", Json::s(&*self.name)),
            ("checks", Json::U(self.checks)),
            ("rc_updates", Json::U(self.rc_updates)),
            ("allocs", Json::U(self.allocs)),
            ("regions", Json::U(self.regions)),
            (
                "top_check_sites",
                Json::O(
                    self.top_check_sites
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::U(*v)))
                        .collect(),
                ),
            ),
        ]
    }
}

/// Everything the telemetry pass produces: the per-workload summary rows,
/// the raw tracers (for JSONL export), and a region flamegraph of the
/// nested-region demo.
#[derive(Debug)]
pub struct TelemetryReport {
    /// One summary row per workload.
    pub rows: Vec<TelemetryRow>,
    /// `(workload, tracer)` pairs: ring of recent raw events plus the
    /// exact folded profile for each traced run.
    pub tracers: Vec<(String, Box<Tracer>)>,
    /// Text flamegraph of [`NESTED_DEMO`]'s subregion hierarchy.
    pub flamegraph: String,
}

impl TelemetryReport {
    /// All raw events as JSON Lines, each tagged with its workload.
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, t) in &self.tracers {
            out.push_str(&t.events_jsonl(name));
        }
        out
    }

    /// All folded profiles as JSON Lines (one profile object per run).
    pub fn profiles_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, t) in &self.tracers {
            out.push_str(&t.profile().to_json(name).render());
            out.push('\n');
        }
        out
    }
}

/// A small nested-region program whose flamegraph shows three levels of
/// subregions under the root.
pub const NESTED_DEMO: &str = "\
struct t { int x; };
int main() deletes {
    region outer = newregion();
    region mid = newsubregion(outer);
    region inner = newsubregion(mid);
    struct t *a = ralloc(outer, struct t);
    struct t *b = ralloc(mid, struct t);
    struct t *c = ralloc(inner, struct t);
    c->x = 1; b->x = 2; a->x = 3;
    a = null; b = null; c = null;
    deleteregion(inner);
    deleteregion(mid);
    deleteregion(outer);
    return 0;
}
";

/// Runs the telemetry pass: every workload once under qs with full event
/// tracing, plus the nested-region demo for the flamegraph.
pub fn telemetry(scale: Scale) -> TelemetryReport {
    let cfg = RunConfig::rc(rc_lang::CheckMode::Qs).traced();
    let mut rows = Vec::new();
    let mut tracers = Vec::new();
    for w in rc_workloads::all() {
        let r = must_run(&w, scale, &cfg);
        let t = r.tracer.expect("tracing was enabled");
        let p = t.profile();
        let top_check_sites = p
            .hot_check_sites(5)
            .iter()
            .map(|s| (format!("{}:{}", w.name, s.line), s.checks_total()))
            .collect();
        rows.push(TelemetryRow {
            name: w.name.to_string(),
            checks: p.totals.checks_total(),
            rc_updates: p.totals.rc_updates_total(),
            allocs: p.totals.allocs,
            regions: p.totals.regions_created,
            top_check_sites,
        });
        tracers.push((w.name.to_string(), t));
    }

    let demo = rc_lang::interp::prepare(NESTED_DEMO).expect("demo compiles");
    let r = run(&demo, &RunConfig::rc_inf().traced());
    assert!(r.outcome.is_exit(), "nested demo must exit: {:?}", r.outcome);
    let flamegraph = r.profile().expect("traced").flamegraph();

    TelemetryReport { rows, tracers, flamegraph }
}

// ---- rendering ---------------------------------------------------------

/// Formats a sequence of rows as an aligned text table.
pub fn text_table<T: Row>(rows: &[T]) -> String {
    let Some(first) = rows.first() else { return String::new() };
    let headers: Vec<&'static str> = first.fields().into_iter().map(|(k, _)| k).collect();
    fn fmt_val(v: &Json) -> String {
        match v {
            Json::Null => "-".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::U(n) => n.to_string(),
            Json::I(n) => n.to_string(),
            Json::F(f) => format!("{f:.1}"),
            Json::S(s) => s.clone(),
            Json::A(items) => {
                items.iter().map(fmt_val).collect::<Vec<_>>().join(" ")
            }
            Json::O(fields) => fields
                .iter()
                .map(|(k, v)| format!("{k}={}", fmt_val(v)))
                .collect::<Vec<_>>()
                .join(" "),
        }
    }
    let mut grid: Vec<Vec<String>> = vec![headers.iter().map(|h| h.to_string()).collect()];
    for r in rows {
        grid.push(r.fields().iter().map(|(_, v)| fmt_val(v)).collect());
    }
    let widths: Vec<usize> = (0..headers.len())
        .map(|i| grid.iter().map(|row| row[i].len()).max().unwrap_or(0))
        .collect();
    grid.iter()
        .map(|row| {
            row.iter()
                .zip(&widths)
                .map(|(cell, w)| format!("{cell:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
                .trim_end()
                .to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_table_formats() {
        struct R {
            name: String,
            x: u64,
        }
        impl Row for R {
            fn fields(&self) -> Vec<(&'static str, Json)> {
                vec![("name", Json::s(&*self.name)), ("x", Json::U(self.x))]
            }
        }
        let t = text_table(&[
            R { name: "aa".into(), x: 1 },
            R { name: "b".into(), x: 123 },
        ]);
        assert!(t.contains("name"));
        assert!(t.contains("123"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn rows_render_as_json() {
        let row = Table1Row {
            name: "lcc".into(),
            lines: 10,
            allocs: 5,
            mem_alloc_kb: 1,
            max_use_kb: 1,
            paper_lines: 12_430,
            paper_allocs: 671_103,
        };
        let json = rows_json(&[row]).render();
        assert!(json.starts_with('['));
        assert!(json.contains(r#""name":"lcc""#));
        assert!(json.contains(r#""allocs":5"#));
    }
}
