//! End-to-end regression gate: the `bench-diff` binary itself, driven
//! over real collected trajectories, must exit 0 on identical reports,
//! 1 on an injected regression, and 2 on malformed input.

use std::path::PathBuf;
use std::process::Command;

use rc_bench::trajectory::{collect_for, BenchReport};
use rc_workloads::Scale;

fn write_tmp(name: &str, text: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("rc-bench-diff-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, text).unwrap();
    path
}

fn bench_diff(old: &PathBuf, new: &PathBuf) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench-diff"))
        .arg(old)
        .arg(new)
        .output()
        .expect("run bench-diff");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.code().expect("exit code"), text)
}

fn tiny_report() -> BenchReport {
    collect_for(Scale::TINY, &[rc_workloads::by_name("tile").unwrap()])
}

#[test]
fn gate_exit_codes_over_real_reports() {
    let rep = tiny_report();
    let base = write_tmp("base.json", &rep.render());

    // Identical reports: clean exit, explicit all-clear.
    let same = write_tmp("same.json", &rep.render());
    let (code, out) = bench_diff(&base, &same);
    assert_eq!(code, 0, "self-diff must pass:\n{out}");
    assert!(out.contains("no regressions"), "{out}");

    // A 10% cycle regression on one run trips the 5% gate.
    let mut slow = rep.clone();
    slow.runs[0].cycles += slow.runs[0].cycles / 10;
    let slow_path = write_tmp("slow.json", &slow.render());
    let (code, out) = bench_diff(&base, &slow_path);
    assert_eq!(code, 1, "10% cycle growth must fail the gate:\n{out}");
    assert!(out.contains("REGRESSED"), "{out}");
    assert!(out.contains("cycles"), "{out}");

    // An 11% peak-memory regression trips the 10% gate.
    let mut fat = rep.clone();
    let peak = fat.runs[0].peak_live_words;
    fat.runs[0].peak_live_words = peak + peak * 11 / 100 + 1;
    let fat_path = write_tmp("fat.json", &fat.render());
    let (code, out) = bench_diff(&base, &fat_path);
    assert_eq!(code, 1, "11% peak growth must fail the gate:\n{out}");

    // Malformed input and missing files are usage errors, not
    // regressions.
    let junk = write_tmp("junk.json", "{\"schema\": \"wrong/v9\"}");
    let (code, out) = bench_diff(&base, &junk);
    assert_eq!(code, 2, "schema mismatch is an input error:\n{out}");
    let missing = PathBuf::from("/nonexistent/BENCH.json");
    let (code, _) = bench_diff(&base, &missing);
    assert_eq!(code, 2);
}
