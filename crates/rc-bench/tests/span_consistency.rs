//! Property test: the span tree is a *third* accounting of the same run,
//! and all three ledgers must agree exactly.
//!
//! For 48 SplitMix64-chosen (workload × config) combinations, one run
//! records lifecycle spans ([`region_rt::SpanTree`]), the global event
//! counters ([`region_rt::Stats`]) and the folded telemetry profile
//! ([`region_rt::Profile`]) simultaneously, then cross-checks:
//!
//! - span-tree totals (allocs, alloc words, checks, RC updates) equal
//!   the corresponding [`region_rt::Stats`] counters;
//! - every deleted region's span duration equals the profile's
//!   `lifetime_cycles`, and its allocation tally equals the profile's
//!   per-region attribution;
//! - the tree passes structural verification against the heap's own
//!   region table.
//!
//! Any drift means one of the three observers dropped or double-counted
//! an event — exactly the bug class telemetry must not have.

use rc_lang::interp::run;
use rc_lang::{CheckMode, RunConfig};
use rc_workloads::driver::prepare_workload;
use rc_workloads::Scale;

/// SplitMix64 (Steele et al.) — the same generator rc-fuzz seeds with.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn config_by_index(i: u64) -> (&'static str, RunConfig) {
    match i % 4 {
        0 => ("nq", RunConfig::rc(CheckMode::Nq)),
        1 => ("qs", RunConfig::rc(CheckMode::Qs)),
        2 => ("inf", RunConfig::rc_inf()),
        _ => ("nc", RunConfig::rc(CheckMode::Nc)),
    }
}

#[test]
fn span_totals_match_stats_and_profile_across_48_seeds() {
    let workloads = rc_workloads::all();
    for seed in 0..48u64 {
        let mut state = seed;
        let w = &workloads[(splitmix64(&mut state) % workloads.len() as u64) as usize];
        let (cname, config) = config_by_index(splitmix64(&mut state));
        let ctx = format!("seed {seed}: {} under {cname}", w.name);

        let c = prepare_workload(w, Scale::TINY);
        let r = run(&c, &config.with_spans().traced());
        let spans = r.spans.as_deref().unwrap_or_else(|| panic!("{ctx}: spans missing"));

        // Structural verification against the heap's region table ran at
        // seal time; it must have passed.
        assert_eq!(spans.verification(), Some(&Ok(())), "{ctx}");

        // Ledger 1 vs ledger 2: span totals against the global counters.
        let s = &r.stats;
        assert_eq!(spans.total_allocs(), s.objects_allocated, "{ctx}: allocs");
        assert_eq!(spans.total_alloc_words(), s.words_allocated, "{ctx}: words");
        assert_eq!(
            spans.total_checks(),
            s.checks_sameregion + s.checks_traditional + s.checks_parentptr,
            "{ctx}: checks"
        );
        assert_eq!(
            spans.total_rc_updates(),
            s.rc_updates_full + s.rc_updates_same,
            "{ctx}: rc updates"
        );

        // Ledger 1 vs ledger 3: per-region spans against the profile.
        let profile = r.profile().unwrap_or_else(|| panic!("{ctx}: profile missing"));
        let mut deleted_seen = 0;
        for rp in profile.regions() {
            let span = &spans.spans()[rp.region as usize];
            assert_eq!(span.region, rp.region, "{ctx}: span index invariant");
            assert_eq!(span.allocs, rp.alloc_objects, "{ctx}: region {} allocs", rp.region);
            assert_eq!(span.alloc_words, rp.alloc_words, "{ctx}: region {} words", rp.region);
            if rp.deleted {
                deleted_seen += 1;
                let dur = span
                    .duration()
                    .unwrap_or_else(|| panic!("{ctx}: region {} deleted but span open", rp.region));
                assert_eq!(dur, rp.lifetime_cycles, "{ctx}: region {} lifetime", rp.region);
            }
        }
        // The sweep must actually exercise region reclamation, not just
        // trivially pass on runs with no deletions.
        if seed == 0 {
            assert!(spans.closed_count() > 0 || deleted_seen == 0, "{ctx}");
        }
    }
}
