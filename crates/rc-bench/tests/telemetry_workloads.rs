//! Telemetry acceptance tests against the real paper workloads: the folded
//! profile must agree *exactly* with the runtime's `Stats` counters (the
//! fold happens online at record time, so ring capacity must not matter),
//! tracing must be observation-only, and the Figure 8 workloads must
//! attribute their checks to concrete source lines.

use rc_lang::interp::{run, Outcome};
use rc_lang::{CheckMode, RunConfig};
use rc_workloads::driver::prepare_workload;
use rc_workloads::Scale;

const SCALE: Scale = Scale::TINY;

#[test]
fn folded_profile_totals_equal_stats_on_every_workload() {
    for w in rc_workloads::all() {
        let c = prepare_workload(&w, SCALE);
        let r = run(&c, &RunConfig::rc(CheckMode::Qs).traced());
        assert!(matches!(r.outcome, Outcome::Exit(_)), "{}: {:?}", w.name, r.outcome);
        let s = &r.stats;
        let t = r.tracer.as_ref().expect("tracing was enabled");
        let p = &t.profile().totals;
        assert_eq!(p.regions_created, s.regions_created, "{}: regions_created", w.name);
        assert_eq!(p.regions_deleted, s.regions_deleted, "{}: regions_deleted", w.name);
        assert_eq!(p.allocs, s.objects_allocated, "{}: allocs", w.name);
        assert_eq!(p.alloc_words, s.words_allocated, "{}: alloc_words", w.name);
        assert_eq!(p.rc_updates_full, s.rc_updates_full, "{}: rc_updates_full", w.name);
        assert_eq!(p.rc_updates_same, s.rc_updates_same, "{}: rc_updates_same", w.name);
        assert_eq!(p.checks_sameregion, s.checks_sameregion, "{}: checks_sameregion", w.name);
        assert_eq!(p.checks_parentptr, s.checks_parentptr, "{}: checks_parentptr", w.name);
        assert_eq!(p.checks_traditional, s.checks_traditional, "{}: checks_traditional", w.name);
        assert_eq!(p.gc_collections, s.gc_collections, "{}: gc_collections", w.name);
        assert_eq!(p.checks_failed, 0, "{}: clean runs fail no checks", w.name);
    }
}

#[test]
fn folded_totals_are_independent_of_ring_capacity() {
    let w = rc_workloads::by_name("lcc").expect("known workload");
    let c = prepare_workload(&w, SCALE);
    let mut tiny = RunConfig::rc(CheckMode::Qs).traced();
    tiny.trace_capacity = 16; // far fewer slots than events: the ring drops, the fold must not
    let r = run(&c, &tiny);
    assert!(matches!(r.outcome, Outcome::Exit(_)), "{:?}", r.outcome);
    let t = r.tracer.as_ref().expect("traced");
    assert!(t.dropped() > 0, "capacity 16 must overflow on lcc");
    assert_eq!(t.len(), 16);
    assert_eq!(t.profile().totals.allocs, r.stats.objects_allocated);
    assert_eq!(
        t.profile().totals.checks_sameregion + t.profile().totals.checks_parentptr,
        r.stats.checks_sameregion + r.stats.checks_parentptr
    );
}

#[test]
fn tracing_is_observation_only_on_workload_runs() {
    let w = rc_workloads::by_name("mudlle").expect("known workload");
    let c = prepare_workload(&w, SCALE);
    let plain = run(&c, &RunConfig::rc(CheckMode::Qs));
    let traced = run(&c, &RunConfig::rc(CheckMode::Qs).traced());
    assert_eq!(format!("{:?}", plain.outcome), format!("{:?}", traced.outcome));
    assert_eq!(plain.cycles, traced.cycles, "tracing must not change the cost model");
    assert_eq!(plain.stats, traced.stats, "tracing must not change the counters");
}

#[test]
fn figure8_workloads_attribute_checks_to_source_lines() {
    // The Figure 8 subset benched in `benches/fig8_annotations.rs`.
    for wname in ["lcc", "mudlle", "moss"] {
        let w = rc_workloads::by_name(wname).expect("known workload");
        let c = prepare_workload(&w, SCALE);
        let r = run(&c, &RunConfig::rc(CheckMode::Qs).traced());
        assert!(matches!(r.outcome, Outcome::Exit(_)), "{wname}: {:?}", r.outcome);
        let p = r.profile().expect("traced");
        let hot = p.hot_check_sites(5);
        assert!(!hot.is_empty(), "{wname}: qs runs checks, so hot sites exist");
        for site in &hot {
            assert!(site.line > 0, "{wname}: check sites carry real source lines");
            assert!(site.checks_total() > 0, "{wname}: hot sites ran checks");
        }
        // The top-5 list is sorted and really is the top.
        let max_elsewhere = p
            .sites()
            .filter(|s| hot.iter().all(|h| h.line != s.line))
            .map(|s| s.checks_total())
            .max()
            .unwrap_or(0);
        assert!(
            hot.last().expect("nonempty").checks_total() >= max_elsewhere,
            "{wname}: hot_check_sites(5) must dominate the rest"
        );
    }
}

#[test]
fn telemetry_report_covers_every_workload() {
    let tel = rc_bench::report::telemetry(SCALE);
    assert_eq!(tel.rows.len(), rc_workloads::all().len());
    assert_eq!(tel.tracers.len(), tel.rows.len());
    for line in tel.profiles_jsonl().lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "JSONL line: {line}");
    }
    assert!(tel.flamegraph.contains("outer") || !tel.flamegraph.is_empty());
}
