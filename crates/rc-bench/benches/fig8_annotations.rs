//! Figure 8 as a wall-clock benchmark: the four check regimes
//! (nq / qs / inf / nc), plus an ablation on the cost model: what if the
//! annotation checks were as expensive as a full reference-count update?
//! (Quantifies how much of RC's win is the cheap check versus the
//! statically eliminated check — the design choice DESIGN.md calls out.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_lang::interp::run;
use rc_lang::{CheckMode, RunConfig};
use rc_workloads::driver::prepare_workload;
use rc_workloads::Scale;
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    for wname in ["lcc", "mudlle", "moss"] {
        let w = rc_workloads::by_name(wname).expect("known workload");
        let compiled = prepare_workload(&w, Scale::TINY);
        for (cfg_name, cfg) in RunConfig::figure8() {
            g.bench_with_input(BenchmarkId::new(wname, cfg_name), &cfg, |bench, cfg| {
                bench.iter(|| {
                    let r = run(black_box(&compiled), cfg);
                    assert!(r.outcome.is_exit());
                    black_box(r.cycles)
                });
            });
        }
    }
    g.finish();
}

/// Ablation: checks priced like count updates.
fn bench_expensive_checks_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_expensive_checks");
    let w = rc_workloads::by_name("mudlle").expect("known workload");
    let compiled = prepare_workload(&w, Scale::TINY);

    let mut expensive = RunConfig::rc(CheckMode::Qs);
    expensive.costs.check_sameregion = expensive.costs.rc_update_full;
    expensive.costs.check_parentptr = expensive.costs.rc_update_full;
    expensive.costs.check_traditional = expensive.costs.rc_update_full;

    let mut inf_expensive = RunConfig::rc(CheckMode::Inf);
    inf_expensive.costs.check_sameregion = inf_expensive.costs.rc_update_full;
    inf_expensive.costs.check_parentptr = inf_expensive.costs.rc_update_full;
    inf_expensive.costs.check_traditional = inf_expensive.costs.rc_update_full;

    for (name, cfg) in [
        ("paper_costs_qs", RunConfig::rc(CheckMode::Qs)),
        ("checks_cost_23_qs", expensive),
        ("checks_cost_23_inf", inf_expensive),
    ] {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let r = run(black_box(&compiled), &cfg);
                assert!(r.outcome.is_exit());
                black_box(r.cycles)
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig8, bench_expensive_checks_ablation
}
criterion_main!(benches);
