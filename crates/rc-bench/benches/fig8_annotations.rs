//! Figure 8 as a wall-clock benchmark: the four check regimes
//! (nq / qs / inf / nc), plus an ablation on the cost model: what if the
//! annotation checks were as expensive as a full reference-count update?
//! (Quantifies how much of RC's win is the cheap check versus the
//! statically eliminated check — the design choice DESIGN.md calls out.)

use rc_bench::microbench::Bench;
use rc_lang::interp::run;
use rc_lang::{CheckMode, RunConfig};
use rc_workloads::driver::prepare_workload;
use rc_workloads::Scale;
use std::hint::black_box;
use std::rc::Rc;

fn bench_fig8(c: &Bench) {
    let g = c.group("fig8");
    for wname in ["lcc", "mudlle", "moss"] {
        let w = rc_workloads::by_name(wname).expect("known workload");
        let compiled = Rc::new(prepare_workload(&w, Scale::TINY));
        for (cfg_name, cfg) in RunConfig::figure8() {
            let compiled = Rc::clone(&compiled);
            g.bench(&format!("{wname}/{cfg_name}"), move || {
                let r = run(black_box(&compiled), &cfg);
                assert!(r.outcome.is_exit());
                black_box(r.cycles);
            });
        }
    }
}

/// Ablation: checks priced like count updates.
fn bench_expensive_checks_ablation(c: &Bench) {
    let g = c.group("ablation_expensive_checks");
    let w = rc_workloads::by_name("mudlle").expect("known workload");
    let compiled = Rc::new(prepare_workload(&w, Scale::TINY));

    let mut expensive = RunConfig::rc(CheckMode::Qs);
    expensive.costs.check_sameregion = expensive.costs.rc_update_full;
    expensive.costs.check_parentptr = expensive.costs.rc_update_full;
    expensive.costs.check_traditional = expensive.costs.rc_update_full;

    let mut inf_expensive = RunConfig::rc(CheckMode::Inf);
    inf_expensive.costs.check_sameregion = inf_expensive.costs.rc_update_full;
    inf_expensive.costs.check_parentptr = inf_expensive.costs.rc_update_full;
    inf_expensive.costs.check_traditional = inf_expensive.costs.rc_update_full;

    for (name, cfg) in [
        ("paper_costs_qs", RunConfig::rc(CheckMode::Qs)),
        ("checks_cost_23_qs", expensive),
        ("checks_cost_23_inf", inf_expensive),
    ] {
        let compiled = Rc::clone(&compiled);
        g.bench(name, move || {
            let r = run(black_box(&compiled), &cfg);
            assert!(r.outcome.is_exit());
            black_box(r.cycles);
        });
    }
}

fn main() {
    let bench = Bench::from_args().sample_size(10);
    bench_fig8(&bench);
    bench_expensive_checks_ablation(&bench);
}
