//! Figure 7 as a wall-clock benchmark: each paper workload executed under
//! the five allocator configurations. The virtual-cycle version of this
//! figure comes from `cargo run -p rc-bench --bin fig7`; this bench
//! measures the real time of the whole instrumented pipeline.

use rc_bench::microbench::Bench;
use rc_lang::interp::run;
use rc_lang::RunConfig;
use rc_workloads::driver::prepare_workload;
use rc_workloads::Scale;
use std::hint::black_box;
use std::rc::Rc;

fn bench_fig7(c: &Bench) {
    let g = c.group("fig7");
    // A representative subset keeps bench time reasonable: the
    // refcount-heavy compiler (lcc), the annotation-heavy interpreter
    // (mudlle) and the subregion-heavy server (apache).
    for wname in ["lcc", "mudlle", "apache"] {
        let w = rc_workloads::by_name(wname).expect("known workload");
        let compiled = Rc::new(prepare_workload(&w, Scale::TINY));
        for (cfg_name, cfg) in RunConfig::figure7() {
            let compiled = Rc::clone(&compiled);
            g.bench(&format!("{wname}/{cfg_name}"), move || {
                let r = run(black_box(&compiled), &cfg);
                assert!(r.outcome.is_exit());
                black_box(r.cycles);
            });
        }
    }
}

fn main() {
    let bench = Bench::from_args().sample_size(10);
    bench_fig7(&bench);
}
