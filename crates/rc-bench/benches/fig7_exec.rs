//! Figure 7 as a wall-clock benchmark: each paper workload executed under
//! the five allocator configurations. The virtual-cycle version of this
//! figure comes from `cargo run -p rc-bench --bin fig7`; this bench
//! measures the real time of the whole instrumented pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rc_lang::interp::run;
use rc_lang::RunConfig;
use rc_workloads::driver::prepare_workload;
use rc_workloads::Scale;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    // A representative subset keeps bench time reasonable: the
    // refcount-heavy compiler (lcc), the annotation-heavy interpreter
    // (mudlle) and the subregion-heavy server (apache).
    for wname in ["lcc", "mudlle", "apache"] {
        let w = rc_workloads::by_name(wname).expect("known workload");
        let compiled = prepare_workload(&w, Scale::TINY);
        for (cfg_name, cfg) in RunConfig::figure7() {
            g.bench_with_input(BenchmarkId::new(wname, cfg_name), &cfg, |bench, cfg| {
                bench.iter(|| {
                    let r = run(black_box(&compiled), cfg);
                    assert!(r.outcome.is_exit());
                    black_box(r.cycles)
                });
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7
}
criterion_main!(benches);
