//! Wall-clock microbenchmarks of the runtime's hot paths: the operations
//! whose *relative* costs the paper's Figure 3 quantifies (23 instructions
//! for a count update, 6–14 for a check) plus allocator comparisons.
//!
//! Telemetry overhead check: each write-barrier benchmark also runs with
//! full event tracing enabled (`*_traced`) and with timeline sampling
//! enabled (`*_sampled`), so the disabled-vs-enabled costs are visible
//! side by side (disabled tracing and disabled sampling are each a
//! single branch and must stay in the noise).

use rc_bench::microbench::Bench;
use region_rt::{mask, Addr, Heap, PtrKind, SlotKind, TypeLayout, WriteMode};
use std::hint::black_box;

fn setup_two_regions() -> (Heap, region_rt::TypeId, Addr, Addr) {
    let mut h = Heap::with_defaults();
    let ty = h.register_type(TypeLayout::new(
        "n",
        vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Ptr(PtrKind::SameRegion)],
    ));
    let r1 = h.new_region();
    let r2 = h.new_region();
    let a = h.ralloc(r1, ty).unwrap();
    let b = h.ralloc(r2, ty).unwrap();
    (h, ty, a, b)
}

fn bench_write_barriers(c: &Bench) {
    let g = c.group("write_barrier");
    // Figure 3(a): the counted store (cross-region, both halves update).
    g.bench("counted_cross_region", {
        let (mut h, _, a, b) = setup_two_regions();
        move || {
            h.write_ptr(a, 0, black_box(b), WriteMode::Counted).unwrap();
            h.write_ptr(a, 0, Addr::NULL, WriteMode::Counted).unwrap();
        }
    });
    g.bench("counted_cross_region_traced", {
        let (mut h, _, a, b) = setup_two_regions();
        h.enable_tracing(mask::ALL, 4096);
        move || {
            h.write_ptr(a, 0, black_box(b), WriteMode::Counted).unwrap();
            h.write_ptr(a, 0, Addr::NULL, WriteMode::Counted).unwrap();
        }
    });
    g.bench("counted_cross_region_sampled", {
        let (mut h, _, a, b) = setup_two_regions();
        h.enable_sampling(256, 512);
        move || {
            h.write_ptr(a, 0, black_box(b), WriteMode::Counted).unwrap();
            h.write_ptr(a, 0, Addr::NULL, WriteMode::Counted).unwrap();
        }
    });
    // Figure 3(b): sameregion check (within one region).
    g.bench("sameregion_check", {
        let (mut h, ty, a, _) = setup_two_regions();
        let r = h.region_of(a).unwrap();
        let peer = h.ralloc(r, ty).unwrap();
        move || {
            h.write_ptr(a, 1, black_box(peer), WriteMode::Check(PtrKind::SameRegion))
                .unwrap();
        }
    });
    g.bench("sameregion_check_traced", {
        let (mut h, ty, a, _) = setup_two_regions();
        let r = h.region_of(a).unwrap();
        let peer = h.ralloc(r, ty).unwrap();
        h.enable_tracing(mask::ALL, 4096);
        move || {
            h.write_ptr(a, 1, black_box(peer), WriteMode::Check(PtrKind::SameRegion))
                .unwrap();
        }
    });
    g.bench("sameregion_check_sampled", {
        let (mut h, ty, a, _) = setup_two_regions();
        let r = h.region_of(a).unwrap();
        let peer = h.ralloc(r, ty).unwrap();
        h.enable_sampling(256, 512);
        move || {
            h.write_ptr(a, 1, black_box(peer), WriteMode::Check(PtrKind::SameRegion))
                .unwrap();
        }
    });
    // The eliminated-check store: nothing but the write.
    g.bench("safe_store", {
        let (mut h, ty, a, _) = setup_two_regions();
        let r = h.region_of(a).unwrap();
        let peer = h.ralloc(r, ty).unwrap();
        move || {
            h.write_ptr(a, 1, black_box(peer), WriteMode::Safe).unwrap();
        }
    });
}

fn bench_allocators(c: &Bench) {
    let g = c.group("alloc_1000_objects");
    g.bench("region_bump_plus_delete", {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("obj", 4));
        move || {
            let r = h.new_region();
            for _ in 0..1000 {
                black_box(h.ralloc(r, ty).unwrap());
            }
            h.delete_region(r).unwrap();
        }
    });
    g.bench("malloc_free_each", {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("obj", 4));
        let mut addrs = Vec::with_capacity(1000);
        move || {
            addrs.clear();
            for _ in 0..1000 {
                addrs.push(h.m_alloc(ty, 1).unwrap());
            }
            for &a in &addrs {
                h.m_free(a).unwrap();
            }
        }
    });
    g.bench("gc_alloc_with_collections", {
        let mut h = Heap::new(region_rt::HeapConfig {
            gc_threshold_words: 4096,
            ..Default::default()
        });
        let ty = h.register_type(TypeLayout::data("obj", 4));
        move || {
            for _ in 0..1000 {
                black_box(h.gc_alloc(ty, 1).unwrap());
                if h.gc_should_collect() {
                    h.gc_collect(&[]);
                }
            }
        }
    });
}

fn bench_region_lifecycle(c: &Bench) {
    let g = c.group("region_lifecycle");
    g.bench("create_delete_flat", {
        let mut h = Heap::with_defaults();
        move || {
            let r = h.new_region();
            h.delete_region(r).unwrap();
        }
    });
    g.bench("create_delete_nested_depth8", {
        let mut h = Heap::with_defaults();
        move || {
            let mut stack = vec![h.new_region()];
            for _ in 0..7 {
                let top = *stack.last().expect("nonempty");
                stack.push(h.new_subregion(top).unwrap());
            }
            while let Some(r) = stack.pop() {
                h.delete_region(r).unwrap();
            }
        }
    });
}

/// Ablation: eager renumbering (the paper's implementation) vs gap-based
/// interval assignment ("this could easily be replaced by a more
/// efficient scheme"). The gap scheme wins as the live hierarchy grows.
fn bench_numbering_ablation(c: &Bench) {
    use region_rt::{HeapConfig, NumberingScheme};
    let g = c.group("numbering_ablation");
    for (name, scheme) in [
        ("renumber_on_create", NumberingScheme::RenumberOnCreate),
        ("gap_based", NumberingScheme::GapBased),
    ] {
        g.bench(name, move || {
            let mut h = Heap::new(HeapConfig { numbering: scheme, ..Default::default() });
            // A wide live hierarchy (64 connections) with churn: the
            // apache shape that stresses creation cost.
            let conns: Vec<_> = (0..64).map(|_| h.new_region()).collect();
            for &conn in &conns {
                let req = h.new_subregion(conn).unwrap();
                let sub = h.new_subregion(req).unwrap();
                h.delete_region(sub).unwrap();
                h.delete_region(req).unwrap();
            }
            for conn in conns {
                h.delete_region(conn).unwrap();
            }
            black_box(h.clock.cycles());
        });
    }
}

fn main() {
    let bench = Bench::from_args().sample_size(30);
    bench_write_barriers(&bench);
    bench_allocators(&bench);
    bench_region_lifecycle(&bench);
    bench_numbering_ablation(&bench);
}
