//! Wall-clock microbenchmarks of the runtime's hot paths: the operations
//! whose *relative* costs the paper's Figure 3 quantifies (23 instructions
//! for a count update, 6–14 for a check) plus allocator comparisons.

use criterion::{criterion_group, criterion_main, Criterion};
use region_rt::{Addr, Heap, PtrKind, SlotKind, TypeLayout, WriteMode};
use std::hint::black_box;

fn setup_two_regions() -> (Heap, region_rt::TypeId, Addr, Addr) {
    let mut h = Heap::with_defaults();
    let ty = h.register_type(TypeLayout::new(
        "n",
        vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Ptr(PtrKind::SameRegion)],
    ));
    let r1 = h.new_region();
    let r2 = h.new_region();
    let a = h.ralloc(r1, ty).unwrap();
    let b = h.ralloc(r2, ty).unwrap();
    (h, ty, a, b)
}

fn bench_write_barriers(c: &mut Criterion) {
    let mut g = c.benchmark_group("write_barrier");
    // Figure 3(a): the counted store (cross-region, both halves update).
    g.bench_function("counted_cross_region", |bench| {
        let (mut h, _, a, b) = setup_two_regions();
        bench.iter(|| {
            h.write_ptr(a, 0, black_box(b), WriteMode::Counted).unwrap();
            h.write_ptr(a, 0, Addr::NULL, WriteMode::Counted).unwrap();
        });
    });
    // Figure 3(b): sameregion check (within one region).
    g.bench_function("sameregion_check", |bench| {
        let (mut h, ty, a, _) = setup_two_regions();
        let r = h.region_of(a);
        let peer = h.ralloc(r, ty).unwrap();
        bench.iter(|| {
            h.write_ptr(a, 1, black_box(peer), WriteMode::Check(PtrKind::SameRegion))
                .unwrap();
        });
    });
    // The eliminated-check store: nothing but the write.
    g.bench_function("safe_store", |bench| {
        let (mut h, ty, a, _) = setup_two_regions();
        let r = h.region_of(a);
        let peer = h.ralloc(r, ty).unwrap();
        bench.iter(|| {
            h.write_ptr(a, 1, black_box(peer), WriteMode::Safe).unwrap();
        });
    });
    g.finish();
}

fn bench_allocators(c: &mut Criterion) {
    let mut g = c.benchmark_group("alloc_1000_objects");
    g.bench_function("region_bump_plus_delete", |bench| {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("obj", 4));
        bench.iter(|| {
            let r = h.new_region();
            for _ in 0..1000 {
                black_box(h.ralloc(r, ty).unwrap());
            }
            h.delete_region(r).unwrap();
        });
    });
    g.bench_function("malloc_free_each", |bench| {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::data("obj", 4));
        let mut addrs = Vec::with_capacity(1000);
        bench.iter(|| {
            addrs.clear();
            for _ in 0..1000 {
                addrs.push(h.m_alloc(ty, 1).unwrap());
            }
            for &a in &addrs {
                h.m_free(a).unwrap();
            }
        });
    });
    g.bench_function("gc_alloc_with_collections", |bench| {
        let mut h = Heap::new(region_rt::HeapConfig {
            gc_threshold_words: 4096,
            ..Default::default()
        });
        let ty = h.register_type(TypeLayout::data("obj", 4));
        bench.iter(|| {
            for _ in 0..1000 {
                black_box(h.gc_alloc(ty, 1).unwrap());
                if h.gc_should_collect() {
                    h.gc_collect(&[]);
                }
            }
        });
    });
    g.finish();
}

fn bench_region_lifecycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("region_lifecycle");
    g.bench_function("create_delete_flat", |bench| {
        let mut h = Heap::with_defaults();
        bench.iter(|| {
            let r = h.new_region();
            h.delete_region(r).unwrap();
        });
    });
    g.bench_function("create_delete_nested_depth8", |bench| {
        let mut h = Heap::with_defaults();
        bench.iter(|| {
            let mut stack = vec![h.new_region()];
            for _ in 0..7 {
                let top = *stack.last().expect("nonempty");
                stack.push(h.new_subregion(top).unwrap());
            }
            while let Some(r) = stack.pop() {
                h.delete_region(r).unwrap();
            }
        });
    });
    g.finish();
}

/// Ablation: eager renumbering (the paper's implementation) vs gap-based
/// interval assignment ("this could easily be replaced by a more
/// efficient scheme"). The gap scheme wins as the live hierarchy grows.
fn bench_numbering_ablation(c: &mut Criterion) {
    use region_rt::{HeapConfig, NumberingScheme};
    let mut g = c.benchmark_group("numbering_ablation");
    for (name, scheme) in [
        ("renumber_on_create", NumberingScheme::RenumberOnCreate),
        ("gap_based", NumberingScheme::GapBased),
    ] {
        g.bench_function(name, |bench| {
            bench.iter(|| {
                let mut h = Heap::new(HeapConfig { numbering: scheme, ..Default::default() });
                // A wide live hierarchy (64 connections) with churn: the
                // apache shape that stresses creation cost.
                let conns: Vec<_> = (0..64).map(|_| h.new_region()).collect();
                for &conn in &conns {
                    let req = h.new_subregion(conn).unwrap();
                    let sub = h.new_subregion(req).unwrap();
                    h.delete_region(sub).unwrap();
                    h.delete_region(req).unwrap();
                }
                for conn in conns {
                    h.delete_region(conn).unwrap();
                }
                black_box(h.clock.cycles())
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_write_barriers, bench_allocators, bench_region_lifecycle,
        bench_numbering_ablation
}
criterion_main!(benches);
