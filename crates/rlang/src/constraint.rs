//! Constraint sets: the finite lattice driving the §4.3 inference.
//!
//! "The set of facts we consider in our analysis ... We call each of these
//! facts a constraint. A constraint set c corresponds to the boolean
//! expression ⋀_{δ∈c} δ. ... Constraint sets form a finite-height lattice
//! under set inclusion" — meet (used at control-flow joins) is set
//! intersection, which safely approximates disjunction.
//!
//! A [`ConstraintSet`] is kept *saturated*: closed under a sound set of
//! inference rules (equality congruence, ≤-transitivity, null-or-equal
//! strengthening, ⊤ propagation). Saturation is what makes the two
//! central operations precise:
//!
//! - [`ConstraintSet::entails`] — does the set imply a fact? (check
//!   elimination asks exactly this);
//! - [`ConstraintSet::kill_rho`] — forget everything about one abstract
//!   region while *keeping* its indirect consequences (the paper's
//!   "removed by using a new property δ″, implied by δ, that does not have
//!   ρ amongst its free variables").
//!
//! A set that discovers a contradiction (e.g. `σ = ⊤` and `σ ≠ ⊤`)
//! describes an unreachable program point and entails everything.

use std::collections::BTreeSet;

use crate::types::{Fact, RegionExpr, RhoId};

/// A saturated conjunction of [`Fact`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConstraintSet {
    facts: BTreeSet<Fact>,
    contradictory: bool,
}

impl ConstraintSet {
    /// The empty (trivially true) set — the lattice bottom, carrying no
    /// information.
    pub fn empty() -> ConstraintSet {
        ConstraintSet::default()
    }

    /// The contradictory set — the lattice top, entailing every fact. Used
    /// as the optimistic starting point of the greatest-fixed-point
    /// iteration and as the state of unreachable code.
    pub fn contradiction() -> ConstraintSet {
        ConstraintSet { facts: BTreeSet::new(), contradictory: true }
    }

    /// A set from an iterator of facts.
    pub fn from_facts(facts: impl IntoIterator<Item = Fact>) -> ConstraintSet {
        let mut s = ConstraintSet::empty();
        for f in facts {
            s.add(f);
        }
        s
    }

    /// Whether the set has discovered a contradiction (unreachable point).
    pub fn is_contradictory(&self) -> bool {
        self.contradictory
    }

    /// The facts currently held (empty if contradictory).
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.facts.iter().copied()
    }

    /// Number of facts (0 for a contradictory set).
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Whether no facts are known.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty() && !self.contradictory
    }

    /// Adds a fact (and saturates).
    pub fn add(&mut self, fact: Fact) {
        if self.contradictory {
            return;
        }
        if let Some(f) = fact.normalise() {
            if self.facts.insert(f) {
                self.saturate_from(vec![f]);
            }
        }
    }

    /// Conjoins another set.
    pub fn add_all(&mut self, other: impl IntoIterator<Item = Fact>) {
        if self.contradictory {
            return;
        }
        let mut fresh = Vec::new();
        for fact in other {
            if let Some(f) = fact.normalise() {
                if self.facts.insert(f) {
                    fresh.push(f);
                }
            }
        }
        if !fresh.is_empty() {
            self.saturate_from(fresh);
        }
    }

    fn set_contradictory(&mut self) {
        self.contradictory = true;
        self.facts.clear();
    }

    /// Closes the set under the saturation rules. All rules are sound for
    /// the heap model of Figure 4 (regions ordered by the subregion
    /// relation, ⊤ above everything, constants denoting distinct live
    /// regions).
    /// (Only the closedness assertion in [`ConstraintSet::meet`] still
    /// saturates from scratch; incremental callers use
    /// [`ConstraintSet::saturate_from`].)
    #[cfg(debug_assertions)]
    fn saturate(&mut self) {
        let all: Vec<Fact> = self.facts.iter().copied().collect();
        self.saturate_from(all);
    }

    /// Semi-naive closure: `pending` holds facts already inserted but not
    /// yet used as rule premises. Only rule instances with at least one
    /// pending premise can derive anything new — an instance over two
    /// settled facts already fired when the later of them was pending —
    /// so each round pairs pending facts against the whole set instead of
    /// squaring the set. The universe of mentioned expressions never
    /// grows, so the closure terminates.
    fn saturate_from(&mut self, mut pending: Vec<Fact>) {
        while !pending.is_empty() {
            if self.contradictory {
                return;
            }
            let mut new: Vec<Fact> = Vec::new();

            for &f in &pending {
                match f {
                    // σ = ⊤ for a region constant: impossible.
                    Fact::IsTop(RegionExpr::Const(_)) => return self.set_contradictory(),
                    // Distinct constants are distinct regions.
                    Fact::Eq(RegionExpr::Const(a), RegionExpr::Const(b)) if a != b => {
                        return self.set_contradictory()
                    }
                    // Direct contradiction against the settled facts.
                    Fact::IsTop(a) if self.facts.contains(&Fact::NotTop(a)) => {
                        return self.set_contradictory()
                    }
                    Fact::NotTop(a) if self.facts.contains(&Fact::IsTop(a)) => {
                        return self.set_contradictory()
                    }
                    _ => {}
                }

                // Unary weakenings. These keep the set closed downward so
                // that the syntactic intersection in `meet` loses nothing a
                // common weaker fact could save.
                if let Fact::Eq(a, b) = f {
                    // Equal ⇒ null-or-equal (both ways) and mutually ≤.
                    new.extend(Fact::EqOrNull(a, b).normalise());
                    new.extend(Fact::EqOrNull(b, a).normalise());
                    new.extend(Fact::Sub(a, b).normalise());
                    new.extend(Fact::Sub(b, a).normalise());
                }
                // Constants are never ⊤.
                for e in f.exprs() {
                    if matches!(e, RegionExpr::Const(_)) {
                        new.extend(Fact::NotTop(e).normalise());
                    }
                }
            }

            let settled: Vec<Fact> = self.facts.iter().copied().collect();
            for &f in &pending {
                for &g in &settled {
                    derive(f, g, &mut new);
                    derive(g, f, &mut new);
                }
            }

            pending.clear();
            for fact in new {
                if !self.facts.contains(&fact) {
                    self.facts.insert(fact);
                    pending.push(fact);
                }
            }
        }
    }

    /// Does this set imply `fact`?
    pub fn entails(&self, fact: Fact) -> bool {
        if self.contradictory {
            return true;
        }
        let Some(f) = fact.normalise() else { return true };
        if self.facts.contains(&f) {
            return true;
        }
        match f {
            Fact::NotTop(RegionExpr::Const(_)) => true,
            Fact::NotTop(a) => {
                // a = c for a constant c implies a ≠ ⊤.
                self.facts.iter().any(|&g| match g {
                    Fact::Eq(x, y) => {
                        (x == a && matches!(y, RegionExpr::Const(_)))
                            || (y == a && matches!(x, RegionExpr::Const(_)))
                    }
                    _ => false,
                })
            }
            Fact::Eq(a, b) => {
                // Both null: equal (both are ⊤).
                self.entails_stored(Fact::IsTop(a)) && self.entails_stored(Fact::IsTop(b))
            }
            Fact::Sub(a, b) => {
                // Equal regions are mutually ≤; a = ⊤ ⇒ b = ⊤ case is
                // covered by ⊤ ≤ ⊤ when both are top.
                self.entails(Fact::Eq(a, b)) || self.entails_stored(Fact::IsTop(b))
            }
            Fact::EqOrNull(a, b) => {
                self.entails_stored(Fact::IsTop(a)) || self.entails(Fact::Eq(a, b))
            }
            Fact::IsTop(_) => false,
        }
    }

    fn entails_stored(&self, fact: Fact) -> bool {
        fact.normalise().map(|f| self.facts.contains(&f)).unwrap_or(true)
    }

    /// Does this set imply every fact of `other`?
    pub fn entails_all(&self, other: &ConstraintSet) -> bool {
        if self.contradictory {
            return true;
        }
        if other.contradictory {
            return false;
        }
        other.facts().all(|f| self.entails(f))
    }

    /// The meet (control-flow join): facts true on *both* paths. "We
    /// conservatively approximate the type checking rules for if and while
    /// by constraint set intersection."
    pub fn meet(&self, other: &ConstraintSet) -> ConstraintSet {
        if self.contradictory {
            return other.clone();
        }
        if other.contradictory {
            return self.clone();
        }
        // The intersection of two deductively closed sets is closed: any
        // rule whose premises lie in the intersection has its conclusion
        // in both operands (each is closed), hence in the intersection.
        // Nor can it be contradictory when neither operand is — a
        // contradiction derivable from a subset would be derivable in
        // either operand. So no re-saturation is needed, which matters:
        // `meet` runs at every join and loop iteration of the dataflow,
        // and saturation is quadratic in the fact count even when it
        // derives nothing (debug builds assert the no-op).
        let out = ConstraintSet {
            facts: self.facts.intersection(&other.facts).copied().collect(),
            contradictory: false,
        };
        // Debug builds re-derive the closure to verify the argument —
        // but only for small sets: the whole point of skipping saturation
        // is that it is quadratic, and the unit-test-sized sets this
        // bound admits already exercise every rule.
        #[cfg(debug_assertions)]
        if out.facts.len() <= 24 {
            let mut check = out.clone();
            check.saturate();
            debug_assert_eq!(check, out, "intersection of closed sets must be closed");
        }
        out
    }

    /// [`ConstraintSet::meet`], also reporting the facts *lost* at the
    /// join: every fact held by one operand that the meet no longer
    /// entails. This is the provenance hook — a retained check downstream
    /// of the join can name the exact lattice element whose loss blocked
    /// its elimination (see `infer::ProvenanceReason::MeetPoint`).
    pub fn meet_with_loss(&self, other: &ConstraintSet) -> (ConstraintSet, Vec<Fact>) {
        let met = self.meet(other);
        let mut lost: Vec<Fact> = Vec::new();
        for f in self.facts().chain(other.facts()) {
            if !met.entails(f) && !lost.contains(&f) {
                lost.push(f);
            }
        }
        (met, lost)
    }

    /// Forgets everything about `rho`, keeping implied consequences that do
    /// not mention it (the set is already saturated, so indirect facts such
    /// as `ρ₁ = ρ₂` derived via `rho` survive).
    pub fn kill_rho(&mut self, rho: RhoId) {
        if self.contradictory {
            // Rebinding inside dead code: stay contradictory.
            return;
        }
        self.facts.retain(|f| !f.mentions(rho));
    }

    /// Restricts to facts mentioning only abstract regions accepted by
    /// `keep` (constants and ⊤ always pass). Used to project a state onto
    /// a function's formal region parameters.
    pub fn restrict(&self, keep: impl Fn(RhoId) -> bool) -> ConstraintSet {
        if self.contradictory {
            return self.clone();
        }
        ConstraintSet {
            facts: self.facts.iter().copied().filter(|f| f.all_rhos(&keep)).collect(),
            contradictory: false,
        }
    }

    /// Applies a substitution of region expressions for the first
    /// `subst.len()` abstract regions to every fact.
    pub fn subst(&self, subst: &[RegionExpr]) -> ConstraintSet {
        if self.contradictory {
            return self.clone();
        }
        ConstraintSet::from_facts(self.facts.iter().filter_map(|f| f.subst(subst)))
    }
}

impl std::fmt::Display for ConstraintSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.contradictory {
            return write!(f, "⊥");
        }
        if self.facts.is_empty() {
            return write!(f, "true");
        }
        let mut first = true;
        for fact in &self.facts {
            if !first {
                write!(f, " ∧ ")?;
            }
            write!(f, "{fact}")?;
            first = false;
        }
        Ok(())
    }
}

/// Rewrites one occurrence side of `g` replacing expression `from` with
/// `to` (equality congruence helper).
/// All binary saturation rules, in the ordered form `(f, g)`; callers
/// fire both orders. The ⊤-weakening over the expression universe runs
/// here in pairwise form (`f = IsTop`, the universe elements being `g`'s
/// mentioned expressions), which reaches the same closure: the universe
/// is exactly the union of every fact's expressions.
fn derive(f: Fact, g: Fact, new: &mut Vec<Fact>) {
    // Equality congruence: rewrite g by f's equality, in both directions.
    if let Fact::Eq(a, b) = f {
        new.extend(rewrite(g, a, b));
        new.extend(rewrite(g, b, a));
    }
    // null-or-equal + non-null ⇒ equal.
    if let (Fact::EqOrNull(a, b), Fact::NotTop(c)) = (f, g) {
        if a == c {
            new.extend(Fact::Eq(a, b).normalise());
        }
    }
    // null-or-equal + the other side null ⇒ null.
    if let (Fact::EqOrNull(a, b), Fact::IsTop(c)) = (f, g) {
        if b == c {
            new.extend(Fact::IsTop(a).normalise());
        }
    }
    if let (Fact::Sub(a, b), Fact::Sub(c, d)) = (f, g) {
        // ≤ transitivity.
        if b == c {
            new.extend(Fact::Sub(a, d).normalise());
        }
        // ≤ antisymmetry.
        if a == d && b == c {
            new.extend(Fact::Eq(a, b).normalise());
        }
    }
    // σ₁ = ⊤ and σ₁ ≤ σ₂ ⇒ σ₂ = ⊤ (only ⊤ is above ⊤).
    if let (Fact::IsTop(a), Fact::Sub(c, d)) = (f, g) {
        if a == c {
            new.extend(Fact::IsTop(d).normalise());
        }
    }
    // σ₂ ≠ ⊤ and σ₁ ≤ σ₂ ⇒ σ₁ ≠ ⊤ (a real region's descendants are
    // real).
    if let (Fact::NotTop(b), Fact::Sub(c, d)) = (f, g) {
        if b == d {
            new.extend(Fact::NotTop(c).normalise());
        }
    }
    if let Fact::IsTop(a) = f {
        for b in g.exprs() {
            // σ = ⊤ ⇒ (σ = ⊤ ∨ σ = σ₂) for any σ₂.
            new.extend(Fact::EqOrNull(a, b).normalise());
            // σ = ⊤ ⇒ σ₂ ≤ σ for any σ₂ (everything ≤ ⊤).
            new.extend(Fact::Sub(b, a).normalise());
        }
    }
}

fn rewrite(g: Fact, from: RegionExpr, to: RegionExpr) -> Option<Fact> {
    let r = |e: RegionExpr| if e == from { to } else { e };
    let out = match g {
        Fact::IsTop(a) => Fact::IsTop(r(a)),
        Fact::NotTop(a) => Fact::NotTop(r(a)),
        Fact::Sub(a, b) => Fact::Sub(r(a), r(b)),
        Fact::EqOrNull(a, b) => Fact::EqOrNull(r(a), r(b)),
        Fact::Eq(a, b) => Fact::Eq(r(a), r(b)),
    };
    out.normalise()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{ConstId, TRADITIONAL_CONST};

    fn rho(i: u32) -> RegionExpr {
        RegionExpr::Abstract(RhoId(i))
    }
    const RT: RegionExpr = RegionExpr::Const(TRADITIONAL_CONST);

    #[test]
    fn equality_is_transitive() {
        let s = ConstraintSet::from_facts([Fact::Eq(rho(0), rho(1)), Fact::Eq(rho(1), rho(2))]);
        assert!(s.entails(Fact::Eq(rho(0), rho(2))));
        assert!(s.entails(Fact::EqOrNull(rho(0), rho(2))));
    }

    #[test]
    fn eq_or_null_strengthens_with_not_top() {
        let s = ConstraintSet::from_facts([
            Fact::EqOrNull(rho(0), rho(1)),
            Fact::NotTop(rho(0)),
        ]);
        assert!(s.entails(Fact::Eq(rho(0), rho(1))));
    }

    #[test]
    fn eq_or_null_alone_does_not_give_eq() {
        let s = ConstraintSet::from_facts([Fact::EqOrNull(rho(0), rho(1))]);
        assert!(!s.entails(Fact::Eq(rho(0), rho(1))));
        assert!(s.entails(Fact::EqOrNull(rho(0), rho(1))));
    }

    #[test]
    fn sub_is_transitive_and_antisymmetric() {
        let s = ConstraintSet::from_facts([Fact::Sub(rho(0), rho(1)), Fact::Sub(rho(1), rho(2))]);
        assert!(s.entails(Fact::Sub(rho(0), rho(2))));
        let s2 = ConstraintSet::from_facts([Fact::Sub(rho(0), rho(1)), Fact::Sub(rho(1), rho(0))]);
        assert!(s2.entails(Fact::Eq(rho(0), rho(1))));
    }

    #[test]
    fn null_propagates_up_sub_chains() {
        let s = ConstraintSet::from_facts([Fact::IsTop(rho(0)), Fact::Sub(rho(0), rho(1))]);
        assert!(s.entails(Fact::IsTop(rho(1))));
        let s2 = ConstraintSet::from_facts([Fact::NotTop(rho(1)), Fact::Sub(rho(0), rho(1))]);
        assert!(s2.entails(Fact::NotTop(rho(0))));
    }

    #[test]
    fn contradictions_entail_everything() {
        let s = ConstraintSet::from_facts([Fact::IsTop(rho(0)), Fact::NotTop(rho(0))]);
        assert!(s.is_contradictory());
        assert!(s.entails(Fact::Eq(rho(5), rho(6))));
    }

    #[test]
    fn constants_are_never_null_and_distinct() {
        let s = ConstraintSet::empty();
        assert!(s.entails(Fact::NotTop(RT)));
        let bad = ConstraintSet::from_facts([Fact::Eq(RT, RegionExpr::Const(ConstId(1)))]);
        assert!(bad.is_contradictory());
        let bad2 = ConstraintSet::from_facts([Fact::IsTop(RT)]);
        assert!(bad2.is_contradictory());
    }

    #[test]
    fn eq_to_constant_gives_not_top() {
        let s = ConstraintSet::from_facts([Fact::Eq(rho(0), RT)]);
        assert!(s.entails(Fact::NotTop(rho(0))));
    }

    #[test]
    fn meet_keeps_common_facts_and_consequences() {
        // Path 1: ρ0 = ρ1 directly. Path 2: ρ0 = ρ2 and ρ2 = ρ1.
        let a = ConstraintSet::from_facts([Fact::Eq(rho(0), rho(1))]);
        let b = ConstraintSet::from_facts([Fact::Eq(rho(0), rho(2)), Fact::Eq(rho(2), rho(1))]);
        let m = a.meet(&b);
        assert!(m.entails(Fact::Eq(rho(0), rho(1))), "saturation saves the join");
        assert!(!m.entails(Fact::Eq(rho(0), rho(2))));
    }

    #[test]
    fn meet_with_contradiction_is_identity() {
        let bot = ConstraintSet::from_facts([Fact::IsTop(rho(0)), Fact::NotTop(rho(0))]);
        let a = ConstraintSet::from_facts([Fact::Eq(rho(0), rho(1))]);
        assert_eq!(bot.meet(&a), a);
        assert_eq!(a.meet(&bot), a);
    }

    #[test]
    fn kill_preserves_indirect_consequences() {
        let mut s =
            ConstraintSet::from_facts([Fact::Eq(rho(0), rho(9)), Fact::Eq(rho(9), rho(1))]);
        s.kill_rho(RhoId(9));
        assert!(s.entails(Fact::Eq(rho(0), rho(1))));
        assert!(!s.facts().any(|f| f.mentions(RhoId(9))));
    }

    #[test]
    fn restrict_projects_onto_params() {
        let s = ConstraintSet::from_facts([
            Fact::Eq(rho(0), rho(1)),
            Fact::Eq(rho(1), rho(5)),
            Fact::EqOrNull(rho(5), RT),
        ]);
        let r = s.restrict(|RhoId(i)| i < 2);
        assert!(r.entails(Fact::Eq(rho(0), rho(1))));
        assert!(!r.facts().any(|f| f.mentions(RhoId(5))));
    }

    #[test]
    fn subst_maps_params_to_actuals() {
        let s = ConstraintSet::from_facts([Fact::EqOrNull(rho(0), rho(1))]);
        let inst = s.subst(&[rho(7), rho(8)]);
        assert!(inst.entails(Fact::EqOrNull(rho(7), rho(8))));
    }

    #[test]
    fn entails_both_null_means_equal() {
        let s = ConstraintSet::from_facts([Fact::IsTop(rho(0)), Fact::IsTop(rho(1))]);
        assert!(s.entails(Fact::Eq(rho(0), rho(1))));
        assert!(s.entails(Fact::Sub(rho(0), rho(1))));
    }

    #[test]
    fn top_target_makes_sub_trivial() {
        let s = ConstraintSet::from_facts([Fact::IsTop(rho(1))]);
        assert!(s.entails(Fact::Sub(rho(0), rho(1))), "anything ≤ ⊤");
    }

    #[test]
    fn meet_with_loss_reports_dropped_facts() {
        let a = ConstraintSet::from_facts([Fact::Eq(rho(0), rho(1)), Fact::NotTop(rho(2))]);
        let b = ConstraintSet::from_facts([Fact::NotTop(rho(2))]);
        let (met, lost) = a.meet_with_loss(&b);
        assert!(met.entails(Fact::NotTop(rho(2))));
        assert!(!met.entails(Fact::Eq(rho(0), rho(1))));
        assert!(lost.contains(&Fact::Eq(rho(0), rho(1))), "the dropped equality is named");
        assert!(!lost.contains(&Fact::NotTop(rho(2))), "surviving facts are not losses");
        // Meeting with ⊥ is the identity: nothing is lost.
        let bot = ConstraintSet::contradiction();
        let (_, lost2) = a.meet_with_loss(&bot);
        assert!(lost2.is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(ConstraintSet::empty().to_string(), "true");
        let s = ConstraintSet::from_facts([Fact::NotTop(rho(0))]);
        assert!(s.to_string().contains("≠"));
    }
}
