//! The region type language (paper Figure 4).
//!
//! Types annotate every pointer with a *region expression* saying which
//! region its target lives in. Region expressions are abstract regions ρ
//! (introduced existentially or as function/struct parameters), region
//! constants (regions that always exist, like the traditional region), or
//! ⊤ — the "region" of the null pointer, above every real region in the
//! subregion order.
//!
//! The boolean properties δ relating region expressions are conjunctions of
//! the atomic [`Fact`]s used by the paper's §4.3 constraint inference:
//! `σ = ⊤`, `σ ≠ ⊤`, `σ₁ ≤ σ₂`, `σ₁ = ⊤ ∨ σ₁ = σ₂`, plus the equalities
//! `σ₁ = σ₂` produced when an existential is instantiated into a dead
//! abstract region.

/// Identifier of an abstract region ρ. Scoping is positional: a function
/// with `m` region parameters uses ρ₀..ρₘ₋₁ for them and higher indices for
/// the per-variable abstract regions of its body; a struct declaration with
/// `m` parameters uses ρ₀..ρₘ₋₁.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RhoId(pub u32);

/// Identifier of a region constant (an always-live region such as the
/// traditional region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstId(pub u32);

/// The distinguished traditional-region constant `R_T`. Every program's
/// constant table has it at index 0.
pub const TRADITIONAL_CONST: ConstId = ConstId(0);

/// A region expression σ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegionExpr {
    /// An abstract region ρ.
    Abstract(RhoId),
    /// A region constant R.
    Const(ConstId),
    /// ⊤, the region of null (above all regions: `r ≤ ⊤` for every r).
    Top,
}

impl RegionExpr {
    /// The abstract region mentioned, if any.
    pub fn rho(self) -> Option<RhoId> {
        match self {
            RegionExpr::Abstract(r) => Some(r),
            _ => None,
        }
    }

    /// Applies a substitution of region expressions for abstract regions;
    /// `subst[i]` replaces ρᵢ. Abstract regions beyond the substitution's
    /// length are left untouched (they are locally bound).
    pub fn subst(self, subst: &[RegionExpr]) -> RegionExpr {
        match self {
            RegionExpr::Abstract(RhoId(i)) if (i as usize) < subst.len() => subst[i as usize],
            other => other,
        }
    }
}

impl std::fmt::Display for RegionExpr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegionExpr::Abstract(RhoId(i)) => write!(f, "ρ{i}"),
            RegionExpr::Const(ConstId(i)) => write!(f, "R{i}"),
            RegionExpr::Top => write!(f, "⊤"),
        }
    }
}

/// An atomic property of region expressions (the constraints of §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Fact {
    /// σ = ⊤ (the value is null).
    IsTop(RegionExpr),
    /// σ ≠ ⊤ (the value is non-null).
    NotTop(RegionExpr),
    /// σ₁ ≤ σ₂: σ₁ is in the subtree rooted at σ₂ (σ₂ is an ancestor of or
    /// equal to σ₁). This is the `parentptr` obligation.
    Sub(RegionExpr, RegionExpr),
    /// σ₁ = ⊤ ∨ σ₁ = σ₂: null or in region σ₂. This is the `sameregion`
    /// and `traditional` obligation shape.
    EqOrNull(RegionExpr, RegionExpr),
    /// σ₁ = σ₂ (produced by binding a dead abstract region; normalised so
    /// the two sides are ordered).
    Eq(RegionExpr, RegionExpr),
}

impl Fact {
    /// Normalises symmetric facts and drops trivially-true ones (returns
    /// `None` for tautologies like `σ = σ` or `σ ≤ ⊤`).
    pub fn normalise(self) -> Option<Fact> {
        match self {
            Fact::Eq(a, b) if a == b => None,
            Fact::Eq(a, b) => Some(if a <= b { Fact::Eq(a, b) } else { Fact::Eq(b, a) }),
            Fact::Sub(a, b) if a == b => None,
            Fact::Sub(_, RegionExpr::Top) => None,
            Fact::EqOrNull(a, b) if a == b => None,
            Fact::EqOrNull(RegionExpr::Top, _) => None, // ⊤ = ⊤ ∨ …: true
            Fact::IsTop(RegionExpr::Top) => None,
            other => Some(other),
        }
    }

    /// The region expressions this fact mentions.
    pub fn exprs(self) -> impl Iterator<Item = RegionExpr> {
        let (a, b) = match self {
            Fact::IsTop(a) | Fact::NotTop(a) => (a, None),
            Fact::Sub(a, b) | Fact::EqOrNull(a, b) | Fact::Eq(a, b) => (a, Some(b)),
        };
        std::iter::once(a).chain(b)
    }

    /// Whether this fact mentions the abstract region `rho`.
    pub fn mentions(self, rho: RhoId) -> bool {
        self.exprs().any(|e| e.rho() == Some(rho))
    }

    /// Whether every mentioned abstract region satisfies `keep`.
    pub fn all_rhos(self, keep: impl Fn(RhoId) -> bool) -> bool {
        self.exprs().all(|e| e.rho().is_none_or(&keep))
    }

    /// Applies a substitution to both sides (see [`RegionExpr::subst`]);
    /// the result is re-normalised and may be a tautology (`None`).
    pub fn subst(self, subst: &[RegionExpr]) -> Option<Fact> {
        let f = match self {
            Fact::IsTop(a) => Fact::IsTop(a.subst(subst)),
            Fact::NotTop(a) => Fact::NotTop(a.subst(subst)),
            Fact::Sub(a, b) => Fact::Sub(a.subst(subst), b.subst(subst)),
            Fact::EqOrNull(a, b) => Fact::EqOrNull(a.subst(subst), b.subst(subst)),
            Fact::Eq(a, b) => Fact::Eq(a.subst(subst), b.subst(subst)),
        };
        f.normalise()
    }
}

impl std::fmt::Display for Fact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fact::IsTop(a) => write!(f, "{a} = ⊤"),
            Fact::NotTop(a) => write!(f, "{a} ≠ ⊤"),
            Fact::Sub(a, b) => write!(f, "{a} ≤ {b}"),
            Fact::EqOrNull(a, b) => write!(f, "{a} = ⊤ ∨ {a} = {b}"),
            Fact::Eq(a, b) => write!(f, "{a} = {b}"),
        }
    }
}

/// The qualifier of a struct field's pointer type in the §4.3 translation.
/// Each variant fixes the existential type of the field:
///
/// - `Unknown` (no annotation): `∃ρ'. T[ρ']@ρ'`
/// - `SameRegion`: `∃ρ'/ρ' = ⊤ ∨ ρ' = ρ. T[ρ']@ρ'`
/// - `ParentPtr`: `∃ρ'/ρ ≤ ρ'. T[ρ']@ρ'`
/// - `Traditional`: `∃ρ'/ρ' = ⊤ ∨ ρ' = R_T. T[ρ']@ρ'`
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FieldQual {
    /// No annotation: the target region is completely unknown.
    #[default]
    Unknown,
    /// `sameregion`.
    SameRegion,
    /// `parentptr`.
    ParentPtr,
    /// `traditional`.
    Traditional,
}

impl FieldQual {
    /// The obligation a store into a field with this qualifier must
    /// satisfy, given the region of the stored value (`src`) and the region
    /// of the containing object (`container`). `None` for unannotated
    /// fields (any region may be stored). The fact is *not* normalised:
    /// trivially-true obligations (e.g. `x->f = x` under `sameregion`)
    /// still produce a `chk`, which the analysis then reports as safe.
    pub fn obligation(self, src: RegionExpr, container: RegionExpr) -> Option<Fact> {
        match self {
            FieldQual::Unknown => None,
            FieldQual::SameRegion => Some(Fact::EqOrNull(src, container)),
            FieldQual::ParentPtr => Some(Fact::Sub(container, src)),
            FieldQual::Traditional => {
                Some(Fact::EqOrNull(src, RegionExpr::Const(TRADITIONAL_CONST)))
            }
        }
    }

    /// The facts a *read* from a field with this qualifier establishes
    /// about the loaded value's region (`dst`), given the containing
    /// object's region (`container`) — the elimination side of the field's
    /// existential type.
    pub fn read_facts(self, dst: RegionExpr, container: RegionExpr) -> Vec<Fact> {
        let raw = match self {
            FieldQual::Unknown => vec![],
            FieldQual::SameRegion => vec![Fact::EqOrNull(dst, container)],
            FieldQual::ParentPtr => vec![Fact::Sub(container, dst)],
            FieldQual::Traditional => {
                vec![Fact::EqOrNull(dst, RegionExpr::Const(TRADITIONAL_CONST))]
            }
        };
        raw.into_iter().filter_map(Fact::normalise).collect()
    }
}

/// A field of an rlang struct: a name, the slot's shape, and — for pointer
/// fields — the qualifier fixing its existential region type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldType {
    /// A non-pointer word.
    Int,
    /// A pointer to a struct, with its qualifier.
    Ptr {
        /// Target struct.
        target: StructId,
        /// Qualifier (fixes the existential type per §4.3).
        qual: FieldQual,
    },
    /// A region handle: `∃ρ'. region@ρ'`.
    Region,
}

/// Identifier of a struct declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StructId(pub u32);

/// An rlang struct declaration. In the §4.3 translation every struct has
/// exactly one region parameter ρ₀ — the region the struct itself is stored
/// in — and every field's type refers to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDecl {
    /// Struct name.
    pub name: String,
    /// Field names and types.
    pub fields: Vec<(String, FieldType)>,
}

impl StructDecl {
    /// The type of field `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn field(&self, i: usize) -> &FieldType {
        &self.fields[i].1
    }
}

/// The shape of an rlang variable's type. Per the translation, a pointer
/// variable `x` of struct type `T` has type `T[ρₓ]@ρₓ` for the variable's
/// own abstract region ρₓ; a region variable has type `region@ρₓ`; an int
/// variable has no region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarType {
    /// A non-pointer value.
    Int,
    /// A pointer to a struct, in the variable's own abstract region.
    Ptr(StructId),
    /// A region handle designating the variable's own abstract region.
    Region,
}

impl VarType {
    /// Whether values of this type carry a region of interest.
    pub fn has_region(self) -> bool {
        !matches!(self, VarType::Int)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rho(i: u32) -> RegionExpr {
        RegionExpr::Abstract(RhoId(i))
    }

    #[test]
    fn normalise_orders_eq() {
        assert_eq!(Fact::Eq(rho(2), rho(1)).normalise(), Some(Fact::Eq(rho(1), rho(2))));
        assert_eq!(Fact::Eq(rho(1), rho(1)).normalise(), None);
    }

    #[test]
    fn normalise_drops_tautologies() {
        assert_eq!(Fact::Sub(rho(0), RegionExpr::Top).normalise(), None);
        assert_eq!(Fact::Sub(rho(0), rho(0)).normalise(), None);
        assert_eq!(Fact::EqOrNull(RegionExpr::Top, rho(1)).normalise(), None);
        assert_eq!(Fact::IsTop(RegionExpr::Top).normalise(), None);
        assert!(Fact::IsTop(rho(0)).normalise().is_some());
    }

    #[test]
    fn subst_replaces_parameters_only() {
        let subst = [RegionExpr::Const(TRADITIONAL_CONST)];
        assert_eq!(rho(0).subst(&subst), RegionExpr::Const(TRADITIONAL_CONST));
        assert_eq!(rho(1).subst(&subst), rho(1));
        // Substitution can make facts trivially true.
        assert_eq!(
            Fact::EqOrNull(RegionExpr::Top, rho(0)).subst(&subst),
            None
        );
    }

    #[test]
    fn qualifier_obligations_match_figure_3b() {
        let src = rho(1);
        let container = rho(0);
        assert_eq!(
            FieldQual::SameRegion.obligation(src, container),
            Some(Fact::EqOrNull(src, container))
        );
        assert_eq!(
            FieldQual::ParentPtr.obligation(src, container),
            Some(Fact::Sub(container, src))
        );
        assert_eq!(
            FieldQual::Traditional.obligation(src, container),
            Some(Fact::EqOrNull(src, RegionExpr::Const(TRADITIONAL_CONST)))
        );
        assert_eq!(FieldQual::Unknown.obligation(src, container), None);
    }

    #[test]
    fn read_facts_mirror_obligations() {
        let dst = rho(2);
        let container = rho(0);
        assert_eq!(
            FieldQual::SameRegion.read_facts(dst, container),
            vec![Fact::EqOrNull(dst, container)]
        );
        assert!(FieldQual::Unknown.read_facts(dst, container).is_empty());
    }

    #[test]
    fn mentions_and_exprs() {
        let f = Fact::Sub(rho(1), rho(3));
        assert!(f.mentions(RhoId(1)));
        assert!(f.mentions(RhoId(3)));
        assert!(!f.mentions(RhoId(2)));
        assert_eq!(f.exprs().count(), 2);
    }
}
