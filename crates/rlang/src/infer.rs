//! The §4.3 constraint inference: a whole-program, flow-sensitive dataflow
//! analysis that infers function input/output/result constraint sets and
//! decides which `chk` statements are statically redundant.
//!
//! "The operations in the type checking rules are all monotonic when
//! expressed in terms of constraint sets and there is a least solution ...
//! it is possible to find the best collection of constraint sets using a
//! greatest-fixed-point-seeking dataflow analysis of the whole program."
//!
//! The implementation mirrors that structure:
//!
//! - per function, a forward dataflow over [`ConstraintSet`]s with
//!   intersection at joins and a local fixpoint for `while`;
//! - per program, descending (greatest-fixed-point) iteration on the
//!   function summaries: a function's *input* set is the intersection of
//!   the facts provable at all of its call sites (empty for exported
//!   functions, matching "any non-static C function ... has empty input,
//!   output and result constraint sets"); its *output/result* set is
//!   whatever its body proves about its region parameters and result;
//! - finally, a verdict pass records the flow state at every `chk` site:
//!   "we can safely eliminate any chk statement that asserts a property
//!   that is implied by its input constraint set."

use std::collections::{BTreeMap, HashMap};

use crate::constraint::ConstraintSet;
use crate::program::{Callee, FuncDef, Program, SiteId, Stmt, VarId};
use crate::types::{Fact, FieldType, RegionExpr, RhoId, VarType};

/// Which control-flow construct performed a provenance-recorded meet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeetKind {
    /// The join after an `if`/`else` (constraint-set intersection of the
    /// two arms).
    IfJoin,
    /// The descending fixpoint at a `while` loop entry (intersection of
    /// the pre-loop state with every back edge).
    LoopEntry,
}

impl MeetKind {
    /// Stable lower-case name for reports and trace export.
    pub fn name(self) -> &'static str {
        match self {
            MeetKind::IfJoin => "if-join",
            MeetKind::LoopEntry => "loop-entry",
        }
    }
}

/// Why a check site received its verdict — the provenance half of the
/// static↔dynamic attribution story. For an eliminated check this is
/// [`ProvenanceReason::Entailed`] (or [`ProvenanceReason::Unreachable`]);
/// for a retained check it names the specific lattice event that blocked
/// elimination: the meet point that discarded a sufficient fact, the
/// region expression the state could not separate from ⊤, or the absence
/// of any path establishing the obligation at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProvenanceReason {
    /// The flow state entailed the obligation: the check is redundant.
    Entailed,
    /// The site is unreachable (contradictory flow state); trivially safe.
    Unreachable,
    /// A control-flow meet discarded `lost`, and the state *plus that one
    /// fact* would have entailed the obligation. `ordinal` is the
    /// function-local index of the meet (0-based, in execution order of
    /// the verdict pass).
    MeetPoint {
        /// Which construct performed the meet.
        kind: MeetKind,
        /// Function-local meet index in verdict-pass execution order.
        ordinal: u32,
        /// The discarded fact that would have proven the obligation.
        lost: Fact,
    },
    /// A region expression in the obligation could not be proven ≠ ⊤ —
    /// the ⊤-weakening of an unknown/possibly-null region blocked
    /// elimination.
    TopWeakening {
        /// The expression the state cannot separate from ⊤.
        expr: RegionExpr,
    },
    /// No recorded meet or ⊤-weakening explains the failure: the
    /// obligation was never established on any path.
    NeverEstablished,
}

impl std::fmt::Display for ProvenanceReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProvenanceReason::Entailed => write!(f, "entailed by the flow state"),
            ProvenanceReason::Unreachable => write!(f, "unreachable (contradictory state)"),
            ProvenanceReason::MeetPoint { kind, ordinal, lost } => {
                write!(f, "lost {lost} at {} #{ordinal}", kind.name())
            }
            ProvenanceReason::TopWeakening { expr } => {
                write!(f, "{expr} may be ⊤ (null or unknown region)")
            }
            ProvenanceReason::NeverEstablished => write!(f, "never established on any path"),
        }
    }
}

/// Provenance record for one `chk` site: the obligation, the verdict, and
/// the reason the verdict came out that way.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteProvenance {
    /// The fact the check asserts.
    pub fact: Fact,
    /// `true` when the check was proven redundant (eliminated).
    pub safe: bool,
    /// Why — see [`ProvenanceReason`].
    pub reason: ProvenanceReason,
}

/// A meet executed during the verdict pass, with the facts it discarded.
struct MeetEvent {
    kind: MeetKind,
    ordinal: u32,
    lost: Vec<Fact>,
}

/// Inferred input/output summaries for one function, in "summary space":
/// ρᵢ is the i-th parameter's region, ρₙ (n = parameter count) the
/// result's.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Facts guaranteed at every call site (the function may assume them).
    pub input: ConstraintSet,
    /// Facts the body guarantees about parameters and result on return.
    pub output: ConstraintSet,
}

/// Result of analysing a program.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Per-function summaries (indexed by [`crate::FuncId`]).
    pub summaries: Vec<Summary>,
    /// Verdict per check site: `true` means the check is statically
    /// redundant and can be removed.
    pub site_safe: HashMap<SiteId, bool>,
    /// Flow state recorded at each check site (for diagnostics).
    pub site_states: HashMap<SiteId, ConstraintSet>,
    /// The sites whose checks were eliminated, ascending — the
    /// machine-readable record consumers (differential oracles, reports)
    /// use to cross-check the eliminations dynamically. Always equal to
    /// the `true` entries of `site_safe`.
    pub eliminated_sites: Vec<SiteId>,
    /// Per-site provenance: the obligation, the verdict, and the reason
    /// (meet point, ⊤-weakening, …) behind it. Keyed by a `BTreeMap` so
    /// consumers iterate deterministically. Covers exactly the sites in
    /// `site_safe`.
    pub provenance: BTreeMap<SiteId, SiteProvenance>,
    /// Global fixpoint rounds taken.
    pub rounds: usize,
}

impl Analysis {
    /// Whether the check at `site` was proven redundant (false for unknown
    /// sites — a site the analysis never saw must keep its check).
    pub fn is_safe(&self, site: SiteId) -> bool {
        self.site_safe.get(&site).copied().unwrap_or(false)
    }

    /// Number of sites proven safe.
    pub fn safe_count(&self) -> usize {
        self.site_safe.values().filter(|&&b| b).count()
    }

    /// Total recorded sites.
    pub fn site_count(&self) -> usize {
        self.site_safe.len()
    }

    /// Provenance for a site, if the analysis saw it.
    pub fn provenance_of(&self, site: SiteId) -> Option<&SiteProvenance> {
        self.provenance.get(&site)
    }
}

/// Upper bound on global rounds; reaching it triggers a sound fallback
/// (empty summaries, one final pass).
const MAX_ROUNDS: usize = 200;

/// Runs the whole-program inference.
pub fn analyse(prog: &Program) -> Analysis {
    let nf = prog.funcs.len();
    let mut summaries: Vec<Summary> = prog
        .funcs
        .iter()
        .map(|f| Summary {
            // Greatest fixed point: start optimistically at the
            // contradictory top and descend; exported functions are pinned
            // to the empty set.
            input: if f.exported { ConstraintSet::empty() } else { ConstraintSet::contradiction() },
            output: ConstraintSet::contradiction(),
        })
        .collect();

    let mut rounds = 0;
    loop {
        rounds += 1;
        let mut in_acc: Vec<Option<ConstraintSet>> = vec![None; nf];
        let mut changed = false;

        let mut new_outputs: Vec<ConstraintSet> = Vec::with_capacity(nf);
        for (i, f) in prog.funcs.iter().enumerate() {
            let entry = summaries[i].input.clone();
            let mut ctx = Ctx {
                prog,
                func: f,
                summaries: &summaries,
                in_acc: Some(&mut in_acc),
                verdicts: None,
                ret_acc: ConstraintSet::contradiction(),
                violations: None,
                meets: Vec::new(),
            };
            let end = ctx.exec(&f.body, entry);
            // Output summary: the meet over all exits (explicit returns and
            // void fall-through).
            let exit = ctx.ret_acc.meet(&end);
            new_outputs.push(project_output(f, &exit));
        }
        for (i, out) in new_outputs.into_iter().enumerate() {
            if out != summaries[i].output {
                summaries[i].output = out;
                changed = true;
            }
        }
        for (i, f) in prog.funcs.iter().enumerate() {
            if f.exported {
                continue;
            }
            let new_in = in_acc[i].take().unwrap_or_else(ConstraintSet::contradiction);
            if new_in != summaries[i].input {
                summaries[i].input = new_in;
                changed = true;
            }
        }

        if !changed {
            break;
        }
        if rounds >= MAX_ROUNDS {
            // Sound fallback: drop to empty summaries everywhere.
            for s in &mut summaries {
                s.input = ConstraintSet::empty();
                s.output = ConstraintSet::empty();
            }
            break;
        }
    }

    // Verdict pass with the stable summaries.
    let mut site_safe = HashMap::new();
    let mut site_states = HashMap::new();
    let mut provenance = BTreeMap::new();
    for (i, f) in prog.funcs.iter().enumerate() {
        let entry = summaries[i].input.clone();
        let mut ctx = Ctx {
            prog,
            func: f,
            summaries: &summaries,
            in_acc: None,
            verdicts: Some((&mut site_safe, &mut site_states, &mut provenance)),
            ret_acc: ConstraintSet::contradiction(),
            violations: None,
            meets: Vec::new(),
        };
        ctx.exec(&f.body, entry);
    }

    let mut eliminated_sites: Vec<SiteId> =
        site_safe.iter().filter(|&(_, &safe)| safe).map(|(&s, _)| s).collect();
    eliminated_sites.sort_unstable();

    Analysis { summaries, site_safe, site_states, eliminated_sites, provenance, rounds }
}

/// Validates a program against an inferred (or hand-written) analysis,
/// playing the role of Figure 6's *checking* judgments: every function's
/// body, analysed from its input summary, must (a) prove each callee's
/// input summary at each call site, and (b) prove its own output summary
/// at every exit. Returns the list of violations (empty = well-typed).
///
/// The summaries produced by [`analyse`] always validate — that is the
/// greatest-fixed-point property — so this is primarily a defence against
/// hand-edited or stale summaries, and a machine-checkable statement of
/// the soundness argument.
pub fn validate(prog: &Program, analysis: &Analysis) -> Vec<String> {
    let mut violations = Vec::new();
    for (i, f) in prog.funcs.iter().enumerate() {
        let entry = analysis.summaries[i].input.clone();
        let mut ctx = Ctx {
            prog,
            func: f,
            summaries: &analysis.summaries,
            in_acc: None,
            verdicts: None,
            ret_acc: ConstraintSet::contradiction(),
            violations: Some(&mut violations),
            meets: Vec::new(),
        };
        let end = ctx.exec(&f.body, entry);
        let exit = ctx.ret_acc.meet(&end);
        let out = project_output(f, &exit);
        if !out.entails_all(&analysis.summaries[i].output) {
            violations.push(format!(
                "function `{}`: body proves {} but the output summary claims {}",
                f.name, out, analysis.summaries[i].output
            ));
        }
    }
    violations
}

/// Projects a function's final flow state onto its summary space:
/// parameters keep their ρ indices; the result variable's region is
/// renamed to ρₙ.
fn project_output(f: &FuncDef, end: &ConstraintSet) -> ConstraintSet {
    let n = f.params.len() as u32;
    let result = f.result.filter(|&r| f.var_has_region(r));
    let keep = |RhoId(i): RhoId| {
        (i < n && f.var_has_region(VarId(i))) || result.map(|r| r.0 == i).unwrap_or(false)
    };
    let restricted = end.restrict(keep);
    match result {
        None => restricted,
        Some(r) => {
            debug_assert!(r.0 >= n, "results are locals, never parameters");
            let mut subst: Vec<RegionExpr> =
                (0..f.var_count() as u32).map(|i| RegionExpr::Abstract(RhoId(i))).collect();
            subst[r.0 as usize] = RegionExpr::Abstract(RhoId(n));
            restricted.subst(&subst)
        }
    }
}

/// Projects a caller's flow state onto a callee's formal space: every
/// candidate fact over the callee's region parameters (and the region
/// constants) that the caller can prove about the actuals.
fn project_call_site(
    prog: &Program,
    callee: &FuncDef,
    actual_subst: &[RegionExpr],
    state: &ConstraintSet,
) -> ConstraintSet {
    let mut universe: Vec<RegionExpr> = callee
        .region_params()
        .map(|v| RegionExpr::Abstract(v.rho()))
        .collect();
    for c in 0..prog.consts.len() as u32 {
        universe.push(RegionExpr::Const(crate::types::ConstId(c)));
    }
    universe.push(RegionExpr::Top);

    let mut out = Vec::new();
    for &a in &universe {
        for cand in [Fact::IsTop(a), Fact::NotTop(a)] {
            if cand.subst(actual_subst).map(|f| state.entails(f)).unwrap_or(true) {
                out.push(cand);
            }
        }
        for &b in &universe {
            if a == b {
                continue;
            }
            for cand in [Fact::Eq(a, b), Fact::Sub(a, b), Fact::EqOrNull(a, b)] {
                if cand.subst(actual_subst).map(|f| state.entails(f)).unwrap_or(true) {
                    out.push(cand);
                }
            }
        }
    }
    ConstraintSet::from_facts(out)
}

type Verdicts<'a> = (
    &'a mut HashMap<SiteId, bool>,
    &'a mut HashMap<SiteId, ConstraintSet>,
    &'a mut BTreeMap<SiteId, SiteProvenance>,
);

/// Per-function execution context.
struct Ctx<'a> {
    prog: &'a Program,
    func: &'a FuncDef,
    summaries: &'a [Summary],
    /// When present, call-site facts are accumulated for the callees'
    /// input summaries.
    in_acc: Option<&'a mut Vec<Option<ConstraintSet>>>,
    /// When present, `chk` verdicts are recorded.
    verdicts: Option<Verdicts<'a>>,
    /// Meet of the flow states at every `return` executed so far (starts
    /// contradictory: no returns seen).
    ret_acc: ConstraintSet,
    /// When present, the Figure 6 *checking* obligations are verified and
    /// violations recorded: call sites must entail the callee's input
    /// summary (fncall rule).
    violations: Option<&'a mut Vec<String>>,
    /// Meets recorded during the verdict pass, in execution order
    /// (function-local). Empty unless `verdicts` is active — the fixpoint
    /// passes never pay for loss tracking.
    meets: Vec<MeetEvent>,
}

impl Ctx<'_> {
    fn rho(&self, v: VarId) -> RegionExpr {
        RegionExpr::Abstract(v.rho())
    }

    fn has_region(&self, v: VarId) -> bool {
        self.func.var_has_region(v)
    }

    fn exec(&mut self, s: &Stmt, mut d: ConstraintSet) -> ConstraintSet {
        match s {
            Stmt::Seq(ss) => {
                for s in ss {
                    d = self.exec(s, d);
                }
                d
            }
            Stmt::If { cond, then_s, else_s } => {
                let (mut dt, mut de) = (d.clone(), d);
                if self.has_region(*cond) {
                    dt.add(Fact::NotTop(self.rho(*cond)));
                    de.add(Fact::IsTop(self.rho(*cond)));
                }
                let dt = self.exec(then_s, dt);
                let de = self.exec(else_s, de);
                if self.verdicts.is_some() {
                    let (met, lost) = dt.meet_with_loss(&de);
                    self.note_meet(MeetKind::IfJoin, lost);
                    met
                } else {
                    dt.meet(&de)
                }
            }
            Stmt::While { cond, body } => {
                // Local descending fixpoint on the loop-entry state.
                let pre_loop = if self.verdicts.is_some() { Some(d.clone()) } else { None };
                let mut entry = d;
                loop {
                    let refined = self.refine_true(*cond, entry.clone());
                    // Inner iterations must not record verdicts — only the
                    // final stable pass below does.
                    let saved = self.verdicts.take();
                    let after = self.exec(body, refined);
                    self.verdicts = saved;
                    let next = entry.meet(&after);
                    if next == entry {
                        break;
                    }
                    entry = next;
                }
                if let Some(pre) = pre_loop {
                    // Record what the loop-entry fixpoint cost relative to
                    // the pre-loop state *before* the verdict-recording
                    // pass, so checks inside the body can attribute to it.
                    let lost: Vec<Fact> = pre.facts().filter(|&f| !entry.entails(f)).collect();
                    self.note_meet(MeetKind::LoopEntry, lost);
                }
                if self.verdicts.is_some() {
                    let refined = self.refine_true(*cond, entry.clone());
                    self.exec(body, refined);
                }
                let mut exit = entry;
                if self.has_region(*cond) {
                    exit.add(Fact::IsTop(self.rho(*cond)));
                }
                exit
            }
            Stmt::Assign { dst, src } => {
                if self.has_region(*dst) {
                    debug_assert_ne!(dst, src, "dst is never used elsewhere in the statement");
                    d.kill_rho(dst.rho());
                    if self.has_region(*src) {
                        d.add(Fact::Eq(self.rho(*dst), self.rho(*src)));
                    }
                }
                d
            }
            Stmt::AssignNull { dst } => {
                if self.has_region(*dst) {
                    d.kill_rho(dst.rho());
                    d.add(Fact::IsTop(self.rho(*dst)));
                }
                d
            }
            Stmt::Havoc { dst } => {
                if self.has_region(*dst) {
                    d.kill_rho(dst.rho());
                }
                d
            }
            Stmt::ReadField { dst, obj, field } => {
                // Dereference: obj is non-null past this point.
                d.add(Fact::NotTop(self.rho(*obj)));
                let VarType::Ptr(sid) = self.func.var_type(*obj) else {
                    panic!("field read through non-pointer variable");
                };
                match self.prog.struct_decl(sid).field(*field) {
                    FieldType::Int => d,
                    FieldType::Region => {
                        if self.has_region(*dst) {
                            d.kill_rho(dst.rho());
                        }
                        d
                    }
                    FieldType::Ptr { qual, .. } => {
                        let qual = *qual;
                        if self.has_region(*dst) {
                            d.kill_rho(dst.rho());
                            d.add_all(qual.read_facts(self.rho(*dst), self.rho(*obj)));
                        }
                        d
                    }
                }
            }
            Stmt::WriteField { obj, .. } => {
                d.add(Fact::NotTop(self.rho(*obj)));
                d
            }
            Stmt::New { dst, region, .. } => {
                // ralloc: the new object lives in the designated region,
                // which must be a real (non-⊤) region.
                d.add(Fact::NotTop(self.rho(*region)));
                if self.has_region(*dst) {
                    d.kill_rho(dst.rho());
                    d.add(Fact::Eq(self.rho(*dst), self.rho(*region)));
                    d.add(Fact::NotTop(self.rho(*dst)));
                }
                d
            }
            Stmt::Assume { facts } => {
                d.add_all(facts.iter().copied());
                d
            }
            Stmt::Return { src } => {
                // Model `result = src` (when the function has a result),
                // fold the state into the output accumulator, and make the
                // fall-through unreachable.
                if let (Some(res), Some(src)) = (self.func.result, src) {
                    if self.func.var_has_region(res) {
                        d.kill_rho(res.rho());
                        if self.has_region(*src) {
                            d.add(Fact::Eq(self.rho(res), self.rho(*src)));
                        }
                    }
                }
                self.ret_acc = self.ret_acc.meet(&d);
                ConstraintSet::contradiction()
            }
            Stmt::Chk { fact, site } => {
                if self.verdicts.is_some() {
                    let is_safe = d.entails(*fact);
                    let reason = if is_safe {
                        if d.is_contradictory() {
                            ProvenanceReason::Unreachable
                        } else {
                            ProvenanceReason::Entailed
                        }
                    } else {
                        self.classify_retained(&d, *fact)
                    };
                    if let Some((safe, states, prov)) = self.verdicts.as_mut() {
                        safe.insert(*site, is_safe);
                        states.insert(*site, d.clone());
                        prov.insert(
                            *site,
                            SiteProvenance { fact: *fact, safe: is_safe, reason },
                        );
                    }
                }
                // After a passing check, the property holds.
                d.add(*fact);
                d
            }
            Stmt::Call { dst, callee, args } => self.exec_call(*dst, *callee, args, d),
            Stmt::Task { region, body } => {
                // spawn: the handle must designate a real region, exactly
                // as for `new`.
                d.add(Fact::NotTop(self.rho(*region)));
                // The body runs in its own shard against a fresh facet of
                // `region`; the translation guarantees it only touches
                // task-local variables, so its effects are invisible here.
                // Analyse it from scratch (no parent facts carry over —
                // the facet is a different concrete region, only non-⊤ is
                // known) purely for its own check verdicts, then discard
                // the resulting state.
                let mut task_d = ConstraintSet::empty();
                task_d.add(Fact::NotTop(self.rho(*region)));
                let _ = self.exec(body, task_d);
                d
            }
        }
    }

    /// Records a verdict-pass meet (no-op outside the verdict pass — the
    /// fixpoint passes never track losses).
    fn note_meet(&mut self, kind: MeetKind, lost: Vec<Fact>) {
        if self.verdicts.is_some() {
            let ordinal = self.meets.len() as u32;
            self.meets.push(MeetEvent { kind, ordinal, lost });
        }
    }

    /// Classifies why a retained check could not be eliminated: the most
    /// recent meet whose discarded fact would have completed the proof, a
    /// ⊤-weakened region expression in the obligation, or — failing both —
    /// an obligation never established on any path.
    fn classify_retained(&self, d: &ConstraintSet, fact: Fact) -> ProvenanceReason {
        for m in self.meets.iter().rev() {
            for &lost in &m.lost {
                let mut with = d.clone();
                with.add(lost);
                if with.entails(fact) {
                    return ProvenanceReason::MeetPoint { kind: m.kind, ordinal: m.ordinal, lost };
                }
            }
        }
        for expr in fact.exprs() {
            if !d.entails(Fact::NotTop(expr)) {
                return ProvenanceReason::TopWeakening { expr };
            }
        }
        ProvenanceReason::NeverEstablished
    }

    fn refine_true(&self, cond: VarId, mut d: ConstraintSet) -> ConstraintSet {
        if self.has_region(cond) {
            d.add(Fact::NotTop(self.rho(cond)));
        }
        d
    }

    fn exec_call(
        &mut self,
        dst: Option<VarId>,
        callee: Callee,
        args: &[VarId],
        mut d: ConstraintSet,
    ) -> ConstraintSet {
        let kill_dst = |d: &mut ConstraintSet, dst: Option<VarId>, func: &FuncDef| {
            if let Some(v) = dst {
                if func.var_has_region(v) {
                    d.kill_rho(v.rho());
                }
            }
        };
        match callee {
            Callee::NewRegion => {
                kill_dst(&mut d, dst, self.func);
                if let Some(v) = dst {
                    d.add(Fact::NotTop(self.rho(v)));
                }
                d
            }
            Callee::NewSubRegion => {
                let parent = args[0];
                d.add(Fact::NotTop(self.rho(parent)));
                kill_dst(&mut d, dst, self.func);
                if let Some(v) = dst {
                    d.add(Fact::Sub(self.rho(v), self.rho(parent)));
                    d.add(Fact::NotTop(self.rho(v)));
                }
                d
            }
            Callee::DeleteRegion => {
                d.add(Fact::NotTop(self.rho(args[0])));
                d
            }
            Callee::RegionOf => {
                let x = args[0];
                d.add(Fact::NotTop(self.rho(x)));
                kill_dst(&mut d, dst, self.func);
                if let Some(v) = dst {
                    d.add(Fact::Eq(self.rho(v), self.rho(x)));
                }
                d
            }
            Callee::User(gid) => {
                let g = self.prog.func(gid);
                let n = g.params.len();
                debug_assert_eq!(args.len(), n, "arity mismatch calling {}", g.name);
                // Build the actual substitution: formal ρᵢ ↦ the actual's
                // region (⊤ for non-region arguments, about which no
                // summary fact may speak), and formal ρₙ ↦ the
                // destination's region.
                let mut subst: Vec<RegionExpr> = args
                    .iter()
                    .map(|&a| {
                        if self.has_region(a) { self.rho(a) } else { RegionExpr::Top }
                    })
                    .collect();
                let result_expr = match dst {
                    Some(v) if self.has_region(v) => self.rho(v),
                    _ => RegionExpr::Top,
                };
                subst.push(result_expr);

                // Figure 6 (fncall): the call site must prove the
                // callee's input property for the actuals.
                if let Some(violations) = self.violations.as_mut() {
                    let obligation =
                        self.summaries[gid.0 as usize].input.subst(&subst[..n]);
                    if !d.entails_all(&obligation) {
                        violations.push(format!(
                            "call to `{}` in `{}`: input summary not entailed                              (need {}, have {})",
                            g.name, self.func.name, obligation, d
                        ));
                    }
                }
                // Contribute this call site to the callee's input summary.
                if !g.exported && self.in_acc.is_some() {
                    let contrib = project_call_site(self.prog, g, &subst[..n], &d);
                    if let Some(acc) = self.in_acc.as_mut() {
                        let slot = &mut acc[gid.0 as usize];
                        *slot = Some(match slot.take() {
                            None => contrib,
                            Some(prev) => prev.meet(&contrib),
                        });
                    }
                }

                kill_dst(&mut d, dst, self.func);
                // The callee's output summary holds for the actuals.
                let out = self.summaries[gid.0 as usize].output.subst(&subst);
                d.add_all(out.facts());
                d
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;
    use crate::types::{FieldQual, StructDecl, StructId};

    /// Builds the Figure 1 list-construction loop:
    ///
    /// ```c
    /// region r = newregion();
    /// struct rlist *rl, *last = NULL;
    /// while (...) {
    ///   rl = ralloc(r, struct rlist);
    ///   rl->data = ralloc(r, struct finfo);   // chk sameregion
    ///   rl->next = last;                      // chk sameregion
    ///   last = rl;
    /// }
    /// ```
    fn figure1_program() -> Program {
        let mut p = Program::new();
        let rlist = StructId(0);
        let finfo = StructId(1);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![
                ("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion }),
                ("data".into(), FieldType::Ptr { target: finfo, qual: FieldQual::SameRegion }),
            ],
        });
        p.add_struct(StructDecl { name: "finfo".into(), fields: vec![("x".into(), FieldType::Int)] });

        // Vars: 0 = r (region), 1 = rl, 2 = last, 3 = data tmp, 4 = cond.
        let (r, rl, last, tmp, cond) = (VarId(0), VarId(1), VarId(2), VarId(3), VarId(4));
        let body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
            Stmt::AssignNull { dst: last },
            Stmt::While {
                cond,
                body: Box::new(Stmt::Seq(vec![
                    Stmt::New { dst: rl, ty: StructId(0), region: r },
                    Stmt::New { dst: tmp, ty: StructId(1), region: r },
                    Stmt::Chk {
                        fact: Fact::EqOrNull(
                            RegionExpr::Abstract(tmp.rho()),
                            RegionExpr::Abstract(rl.rho()),
                        ),
                        site: SiteId(0),
                    },
                    Stmt::WriteField { obj: rl, field: 1, src: tmp },
                    Stmt::Chk {
                        fact: Fact::EqOrNull(
                            RegionExpr::Abstract(last.rho()),
                            RegionExpr::Abstract(rl.rho()),
                        ),
                        site: SiteId(1),
                    },
                    Stmt::WriteField { obj: rl, field: 0, src: last },
                    Stmt::Assign { dst: last, src: rl },
                ])),
            },
            Stmt::Call { dst: None, callee: Callee::DeleteRegion, args: vec![r] },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![
                VarType::Region,
                VarType::Ptr(StructId(0)),
                VarType::Ptr(StructId(0)),
                VarType::Ptr(StructId(1)),
                VarType::Int,
            ],
            result: None,
            body,
        });
        p
    }

    #[test]
    fn figure1_loop_is_fully_verified() {
        let p = figure1_program();
        let a = analyse(&p);
        assert!(a.is_safe(SiteId(0)), "rl->data = ralloc(r, …): {}", a.site_states[&SiteId(0)]);
        assert!(a.is_safe(SiteId(1)), "rl->next = last: {}", a.site_states[&SiteId(1)]);
        assert_eq!(a.safe_count(), 2);
    }

    #[test]
    fn array_read_defeats_verification() {
        // x = ralloc(r); x->next = objects[23];  — §5.2's negative idiom.
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        let (r, x, y) = (VarId(0), VarId(1), VarId(2));
        let body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
            Stmt::New { dst: x, ty: rlist, region: r },
            Stmt::Havoc { dst: y }, // objects[23]
            Stmt::Chk {
                fact: Fact::EqOrNull(RegionExpr::Abstract(y.rho()), RegionExpr::Abstract(x.rho())),
                site: SiteId(0),
            },
            Stmt::WriteField { obj: x, field: 0, src: y },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Region, VarType::Ptr(rlist), VarType::Ptr(rlist)],
            result: None,
            body,
        });
        let a = analyse(&p);
        assert!(!a.is_safe(SiteId(0)), "array reads yield unknown regions");
    }

    #[test]
    fn task_body_is_analysed_in_isolation() {
        // r = newregion(); task r { x = new(r); chk same(x, x); }
        // y = new(r);  // after the task: parent facts flow through it
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        let (r, x, y, z) = (VarId(0), VarId(1), VarId(2), VarId(3));
        let body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
            Stmt::New { dst: z, ty: rlist, region: r },
            Stmt::Task {
                region: r,
                body: Box::new(Stmt::Seq(vec![
                    Stmt::New { dst: x, ty: rlist, region: r },
                    // Same-variable store: provable inside the task from
                    // the task's own facts alone.
                    Stmt::Chk {
                        fact: Fact::EqOrNull(
                            RegionExpr::Abstract(x.rho()),
                            RegionExpr::Abstract(x.rho()),
                        ),
                        site: SiteId(0),
                    },
                    Stmt::WriteField { obj: x, field: 0, src: x },
                    // Parent-derived obligation: `z` was allocated before
                    // the spawn, but that fact must not leak into the
                    // task body (the facet is a different concrete
                    // region), so this stays unproven.
                    Stmt::Chk {
                        fact: Fact::EqOrNull(
                            RegionExpr::Abstract(z.rho()),
                            RegionExpr::Abstract(x.rho()),
                        ),
                        site: SiteId(1),
                    },
                ])),
            },
            // After the task, parent facts still hold: y = new(r) then a
            // check against z is provable exactly as without the task.
            Stmt::New { dst: y, ty: rlist, region: r },
            Stmt::Chk {
                fact: Fact::EqOrNull(
                    RegionExpr::Abstract(z.rho()),
                    RegionExpr::Abstract(y.rho()),
                ),
                site: SiteId(2),
            },
            Stmt::WriteField { obj: y, field: 0, src: z },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![
                VarType::Region,
                VarType::Ptr(rlist),
                VarType::Ptr(rlist),
                VarType::Ptr(rlist),
            ],
            result: None,
            body,
        });
        let a = analyse(&p);
        assert!(a.is_safe(SiteId(0)), "task-local facts prove task-local checks");
        assert!(!a.is_safe(SiteId(1)), "parent facts must not leak into the task body");
        assert!(a.is_safe(SiteId(2)), "the task is effect-free for the parent's state");
    }

    #[test]
    fn regionof_idiom_is_verified() {
        // x = ralloc(r, ...); x->next = ralloc(regionof(x), ...);
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        let (r, x, r2, y) = (VarId(0), VarId(1), VarId(2), VarId(3));
        let body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
            Stmt::New { dst: x, ty: rlist, region: r },
            Stmt::Call { dst: Some(r2), callee: Callee::RegionOf, args: vec![x] },
            Stmt::New { dst: y, ty: rlist, region: r2 },
            Stmt::Chk {
                fact: Fact::EqOrNull(RegionExpr::Abstract(y.rho()), RegionExpr::Abstract(x.rho())),
                site: SiteId(0),
            },
            Stmt::WriteField { obj: x, field: 0, src: y },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Region, VarType::Ptr(rlist), VarType::Region, VarType::Ptr(rlist)],
            result: None,
            body,
        });
        let a = analyse(&p);
        assert!(a.is_safe(SiteId(0)));
    }

    #[test]
    fn constructor_called_from_unknown_context_keeps_check() {
        // rlist *new_rlist(region r, rlist *next) { new->next = next; }
        // called from an exported function with unrelated arguments: the
        // input summary cannot prove next ∈ r.
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        // new_rlist: params r (region), next (ptr); local new, result new.
        let (pr, pnext, pnew) = (VarId(0), VarId(1), VarId(2));
        let ctor_body = Stmt::Seq(vec![
            Stmt::New { dst: pnew, ty: rlist, region: pr },
            Stmt::Chk {
                fact: Fact::EqOrNull(
                    RegionExpr::Abstract(pnext.rho()),
                    RegionExpr::Abstract(pnew.rho()),
                ),
                site: SiteId(0),
            },
            Stmt::WriteField { obj: pnew, field: 0, src: pnext },
        ]);
        let ctor = p.add_func(FuncDef {
            name: "new_rlist".into(),
            exported: false,
            params: vec![VarType::Region, VarType::Ptr(rlist)],
            locals: vec![VarType::Ptr(rlist)],
            result: Some(pnew),
            body: ctor_body,
        });
        // main: two unrelated regions; next comes from the other region.
        let (r1, r2, a, b) = (VarId(0), VarId(1), VarId(2), VarId(3));
        let main_body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r1), callee: Callee::NewRegion, args: vec![] },
            Stmt::Call { dst: Some(r2), callee: Callee::NewRegion, args: vec![] },
            Stmt::New { dst: a, ty: rlist, region: r2 },
            Stmt::Call { dst: Some(b), callee: Callee::User(ctor), args: vec![r1, a] },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Region, VarType::Region, VarType::Ptr(rlist), VarType::Ptr(rlist)],
            result: None,
            body: main_body,
        });
        let a = analyse(&p);
        assert!(!a.is_safe(SiteId(0)), "mixed-region call sites defeat the constructor idiom");
    }

    #[test]
    fn constructor_with_consistent_sites_is_verified() {
        // Same constructor, but every call site passes next allocated in r
        // — the interprocedural idiom that *does* verify (as in moss).
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        let (pr, pnext, pnew) = (VarId(0), VarId(1), VarId(2));
        let ctor_body = Stmt::Seq(vec![
            Stmt::New { dst: pnew, ty: rlist, region: pr },
            Stmt::Chk {
                fact: Fact::EqOrNull(
                    RegionExpr::Abstract(pnext.rho()),
                    RegionExpr::Abstract(pnew.rho()),
                ),
                site: SiteId(0),
            },
            Stmt::WriteField { obj: pnew, field: 0, src: pnext },
        ]);
        let ctor = p.add_func(FuncDef {
            name: "new_rlist".into(),
            exported: false,
            params: vec![VarType::Region, VarType::Ptr(rlist)],
            locals: vec![VarType::Ptr(rlist)],
            result: Some(pnew),
            body: ctor_body,
        });
        let (r1, a, b) = (VarId(0), VarId(1), VarId(2));
        let main_body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r1), callee: Callee::NewRegion, args: vec![] },
            Stmt::New { dst: a, ty: rlist, region: r1 },
            Stmt::Call { dst: Some(b), callee: Callee::User(ctor), args: vec![r1, a] },
            // And chain: next result feeds back in.
            Stmt::Call { dst: Some(a), callee: Callee::User(ctor), args: vec![r1, b] },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Region, VarType::Ptr(rlist), VarType::Ptr(rlist)],
            result: None,
            body: main_body,
        });
        let an = analyse(&p);
        assert!(
            an.is_safe(SiteId(0)),
            "consistent call sites let the input summary prove the check: {}",
            an.site_states[&SiteId(0)]
        );
        // The result summary must say: result lives in the region argument.
        let s = &an.summaries[ctor.0 as usize];
        assert!(s.output.entails(Fact::Eq(
            RegionExpr::Abstract(RhoId(2)), // ρ₂ = result (2 params)
            RegionExpr::Abstract(RhoId(0)), // ρ₀ = region param
        )));
    }

    #[test]
    fn subregion_parentptr_idiom_is_verified() {
        // sub = newsubregion(r); o = ralloc(sub); p = ralloc(r);
        // o->up = p;  — parentptr chk: ρ_o ≤ ρ_p.
        let mut p = Program::new();
        let node = StructId(0);
        p.add_struct(StructDecl {
            name: "node".into(),
            fields: vec![("up".into(), FieldType::Ptr { target: node, qual: FieldQual::ParentPtr })],
        });
        let (r, sub, o, q) = (VarId(0), VarId(1), VarId(2), VarId(3));
        let body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
            Stmt::Call { dst: Some(sub), callee: Callee::NewSubRegion, args: vec![r] },
            Stmt::New { dst: o, ty: node, region: sub },
            Stmt::New { dst: q, ty: node, region: r },
            Stmt::Chk {
                fact: Fact::Sub(RegionExpr::Abstract(o.rho()), RegionExpr::Abstract(q.rho())),
                site: SiteId(0),
            },
            Stmt::WriteField { obj: o, field: 0, src: q },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Region, VarType::Region, VarType::Ptr(node), VarType::Ptr(node)],
            result: None,
            body,
        });
        let a = analyse(&p);
        assert!(a.is_safe(SiteId(0)), "{}", a.site_states[&SiteId(0)]);
    }

    #[test]
    fn if_refinement_knows_nullness() {
        // y = x->next; if (y) { x->next = y; /* chk provable: y nonnull &
        // sameregion-read */ }
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        let (x, y) = (VarId(0), VarId(1));
        let body = Stmt::Seq(vec![
            Stmt::ReadField { dst: y, obj: x, field: 0 },
            Stmt::If {
                cond: y,
                then_s: Box::new(Stmt::Seq(vec![
                    Stmt::Chk {
                        fact: Fact::EqOrNull(
                            RegionExpr::Abstract(y.rho()),
                            RegionExpr::Abstract(x.rho()),
                        ),
                        site: SiteId(0),
                    },
                    Stmt::WriteField { obj: x, field: 0, src: y },
                ])),
                else_s: Box::new(Stmt::skip()),
            },
        ]);
        p.add_func(FuncDef {
            name: "touch".into(),
            exported: true,
            params: vec![VarType::Ptr(rlist)],
            locals: vec![VarType::Ptr(rlist)],
            result: None,
            body,
        });
        let a = analyse(&p);
        assert!(a.is_safe(SiteId(0)));
    }

    #[test]
    fn heap_read_idiom_is_verified() {
        // x = ralloc(regionof(y)); x->next = y->next;  (§5.2 positive)
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        let (y, r, x, t) = (VarId(0), VarId(1), VarId(2), VarId(3));
        let body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r), callee: Callee::RegionOf, args: vec![y] },
            Stmt::New { dst: x, ty: rlist, region: r },
            Stmt::ReadField { dst: t, obj: y, field: 0 },
            Stmt::Chk {
                fact: Fact::EqOrNull(RegionExpr::Abstract(t.rho()), RegionExpr::Abstract(x.rho())),
                site: SiteId(0),
            },
            Stmt::WriteField { obj: x, field: 0, src: t },
        ]);
        p.add_func(FuncDef {
            name: "copy_head".into(),
            exported: true,
            params: vec![VarType::Ptr(rlist)],
            locals: vec![VarType::Region, VarType::Ptr(rlist), VarType::Ptr(rlist)],
            result: None,
            body,
        });
        let a = analyse(&p);
        assert!(a.is_safe(SiteId(0)), "{}", a.site_states[&SiteId(0)]);
    }

    #[test]
    fn eliminated_sites_mirror_the_safe_verdicts() {
        // Figure 1: both chk sites verify — the exported list names them
        // in ascending order.
        let p = figure1_program();
        let a = analyse(&p);
        assert_eq!(a.eliminated_sites, vec![SiteId(0), SiteId(1)]);
        assert_eq!(a.eliminated_sites.len(), a.safe_count());
        for &s in &a.eliminated_sites {
            assert!(a.is_safe(s));
        }
        // §5.2's negative idiom: the kept check must not be listed.
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        let (r, x, y) = (VarId(0), VarId(1), VarId(2));
        let body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
            Stmt::New { dst: x, ty: rlist, region: r },
            Stmt::Havoc { dst: y },
            Stmt::Chk {
                fact: Fact::EqOrNull(RegionExpr::Abstract(y.rho()), RegionExpr::Abstract(x.rho())),
                site: SiteId(0),
            },
            Stmt::WriteField { obj: x, field: 0, src: y },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Region, VarType::Ptr(rlist), VarType::Ptr(rlist)],
            result: None,
            body,
        });
        let a = analyse(&p);
        assert!(a.eliminated_sites.is_empty());
        assert_eq!(a.site_count(), 1, "the kept site is still recorded in site_safe");
    }

    #[test]
    fn provenance_labels_eliminated_and_top_weakened_sites() {
        // Figure 1: both eliminated sites carry `Entailed`.
        let p = figure1_program();
        let a = analyse(&p);
        for site in [SiteId(0), SiteId(1)] {
            let prov = a.provenance_of(site).expect("every seen site has provenance");
            assert!(prov.safe);
            assert_eq!(prov.reason, ProvenanceReason::Entailed);
        }
        assert_eq!(a.provenance.len(), a.site_count(), "provenance covers site_safe");

        // §5.2's havoc idiom: the retained site blames the ⊤-weakened
        // source region (the array read yields an unknown region).
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        let (r, x, y) = (VarId(0), VarId(1), VarId(2));
        let body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
            Stmt::New { dst: x, ty: rlist, region: r },
            Stmt::Havoc { dst: y },
            Stmt::Chk {
                fact: Fact::EqOrNull(RegionExpr::Abstract(y.rho()), RegionExpr::Abstract(x.rho())),
                site: SiteId(0),
            },
            Stmt::WriteField { obj: x, field: 0, src: y },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Region, VarType::Ptr(rlist), VarType::Ptr(rlist)],
            result: None,
            body,
        });
        let a = analyse(&p);
        let prov = a.provenance_of(SiteId(0)).unwrap();
        assert!(!prov.safe);
        assert_eq!(
            prov.reason,
            ProvenanceReason::TopWeakening { expr: RegionExpr::Abstract(y.rho()) },
            "the havoc'd variable's region is the blocking expression"
        );
        assert!(prov.reason.to_string().contains("⊤"));
    }

    #[test]
    fn provenance_blames_the_if_join_that_lost_the_fact() {
        // One arm allocates y in r, the other havocs it: the join discards
        // the proof and the retained check downstream names that meet.
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        let (r, x, y, c) = (VarId(0), VarId(1), VarId(2), VarId(3));
        let body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
            Stmt::New { dst: x, ty: rlist, region: r },
            Stmt::If {
                cond: c,
                then_s: Box::new(Stmt::New { dst: y, ty: rlist, region: r }),
                else_s: Box::new(Stmt::Havoc { dst: y }),
            },
            Stmt::Chk {
                fact: Fact::EqOrNull(RegionExpr::Abstract(y.rho()), RegionExpr::Abstract(x.rho())),
                site: SiteId(0),
            },
            Stmt::WriteField { obj: x, field: 0, src: y },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Region, VarType::Ptr(rlist), VarType::Ptr(rlist), VarType::Int],
            result: None,
            body,
        });
        let a = analyse(&p);
        let prov = a.provenance_of(SiteId(0)).unwrap();
        assert!(!prov.safe);
        match prov.reason {
            ProvenanceReason::MeetPoint { kind, lost, .. } => {
                assert_eq!(kind, MeetKind::IfJoin);
                // The lost fact really does complete the proof.
                let mut with = a.site_states[&SiteId(0)].clone();
                with.add(lost);
                assert!(with.entails(prov.fact));
            }
            other => panic!("expected a meet-point reason, got {other:?}"),
        }
    }

    #[test]
    fn provenance_blames_the_loop_entry_meet() {
        // y ∈ r before the loop, but the loop body havocs y: the
        // loop-entry fixpoint discards the fact and the check inside the
        // body (recorded on the final stable pass) attributes to it.
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        let (r, x, y, c) = (VarId(0), VarId(1), VarId(2), VarId(3));
        let body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
            Stmt::New { dst: x, ty: rlist, region: r },
            Stmt::New { dst: y, ty: rlist, region: r },
            Stmt::While {
                cond: c,
                body: Box::new(Stmt::Seq(vec![
                    Stmt::Chk {
                        fact: Fact::EqOrNull(
                            RegionExpr::Abstract(y.rho()),
                            RegionExpr::Abstract(x.rho()),
                        ),
                        site: SiteId(0),
                    },
                    Stmt::WriteField { obj: x, field: 0, src: y },
                    Stmt::Havoc { dst: y },
                ])),
            },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Region, VarType::Ptr(rlist), VarType::Ptr(rlist), VarType::Int],
            result: None,
            body,
        });
        let a = analyse(&p);
        let prov = a.provenance_of(SiteId(0)).unwrap();
        assert!(!prov.safe, "the back edge havocs y, so the check stays");
        assert!(
            matches!(prov.reason, ProvenanceReason::MeetPoint { kind: MeetKind::LoopEntry, .. }),
            "expected loop-entry attribution, got {:?}",
            prov.reason
        );
    }

    #[test]
    fn analysis_terminates_on_recursion() {
        // f calls itself; summaries must converge.
        let mut p = Program::new();
        let rlist = StructId(0);
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: rlist, qual: FieldQual::SameRegion })],
        });
        let (x, y) = (VarId(0), VarId(1));
        let fid = crate::program::FuncId(0);
        let body = Stmt::Seq(vec![
            Stmt::ReadField { dst: y, obj: x, field: 0 },
            Stmt::If {
                cond: y,
                then_s: Box::new(Stmt::Call { dst: None, callee: Callee::User(fid), args: vec![y] }),
                else_s: Box::new(Stmt::skip()),
            },
        ]);
        p.add_func(FuncDef {
            name: "walk".into(),
            exported: true,
            params: vec![VarType::Ptr(rlist)],
            locals: vec![VarType::Ptr(rlist)],
            result: None,
            body,
        });
        let a = analyse(&p);
        assert!(a.rounds < MAX_ROUNDS);
    }
}
