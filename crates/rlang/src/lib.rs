#![warn(missing_docs)]

//! # rlang — a region type system with existential abstract regions
//!
//! The formal core of David Gay and Alex Aiken, *Language Support for
//! Regions* (PLDI 2001), §4: a type system for dynamically-checked region
//! languages whose "main novelty is the use of existentially quantified
//! abstract regions to represent pointers to objects whose region is
//! partially or totally unknown".
//!
//! The pieces:
//!
//! - [`types`] — region expressions (abstract regions ρ, region constants,
//!   ⊤ for null), the atomic facts relating them, and the qualifier-indexed
//!   existential field types of the §4.3 translation;
//! - [`constraint`] — saturated constraint sets: the finite lattice (meet =
//!   intersection) with entailment, rebinding ("kill"), projection and
//!   substitution;
//! - [`program`] — the rlang imperative language of Figure 5;
//! - [`infer`] — the whole-program greatest-fixed-point inference of
//!   function input/output/result constraint sets, and the verdict pass
//!   that finds statically-redundant `chk` statements.
//!
//! The RC front end (crate `rc-lang`) translates RC programs into rlang,
//! runs [`infer::analyse`], and removes the runtime checks the analysis
//! proves redundant — the paper's "inf" configuration, which cuts lcc's
//! reference-counting overhead from 27% to 11% and mudlle's from 23% to 6%.
//!
//! ## Example: verifying Figure 1's loop
//!
//! ```
//! use rlang::program::{Callee, FuncDef, Program, SiteId, Stmt, VarId};
//! use rlang::types::{Fact, FieldQual, FieldType, RegionExpr, StructDecl, StructId, VarType};
//!
//! let mut p = Program::new();
//! let rlist = p.add_struct(StructDecl {
//!     name: "rlist".into(),
//!     fields: vec![("next".into(),
//!         FieldType::Ptr { target: StructId(0), qual: FieldQual::SameRegion })],
//! });
//! let (r, x, y) = (VarId(0), VarId(1), VarId(2));
//! p.add_func(FuncDef {
//!     name: "main".into(),
//!     exported: true,
//!     params: vec![],
//!     locals: vec![VarType::Region, VarType::Ptr(rlist), VarType::Ptr(rlist)],
//!     result: None,
//!     body: Stmt::Seq(vec![
//!         Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
//!         Stmt::New { dst: x, ty: rlist, region: r },
//!         Stmt::New { dst: y, ty: rlist, region: r },
//!         Stmt::Chk {
//!             fact: Fact::EqOrNull(
//!                 RegionExpr::Abstract(y.rho()),
//!                 RegionExpr::Abstract(x.rho())),
//!             site: SiteId(0),
//!         },
//!         Stmt::WriteField { obj: x, field: 0, src: y },
//!     ]),
//! });
//! let analysis = rlang::infer::analyse(&p);
//! assert!(analysis.is_safe(SiteId(0)), "both nodes are in r: check eliminated");
//! ```

pub mod check;
pub mod constraint;
pub mod display;
pub mod infer;
pub mod program;
pub mod types;

pub use check::{well_formed, WfError};
pub use constraint::ConstraintSet;
pub use infer::{
    analyse, validate, Analysis, MeetKind, ProvenanceReason, SiteProvenance, Summary,
};
pub use program::{Callee, FuncDef, FuncId, Program, SiteId, Stmt, VarId};
pub use types::{
    ConstId, Fact, FieldQual, FieldType, RegionExpr, RhoId, StructDecl, StructId, VarType,
    TRADITIONAL_CONST,
};
