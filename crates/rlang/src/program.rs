//! rlang programs (paper Figure 5).
//!
//! rlang is "a simple imperative language with regions": functions with
//! parameters, local variables and a result variable; statements are
//! assignments, field reads/writes, object creation, runtime checks `chk δ`
//! and the usual sequencing/if/while. The language exists to be the target
//! of the RC translation (§4.3): analysing the translated program lets the
//! compiler eliminate provably-redundant runtime checks.
//!
//! The representation here bakes in the translation's invariants: every
//! variable `x` has its own abstract region ρₓ (its [`RhoId`] equals its
//! [`VarId`]), every struct has exactly one region parameter (the region it
//! is stored in), and `chk` facts are expressed directly over variable
//! regions.

use crate::types::{Fact, RhoId, StructDecl, StructId, VarType};

/// Identifier of a variable within a function (parameters first, then
/// locals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The abstract region owned by this variable (ρₓ).
    pub fn rho(self) -> RhoId {
        RhoId(self.0)
    }
}

/// Identifier of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

/// Identifier of a check/assignment site, shared with the RC front end so
/// that elimination verdicts can be applied to the lowered code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

/// What a call statement invokes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Callee {
    /// A user-defined function.
    User(FuncId),
    /// `newregion()`: fresh top-level region.
    NewRegion,
    /// `newsubregion(r)`: fresh subregion of the argument.
    NewSubRegion,
    /// `deleteregion(r)`.
    DeleteRegion,
    /// `regionof(x)`: the region of the argument's target.
    RegionOf,
}

/// An rlang statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Sequential composition.
    Seq(Vec<Stmt>),
    /// `if x s1 s2` — "assume null is false and everything else is true":
    /// a region-carrying condition refines both branches.
    If {
        /// Condition variable.
        cond: VarId,
        /// Taken when `cond` is non-null / non-zero.
        then_s: Box<Stmt>,
        /// Taken when `cond` is null / zero.
        else_s: Box<Stmt>,
    },
    /// `while x s`.
    While {
        /// Condition variable.
        cond: VarId,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `x0 = x1` (the destination is never used elsewhere in the
    /// statement, per the translation).
    Assign {
        /// Destination.
        dst: VarId,
        /// Source.
        src: VarId,
    },
    /// `x0 = null`.
    AssignNull {
        /// Destination.
        dst: VarId,
    },
    /// `x0 = x1.field` — also establishes that `x1` is non-null.
    ReadField {
        /// Destination.
        dst: VarId,
        /// Dereferenced object.
        obj: VarId,
        /// Field index in the struct declaration.
        field: usize,
    },
    /// `x1.field = x2` — also establishes that `x1` is non-null. In
    /// translated RC code every annotated field write is preceded by the
    /// matching [`Stmt::Chk`].
    WriteField {
        /// Dereferenced object.
        obj: VarId,
        /// Field index.
        field: usize,
        /// Stored value.
        src: VarId,
    },
    /// `x0 = new T(...)@x'` — `ralloc`: a fresh object of `ty` in the
    /// region designated by the handle `region` (fields start null).
    New {
        /// Destination.
        dst: VarId,
        /// Struct allocated.
        ty: StructId,
        /// Region-handle variable.
        region: VarId,
    },
    /// `x0 = f(...)` or a predefined-function call.
    Call {
        /// Destination (None for calls used as statements).
        dst: Option<VarId>,
        /// What is invoked.
        callee: Callee,
        /// Argument variables.
        args: Vec<VarId>,
    },
    /// `chk δ`: a runtime check; execution aborts if `fact` does not hold.
    /// Check elimination asks whether the flow state already entails
    /// `fact`.
    Chk {
        /// The checked property (over variable regions).
        fact: Fact,
        /// Site shared with the RC lowering.
        site: SiteId,
    },
    /// The destination receives a value about whose region nothing is
    /// known (array-element reads, unmodelled library calls). This is what
    /// makes the `objects[23]` idiom of §5.2 unverifiable.
    Havoc {
        /// Destination.
        dst: VarId,
    },
    /// Facts known to hold by construction (e.g. a read of a
    /// `traditional`-qualified global is null or in the traditional
    /// region). Unlike [`Stmt::Chk`] this is not a runtime check — it
    /// encodes knowledge the translation has about unmodelled storage.
    Assume {
        /// The assumed facts.
        facts: Vec<Fact>,
    },
    /// `return x` / `return`: assigns the function's result variable (if
    /// any), contributes the current state to the function's output
    /// summary, and makes the fall-through unreachable.
    Return {
        /// Returned variable (None for void).
        src: Option<VarId>,
    },
    /// `task r s` — the lowering of RC's `spawn r { ... }`: `s` runs in
    /// another heap shard that receives exclusive ownership of `region`'s
    /// subtree (see the `region-rt` shard module). The front end
    /// guarantees `s` touches only that subtree and task-local state, so
    /// from the parent's perspective the statement has no dataflow
    /// effects; the body is analysed in isolation for its own checks.
    Task {
        /// The region handle whose subtree moves to the task.
        region: VarId,
        /// The task body.
        body: Box<Stmt>,
    },
}

impl Stmt {
    /// An empty statement.
    pub fn skip() -> Stmt {
        Stmt::Seq(Vec::new())
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    /// Name (diagnostics).
    pub name: String,
    /// Whether the function is visible outside the analysed file; exported
    /// functions (and those called via function pointers) "have empty
    /// input, output and result constraint sets".
    pub exported: bool,
    /// Parameter types (variables `0..params.len()`).
    pub params: Vec<VarType>,
    /// Local variable types (variables `params.len()..`).
    pub locals: Vec<VarType>,
    /// The variable holding the result (always a local, never a
    /// parameter), or `None` for void functions.
    pub result: Option<VarId>,
    /// The body.
    pub body: Stmt,
}

impl FuncDef {
    /// Total number of variables.
    pub fn var_count(&self) -> usize {
        self.params.len() + self.locals.len()
    }

    /// The type of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var_type(&self, v: VarId) -> VarType {
        let i = v.0 as usize;
        if i < self.params.len() {
            self.params[i]
        } else {
            self.locals[i - self.params.len()]
        }
    }

    /// Whether `v` carries a region of interest.
    pub fn var_has_region(&self, v: VarId) -> bool {
        self.var_type(v).has_region()
    }

    /// Region-carrying parameter variables — the function's abstract
    /// region parameters in the summaries.
    pub fn region_params(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.params.len() as u32).map(VarId).filter(|&v| self.var_has_region(v))
    }
}

/// A whole rlang program (one "source file" for the analysis, which "is
/// restricted ... to a single source file").
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Struct declarations.
    pub structs: Vec<StructDecl>,
    /// Function definitions.
    pub funcs: Vec<FuncDef>,
    /// Names of region constants (index 0 is the traditional region).
    pub consts: Vec<String>,
}

impl Program {
    /// An empty program with the traditional-region constant predefined.
    pub fn new() -> Program {
        Program { structs: Vec::new(), funcs: Vec::new(), consts: vec!["R_T".to_string()] }
    }

    /// Adds a struct and returns its id.
    pub fn add_struct(&mut self, decl: StructDecl) -> StructId {
        let id = StructId(self.structs.len() as u32);
        self.structs.push(decl);
        id
    }

    /// Adds a function and returns its id.
    pub fn add_func(&mut self, def: FuncDef) -> FuncId {
        let id = FuncId(self.funcs.len() as u32);
        self.funcs.push(def);
        id
    }

    /// Looks up a struct.
    ///
    /// # Panics
    ///
    /// Panics for a foreign id.
    pub fn struct_decl(&self, id: StructId) -> &StructDecl {
        &self.structs[id.0 as usize]
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics for a foreign id.
    pub fn func(&self, id: FuncId) -> &FuncDef {
        &self.funcs[id.0 as usize]
    }

    /// All check sites in the program, in a deterministic order.
    pub fn all_sites(&self) -> Vec<SiteId> {
        let mut out = Vec::new();
        for f in &self.funcs {
            collect_sites(&f.body, &mut out);
        }
        out.sort();
        out
    }
}

fn collect_sites(s: &Stmt, out: &mut Vec<SiteId>) {
    match s {
        Stmt::Seq(ss) => ss.iter().for_each(|s| collect_sites(s, out)),
        Stmt::If { then_s, else_s, .. } => {
            collect_sites(then_s, out);
            collect_sites(else_s, out);
        }
        Stmt::While { body, .. } | Stmt::Task { body, .. } => collect_sites(body, out),
        Stmt::Chk { site, .. } => out.push(*site),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{FieldQual, FieldType};

    #[test]
    fn var_types_split_params_and_locals() {
        let f = FuncDef {
            name: "f".into(),
            exported: false,
            params: vec![VarType::Ptr(StructId(0)), VarType::Int],
            locals: vec![VarType::Region],
            result: Some(VarId(2)),
            body: Stmt::skip(),
        };
        assert_eq!(f.var_count(), 3);
        assert_eq!(f.var_type(VarId(0)), VarType::Ptr(StructId(0)));
        assert_eq!(f.var_type(VarId(1)), VarType::Int);
        assert_eq!(f.var_type(VarId(2)), VarType::Region);
        assert_eq!(f.region_params().collect::<Vec<_>>(), vec![VarId(0)]);
    }

    #[test]
    fn program_collects_sites() {
        let mut p = Program::new();
        p.add_struct(StructDecl {
            name: "t".into(),
            fields: vec![("next".into(), FieldType::Ptr { target: StructId(0), qual: FieldQual::SameRegion })],
        });
        let body = Stmt::Seq(vec![
            Stmt::Chk { fact: Fact::NotTop(crate::types::RegionExpr::Abstract(RhoId(0))), site: SiteId(4) },
            Stmt::While {
                cond: VarId(0),
                body: Box::new(Stmt::Chk {
                    fact: Fact::NotTop(crate::types::RegionExpr::Abstract(RhoId(0))),
                    site: SiteId(2),
                }),
            },
        ]);
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Int],
            result: None,
            body,
        });
        assert_eq!(p.all_sites(), vec![SiteId(2), SiteId(4)]);
        assert_eq!(p.consts[0], "R_T");
    }
}
