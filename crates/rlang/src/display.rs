//! Pretty-printing of rlang programs.
//!
//! Renders programs in a notation close to the paper's Figure 5, with the
//! §4.3 existential field types spelled out — useful for debugging
//! translations and for documentation. The output is stable, so tests can
//! golden-match it.

use std::fmt::Write as _;

use crate::program::{Callee, FuncDef, Program, Stmt, VarId};
use crate::types::{FieldQual, FieldType, VarType};

/// Renders a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for (i, s) in p.structs.iter().enumerate() {
        let _ = writeln!(out, "struct {}[ρ] {{  // #{i}", s.name);
        for (fname, fty) in &s.fields {
            let _ = writeln!(out, "    {fname}: {};", field_type_str(p, fty));
        }
        let _ = writeln!(out, "}}");
    }
    for (i, f) in p.funcs.iter().enumerate() {
        let _ = writeln!(out, "\n{}", func_signature(p, f, i));
        let mut body = String::new();
        stmt(&mut body, p, f, &f.body, 1);
        out.push_str(&body);
    }
    out
}

fn field_type_str(p: &Program, fty: &FieldType) -> String {
    match fty {
        FieldType::Int => "int".into(),
        FieldType::Region => "∃ρ'. region@ρ'".into(),
        FieldType::Ptr { target, qual } => {
            let t = &p.struct_decl(*target).name;
            match qual {
                FieldQual::Unknown => format!("∃ρ'. {t}[ρ']@ρ'"),
                FieldQual::SameRegion => format!("∃ρ'/ρ'=⊤ ∨ ρ'=ρ. {t}[ρ']@ρ'"),
                FieldQual::ParentPtr => format!("∃ρ'/ρ ≤ ρ'. {t}[ρ']@ρ'"),
                FieldQual::Traditional => format!("∃ρ'/ρ'=⊤ ∨ ρ'=R_T. {t}[ρ']@ρ'"),
            }
        }
    }
}

fn var_type_str(p: &Program, v: VarType, rho: u32) -> String {
    match v {
        VarType::Int => "int".into(),
        VarType::Region => format!("region@ρ{rho}"),
        VarType::Ptr(sid) => {
            format!("{}[ρ{rho}]@ρ{rho}", p.struct_decl(sid).name)
        }
    }
}

fn func_signature(p: &Program, f: &FuncDef, idx: usize) -> String {
    let params: Vec<String> = f
        .params
        .iter()
        .enumerate()
        .map(|(i, &t)| format!("x{}: {}", i, var_type_str(p, t, i as u32)))
        .collect();
    let vis = if f.exported { "export " } else { "" };
    format!("{vis}fn {}({})  // #{idx}", f.name, params.join(", "))
}

fn v(x: VarId) -> String {
    format!("x{}", x.0)
}

fn stmt(out: &mut String, p: &Program, f: &FuncDef, s: &Stmt, depth: usize) {
    let pad = "    ".repeat(depth);
    match s {
        Stmt::Seq(ss) => {
            for s in ss {
                stmt(out, p, f, s, depth);
            }
        }
        Stmt::If { cond, then_s, else_s } => {
            let _ = writeln!(out, "{pad}if {} {{", v(*cond));
            stmt(out, p, f, then_s, depth + 1);
            let _ = writeln!(out, "{pad}}} else {{");
            stmt(out, p, f, else_s, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "{pad}while {} {{", v(*cond));
            stmt(out, p, f, body, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Assign { dst, src } => {
            let _ = writeln!(out, "{pad}{} = {};", v(*dst), v(*src));
        }
        Stmt::AssignNull { dst } => {
            let _ = writeln!(out, "{pad}{} = null;", v(*dst));
        }
        Stmt::Havoc { dst } => {
            let _ = writeln!(out, "{pad}{} = ⟨unknown⟩;", v(*dst));
        }
        Stmt::ReadField { dst, obj, field } => {
            let _ = writeln!(out, "{pad}{} = {}.{};", v(*dst), v(*obj), field_name(p, f, *obj, *field));
        }
        Stmt::WriteField { obj, field, src } => {
            let _ = writeln!(out, "{pad}{}.{} = {};", v(*obj), field_name(p, f, *obj, *field), v(*src));
        }
        Stmt::New { dst, ty, region } => {
            let _ = writeln!(
                out,
                "{pad}{} = new {}[ρ{}](…)@{};",
                v(*dst),
                p.struct_decl(*ty).name,
                dst.0,
                v(*region)
            );
        }
        Stmt::Call { dst, callee, args } => {
            let name = match callee {
                Callee::User(g) => p.func(*g).name.clone(),
                Callee::NewRegion => "newregion".into(),
                Callee::NewSubRegion => "newsubregion".into(),
                Callee::DeleteRegion => "deleteregion".into(),
                Callee::RegionOf => "regionof".into(),
            };
            let args: Vec<String> = args.iter().map(|&a| v(a)).collect();
            match dst {
                Some(d) => {
                    let _ = writeln!(out, "{pad}{} = {name}({});", v(*d), args.join(", "));
                }
                None => {
                    let _ = writeln!(out, "{pad}{name}({});", args.join(", "));
                }
            }
        }
        Stmt::Chk { fact, site } => {
            let _ = writeln!(out, "{pad}chk {fact};  // site {}", site.0);
        }
        Stmt::Assume { facts } => {
            let fs: Vec<String> = facts.iter().map(|f| f.to_string()).collect();
            let _ = writeln!(out, "{pad}assume {};", fs.join(" ∧ "));
        }
        Stmt::Task { region, body } => {
            let _ = writeln!(out, "{pad}task {} {{", v(*region));
            stmt(out, p, f, body, depth + 1);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Return { src } => match src {
            Some(s) => {
                let _ = writeln!(out, "{pad}return {};", v(*s));
            }
            None => {
                let _ = writeln!(out, "{pad}return;");
            }
        },
    }
}

fn field_name(p: &Program, f: &FuncDef, obj: VarId, field: usize) -> String {
    if let VarType::Ptr(sid) = f.var_type(obj) {
        if let Some((name, _)) = p.struct_decl(sid).fields.get(field) {
            return name.clone();
        }
    }
    format!("f{field}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::SiteId;
    use crate::types::{Fact, FieldQual, RegionExpr, RhoId, StructDecl, StructId};

    #[test]
    fn renders_figure1_shape() {
        let mut p = Program::new();
        p.add_struct(StructDecl {
            name: "rlist".into(),
            fields: vec![(
                "next".into(),
                FieldType::Ptr { target: StructId(0), qual: FieldQual::SameRegion },
            )],
        });
        let (r, x, y) = (VarId(0), VarId(1), VarId(2));
        p.add_func(FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Region, VarType::Ptr(StructId(0)), VarType::Ptr(StructId(0))],
            result: None,
            body: Stmt::Seq(vec![
                Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
                Stmt::New { dst: x, ty: StructId(0), region: r },
                Stmt::AssignNull { dst: y },
                Stmt::Chk {
                    fact: Fact::EqOrNull(
                        RegionExpr::Abstract(y.rho()),
                        RegionExpr::Abstract(x.rho()),
                    ),
                    site: SiteId(0),
                },
                Stmt::WriteField { obj: x, field: 0, src: y },
                Stmt::Return { src: None },
            ]),
        });
        let text = program_to_string(&p);
        assert!(text.contains("struct rlist[ρ]"), "{text}");
        assert!(text.contains("∃ρ'/ρ'=⊤ ∨ ρ'=ρ. rlist[ρ']@ρ'"), "{text}");
        assert!(text.contains("x0 = newregion();"), "{text}");
        assert!(text.contains("chk "), "{text}");
        assert!(text.contains("x1.next = x2;"), "{text}");
    }

    #[test]
    fn renders_every_statement_form() {
        let mut p = Program::new();
        p.add_struct(StructDecl { name: "t".into(), fields: vec![("x".into(), FieldType::Int)] });
        let body = Stmt::Seq(vec![
            Stmt::Havoc { dst: VarId(0) },
            Stmt::Assume { facts: vec![Fact::NotTop(RegionExpr::Abstract(RhoId(0)))] },
            Stmt::If {
                cond: VarId(1),
                then_s: Box::new(Stmt::Assign { dst: VarId(0), src: VarId(2) }),
                else_s: Box::new(Stmt::skip()),
            },
            Stmt::While { cond: VarId(1), body: Box::new(Stmt::skip()) },
        ]);
        p.add_func(FuncDef {
            name: "f".into(),
            exported: false,
            params: vec![VarType::Ptr(StructId(0))],
            locals: vec![VarType::Int, VarType::Ptr(StructId(0))],
            result: None,
            body,
        });
        let text = program_to_string(&p);
        for needle in ["⟨unknown⟩", "assume", "if x1 {", "while x1 {", "fn f(x0:"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
