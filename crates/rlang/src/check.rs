//! Structural well-formedness of rlang programs.
//!
//! The inference ([`crate::infer`]) assumes the translation's invariants:
//! variable and field indices in range, arities matching, results held in
//! locals, `chk` facts mentioning only the function's own abstract
//! regions. [`well_formed`] verifies all of that up front, so a malformed
//! hand-built program fails with a message instead of a panic deep inside
//! the dataflow engine. (The semantic counterpart — Figure 6's checking
//! judgments against a set of summaries — is [`crate::infer::validate`].)

use crate::program::{Callee, FuncDef, Program, Stmt, VarId};
use crate::types::{FieldType, RhoId, VarType};

/// A structural defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WfError {
    /// Function where the defect was found (or `<program>`).
    pub func: String,
    /// What is wrong.
    pub msg: String,
}

impl std::fmt::Display for WfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "in {}: {}", self.func, self.msg)
    }
}

impl std::error::Error for WfError {}

/// Checks every structural invariant the analysis relies on.
///
/// # Errors
///
/// Returns the first defect found.
pub fn well_formed(prog: &Program) -> Result<(), WfError> {
    for decl in &prog.structs {
        for (fname, fty) in &decl.fields {
            if let FieldType::Ptr { target, .. } = fty {
                if target.0 as usize >= prog.structs.len() {
                    return Err(WfError {
                        func: "<program>".into(),
                        msg: format!(
                            "struct `{}` field `{fname}` targets unknown struct #{}",
                            decl.name, target.0
                        ),
                    });
                }
            }
        }
    }
    for f in &prog.funcs {
        check_func(prog, f)?;
    }
    Ok(())
}

fn check_func(prog: &Program, f: &FuncDef) -> Result<(), WfError> {
    let err = |msg: String| Err(WfError { func: f.name.clone(), msg });
    if let Some(r) = f.result {
        if (r.0 as usize) < f.params.len() {
            return err("result variable is a parameter; it must be a local".into());
        }
        if r.0 as usize >= f.var_count() {
            return err(format!("result variable v{} out of range", r.0));
        }
    }
    check_stmt(prog, f, &f.body)
}

fn check_var(f: &FuncDef, v: VarId) -> Result<(), String> {
    if (v.0 as usize) >= f.var_count() {
        return Err(format!("variable v{} out of range (have {})", v.0, f.var_count()));
    }
    Ok(())
}

fn check_stmt(prog: &Program, f: &FuncDef, s: &Stmt) -> Result<(), WfError> {
    let wrap = |r: Result<(), String>| {
        r.map_err(|msg| WfError { func: f.name.clone(), msg })
    };
    match s {
        Stmt::Seq(ss) => ss.iter().try_for_each(|s| check_stmt(prog, f, s)),
        Stmt::If { cond, then_s, else_s } => {
            wrap(check_var(f, *cond))?;
            check_stmt(prog, f, then_s)?;
            check_stmt(prog, f, else_s)
        }
        Stmt::While { cond, body } => {
            wrap(check_var(f, *cond))?;
            check_stmt(prog, f, body)
        }
        Stmt::Assign { dst, src } => {
            wrap(check_var(f, *dst))?;
            wrap(check_var(f, *src))?;
            if dst == src {
                return wrap(Err(format!(
                    "assignment v{} = v{}: destination used in the statement",
                    dst.0, src.0
                )));
            }
            Ok(())
        }
        Stmt::AssignNull { dst } | Stmt::Havoc { dst } => wrap(check_var(f, *dst)),
        Stmt::ReadField { dst, obj, field } => {
            wrap(check_var(f, *dst))?;
            wrap(check_var(f, *obj))?;
            wrap(check_field(prog, f, *obj, *field))
        }
        Stmt::WriteField { obj, field, src } => {
            wrap(check_var(f, *obj))?;
            wrap(check_var(f, *src))?;
            wrap(check_field(prog, f, *obj, *field))
        }
        Stmt::New { dst, ty, region } => {
            wrap(check_var(f, *dst))?;
            wrap(check_var(f, *region))?;
            if ty.0 as usize >= prog.structs.len() {
                return wrap(Err(format!("new of unknown struct #{}", ty.0)));
            }
            if f.var_type(*region) != VarType::Region {
                return wrap(Err(format!("new through non-region variable v{}", region.0)));
            }
            Ok(())
        }
        Stmt::Call { dst, callee, args } => {
            if let Some(d) = dst {
                wrap(check_var(f, *d))?;
            }
            args.iter().try_for_each(|&a| wrap(check_var(f, a)))?;
            match callee {
                Callee::User(g) => {
                    let Some(gf) = prog.funcs.get(g.0 as usize) else {
                        return wrap(Err(format!("call to unknown function #{}", g.0)));
                    };
                    if gf.params.len() != args.len() {
                        return wrap(Err(format!(
                            "call to `{}`: {} argument(s), expected {}",
                            gf.name,
                            args.len(),
                            gf.params.len()
                        )));
                    }
                    Ok(())
                }
                Callee::NewRegion => expect_arity(f, args, 0).map_err(wf(f)),
                Callee::NewSubRegion | Callee::DeleteRegion | Callee::RegionOf => {
                    expect_arity(f, args, 1).map_err(wf(f))
                }
            }
        }
        Stmt::Chk { fact, .. } => {
            wrap(check_fact_scope(f, fact.exprs().filter_map(|e| e.rho())))
        }
        Stmt::Assume { facts } => wrap(check_fact_scope(
            f,
            facts.iter().flat_map(|fa| fa.exprs()).filter_map(|e| e.rho()),
        )),
        Stmt::Return { src } => match src {
            None => Ok(()),
            Some(v) => wrap(check_var(f, *v)),
        },
        Stmt::Task { region, body } => {
            wrap(check_var(f, *region))?;
            if f.var_type(*region) != VarType::Region {
                return wrap(Err(format!("task through non-region variable v{}", region.0)));
            }
            check_stmt(prog, f, body)
        }
    }
}

fn wf(f: &FuncDef) -> impl Fn(String) -> WfError + '_ {
    move |msg| WfError { func: f.name.clone(), msg }
}

fn expect_arity(_f: &FuncDef, args: &[VarId], n: usize) -> Result<(), String> {
    if args.len() != n {
        return Err(format!("predefined call: {} argument(s), expected {n}", args.len()));
    }
    Ok(())
}

fn check_field(prog: &Program, f: &FuncDef, obj: VarId, field: usize) -> Result<(), String> {
    match f.var_type(obj) {
        VarType::Ptr(sid) => {
            let decl = prog.struct_decl(sid);
            if field >= decl.fields.len() {
                return Err(format!(
                    "field #{field} out of range for struct `{}`",
                    decl.name
                ));
            }
            Ok(())
        }
        other => Err(format!("field access through non-pointer v{} ({other:?})", obj.0)),
    }
}

fn check_fact_scope(f: &FuncDef, rhos: impl Iterator<Item = RhoId>) -> Result<(), String> {
    for RhoId(i) in rhos {
        if i as usize >= f.var_count() {
            return Err(format!("fact mentions ρ{i}, beyond the function's variables"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{FuncDef, Program, SiteId};
    use crate::types::{Fact, FieldQual, RegionExpr, StructDecl, StructId};

    fn base_prog() -> Program {
        let mut p = Program::new();
        p.add_struct(StructDecl {
            name: "t".into(),
            fields: vec![(
                "next".into(),
                FieldType::Ptr { target: StructId(0), qual: FieldQual::SameRegion },
            )],
        });
        p
    }

    fn func(body: Stmt, locals: Vec<VarType>) -> FuncDef {
        FuncDef {
            name: "main".into(),
            exported: true,
            params: vec![],
            locals,
            result: None,
            body,
        }
    }

    #[test]
    fn good_program_passes() {
        let mut p = base_prog();
        let body = Stmt::Seq(vec![
            Stmt::Call { dst: Some(VarId(0)), callee: Callee::NewRegion, args: vec![] },
            Stmt::New { dst: VarId(1), ty: StructId(0), region: VarId(0) },
            Stmt::WriteField { obj: VarId(1), field: 0, src: VarId(1) },
        ]);
        p.add_func(func(body, vec![VarType::Region, VarType::Ptr(StructId(0))]));
        assert_eq!(well_formed(&p), Ok(()));
    }

    #[test]
    fn out_of_range_variable_rejected() {
        let mut p = base_prog();
        p.add_func(func(Stmt::AssignNull { dst: VarId(7) }, vec![VarType::Int]));
        let e = well_formed(&p).unwrap_err();
        assert!(e.msg.contains("out of range"), "{e}");
    }

    #[test]
    fn bad_field_rejected() {
        let mut p = base_prog();
        p.add_func(func(
            Stmt::ReadField { dst: VarId(0), obj: VarId(0), field: 9 },
            vec![VarType::Ptr(StructId(0))],
        ));
        let e = well_formed(&p).unwrap_err();
        assert!(e.msg.contains("field"), "{e}");
    }

    #[test]
    fn self_assignment_rejected() {
        let mut p = base_prog();
        p.add_func(func(
            Stmt::Assign { dst: VarId(0), src: VarId(0) },
            vec![VarType::Ptr(StructId(0))],
        ));
        assert!(well_formed(&p).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut p = base_prog();
        let callee = p.add_func(func(Stmt::skip(), vec![]));
        let body = Stmt::Call {
            dst: None,
            callee: Callee::User(callee),
            args: vec![VarId(0)],
        };
        p.add_func(FuncDef {
            name: "caller".into(),
            exported: true,
            params: vec![],
            locals: vec![VarType::Int],
            result: None,
            body,
        });
        let e = well_formed(&p).unwrap_err();
        assert!(e.msg.contains("argument"), "{e}");
    }

    #[test]
    fn fact_scope_enforced() {
        let mut p = base_prog();
        p.add_func(func(
            Stmt::Chk {
                fact: Fact::NotTop(RegionExpr::Abstract(RhoId(40))),
                site: SiteId(0),
            },
            vec![VarType::Int],
        ));
        let e = well_formed(&p).unwrap_err();
        assert!(e.msg.contains("ρ40"), "{e}");
    }

    #[test]
    fn result_must_be_local() {
        let mut p = base_prog();
        p.add_func(FuncDef {
            name: "f".into(),
            exported: true,
            params: vec![VarType::Int],
            locals: vec![],
            result: Some(VarId(0)),
            body: Stmt::skip(),
        });
        assert!(well_formed(&p).is_err());
    }

    #[test]
    fn inferred_summaries_always_validate() {
        // The greatest-fixed-point property, checked via Figure 6.
        let mut p = base_prog();
        let (r, x, y) = (VarId(0), VarId(1), VarId(2));
        p.add_func(func(
            Stmt::Seq(vec![
                Stmt::Call { dst: Some(r), callee: Callee::NewRegion, args: vec![] },
                Stmt::New { dst: x, ty: StructId(0), region: r },
                Stmt::New { dst: y, ty: StructId(0), region: r },
                Stmt::WriteField { obj: x, field: 0, src: y },
            ]),
            vec![VarType::Region, VarType::Ptr(StructId(0)), VarType::Ptr(StructId(0))],
        ));
        well_formed(&p).unwrap();
        let a = crate::infer::analyse(&p);
        assert!(crate::infer::validate(&p, &a).is_empty());
    }

    #[test]
    fn forged_summaries_fail_validation() {
        // Claim an output the body cannot prove.
        let mut p = base_prog();
        let f = p.add_func(FuncDef {
            name: "id".into(),
            exported: false,
            params: vec![VarType::Ptr(StructId(0))],
            locals: vec![VarType::Ptr(StructId(0))],
            result: Some(VarId(1)),
            body: Stmt::Seq(vec![Stmt::Havoc { dst: VarId(1) }, Stmt::Return { src: Some(VarId(1)) }]),
        });
        p.add_func(func(
            Stmt::Seq(vec![
                Stmt::Call { dst: Some(VarId(0)), callee: Callee::NewRegion, args: vec![] },
                Stmt::New { dst: VarId(1), ty: StructId(0), region: VarId(0) },
                Stmt::Call { dst: Some(VarId(2)), callee: Callee::User(f), args: vec![VarId(1)] },
            ]),
            vec![VarType::Region, VarType::Ptr(StructId(0)), VarType::Ptr(StructId(0))],
        ));
        let mut a = crate::infer::analyse(&p);
        // Forge: claim the result is always in the argument's region.
        a.summaries[f.0 as usize].output = crate::ConstraintSet::from_facts([Fact::Eq(
            RegionExpr::Abstract(RhoId(0)),
            RegionExpr::Abstract(RhoId(1)),
        )]);
        let violations = crate::infer::validate(&p, &a);
        assert!(!violations.is_empty(), "forged output summary must be caught");
    }
}
