//! Property tests for the constraint engine.
//!
//! The §4.3 inference is only correct if [`ConstraintSet::entails`] is
//! *sound* with respect to the heap model of Figure 4: whenever the engine
//! claims `δ ⊨ f`, every concrete valuation of region expressions into a
//! region forest (plus ⊤ for null) that satisfies δ must satisfy `f`.
//! These tests check that by brute force over random small models, and
//! check the lattice laws the dataflow analysis relies on.

use proptest::prelude::*;
use rlang::constraint::ConstraintSet;
use rlang::types::{ConstId, Fact, RegionExpr, RhoId};

/// A concrete model: a forest of `n` regions (parent pointers, region 0 is
/// the root, representing the traditional region) and a valuation mapping
/// each abstract region to either a region index or ⊤ (None).
#[derive(Debug, Clone)]
struct Model {
    parent: Vec<Option<usize>>,
    /// Valuation for abstract regions ρ0..ρk.
    val: Vec<Option<usize>>,
}

impl Model {
    /// `a ≤ b` in the forest (with `x ≤ ⊤` for all x, `⊤ ≤ ⊤`).
    fn le(&self, a: Option<usize>, b: Option<usize>) -> bool {
        match (a, b) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(mut x), Some(y)) => loop {
                if x == y {
                    return true;
                }
                match self.parent[x] {
                    Some(p) => x = p,
                    None => return false,
                }
            },
        }
    }

    fn eval_expr(&self, e: RegionExpr) -> Option<usize> {
        match e {
            RegionExpr::Top => None,
            // The single region constant R_T is region 0, the forest root.
            RegionExpr::Const(ConstId(_)) => Some(0),
            RegionExpr::Abstract(RhoId(i)) => self.val[i as usize % self.val.len()],
        }
    }

    fn satisfies(&self, f: Fact) -> bool {
        match f {
            Fact::IsTop(a) => self.eval_expr(a).is_none(),
            Fact::NotTop(a) => self.eval_expr(a).is_some(),
            Fact::Sub(a, b) => self.le(self.eval_expr(a), self.eval_expr(b)),
            Fact::Eq(a, b) => self.eval_expr(a) == self.eval_expr(b),
            Fact::EqOrNull(a, b) => {
                let va = self.eval_expr(a);
                va.is_none() || va == self.eval_expr(b)
            }
        }
    }

    fn satisfies_all(&self, s: &ConstraintSet) -> bool {
        !s.is_contradictory() && s.facts().all(|f| self.satisfies(f))
    }
}

const N_RHOS: u32 = 4;
const N_REGIONS: usize = 4;

fn arb_expr() -> impl Strategy<Value = RegionExpr> {
    prop_oneof![
        (0..N_RHOS).prop_map(|i| RegionExpr::Abstract(RhoId(i))),
        Just(RegionExpr::Top),
        Just(RegionExpr::Const(ConstId(0))),
    ]
}

fn arb_fact() -> impl Strategy<Value = Fact> {
    (arb_expr(), arb_expr(), 0..5u8).prop_map(|(a, b, k)| match k {
        0 => Fact::IsTop(a),
        1 => Fact::NotTop(a),
        2 => Fact::Sub(a, b),
        3 => Fact::Eq(a, b),
        _ => Fact::EqOrNull(a, b),
    })
}

fn arb_model() -> impl Strategy<Value = Model> {
    // parent[i] < i keeps it a forest rooted at 0; region 0 is the root.
    let parents = (0..N_REGIONS)
        .map(|i| {
            if i == 0 {
                Just(None).boxed()
            } else {
                prop_oneof![Just(None), (0..i).prop_map(Some)].boxed()
            }
        })
        .collect::<Vec<_>>();
    let vals = proptest::collection::vec(
        prop_oneof![Just(None), (0..N_REGIONS).prop_map(Some)],
        N_RHOS as usize,
    );
    (parents, vals).prop_map(|(mut parent, val)| {
        // Everything not rooted at 0 gets re-rooted under 0 so the
        // traditional region is the global root, as in the runtime.
        for p in parent.iter_mut().skip(1) {
            if p.is_none() {
                *p = Some(0);
            }
        }
        Model { parent, val }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Soundness: a syntactic entailment claim must hold in every model
    /// of the fact set.
    #[test]
    fn entailment_is_sound(
        facts in proptest::collection::vec(arb_fact(), 0..6),
        query in arb_fact(),
        model in arb_model(),
    ) {
        let s = ConstraintSet::from_facts(facts);
        if s.entails(query) && model.satisfies_all(&s) {
            prop_assert!(
                model.satisfies(query),
                "claimed {s} ⊨ {query}, but the model refutes it"
            );
        }
    }

    /// Saturation only adds consequences: every fact in the saturated set
    /// holds in every model of the set.
    #[test]
    fn saturation_is_sound(
        facts in proptest::collection::vec(arb_fact(), 0..6),
        model in arb_model(),
    ) {
        let s = ConstraintSet::from_facts(facts.clone());
        if model.satisfies_all(&s) {
            // The model satisfies the saturated set; in particular the
            // original facts imply every derived one on this model.
            for f in s.facts() {
                prop_assert!(model.satisfies(f));
            }
        }
        // And if the set went contradictory, no model can satisfy all the
        // *original* facts.
        if s.is_contradictory() {
            let orig_ok = facts.iter().all(|&f| model.satisfies(f));
            prop_assert!(!orig_ok, "contradictory set has a model");
        }
    }

    /// The meet is a lower bound of both operands (the dataflow join is
    /// conservative): everything the meet claims, both inputs claimed.
    #[test]
    fn meet_is_lower_bound(
        a in proptest::collection::vec(arb_fact(), 0..5),
        b in proptest::collection::vec(arb_fact(), 0..5),
    ) {
        let sa = ConstraintSet::from_facts(a);
        let sb = ConstraintSet::from_facts(b);
        let m = sa.meet(&sb);
        prop_assert!(sa.entails_all(&m), "meet not below left operand");
        prop_assert!(sb.entails_all(&m), "meet not below right operand");
    }

    /// Meet is idempotent and commutative.
    #[test]
    fn meet_laws(
        a in proptest::collection::vec(arb_fact(), 0..5),
        b in proptest::collection::vec(arb_fact(), 0..5),
    ) {
        let sa = ConstraintSet::from_facts(a);
        let sb = ConstraintSet::from_facts(b);
        prop_assert_eq!(sa.meet(&sa), sa.clone());
        let ab = sa.meet(&sb);
        let ba = sb.meet(&sa);
        prop_assert!(ab.entails_all(&ba) && ba.entails_all(&ab));
    }

    /// Killing a region keeps only facts that do not mention it, and never
    /// invents knowledge: the original set entails everything that
    /// survives.
    #[test]
    fn kill_is_sound(
        facts in proptest::collection::vec(arb_fact(), 0..6),
        rho in 0..N_RHOS,
    ) {
        let s = ConstraintSet::from_facts(facts);
        let mut killed = s.clone();
        killed.kill_rho(RhoId(rho));
        if !killed.is_contradictory() {
            for f in killed.facts() {
                prop_assert!(!f.mentions(RhoId(rho)));
                prop_assert!(s.entails(f), "kill invented {f}");
            }
        }
    }

    /// Substitution commutes with entailment: if δ ⊨ f then δσ ⊨ fσ.
    #[test]
    fn subst_preserves_entailment(
        facts in proptest::collection::vec(arb_fact(), 0..5),
        query in arb_fact(),
        target in arb_expr(),
    ) {
        let s = ConstraintSet::from_facts(facts);
        if s.entails(query) {
            let subst = vec![target; N_RHOS as usize];
            let s2 = s.subst(&subst);
            if let Some(q2) = query.subst(&subst) {
                prop_assert!(s2.entails(q2), "substitution broke entailment");
            }
        }
    }
}
