//! Property tests for the constraint engine.
//!
//! The §4.3 inference is only correct if [`ConstraintSet::entails`] is
//! *sound* with respect to the heap model of Figure 4: whenever the engine
//! claims `δ ⊨ f`, every concrete valuation of region expressions into a
//! region forest (plus ⊤ for null) that satisfies δ must satisfy `f`.
//! These tests check that by brute force over random small models, and
//! check the lattice laws the dataflow analysis relies on.
//!
//! The randomness is a hand-rolled SplitMix64 over fixed seeds (the build
//! environment is offline, so no proptest): every failure reproduces by
//! seed, and every run covers exactly the same cases.

use rlang::constraint::ConstraintSet;
use rlang::types::{ConstId, Fact, RegionExpr, RhoId};

/// SplitMix64: tiny, well-distributed, and deterministic across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A concrete model: a forest of `n` regions (parent pointers, region 0 is
/// the root, representing the traditional region) and a valuation mapping
/// each abstract region to either a region index or ⊤ (None).
#[derive(Debug, Clone)]
struct Model {
    parent: Vec<Option<usize>>,
    /// Valuation for abstract regions ρ0..ρk.
    val: Vec<Option<usize>>,
}

impl Model {
    /// `a ≤ b` in the forest (with `x ≤ ⊤` for all x, `⊤ ≤ ⊤`).
    fn le(&self, a: Option<usize>, b: Option<usize>) -> bool {
        match (a, b) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(mut x), Some(y)) => loop {
                if x == y {
                    return true;
                }
                match self.parent[x] {
                    Some(p) => x = p,
                    None => return false,
                }
            },
        }
    }

    fn eval_expr(&self, e: RegionExpr) -> Option<usize> {
        match e {
            RegionExpr::Top => None,
            // The single region constant R_T is region 0, the forest root.
            RegionExpr::Const(ConstId(_)) => Some(0),
            RegionExpr::Abstract(RhoId(i)) => self.val[i as usize % self.val.len()],
        }
    }

    fn satisfies(&self, f: Fact) -> bool {
        match f {
            Fact::IsTop(a) => self.eval_expr(a).is_none(),
            Fact::NotTop(a) => self.eval_expr(a).is_some(),
            Fact::Sub(a, b) => self.le(self.eval_expr(a), self.eval_expr(b)),
            Fact::Eq(a, b) => self.eval_expr(a) == self.eval_expr(b),
            Fact::EqOrNull(a, b) => {
                let va = self.eval_expr(a);
                va.is_none() || va == self.eval_expr(b)
            }
        }
    }

    fn satisfies_all(&self, s: &ConstraintSet) -> bool {
        !s.is_contradictory() && s.facts().all(|f| self.satisfies(f))
    }
}

const N_RHOS: u32 = 4;
const N_REGIONS: usize = 4;

fn rand_expr(rng: &mut Rng) -> RegionExpr {
    match rng.below(6) {
        0 => RegionExpr::Top,
        1 => RegionExpr::Const(ConstId(0)),
        _ => RegionExpr::Abstract(RhoId(rng.below(N_RHOS as usize) as u32)),
    }
}

fn rand_fact(rng: &mut Rng) -> Fact {
    let a = rand_expr(rng);
    let b = rand_expr(rng);
    match rng.below(5) {
        0 => Fact::IsTop(a),
        1 => Fact::NotTop(a),
        2 => Fact::Sub(a, b),
        3 => Fact::Eq(a, b),
        _ => Fact::EqOrNull(a, b),
    }
}

fn rand_facts(rng: &mut Rng, max: usize) -> Vec<Fact> {
    (0..rng.below(max)).map(|_| rand_fact(rng)).collect()
}

fn rand_model(rng: &mut Rng) -> Model {
    // parent[i] < i keeps it a forest; everything re-roots under 0 so the
    // traditional region is the global root, as in the runtime.
    let mut parent = vec![None];
    for i in 1..N_REGIONS {
        parent.push(Some(if rng.below(3) == 0 { 0 } else { rng.below(i) }));
    }
    let val = (0..N_RHOS)
        .map(|_| if rng.below(5) == 0 { None } else { Some(rng.below(N_REGIONS)) })
        .collect();
    Model { parent, val }
}

/// Soundness: a syntactic entailment claim must hold in every model of
/// the fact set.
#[test]
fn entailment_is_sound() {
    for seed in 0..512u64 {
        let mut rng = Rng::new(seed);
        let facts = rand_facts(&mut rng, 6);
        let query = rand_fact(&mut rng);
        let model = rand_model(&mut rng);
        let s = ConstraintSet::from_facts(facts);
        if s.entails(query) && model.satisfies_all(&s) {
            assert!(
                model.satisfies(query),
                "seed {seed}: claimed {s} ⊨ {query}, but the model refutes it"
            );
        }
    }
}

/// Saturation only adds consequences: every fact in the saturated set
/// holds in every model of the set.
#[test]
fn saturation_is_sound() {
    for seed in 0..512u64 {
        let mut rng = Rng::new(0x5A7 ^ seed);
        let facts = rand_facts(&mut rng, 6);
        let model = rand_model(&mut rng);
        let s = ConstraintSet::from_facts(facts.clone());
        if model.satisfies_all(&s) {
            // The model satisfies the saturated set; in particular the
            // original facts imply every derived one on this model.
            for f in s.facts() {
                assert!(model.satisfies(f), "seed {seed}: derived fact {f} fails");
            }
        }
        // And if the set went contradictory, no model can satisfy all the
        // *original* facts.
        if s.is_contradictory() {
            let orig_ok = facts.iter().all(|&f| model.satisfies(f));
            assert!(!orig_ok, "seed {seed}: contradictory set has a model");
        }
    }
}

/// The meet is a lower bound of both operands (the dataflow join is
/// conservative): everything the meet claims, both inputs claimed.
#[test]
fn meet_is_lower_bound() {
    for seed in 0..512u64 {
        let mut rng = Rng::new(0x3EE7 ^ seed);
        let sa = ConstraintSet::from_facts(rand_facts(&mut rng, 5));
        let sb = ConstraintSet::from_facts(rand_facts(&mut rng, 5));
        let m = sa.meet(&sb);
        assert!(sa.entails_all(&m), "seed {seed}: meet not below left operand");
        assert!(sb.entails_all(&m), "seed {seed}: meet not below right operand");
    }
}

/// Meet is idempotent and commutative.
#[test]
fn meet_laws() {
    for seed in 0..512u64 {
        let mut rng = Rng::new(0x1A55 ^ seed);
        let sa = ConstraintSet::from_facts(rand_facts(&mut rng, 5));
        let sb = ConstraintSet::from_facts(rand_facts(&mut rng, 5));
        assert_eq!(sa.meet(&sa), sa.clone(), "seed {seed}");
        let ab = sa.meet(&sb);
        let ba = sb.meet(&sa);
        assert!(ab.entails_all(&ba) && ba.entails_all(&ab), "seed {seed}");
    }
}

/// Killing a region keeps only facts that do not mention it, and never
/// invents knowledge: the original set entails everything that survives.
#[test]
fn kill_is_sound() {
    for seed in 0..512u64 {
        let mut rng = Rng::new(0xC111 ^ seed);
        let facts = rand_facts(&mut rng, 6);
        let rho = RhoId(rng.below(N_RHOS as usize) as u32);
        let s = ConstraintSet::from_facts(facts);
        let mut killed = s.clone();
        killed.kill_rho(rho);
        if !killed.is_contradictory() {
            for f in killed.facts() {
                assert!(!f.mentions(rho), "seed {seed}: {f} still mentions {rho:?}");
                assert!(s.entails(f), "seed {seed}: kill invented {f}");
            }
        }
    }
}

/// Substitution commutes with entailment: if δ ⊨ f then δσ ⊨ fσ.
#[test]
fn subst_preserves_entailment() {
    for seed in 0..512u64 {
        let mut rng = Rng::new(0x5B57 ^ seed);
        let facts = rand_facts(&mut rng, 5);
        let query = rand_fact(&mut rng);
        let target = rand_expr(&mut rng);
        let s = ConstraintSet::from_facts(facts);
        if s.entails(query) {
            let subst = vec![target; N_RHOS as usize];
            let s2 = s.subst(&subst);
            if let Some(q2) = query.subst(&subst) {
                assert!(s2.entails(q2), "seed {seed}: substitution broke entailment");
            }
        }
    }
}
