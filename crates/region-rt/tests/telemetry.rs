//! Telemetry integration: the folded profile must agree exactly with the
//! `Stats` counters for the same run, the ring must stay bounded, and a
//! zero mask must record nothing.

use region_rt::{
    mask, Addr, Heap, HeapConfig, PtrKind, SlotKind, TypeLayout, WriteMode,
};

fn workout(h: &mut Heap) {
    let counted = h.register_type(TypeLayout::new(
        "c",
        vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
    ));
    let annotated = h.register_type(TypeLayout::new(
        "s",
        vec![SlotKind::Ptr(PtrKind::SameRegion), SlotKind::Ptr(PtrKind::ParentPtr)],
    ));
    let r1 = h.new_region();
    let r2 = h.new_subregion(r1).unwrap();
    h.set_trace_site(10);
    let a = h.ralloc(r1, counted).unwrap();
    let b = h.ralloc(r2, counted).unwrap();
    h.set_trace_site(11);
    h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
    h.write_ptr(a, 0, b, WriteMode::Counted).unwrap(); // early exit
    h.write_ptr(a, 0, Addr::NULL, WriteMode::Counted).unwrap();
    h.set_trace_site(12);
    let s1 = h.ralloc(r2, annotated).unwrap();
    let s2 = h.ralloc(r2, annotated).unwrap();
    h.write_ptr(s1, 0, s2, WriteMode::Check(PtrKind::SameRegion)).unwrap();
    let up = h.ralloc(r1, annotated).unwrap();
    h.write_ptr(s1, 1, up, WriteMode::Check(PtrKind::ParentPtr)).unwrap();
    h.set_trace_site(0);
    let m = h.m_alloc(counted, 2).unwrap();
    h.m_free(m).unwrap();
    h.gc_alloc(counted, 1).unwrap();
    h.gc_collect(&[]);
    h.delete_region(r2).unwrap();
    h.delete_region(r1).unwrap();
    let ok = h.audit().is_ok();
    h.record_audit_run(ok);
}

#[test]
fn folded_profile_totals_equal_stats() {
    let mut h = Heap::with_defaults();
    // A deliberately tiny ring: totals must stay exact anyway.
    h.enable_tracing(mask::ALL, 16);
    workout(&mut h);

    let t = h.tracer().expect("tracing enabled");
    assert!(t.dropped() > 0, "the tiny ring must have overflowed");
    let p = t.profile();
    let s = &h.stats;
    assert_eq!(p.totals.allocs, s.objects_allocated);
    assert_eq!(p.totals.alloc_words, s.words_allocated);
    assert_eq!(p.totals.rc_updates_full, s.rc_updates_full);
    assert_eq!(p.totals.rc_updates_same, s.rc_updates_same);
    assert_eq!(p.totals.checks_sameregion, s.checks_sameregion);
    assert_eq!(p.totals.checks_parentptr, s.checks_parentptr);
    assert_eq!(p.totals.checks_traditional, s.checks_traditional);
    assert_eq!(p.totals.regions_created, s.regions_created);
    assert_eq!(p.totals.regions_deleted, s.regions_deleted);
    assert_eq!(p.totals.gc_collections, s.gc_collections);
    assert_eq!(p.totals.audit_runs, 1);
    assert_eq!(p.totals.audit_failures, 0);
}

#[test]
fn site_attribution_reaches_events() {
    let mut h = Heap::with_defaults();
    h.enable_tracing(mask::ALL, 4096);
    workout(&mut h);
    let p = h.tracer().unwrap().profile();
    let site10 = p.sites().find(|s| s.line == 10).expect("alloc site 10");
    assert_eq!(site10.allocs, 2);
    let site11 = p.sites().find(|s| s.line == 11).expect("rc site 11");
    assert_eq!(site11.rc_updates, 3);
    let site12 = p.sites().find(|s| s.line == 12).expect("check site 12");
    assert_eq!(site12.checks_sameregion, 1);
    assert_eq!(site12.checks_parentptr, 1);
    // Unattributed malloc/gc activity lands on line 0.
    let site0 = p.sites().find(|s| s.line == 0).expect("unattributed site");
    assert_eq!(site0.allocs, 2);
}

#[test]
fn zero_mask_records_nothing_and_selective_masks_filter() {
    let mut h = Heap::with_defaults();
    h.enable_tracing(0, 1024);
    workout(&mut h);
    assert_eq!(h.tracer().unwrap().recorded(), 0);

    let mut h = Heap::with_defaults();
    h.enable_tracing(mask::CHECK_RUN, 1024);
    workout(&mut h);
    let t = h.take_tracer().unwrap();
    assert!(t.recorded() > 0);
    assert!(t.events().all(|e| matches!(e, region_rt::Event::CheckRun { .. })));
    assert_eq!(t.profile().totals.allocs, 0, "alloc events were masked out");
}

#[test]
fn tracing_does_not_change_stats_or_clock() {
    let mut plain = Heap::with_defaults();
    workout(&mut plain);
    let mut traced = Heap::with_defaults();
    traced.enable_tracing(mask::ALL, 64 * 1024);
    workout(&mut traced);
    assert_eq!(plain.stats, traced.stats, "telemetry must be observation-only");
    assert_eq!(plain.clock.cycles(), traced.clock.cycles());
}

#[test]
fn events_jsonl_round_trip_shape() {
    let mut h = Heap::new(HeapConfig::default());
    h.enable_tracing(mask::ALL, 4096);
    workout(&mut h);
    let t = h.take_tracer().unwrap();
    let jsonl = t.events_jsonl("workout");
    assert_eq!(jsonl.lines().count(), t.len());
    for line in jsonl.lines() {
        assert!(line.starts_with(r#"{"run":"workout","ev":""#), "bad line: {line}");
        assert!(line.ends_with('}'));
    }
    let profile_line = t.profile().to_json("workout").render();
    assert!(profile_line.contains(r#""kind":"profile""#));
    assert!(!profile_line.contains('\n'));
}
