//! Auditor coverage: random region DAGs with counted pointers must pass
//! `audit`, and a deliberately corrupted count must be caught as
//! [`AuditError::BadCount`] naming the corrupted region.

use region_rt::{
    Addr, AuditError, Heap, PtrKind, RegionId, SlotKind, TypeLayout, WriteMode,
};

/// SplitMix64 (offline environment — no proptest; failures reproduce by
/// seed).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Builds a random region DAG: a random subregion hierarchy, objects
/// scattered across the regions, and random counted pointers between
/// them (the "DAG" is the cross-region reference graph; cycles within it
/// are legal and exercised too). The maintained counts must satisfy the
/// auditor after every construction.
#[test]
fn random_region_dag_with_counted_pointers_passes_audit() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(seed);
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::new(
            "n",
            vec![
                SlotKind::Ptr(PtrKind::Counted),
                SlotKind::Ptr(PtrKind::Counted),
                SlotKind::Data,
            ],
        ));

        // Random hierarchy of 1..8 regions.
        let mut regions: Vec<RegionId> = vec![h.new_region()];
        for _ in 0..rng.below(7) {
            let parent = regions[rng.below(regions.len())];
            regions.push(h.new_subregion(parent).unwrap());
        }
        // Objects scattered across regions (and a couple of malloc
        // "globals", which also hold counted pointers).
        let mut objs: Vec<Addr> = Vec::new();
        for _ in 0..rng.below(24) + 2 {
            objs.push(h.ralloc(regions[rng.below(regions.len())], ty).unwrap());
        }
        for _ in 0..rng.below(3) {
            objs.push(h.m_alloc(ty, 1).unwrap());
        }
        // Random counted links, with occasional overwrites and nulls.
        for _ in 0..rng.below(64) {
            let a = objs[rng.below(objs.len())];
            let slot = rng.below(2);
            let val = if rng.below(8) == 0 { Addr::NULL } else { objs[rng.below(objs.len())] };
            h.write_ptr(a, slot, val, WriteMode::Counted).unwrap();
        }

        h.audit().unwrap_or_else(|e| panic!("seed {seed}: audit failed: {e}"));
    }
}

/// Page-level accounting ground truth: across random region DAG
/// create/alloc/delete sequences (with malloc and GC traffic mixed in),
/// the pages-in-use figure reported by timeline snapshots must always
/// equal what the page map itself says, the committed pages must
/// partition exactly into in-use and free, and the allocator-side count
/// of region pages must match the page map's owner entries.
#[cfg(feature = "telemetry")]
#[test]
fn snapshot_page_accounting_matches_page_map_ground_truth() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x5851_F42D));
        let mut h = Heap::with_defaults();
        h.enable_sampling(7, 64);
        let ty = h.register_type(TypeLayout::new(
            "n",
            vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
        ));
        // A large pointer-free type so spans and the pointerfree allocator
        // are exercised too.
        let big = h.register_type(TypeLayout::data("big", 1500));

        let mut regions: Vec<RegionId> = Vec::new();
        let mut mallocs: Vec<Addr> = Vec::new();
        for step in 0..rng.below(120) + 40 {
            match rng.below(10) {
                0 | 1 => {
                    let parent = if regions.is_empty() || rng.below(2) == 0 {
                        None
                    } else {
                        Some(regions[rng.below(regions.len())])
                    };
                    let r = match parent {
                        Some(p) => h.new_subregion(p).unwrap(),
                        None => h.new_region(),
                    };
                    regions.push(r);
                }
                2..=5 => {
                    if let Some(&r) = regions.get(rng.below(regions.len().max(1))) {
                        let t = if rng.below(5) == 0 { big } else { ty };
                        h.ralloc(r, t).unwrap();
                    }
                }
                6 => {
                    // Delete a leaf region (no children), if one exists.
                    if let Some(pos) = (0..regions.len())
                        .find(|&i| h.region_alive(regions[i]) && h.delete_region(regions[i]).is_ok())
                    {
                        regions.remove(pos);
                    }
                }
                7 => mallocs.push(h.m_alloc(ty, (rng.below(4) + 1) as u32).unwrap()),
                8 => {
                    if !mallocs.is_empty() {
                        let m = mallocs.swap_remove(rng.below(mallocs.len()));
                        h.m_free(m).unwrap();
                    }
                }
                _ => {
                    h.gc_alloc(ty, 1).unwrap();
                    if h.gc_should_collect() {
                        h.gc_collect(&[]);
                    }
                }
            }

            // Every few steps, force a snapshot and compare it against the
            // page map's ground truth.
            if step % 5 == 0 {
                h.sample_now();
                let s = *h.timeline().unwrap().samples().last().unwrap();
                let g = s.gauges;
                // Recompute in-use pages straight from the owner map (the
                // reserved page 0 is Free and never counts).
                let st = h.page_store();
                let truth_in_use = (0..st.page_count() as u32)
                    .filter(|&p| st.owner(p) != region_rt::page::PageOwner::Free)
                    .count();
                assert_eq!(
                    g.pages_in_use as usize, truth_in_use,
                    "seed {seed} step {step}: snapshot vs page map"
                );
                assert_eq!(
                    g.pages_committed,
                    g.pages_in_use + g.pages_free,
                    "seed {seed} step {step}: committed must partition into in-use + free"
                );
                assert_eq!(
                    g.region_pages,
                    h.mapped_region_pages(),
                    "seed {seed} step {step}: allocator page lists vs page-map owners"
                );
                let occupied: u32 = g.occupancy.iter().sum();
                assert_eq!(
                    occupied, g.region_pages,
                    "seed {seed} step {step}: every region page lands in exactly one bucket"
                );
            }
        }
        h.audit().unwrap_or_else(|e| panic!("seed {seed}: audit failed: {e}"));
    }
}

/// A count corrupted behind the barrier's back (a raw store of a
/// cross-region pointer) is reported as `BadCount` for the *target*
/// region — the one whose maintained count no longer matches reality.
#[test]
fn corrupted_count_is_caught_with_the_right_region() {
    let mut h = Heap::with_defaults();
    let ty = h.register_type(TypeLayout::new(
        "n",
        vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
    ));
    let r1 = h.new_region();
    let r2 = h.new_region();
    let a = h.ralloc(r1, ty).unwrap();
    let b = h.ralloc(r2, ty).unwrap();
    // Legitimate link first: r2's count is 1 and the audit passes.
    h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
    h.audit().unwrap();
    // Corruption: overwrite with a raw store. The slot now reads null but
    // r2's maintained count still says 1.
    h.write_ptr(a, 0, Addr::NULL, WriteMode::Raw).unwrap();
    match h.audit() {
        Err(AuditError::BadCount { region, maintained, actual }) => {
            assert_eq!(region, r2, "the corrupted region is named");
            assert_eq!(maintained, 1);
            assert_eq!(actual, 0);
        }
        other => panic!("expected BadCount for {r2:?}, got {other:?}"),
    }
}
