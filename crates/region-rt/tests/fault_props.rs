//! Fault-degradation properties: under a sticky injected fault at a
//! random step of a random region program, the runtime must degrade —
//! never panic. After the first injection, every subsequent call on the
//! armed plane returns `Err`, the heap stays audit-clean throughout, and
//! [`Heap::unwind_regions`] can always tear what's left down to a clean,
//! auditable end state.

use region_rt::{
    Addr, FaultMode, FaultPlan, Heap, PtrKind, RegionId, RtError, SlotKind, TypeLayout,
    WriteMode,
};

/// SplitMix64 (offline environment — no proptest; failures reproduce by
/// seed).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Which plane a seed arms, and that plane's signature error — the one
/// organic execution cannot produce in this program (no page budget, no
/// invalid checked writes), so its first appearance marks the injection.
#[derive(Clone, Copy, PartialEq)]
enum Plane {
    Alloc,
    Page,
    Rc,
    Check,
}

/// After any injected fault at any step of a random region program:
/// no panic anywhere, the heap passes `audit()` after every subsequent
/// step, every subsequent call on the armed (sticky) plane returns
/// `Err`, and a final `unwind_regions` leaves only the traditional
/// region, still audit-clean.
#[test]
fn injected_faults_degrade_without_panics_and_stay_audit_clean() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x0106_689F_23C5_41A5));
        let plane = match seed % 4 {
            0 => Plane::Alloc,
            1 => Plane::Page,
            2 => Plane::Rc,
            _ => Plane::Check,
        };
        let ordinal = (rng.below(30) + 1) as u64;
        let mode = FaultMode::Schedule(vec![ordinal]);
        let plan = match plane {
            Plane::Alloc => FaultPlan::new().fail_alloc(mode),
            Plane::Page => {
                FaultPlan::new().fail_page_acquire(FaultMode::Schedule(vec![(rng.below(5) + 1) as u64]))
            }
            Plane::Rc => FaultPlan::new().saturate_rc(mode),
            Plane::Check => FaultPlan::new().fail_checks(mode),
        }
        .sticky();

        let mut h = Heap::with_defaults();
        h.install_faults(&plan);
        let ty = h.register_type(TypeLayout::new(
            "n",
            vec![
                SlotKind::Ptr(PtrKind::Counted),
                SlotKind::Ptr(PtrKind::SameRegion),
                SlotKind::Data,
            ],
        ));

        let mut live: Vec<RegionId> = vec![h.new_region()];
        // Objects with the region they were allocated in (which may die).
        let mut objs: Vec<(Addr, RegionId)> = Vec::new();
        let mut tripped = false;

        for step in 0..200 {
            match rng.below(10) {
                0 => {
                    if rng.below(2) == 0 {
                        live.push(h.new_region());
                    } else if let Ok(sub) = h.new_subregion(live[rng.below(live.len())]) {
                        live.push(sub);
                    }
                }
                1..=3 => {
                    let r = live[rng.below(live.len())];
                    let res = h.ralloc(r, ty);
                    if tripped && plane == Plane::Alloc {
                        assert!(res.is_err(), "seed {seed} step {step}: alloc after trip");
                    }
                    match res {
                        Ok(a) => objs.push((a, r)),
                        Err(RtError::OutOfMemory) => tripped = true,
                        Err(_) => {}
                    }
                }
                4 => {
                    let res = h.m_alloc(ty, 1);
                    if tripped && plane == Plane::Alloc {
                        assert!(res.is_err(), "seed {seed} step {step}: m_alloc after trip");
                    }
                    match res {
                        // The traditional region is region 0 and immortal.
                        Ok(a) => objs.push((a, region_rt::TRADITIONAL)),
                        Err(RtError::OutOfMemory) => tripped = true,
                        Err(_) => {}
                    }
                }
                5 | 6 => {
                    // Counted link between live objects (stale writes are
                    // the programmer-level use-after-free RC explicitly
                    // does not protect against, so they would corrupt the
                    // audit's ground truth organically).
                    if objs.len() < 2 {
                        continue;
                    }
                    let (a, _) = objs[rng.below(objs.len())];
                    let val = if rng.below(6) == 0 {
                        Addr::NULL
                    } else {
                        objs[rng.below(objs.len())].0
                    };
                    let res = h.write_ptr(a, 0, val, WriteMode::Counted);
                    if tripped && plane == Plane::Rc {
                        assert!(res.is_err(), "seed {seed} step {step}: counted write after trip");
                    }
                    if let Err(RtError::RcOverflow { .. }) = res {
                        tripped = true;
                    }
                }
                7 => {
                    // A *valid* sameregion link (both objects in one live
                    // region): any CheckFailed here is injected.
                    let pick = rng.below(live.len());
                    let pair = objs
                        .iter()
                        .filter(|(_, r)| *r == live[pick] && h.region_alive(*r))
                        .take(2)
                        .map(|&(a, _)| a)
                        .collect::<Vec<_>>();
                    if let [a, b] = pair[..] {
                        let res = h.write_ptr(a, 1, b, WriteMode::Check(PtrKind::SameRegion));
                        if tripped && plane == Plane::Check {
                            assert!(
                                res.is_err(),
                                "seed {seed} step {step}: checked write after trip"
                            );
                        }
                        if let Err(RtError::CheckFailed { .. }) = res {
                            tripped = true;
                        }
                    }
                }
                8 => {
                    // Try deleting a leaf; organic failures
                    // (DeleteWithLiveRefs/Subregions) are part of normal
                    // degradation and simply leave the region in place.
                    if live.len() > 1 {
                        let i = rng.below(live.len() - 1) + 1;
                        if h.delete_region(live[i]).is_ok() {
                            let dead = live.remove(i);
                            objs.retain(|&(_, r)| r != dead);
                        }
                    }
                }
                _ => {
                    let res = h.gc_alloc(ty, 1);
                    if tripped && plane == Plane::Alloc {
                        assert!(res.is_err(), "seed {seed} step {step}: gc_alloc after trip");
                    }
                    if let Err(RtError::OutOfMemory) = res {
                        tripped = true;
                    }
                }
            }
            if tripped {
                h.audit().unwrap_or_else(|e| {
                    panic!("seed {seed} step {step}: audit failed after fault: {e}")
                });
            }
        }

        // Harvest: the arm log must agree with what the program observed.
        let report = h.take_faults().expect("a plan was installed");
        assert_eq!(
            report.total_injected() > 0,
            tripped,
            "seed {seed}: injection log vs observed errors"
        );
        // Recovery: tear everything down; only TRADITIONAL survives, and
        // the audit still passes.
        h.unwind_regions();
        assert!(live.iter().skip(1).all(|&r| !h.region_alive(r)), "seed {seed}");
        h.audit().unwrap_or_else(|e| panic!("seed {seed}: audit failed after unwind: {e}"));
    }
}
