//! Property tests for the region runtime.
//!
//! A reference-counting runtime has one make-or-break invariant — region
//! rc == external counted pointers in — and a handful of structural ones
//! (DFS numbering ⇔ real ancestry, allocator non-overlap). These tests
//! drive the runtime with random operation sequences and check the
//! invariants against simple models.

use proptest::prelude::*;
use region_rt::{
    Addr, Heap, HeapConfig, NumberingScheme, PtrKind, RegionId, RtError, SlotKind, TypeLayout,
    WriteMode, TRADITIONAL,
};

/// Random hierarchy script: each step creates a region under a previously
/// created one (by index) or deletes the i-th live region if it has no
/// children.
#[derive(Debug, Clone)]
enum TreeOp {
    Create(usize),
    Delete(usize),
}

fn arb_tree_ops() -> impl Strategy<Value = Vec<TreeOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..64usize).prop_map(TreeOp::Create),
            (0..64usize).prop_map(TreeOp::Delete),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The DFS `id`/`nextid` ancestry test agrees with real parent-chain
    /// ancestry after arbitrary create/delete interleavings — under both
    /// numbering schemes.
    #[test]
    fn dfs_numbering_matches_parent_chains(
        ops in arb_tree_ops(),
        gap_based in proptest::bool::ANY,
    ) {
        let mut h = Heap::new(HeapConfig {
            numbering: if gap_based {
                NumberingScheme::GapBased
            } else {
                NumberingScheme::RenumberOnCreate
            },
            ..Default::default()
        });
        // Model: parent map (None = deleted), root = TRADITIONAL.
        let mut regions: Vec<RegionId> = vec![TRADITIONAL];
        let mut parent: Vec<Option<usize>> = vec![Some(0)]; // self-parent root
        let mut alive: Vec<bool> = vec![true];

        for op in ops {
            match op {
                TreeOp::Create(i) => {
                    let idx = i % regions.len();
                    if !alive[idx] {
                        continue;
                    }
                    let r = h.new_subregion(regions[idx]).unwrap();
                    regions.push(r);
                    parent.push(Some(idx));
                    alive.push(true);
                }
                TreeOp::Delete(i) => {
                    let idx = i % regions.len();
                    if idx == 0 || !alive[idx] {
                        continue;
                    }
                    let has_children = (0..regions.len())
                        .any(|c| alive[c] && parent[c] == Some(idx));
                    let res = h.delete_region(regions[idx]);
                    if has_children {
                        let refused =
                            matches!(res, Err(RtError::DeleteWithSubregions { .. }));
                        prop_assert!(refused);
                    } else {
                        prop_assert!(res.is_ok());
                        alive[idx] = false;
                    }
                }
            }
        }

        // Model ancestry: walk parent chain.
        let is_anc_model = |a: usize, d: usize| {
            let mut x = d;
            loop {
                if x == a {
                    return true;
                }
                if x == 0 {
                    return false;
                }
                x = parent[x].expect("non-root has a parent");
            }
        };
        // Runtime ancestry via a parentptr-style check: allocate an object
        // in each live region and test writes.
        let ty = h.register_type(TypeLayout::new(
            "n",
            vec![SlotKind::Ptr(PtrKind::ParentPtr)],
        ));
        let addrs: Vec<Option<Addr>> = regions
            .iter()
            .zip(&alive)
            .map(|(&r, &ok)| ok.then(|| h.ralloc(r, ty).unwrap()))
            .collect();
        for d in 0..regions.len() {
            for a in 0..regions.len() {
                let (Some(obj), Some(tgt)) = (addrs[d], addrs[a]) else { continue };
                let res = h.write_ptr(obj, 0, tgt, WriteMode::Check(PtrKind::ParentPtr));
                prop_assert_eq!(
                    res.is_ok(),
                    is_anc_model(a, d),
                    "parentptr({} -> {}) disagrees with the model",
                    d,
                    a
                );
                // Reset the slot for the next probe.
                h.write_ptr(obj, 0, Addr::NULL, WriteMode::Raw).unwrap();
            }
        }
    }
}

/// Random object-graph mutation script over a few regions.
#[derive(Debug, Clone)]
enum GraphOp {
    Alloc(usize),
    /// Write object a's slot s to point at object b (counted).
    Link(usize, usize, usize),
    /// Null out object a's slot s.
    Unlink(usize, usize),
    /// Try to delete region i (must agree with the model).
    TryDelete(usize),
}

fn arb_graph_ops() -> impl Strategy<Value = Vec<GraphOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0..4usize).prop_map(GraphOp::Alloc),
            (0..64usize, 0..64usize, 0..2usize).prop_map(|(a, b, s)| GraphOp::Link(a, b, s)),
            (0..64usize, 0..2usize).prop_map(|(a, s)| GraphOp::Unlink(a, s)),
            (0..4usize).prop_map(GraphOp::TryDelete),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After any barrier-mediated mutation sequence: the auditor agrees
    /// with the maintained counts, and `deleteregion` succeeds exactly
    /// when the model says no external pointers remain.
    #[test]
    fn refcount_invariant_holds(ops in arb_graph_ops()) {
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::new(
            "n",
            vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Ptr(PtrKind::Counted)],
        ));
        let regions: Vec<RegionId> = (0..4).map(|_| h.new_region()).collect();
        let mut region_alive = [true; 4];
        // Model: objects with (region, [slot targets]).
        let mut objs: Vec<(usize, [Option<usize>; 2])> = Vec::new();
        let mut obj_alive: Vec<bool> = Vec::new();
        let mut addrs: Vec<Addr> = Vec::new();

        for op in ops {
            match op {
                GraphOp::Alloc(r) => {
                    if region_alive[r] {
                        addrs.push(h.ralloc(regions[r], ty).unwrap());
                        objs.push((r, [None, None]));
                        obj_alive.push(true);
                    }
                }
                GraphOp::Link(a, b, s) => {
                    if objs.is_empty() {
                        continue;
                    }
                    let a = a % objs.len();
                    let b = b % objs.len();
                    if !obj_alive[a] || !obj_alive[b] {
                        continue;
                    }
                    h.write_ptr(addrs[a], s, addrs[b], WriteMode::Counted).unwrap();
                    objs[a].1[s] = Some(b);
                }
                GraphOp::Unlink(a, s) => {
                    if objs.is_empty() {
                        continue;
                    }
                    let a = a % objs.len();
                    if !obj_alive[a] {
                        continue;
                    }
                    h.write_ptr(addrs[a], s, Addr::NULL, WriteMode::Counted).unwrap();
                    objs[a].1[s] = None;
                }
                GraphOp::TryDelete(r) => {
                    if !region_alive[r] {
                        continue;
                    }
                    // Model: external counted pointers into r.
                    let external = objs
                        .iter()
                        .enumerate()
                        .filter(|(i, (src, _))| obj_alive[*i] && *src != r)
                        .flat_map(|(_, (_, slots))| slots.iter().flatten())
                        .filter(|&&tgt| obj_alive[tgt] && objs[tgt].0 == r)
                        .count();
                    let res = h.delete_region(regions[r]);
                    if external == 0 {
                        prop_assert!(res.is_ok(), "model says deletable: {res:?}");
                        region_alive[r] = false;
                        for (i, (src, slots)) in objs.iter_mut().enumerate() {
                            if *src == r {
                                obj_alive[i] = false;
                                *slots = [None, None];
                            }
                        }
                        // Dead objects' outgoing links are gone (unscan).
                        for (i, (_, slots)) in objs.iter_mut().enumerate() {
                            let _ = i;
                            for s in slots.iter_mut() {
                                if let Some(t) = *s {
                                    if !obj_alive[t] {
                                        *s = None;
                                    }
                                }
                            }
                        }
                    } else {
                        let refused = matches!(res, Err(RtError::DeleteWithLiveRefs { .. }));
                        prop_assert!(
                            refused,
                            "model says {} external refs, runtime deleted",
                            external
                        );
                    }
                }
            }
            h.audit().unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// malloc never hands out overlapping live objects, and free makes
    /// slots reusable.
    #[test]
    fn malloc_objects_do_not_overlap(
        sizes in proptest::collection::vec(1..300usize, 1..40),
        frees in proptest::collection::vec(any::<prop::sample::Index>(), 0..20),
    ) {
        let mut h = Heap::new(HeapConfig::default());
        let mut live: Vec<(Addr, usize)> = Vec::new();
        for s in sizes {
            let ty = h.register_type(TypeLayout::data(format!("d{s}"), s));
            let a = h.m_alloc(ty, 1).unwrap();
            // Overlap check against all live objects.
            for &(b, bs) in &live {
                let (a0, a1) = (a.raw(), a.raw() + s as u64);
                let (b0, b1) = (b.raw(), b.raw() + bs as u64);
                prop_assert!(a1 <= b0 || b1 <= a0, "objects overlap");
            }
            live.push((a, s));
        }
        for idx in frees {
            if live.is_empty() {
                break;
            }
            let i = idx.index(live.len());
            let (a, _) = live.swap_remove(i);
            h.m_free(a).unwrap();
            // Double free must fail.
            prop_assert!(h.m_free(a).is_err());
        }
    }
}
