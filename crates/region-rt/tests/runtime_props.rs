//! Property tests for the region runtime.
//!
//! A reference-counting runtime has one make-or-break invariant — region
//! rc == external counted pointers in — and a handful of structural ones
//! (DFS numbering ⇔ real ancestry, allocator non-overlap). These tests
//! drive the runtime with random operation sequences and check the
//! invariants against simple models.
//!
//! The randomness is a hand-rolled SplitMix64 over fixed seeds (the build
//! environment is offline, so no proptest): every failure reproduces by
//! seed, and every run covers exactly the same cases.

use region_rt::{
    Addr, Heap, HeapConfig, NumberingScheme, PtrKind, RegionId, RtError, SlotKind, TypeLayout,
    WriteMode, TRADITIONAL,
};

/// SplitMix64: tiny, well-distributed, and deterministic across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Random hierarchy script: each step creates a region under a previously
/// created one (by index) or deletes the i-th region if it has no
/// children.
#[derive(Debug, Clone)]
enum TreeOp {
    Create(usize),
    Delete(usize),
}

/// The DFS `id`/`nextid` ancestry test agrees with real parent-chain
/// ancestry after arbitrary create/delete interleavings — under both
/// numbering schemes.
#[test]
fn dfs_numbering_matches_parent_chains() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(seed);
        let ops: Vec<TreeOp> = (0..rng.range(1, 60))
            .map(|_| {
                if rng.bool() {
                    TreeOp::Create(rng.below(64))
                } else {
                    TreeOp::Delete(rng.below(64))
                }
            })
            .collect();
        let gap_based = rng.bool();
        let mut h = Heap::new(HeapConfig {
            numbering: if gap_based {
                NumberingScheme::GapBased
            } else {
                NumberingScheme::RenumberOnCreate
            },
            ..Default::default()
        });
        // Model: parent map (None = deleted), root = TRADITIONAL.
        let mut regions: Vec<RegionId> = vec![TRADITIONAL];
        let mut parent: Vec<Option<usize>> = vec![Some(0)]; // self-parent root
        let mut alive: Vec<bool> = vec![true];

        for op in ops {
            match op {
                TreeOp::Create(i) => {
                    let idx = i % regions.len();
                    if !alive[idx] {
                        continue;
                    }
                    let r = h.new_subregion(regions[idx]).unwrap();
                    regions.push(r);
                    parent.push(Some(idx));
                    alive.push(true);
                }
                TreeOp::Delete(i) => {
                    let idx = i % regions.len();
                    if idx == 0 || !alive[idx] {
                        continue;
                    }
                    let has_children =
                        (0..regions.len()).any(|c| alive[c] && parent[c] == Some(idx));
                    let res = h.delete_region(regions[idx]);
                    if has_children {
                        assert!(
                            matches!(res, Err(RtError::DeleteWithSubregions { .. })),
                            "seed {seed}: delete with children not refused: {res:?}"
                        );
                    } else {
                        assert!(res.is_ok(), "seed {seed}: {res:?}");
                        alive[idx] = false;
                    }
                }
            }
        }

        // Model ancestry: walk parent chain.
        let is_anc_model = |a: usize, d: usize| {
            let mut x = d;
            loop {
                if x == a {
                    return true;
                }
                if x == 0 {
                    return false;
                }
                x = parent[x].expect("non-root has a parent");
            }
        };
        // Runtime ancestry via a parentptr-style check: allocate an object
        // in each live region and test writes.
        let ty = h.register_type(TypeLayout::new("n", vec![SlotKind::Ptr(PtrKind::ParentPtr)]));
        let addrs: Vec<Option<Addr>> = regions
            .iter()
            .zip(&alive)
            .map(|(&r, &ok)| ok.then(|| h.ralloc(r, ty).unwrap()))
            .collect();
        for d in 0..regions.len() {
            for a in 0..regions.len() {
                let (Some(obj), Some(tgt)) = (addrs[d], addrs[a]) else { continue };
                let res = h.write_ptr(obj, 0, tgt, WriteMode::Check(PtrKind::ParentPtr));
                assert_eq!(
                    res.is_ok(),
                    is_anc_model(a, d),
                    "seed {seed}: parentptr({d} -> {a}) disagrees with the model"
                );
                // Reset the slot for the next probe.
                h.write_ptr(obj, 0, Addr::NULL, WriteMode::Raw).unwrap();
            }
        }
    }
}

/// Random object-graph mutation script over a few regions.
#[derive(Debug, Clone)]
enum GraphOp {
    Alloc(usize),
    /// Write object a's slot s to point at object b (counted).
    Link(usize, usize, usize),
    /// Null out object a's slot s.
    Unlink(usize, usize),
    /// Try to delete region i (must agree with the model).
    TryDelete(usize),
}

/// After any barrier-mediated mutation sequence: the auditor agrees
/// with the maintained counts, and `deleteregion` succeeds exactly
/// when the model says no external pointers remain.
#[test]
fn refcount_invariant_holds() {
    for seed in 0..128u64 {
        let mut rng = Rng::new(0x5EED ^ seed);
        let ops: Vec<GraphOp> = (0..rng.range(1, 80))
            .map(|_| match rng.below(4) {
                0 => GraphOp::Alloc(rng.below(4)),
                1 => GraphOp::Link(rng.below(64), rng.below(64), rng.below(2)),
                2 => GraphOp::Unlink(rng.below(64), rng.below(2)),
                _ => GraphOp::TryDelete(rng.below(4)),
            })
            .collect();
        let mut h = Heap::with_defaults();
        let ty = h.register_type(TypeLayout::new(
            "n",
            vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Ptr(PtrKind::Counted)],
        ));
        let regions: Vec<RegionId> = (0..4).map(|_| h.new_region()).collect();
        let mut region_alive = [true; 4];
        // Model: objects with (region, [slot targets]).
        let mut objs: Vec<(usize, [Option<usize>; 2])> = Vec::new();
        let mut obj_alive: Vec<bool> = Vec::new();
        let mut addrs: Vec<Addr> = Vec::new();

        for op in ops {
            match op {
                GraphOp::Alloc(r) => {
                    if region_alive[r] {
                        addrs.push(h.ralloc(regions[r], ty).unwrap());
                        objs.push((r, [None, None]));
                        obj_alive.push(true);
                    }
                }
                GraphOp::Link(a, b, s) => {
                    if objs.is_empty() {
                        continue;
                    }
                    let a = a % objs.len();
                    let b = b % objs.len();
                    if !obj_alive[a] || !obj_alive[b] {
                        continue;
                    }
                    h.write_ptr(addrs[a], s, addrs[b], WriteMode::Counted).unwrap();
                    objs[a].1[s] = Some(b);
                }
                GraphOp::Unlink(a, s) => {
                    if objs.is_empty() {
                        continue;
                    }
                    let a = a % objs.len();
                    if !obj_alive[a] {
                        continue;
                    }
                    h.write_ptr(addrs[a], s, Addr::NULL, WriteMode::Counted).unwrap();
                    objs[a].1[s] = None;
                }
                GraphOp::TryDelete(r) => {
                    if !region_alive[r] {
                        continue;
                    }
                    // Model: external counted pointers into r.
                    let external = objs
                        .iter()
                        .enumerate()
                        .filter(|(i, (src, _))| obj_alive[*i] && *src != r)
                        .flat_map(|(_, (_, slots))| slots.iter().flatten())
                        .filter(|&&tgt| obj_alive[tgt] && objs[tgt].0 == r)
                        .count();
                    let res = h.delete_region(regions[r]);
                    if external == 0 {
                        assert!(res.is_ok(), "seed {seed}: model says deletable: {res:?}");
                        region_alive[r] = false;
                        for (i, (src, slots)) in objs.iter_mut().enumerate() {
                            if *src == r {
                                obj_alive[i] = false;
                                *slots = [None, None];
                            }
                        }
                        // Dead objects' outgoing links are gone (unscan).
                        for (_, slots) in objs.iter_mut() {
                            for s in slots.iter_mut() {
                                if let Some(t) = *s {
                                    if !obj_alive[t] {
                                        *s = None;
                                    }
                                }
                            }
                        }
                    } else {
                        assert!(
                            matches!(res, Err(RtError::DeleteWithLiveRefs { .. })),
                            "seed {seed}: model says {external} external refs, runtime deleted"
                        );
                    }
                }
            }
            h.audit().unwrap();
        }
    }
}

/// malloc never hands out overlapping live objects, and free makes
/// slots reusable.
#[test]
fn malloc_objects_do_not_overlap() {
    for seed in 0..64u64 {
        let mut rng = Rng::new(0xA110C ^ seed);
        let sizes: Vec<usize> = (0..rng.range(1, 40)).map(|_| rng.range(1, 300)).collect();
        let n_frees = rng.below(20);
        let mut h = Heap::new(HeapConfig::default());
        let mut live: Vec<(Addr, usize)> = Vec::new();
        for s in sizes {
            let ty = h.register_type(TypeLayout::data(format!("d{s}"), s));
            let a = h.m_alloc(ty, 1).unwrap();
            // Overlap check against all live objects.
            for &(b, bs) in &live {
                let (a0, a1) = (a.raw(), a.raw() + s as u64);
                let (b0, b1) = (b.raw(), b.raw() + bs as u64);
                assert!(a1 <= b0 || b1 <= a0, "seed {seed}: objects overlap");
            }
            live.push((a, s));
        }
        for _ in 0..n_frees {
            if live.is_empty() {
                break;
            }
            let i = rng.below(live.len());
            let (a, _) = live.swap_remove(i);
            h.m_free(a).unwrap();
            // Double free must fail.
            assert!(h.m_free(a).is_err(), "seed {seed}: double free succeeded");
        }
    }
}
