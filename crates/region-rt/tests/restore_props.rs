//! Property tests for snapshot restore.
//!
//! For each of 48 SplitMix64 seeds, a random workout drives every
//! allocator — region tree create/delete, bump allocation, malloc
//! alloc/free, GC alloc/collect, counted-pointer stores that raise region
//! reference counts, spans on and off — then asserts the restore
//! contract:
//!
//! 1. `Heap::restore(snapshot(h))` succeeds;
//! 2. the live-word identity holds three ways: original heap, snapshot,
//!    and restored heap all agree on `live_words` (total and per the
//!    region tree);
//! 3. the source snapshot `verify_against` the *restored* heap — the
//!    restored heap is indistinguishable from the captured one for every
//!    observable the snapshot defines;
//! 4. the restored heap passes its own `audit` (reference counts are
//!    witnessed by real counted pointers);
//! 5. re-snapshotting the restored heap reproduces the document byte for
//!    byte (the fixpoint the recovery matrix gates on).
//!
//! Hand-rolled SplitMix64 over fixed seeds (offline build, no proptest):
//! every failure reproduces by seed.

use region_rt::{
    Heap, PtrKind, RegionId, SlotKind, SnapshotReason, TypeLayout, WriteMode,
};

/// SplitMix64: tiny, well-distributed, and deterministic across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Builds a randomly worked heap exercising everything a snapshot
/// records, including non-zero reference counts the restore layer must
/// witness with synthesized counted pointers.
fn workout(seed: u64) -> Heap {
    let mut rng = Rng::new(0xC0FF ^ seed);
    let mut h = Heap::with_defaults();
    if rng.bool() {
        h.enable_spans(if rng.bool() { 32 } else { 1024 });
    }
    let types: Vec<_> = (0..4)
        .map(|i| {
            let words = rng.range(1, 600);
            h.register_type(TypeLayout::data(format!("t{i}"), words))
        })
        .collect();
    let holder = h.register_type(TypeLayout::new(
        "holder",
        vec![SlotKind::Ptr(PtrKind::Counted); 3],
    ));

    let mut regions: Vec<RegionId> = vec![region_rt::TRADITIONAL];
    let mut parent: Vec<usize> = vec![0];
    let mut alive: Vec<bool> = vec![true];
    let mut mallocs: Vec<region_rt::Addr> = Vec::new();
    let mut gc_roots: Vec<u64> = Vec::new();
    // Counted-holder objects (addr, container region index) and counted
    // targets (addr, container region index). Pointers are only stored
    // into region indices that stay alive: deleting a region with a
    // non-zero count aborts, so the model never deletes a pointee or a
    // pointer-holding container.
    let mut holders: Vec<(region_rt::Addr, usize, u32)> = Vec::new();
    let mut targets: Vec<(region_rt::Addr, usize)> = Vec::new();
    let mut pinned: Vec<bool> = vec![true];

    for _ in 0..rng.range(20, 120) {
        match rng.below(12) {
            0 | 1 => {
                let p = rng.below(regions.len());
                if alive[p] {
                    let r = h.new_subregion(regions[p]).unwrap();
                    regions.push(r);
                    parent.push(p);
                    alive.push(true);
                    pinned.push(false);
                }
            }
            2..=4 => {
                let i = rng.below(regions.len());
                if alive[i] {
                    h.set_trace_site(rng.below(6) as u32);
                    let ty = types[rng.below(types.len())];
                    let a = if rng.bool() {
                        h.ralloc(regions[i], ty).unwrap()
                    } else {
                        h.rarray_alloc(regions[i], ty, rng.range(1, 4) as u32).unwrap()
                    };
                    if rng.below(3) == 0 {
                        targets.push((a, i));
                    }
                }
            }
            5 | 6 => {
                h.set_trace_site(rng.below(6) as u32);
                let ty = types[rng.below(types.len())];
                mallocs.push(h.m_alloc(ty, rng.range(1, 3) as u32).unwrap());
                if mallocs.len() > 3 && rng.bool() {
                    let a = mallocs.swap_remove(rng.below(mallocs.len()));
                    h.m_free(a).unwrap();
                }
            }
            7 => {
                h.set_trace_site(rng.below(6) as u32);
                let ty = types[rng.below(types.len())];
                let a = h.gc_alloc(ty, 1).unwrap();
                if rng.below(3) == 0 {
                    gc_roots.push(a.raw());
                }
            }
            // Allocate a counted-pointer holder (region or malloc heap).
            8 => {
                h.set_trace_site(rng.below(6) as u32);
                if rng.bool() {
                    let a = h.m_alloc(holder, 1).unwrap();
                    holders.push((a, 0, 0));
                    pinned[0] = true;
                } else {
                    let i = rng.below(regions.len());
                    if alive[i] {
                        let a = h.ralloc(regions[i], holder).unwrap();
                        holders.push((a, i, 0));
                        pinned[i] = true;
                    }
                }
            }
            // Store a counted pointer: raises the target region's rc
            // unless holder and target share a region.
            9 => {
                if !holders.is_empty() && !targets.is_empty() {
                    let hi = rng.below(holders.len());
                    let (ha, _, used) = holders[hi];
                    if used < 3 {
                        let (ta, ti) = targets[rng.below(targets.len())];
                        h.write_ptr(ha, used as usize, ta, WriteMode::Counted).unwrap();
                        holders[hi].2 += 1;
                        pinned[ti] = true;
                    }
                }
            }
            _ => {
                if rng.bool() {
                    let i = rng.below(regions.len());
                    let childless =
                        !(0..regions.len()).any(|c| alive[c] && parent[c] == i && c != i);
                    if i != 0 && alive[i] && childless && !pinned[i] {
                        h.delete_region(regions[i]).unwrap();
                        alive[i] = false;
                        // Objects of a reclaimed region are no longer
                        // valid pointer targets.
                        targets.retain(|&(_, t)| t != i);
                    }
                } else {
                    h.gc_collect(&gc_roots);
                }
            }
        }
    }
    h
}

#[test]
fn restore_is_a_fixpoint_on_random_heaps() {
    let mut witnessed_rc = false;
    for seed in 0..48u64 {
        let h = workout(seed);
        h.audit().unwrap_or_else(|e| panic!("seed {seed}: source heap audit failed: {e:?}"));
        let mut snap = h.snapshot(SnapshotReason::Exit);
        snap.label = format!("restore-props/seed{seed}");
        snap.verify_against(&h)
            .unwrap_or_else(|e| panic!("seed {seed}: source cross-check failed: {e}"));
        witnessed_rc |= snap.regions.iter().any(|r| r.rc - r.pins > 0);

        let restored = Heap::restore(&snap)
            .unwrap_or_else(|e| panic!("seed {seed}: restore failed: {e}"));

        // Three-way live-word identity: heap, snapshot, restored heap.
        assert_eq!(
            (h.stats.live_words, h.region_live_words()),
            (snap.stats.live_words, snap.region_live_words()),
            "seed {seed}: snapshot disagrees with source heap"
        );
        assert_eq!(
            (restored.stats.live_words, restored.region_live_words()),
            (h.stats.live_words, h.region_live_words()),
            "seed {seed}: restored heap disagrees with source heap"
        );

        snap.verify_against(&restored)
            .unwrap_or_else(|e| panic!("seed {seed}: restored heap fails verification: {e}"));
        restored
            .audit()
            .unwrap_or_else(|e| panic!("seed {seed}: restored heap fails audit: {e:?}"));
        assert_eq!(
            snap.resnapshot(&restored).render(),
            snap.render(),
            "seed {seed}: restore is not a snapshot fixpoint"
        );
    }
    assert!(
        witnessed_rc,
        "the seed set never exercised a non-zero external count; widen the workout"
    );
}
