//! Adversarial-input fuzzing for `HeapSnapshot::from_json`.
//!
//! Starting from a valid rendered snapshot document, a SplitMix64 stream
//! derives hundreds of mutants along two axes:
//!
//! - **text-level**: truncations and byte splices of the rendered JSON —
//!   these must either fail `Json::parse` with a byte-offset-bearing
//!   message or, if they still parse, be handled by `from_json`;
//! - **document-level**: type swaps, out-of-range `-1` sentinels,
//!   deleted fields, duplicated region ids, shuffled page indices, and
//!   unsorted site keys applied to the parsed tree — these must be
//!   rejected by `from_json` with a non-empty message naming the field,
//!   or (for benign value tweaks) produce a snapshot that still renders.
//!
//! The invariant under test is *never panic, never silently accept
//! structural corruption*: every mutant either round-trips or yields a
//! descriptive `Err`. The whole test runs under `tools/panic_gate.sh`'s
//! companion rule that snapshot parsing is panic-free.

use region_rt::{Heap, HeapSnapshot, Json, SnapshotReason, TypeLayout};

struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// A worked heap whose snapshot exercises every document section.
fn seed_document() -> String {
    let mut h = Heap::with_defaults();
    let ty = h.register_type(TypeLayout::data("cell", 3));
    let big = h.register_type(TypeLayout::data("big", 1500));
    h.enable_spans(256);
    let r1 = h.new_region();
    let r2 = h.new_subregion(r1).unwrap();
    h.set_trace_site(4);
    h.ralloc(r1, ty).unwrap();
    h.ralloc(r2, big).unwrap();
    let m = h.m_alloc(ty, 2).unwrap();
    h.m_alloc(big, 1).unwrap();
    h.m_free(m).unwrap();
    let g = h.gc_alloc(ty, 2).unwrap();
    h.gc_collect(&[g.raw()]);
    h.delete_region(r2).unwrap();
    let mut snap = h.snapshot(SnapshotReason::Trap);
    snap.label = "fuzz/seed".to_string();
    snap.render()
}

/// Feeds one candidate document through parse + from_json. The contract:
/// no panic, and any `Err` carries a non-empty, descriptive message.
fn probe(text: &str) -> Result<(), String> {
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => {
            let msg = e.to_string();
            assert!(!msg.is_empty(), "parse error with empty message");
            // Json::parse reports the byte offset of the failure so a
            // corrupt artifact can be located in the file.
            assert!(
                msg.contains("byte") || msg.chars().any(|c| c.is_ascii_digit()),
                "parse error lacks a byte offset: {msg}"
            );
            return Err(msg);
        }
    };
    match HeapSnapshot::from_json(&doc) {
        Ok(snap) => {
            // Accepted documents must re-render without panicking.
            let _ = snap.render();
            Ok(())
        }
        Err(e) => {
            assert!(!e.is_empty(), "from_json error with empty message");
            Err(e)
        }
    }
}

#[test]
fn truncations_never_panic_and_report_offsets() {
    let text = seed_document();
    let mut rng = Rng::new(0xF00D);
    // Every prefix boundary drawn from the stream, plus the pathological
    // short ones.
    for cut in (0..6).chain((0..200).map(|_| rng.below(text.len()))) {
        let mutant = &text[..cut.min(text.len())];
        let _ = probe(mutant);
    }
}

#[test]
fn byte_splices_never_panic() {
    let text = seed_document();
    let mut rng = Rng::new(0xBEEF);
    let splice_bytes = [b'\0', b'{', b'}', b'[', b'-', b'"', b'9', b'x', 0xFF];
    for _ in 0..300 {
        let mut bytes = text.clone().into_bytes();
        let at = rng.below(bytes.len());
        match rng.below(3) {
            0 => {
                bytes[at] = splice_bytes[rng.below(splice_bytes.len())];
            }
            1 => {
                bytes.insert(at, splice_bytes[rng.below(splice_bytes.len())]);
            }
            _ => {
                bytes.remove(at);
            }
        }
        // Invalid UTF-8 mutants are simply skipped (the artifact layer
        // reads files as str, so parse never sees them).
        if let Ok(s) = String::from_utf8(bytes) {
            let _ = probe(&s);
        }
    }
}

/// Number of nodes in the document tree (preorder).
fn count_nodes(doc: &Json) -> usize {
    1 + match doc {
        Json::A(items) => items.iter().map(count_nodes).sum(),
        Json::O(fields) => fields.iter().map(|(_, v)| count_nodes(v)).sum(),
        _ => 0,
    }
}

/// Applies `f` to the `n`-th node in preorder, so the mutator can hit
/// arbitrary depths.
fn mutate_nth(doc: &mut Json, n: &mut usize, f: &mut dyn FnMut(&mut Json)) -> bool {
    if *n == 0 {
        f(doc);
        return true;
    }
    *n -= 1;
    match doc {
        Json::A(items) => {
            for it in items {
                if mutate_nth(it, n, f) {
                    return true;
                }
            }
        }
        Json::O(fields) => {
            for (_, v) in fields {
                if mutate_nth(v, n, f) {
                    return true;
                }
            }
        }
        _ => {}
    }
    false
}

/// Mutable access to a top-level field of an object document.
fn field_mut<'a>(doc: &'a mut Json, key: &str) -> Option<&'a mut Json> {
    match doc {
        Json::O(fields) => fields.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

#[test]
fn document_mutations_are_rejected_or_roundtrip() {
    let text = seed_document();
    let base = Json::parse(&text).unwrap();
    assert!(HeapSnapshot::from_json(&base).is_ok(), "seed document must load");

    let mut rng = Rng::new(0xD1CE);
    let mut rejected = 0usize;
    let total = count_nodes(&base);
    for _ in 0..400 {
        let mut doc = base.clone();
        let mut n = rng.below(total);
        let kind = rng.below(6);
        let sentinel = -(rng.below(5) as i64) - 1;
        let huge = u64::MAX - rng.below(3) as u64;
        let trunc = rng.next() as usize;
        let mut apply = |node: &mut Json| match kind {
            // Type swap.
            0 => *node = Json::S("bogus".to_string()),
            // Out-of-range negative sentinel (only -1 is meaningful).
            1 => *node = Json::I(sentinel),
            // Huge value (u32 overflow probes).
            2 => *node = Json::U(huge),
            // Array/object truncation.
            3 => match node {
                Json::A(items) if !items.is_empty() => {
                    let keep = trunc % items.len();
                    items.truncate(keep);
                }
                Json::O(fields) if !fields.is_empty() => {
                    fields.remove(trunc % fields.len());
                }
                _ => *node = Json::Null,
            },
            // Duplicate an element (duplicate region ids, pages, sites).
            4 => match node {
                Json::A(items) if !items.is_empty() => {
                    let dup = items[trunc % items.len()].clone();
                    items.push(dup);
                }
                _ => *node = Json::Bool(trunc.is_multiple_of(2)),
            },
            // Null injection (this dialect never emits null).
            _ => *node = Json::Null,
        };
        mutate_nth(&mut doc, &mut n, &mut apply);
        if doc == base {
            continue;
        }
        match HeapSnapshot::from_json(&doc) {
            Ok(snap) => {
                let _ = snap.render();
            }
            Err(e) => {
                assert!(!e.is_empty());
                rejected += 1;
            }
        }
    }
    assert!(rejected > 100, "mutator too weak: only {rejected} rejections");
}

#[test]
fn structural_corruptions_are_named() {
    let text = seed_document();
    let base = Json::parse(&text).unwrap();
    let snap = HeapSnapshot::from_json(&base).unwrap();

    // Duplicate region id.
    let mut doc = snap.to_json();
    if let Some(Json::A(regions)) = field_mut(&mut doc, "regions") {
        if let Json::O(fields) = &mut regions[1] {
            fields[0].1 = Json::U(0);
        }
    }
    let err = HeapSnapshot::from_json(&doc).unwrap_err();
    assert!(err.contains("duplicate or out-of-order"), "{err}");

    // Shuffled page index.
    let mut doc = snap.to_json();
    if let Some(Json::A(pages)) = field_mut(&mut doc, "pages") {
        if let Json::O(fields) = &mut pages[0] {
            fields[0].1 = Json::U(7);
        }
    }
    let err = HeapSnapshot::from_json(&doc).unwrap_err();
    assert!(err.contains("pages must cover"), "{err}");

    // Unsorted sites.
    let mut doc = snap.to_json();
    if let Some(Json::A(sites)) = field_mut(&mut doc, "sites") {
        sites.reverse();
    }
    let err = HeapSnapshot::from_json(&doc).unwrap_err();
    assert!(err.contains("sort order"), "{err}");

    // Out-of-range sentinel: -1 means None for 'parent', but -2 is not a
    // valid encoding of anything.
    let mut doc = snap.to_json();
    if let Some(Json::A(regions)) = field_mut(&mut doc, "regions") {
        if let Json::O(fields) = &mut regions[1] {
            for (k, v) in fields.iter_mut() {
                if *k == "parent" {
                    *v = Json::I(-2);
                }
            }
        }
    }
    let err = HeapSnapshot::from_json(&doc).unwrap_err();
    assert!(err.contains("parent"), "{err}");
}
