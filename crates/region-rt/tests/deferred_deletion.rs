//! Tests for the paper's third safety option: implicit (deferred) region
//! deletion — "at various times ... the system deallocates any regions
//! whose reference count has dropped to zero. This last option provides
//! memory safety semantics similar to traditional garbage collection."

use region_rt::{
    Addr, DeletePolicy, Heap, HeapConfig, PtrKind, SlotKind, TypeLayout, WriteMode,
};

fn deferred_heap() -> Heap {
    Heap::new(HeapConfig { delete_policy: DeletePolicy::Deferred, ..Default::default() })
}

fn node_ty(h: &mut Heap) -> region_rt::TypeId {
    h.register_type(TypeLayout::new(
        "n",
        vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
    ))
}

#[test]
fn deferred_delete_waits_for_last_reference() {
    let mut h = deferred_heap();
    let ty = node_ty(&mut h);
    let r1 = h.new_region();
    let r2 = h.new_region();
    let holder = h.ralloc(r1, ty).unwrap();
    let target = h.ralloc(r2, ty).unwrap();
    h.write_ptr(holder, 0, target, WriteMode::Counted).unwrap();

    // Deleting r2 succeeds immediately (no abort) but only dooms it.
    h.delete_region(r2).unwrap();
    assert!(h.region_alive(r2), "still referenced: not reclaimed yet");
    assert_eq!(h.stats.regions_deferred, 1);
    assert_eq!(h.stats.regions_deleted, 0);

    // Dropping the last reference reclaims it.
    h.write_ptr(holder, 0, Addr::NULL, WriteMode::Counted).unwrap();
    assert!(!h.region_alive(r2), "last reference gone → reclaimed");
    assert_eq!(h.stats.regions_deleted, 1);
    h.audit().unwrap();
}

#[test]
fn deferred_delete_with_no_refs_is_immediate() {
    let mut h = deferred_heap();
    let r = h.new_region();
    h.delete_region(r).unwrap();
    assert!(!h.region_alive(r));
    assert_eq!(h.stats.regions_deferred, 0);
}

#[test]
fn doomed_parent_waits_for_children() {
    let mut h = deferred_heap();
    let parent = h.new_region();
    let child = h.new_subregion(parent).unwrap();
    h.delete_region(parent).unwrap();
    assert!(h.region_alive(parent), "live subregion blocks reclamation");
    // Deleting the child releases the parent too.
    h.delete_region(child).unwrap();
    assert!(!h.region_alive(child));
    assert!(!h.region_alive(parent), "child death cascades to the doomed parent");
}

#[test]
fn unpin_triggers_reclamation() {
    let mut h = deferred_heap();
    let r = h.new_region();
    h.pin_region(r);
    h.delete_region(r).unwrap();
    assert!(h.region_alive(r), "pinned by a live local");
    h.unpin_region(r);
    assert!(!h.region_alive(r), "unpin released the last count");
}

#[test]
fn unscan_cascade_reclaims_chains() {
    // r1 → r2 → r3: dooming all three then releasing the head reference
    // must cascade through the unscan decrements.
    let mut h = deferred_heap();
    let ty = node_ty(&mut h);
    let r1 = h.new_region();
    let r2 = h.new_region();
    let r3 = h.new_region();
    let a = h.ralloc(r1, ty).unwrap();
    let b = h.ralloc(r2, ty).unwrap();
    let c = h.ralloc(r3, ty).unwrap();
    h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
    h.write_ptr(b, 0, c, WriteMode::Counted).unwrap();

    h.delete_region(r3).unwrap();
    h.delete_region(r2).unwrap();
    assert!(h.region_alive(r2) && h.region_alive(r3));
    // Deleting r1 (no refs into it) unscans a→b, which unblocks r2, whose
    // unscan releases c, which unblocks r3.
    h.delete_region(r1).unwrap();
    assert!(!h.region_alive(r1));
    assert!(!h.region_alive(r2), "cascade step 1");
    assert!(!h.region_alive(r3), "cascade step 2");
    assert_eq!(h.stats.regions_deleted, 3);
    h.audit().unwrap();
}

#[test]
fn abort_policy_is_unchanged() {
    let mut h = Heap::with_defaults();
    let ty = node_ty(&mut h);
    let r1 = h.new_region();
    let r2 = h.new_region();
    let a = h.ralloc(r1, ty).unwrap();
    let b = h.ralloc(r2, ty).unwrap();
    h.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
    assert!(h.delete_region(r2).is_err(), "abort policy refuses");
    assert_eq!(h.stats.regions_deferred, 0);
}
