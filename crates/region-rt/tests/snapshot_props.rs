//! Property tests for the heap-snapshot subsystem.
//!
//! For each of 48 SplitMix64 seeds, a random workout drives every
//! allocator the snapshot covers — region tree create/delete, bump
//! allocation (objects and arrays), malloc alloc/free, GC alloc/collect,
//! span notes on and off — and then asserts the snapshot contract:
//!
//! 1. `snapshot → render → Json::parse → from_json` rebuilds an
//!    identical value that re-renders byte-identically;
//! 2. `verify_against` passes, i.e. the snapshot's region/word totals
//!    agree with the `Heap`'s gauges and `Stats` along all three
//!    attribution paths (region tree, page map, site table);
//! 3. the heap's own auditor stays green, so the state being
//!    photographed is itself consistent.
//!
//! Hand-rolled SplitMix64 over fixed seeds (offline build, no proptest):
//! every failure reproduces by seed.

use region_rt::{Heap, HeapSnapshot, Json, RegionId, SnapshotReason, TypeLayout};

/// SplitMix64: tiny, well-distributed, and deterministic across platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

/// Builds a randomly worked heap. Returns the heap with a mix of live and
/// reclaimed regions, live and freed malloc objects, and collected GC
/// state; on odd-ish seeds spans are recorded (with a small cap so note
/// decimation fires too).
fn workout(seed: u64) -> Heap {
    let mut rng = Rng::new(0x54AF ^ seed);
    let mut h = Heap::with_defaults();
    if rng.bool() {
        h.enable_spans(if rng.bool() { 32 } else { 1024 });
    }
    let types: Vec<_> = (0..4)
        .map(|i| {
            let words = rng.range(1, 600);
            h.register_type(TypeLayout::data(format!("t{i}"), words))
        })
        .collect();

    // Model of the region tree: parent index per region, liveness.
    let mut regions: Vec<RegionId> = vec![region_rt::TRADITIONAL];
    let mut parent: Vec<usize> = vec![0];
    let mut alive: Vec<bool> = vec![true];
    let mut mallocs: Vec<region_rt::Addr> = Vec::new();
    let mut gc_roots: Vec<u64> = Vec::new();

    for _ in 0..rng.range(20, 120) {
        match rng.below(10) {
            // Create a region, sometimes nested.
            0 | 1 => {
                let p = rng.below(regions.len());
                if alive[p] {
                    let r = h.new_subregion(regions[p]).unwrap();
                    regions.push(r);
                    parent.push(p);
                    alive.push(true);
                }
            }
            // Bump-allocate into a random live region, attributed to a
            // random "source line" (0 = unattributed also covered).
            2..=4 => {
                let i = rng.below(regions.len());
                if alive[i] {
                    h.set_trace_site(rng.below(6) as u32);
                    let ty = types[rng.below(types.len())];
                    if rng.bool() {
                        h.ralloc(regions[i], ty).unwrap();
                    } else {
                        h.rarray_alloc(regions[i], ty, rng.range(1, 4) as u32).unwrap();
                    }
                }
            }
            // Malloc, sometimes freeing an older object.
            5 | 6 => {
                h.set_trace_site(rng.below(6) as u32);
                let ty = types[rng.below(types.len())];
                mallocs.push(h.m_alloc(ty, rng.range(1, 3) as u32).unwrap());
                if mallocs.len() > 3 && rng.bool() {
                    let a = mallocs.swap_remove(rng.below(mallocs.len()));
                    h.m_free(a).unwrap();
                }
            }
            // GC-allocate; a third of the objects become roots.
            7 | 8 => {
                h.set_trace_site(rng.below(6) as u32);
                let ty = types[rng.below(types.len())];
                let a = h.gc_alloc(ty, 1).unwrap();
                if rng.below(3) == 0 {
                    gc_roots.push(a.raw());
                }
            }
            // Delete a childless non-traditional region, or collect.
            _ => {
                if rng.bool() {
                    let i = rng.below(regions.len());
                    let childless =
                        !(0..regions.len()).any(|c| alive[c] && parent[c] == i && c != i);
                    if i != 0 && alive[i] && childless {
                        h.delete_region(regions[i]).unwrap();
                        alive[i] = false;
                    }
                } else {
                    h.gc_collect(&gc_roots);
                }
            }
        }
    }
    h
}

/// The snapshot contract holds on every seed: exact JSON round-trip,
/// byte-stable re-render, and totals that agree with the heap's own
/// audit and stats.
#[test]
fn snapshot_round_trips_and_cross_checks_on_random_heaps() {
    for seed in 0..48u64 {
        let h = workout(seed);
        h.audit().unwrap_or_else(|e| panic!("seed {seed}: heap audit failed: {e:?}"));

        let mut snap = h.snapshot(SnapshotReason::Exit);
        snap.label = format!("props/seed{seed}");
        snap.verify_against(&h)
            .unwrap_or_else(|e| panic!("seed {seed}: snapshot cross-check failed: {e}"));

        // Capture is a pure function of heap state.
        let mut again = h.snapshot(SnapshotReason::Exit);
        again.label = snap.label.clone();
        assert_eq!(snap, again, "seed {seed}: capture not deterministic");

        // snapshot → JSON text → parse → rebuild is exact, and the
        // rebuilt value re-renders to the same bytes.
        let text = snap.render();
        let doc = Json::parse(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: rendered JSON does not parse: {e}"));
        let back = HeapSnapshot::from_json(&doc)
            .unwrap_or_else(|e| panic!("seed {seed}: round-trip rejected: {e}"));
        assert_eq!(back, snap, "seed {seed}: round-trip lost information");
        assert_eq!(back.render(), text, "seed {seed}: re-render not byte-identical");

        // Totals agree with Stats by construction of verify_against, but
        // assert the headline identity explicitly so a verify_against
        // regression cannot silently weaken this test.
        assert_eq!(
            snap.total_live_words(),
            h.stats.live_words,
            "seed {seed}: live-word identity broken"
        );
    }
}
