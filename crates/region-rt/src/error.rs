//! Runtime error types.
//!
//! RC's dynamic safety guarantee is delivered through failures: a
//! `deleteregion` whose region still has external references fails, and an
//! assignment violating a `sameregion` / `parentptr` / `traditional`
//! annotation aborts the program (paper §3.2, Figure 3(b)). In this
//! reproduction "abort" surfaces as an [`RtError`] so tests can assert on
//! the exact failure.

use crate::addr::Addr;
use crate::layout::PtrKind;
use crate::region::RegionId;

/// A failure detected by the region runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// `deleteregion` on a region whose reference count is non-zero
    /// (external pointers into it still exist).
    DeleteWithLiveRefs {
        /// The region being deleted.
        region: RegionId,
        /// Its reference count at the time of the call.
        rc: i64,
    },
    /// `deleteregion` on a region that still has live subregions; the paper
    /// requires subregions to be deleted before their parent.
    DeleteWithSubregions {
        /// The region being deleted.
        region: RegionId,
    },
    /// Operating on a region that was already deleted.
    RegionDead {
        /// The stale region.
        region: RegionId,
    },
    /// Deleting or reparenting the traditional region, which always exists.
    TraditionalImmortal,
    /// A Figure 3(b) annotation check failed; in RC this aborts the
    /// program.
    CheckFailed {
        /// Which annotation was violated.
        kind: PtrKind,
        /// The object containing the assigned field.
        obj: Addr,
        /// Word offset of the field.
        field: usize,
        /// The offending value.
        val: Addr,
    },
    /// `free` of an address that is not a live malloc allocation.
    InvalidFree {
        /// The bad address.
        addr: Addr,
    },
    /// Access through a pointer into memory that is not live.
    WildPointer {
        /// The bad address.
        addr: Addr,
    },
    /// The configured page budget was exhausted.
    OutOfMemory,
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::DeleteWithLiveRefs { region, rc } => write!(
                f,
                "deleteregion of {region:?} with {rc} live external reference(s)"
            ),
            RtError::DeleteWithSubregions { region } => {
                write!(f, "deleteregion of {region:?} with live subregions")
            }
            RtError::RegionDead { region } => {
                write!(f, "use of deleted region {region:?}")
            }
            RtError::TraditionalImmortal => {
                write!(f, "the traditional region cannot be deleted")
            }
            RtError::CheckFailed { kind, obj, field, val } => write!(
                f,
                "{kind:?} annotation check failed storing {val} into field {field} of {obj}"
            ),
            RtError::InvalidFree { addr } => write!(f, "invalid free of {addr}"),
            RtError::WildPointer { addr } => write!(f, "wild pointer access at {addr}"),
            RtError::OutOfMemory => write!(f, "heap page budget exhausted"),
        }
    }
}

impl std::error::Error for RtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errs = [
            RtError::DeleteWithLiveRefs { region: RegionId(3), rc: 2 },
            RtError::DeleteWithSubregions { region: RegionId(1) },
            RtError::RegionDead { region: RegionId(1) },
            RtError::TraditionalImmortal,
            RtError::CheckFailed {
                kind: PtrKind::SameRegion,
                obj: Addr::from_parts(1, 0),
                field: 2,
                val: Addr::from_parts(2, 0),
            },
            RtError::InvalidFree { addr: Addr::NULL },
            RtError::WildPointer { addr: Addr::NULL },
            RtError::OutOfMemory,
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
