//! Runtime error types.
//!
//! RC's dynamic safety guarantee is delivered through failures: a
//! `deleteregion` whose region still has external references fails, and an
//! assignment violating a `sameregion` / `parentptr` / `traditional`
//! annotation aborts the program (paper §3.2, Figure 3(b)). In this
//! reproduction "abort" surfaces as an [`RtError`] so tests can assert on
//! the exact failure.

use crate::addr::Addr;
use crate::json::Json;
use crate::layout::PtrKind;
use crate::region::RegionId;

/// A failure detected by the region runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtError {
    /// `deleteregion` on a region whose reference count is non-zero
    /// (external pointers into it still exist).
    DeleteWithLiveRefs {
        /// The region being deleted.
        region: RegionId,
        /// Its reference count at the time of the call.
        rc: i64,
    },
    /// `deleteregion` on a region that still has live subregions; the paper
    /// requires subregions to be deleted before their parent.
    DeleteWithSubregions {
        /// The region being deleted.
        region: RegionId,
    },
    /// Operating on a region that was already deleted.
    RegionDead {
        /// The stale region.
        region: RegionId,
    },
    /// Deleting or reparenting the traditional region, which always exists.
    TraditionalImmortal,
    /// A Figure 3(b) annotation check failed; in RC this aborts the
    /// program.
    CheckFailed {
        /// Which annotation was violated.
        kind: PtrKind,
        /// The object containing the assigned field.
        obj: Addr,
        /// Word offset of the field.
        field: usize,
        /// The offending value.
        val: Addr,
    },
    /// `free` of an address that is not a live malloc allocation.
    InvalidFree {
        /// The bad address.
        addr: Addr,
    },
    /// Access through a pointer into memory that is not live.
    WildPointer {
        /// The bad address.
        addr: Addr,
    },
    /// A region's reference count cannot be raised further (saturated
    /// counter, reported by the fault-injection RcSaturate plane or a
    /// genuinely overflowing count). The failing store is suppressed, so
    /// the heap stays consistent.
    RcOverflow {
        /// The region whose count would have overflowed.
        region: RegionId,
    },
    /// Touching a region whose ownership was handed off to a spawned task
    /// and not yet reclaimed by `join` (see [`crate::shard`]): until the
    /// parent joins, the region subtree belongs exclusively to the child
    /// shard, so any parent-side access aborts deterministically.
    RegionMoved {
        /// The region currently owned by another shard.
        region: RegionId,
    },
    /// The configured page budget was exhausted.
    OutOfMemory,
    /// A [`HeapSnapshot`](crate::snapshot::HeapSnapshot) failed structural
    /// validation during [`Heap::restore`](crate::heap::Heap::restore):
    /// internally inconsistent accounting, an unsatisfiable page/object
    /// placement, or a restored heap that failed its own verify/audit/
    /// fixpoint gates. `detail` names the first offending field or
    /// invariant.
    SnapshotCorrupt {
        /// Human-readable description of the first violated invariant.
        detail: String,
    },
}

impl std::fmt::Display for RtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtError::DeleteWithLiveRefs { region, rc } => write!(
                f,
                "deleteregion of {region:?} with {rc} live external reference(s)"
            ),
            RtError::DeleteWithSubregions { region } => {
                write!(f, "deleteregion of {region:?} with live subregions")
            }
            RtError::RegionDead { region } => {
                write!(f, "use of deleted region {region:?}")
            }
            RtError::TraditionalImmortal => {
                write!(f, "the traditional region cannot be deleted")
            }
            RtError::CheckFailed { kind, obj, field, val } => write!(
                f,
                "{kind:?} annotation check failed storing {val} into field {field} of {obj}"
            ),
            RtError::InvalidFree { addr } => write!(f, "invalid free of {addr}"),
            RtError::WildPointer { addr } => write!(f, "wild pointer access at {addr}"),
            RtError::RcOverflow { region } => {
                write!(f, "reference count of {region:?} saturated")
            }
            RtError::RegionMoved { region } => {
                write!(f, "use of {region:?} while owned by a spawned task")
            }
            RtError::OutOfMemory => write!(f, "heap page budget exhausted"),
            RtError::SnapshotCorrupt { detail } => {
                write!(f, "corrupt snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for RtError {}

impl RtError {
    /// Stable machine-readable tag (the `kind` field of [`RtError::to_json`]).
    pub fn kind_name(&self) -> &'static str {
        match self {
            RtError::DeleteWithLiveRefs { .. } => "delete_with_live_refs",
            RtError::DeleteWithSubregions { .. } => "delete_with_subregions",
            RtError::RegionDead { .. } => "region_dead",
            RtError::TraditionalImmortal => "traditional_immortal",
            RtError::CheckFailed { .. } => "check_failed",
            RtError::InvalidFree { .. } => "invalid_free",
            RtError::WildPointer { .. } => "wild_pointer",
            RtError::RcOverflow { .. } => "rc_overflow",
            RtError::RegionMoved { .. } => "region_moved",
            RtError::OutOfMemory => "out_of_memory",
            RtError::SnapshotCorrupt { .. } => "snapshot_corrupt",
        }
    }

    /// Encodes the error for reports: always a `kind` tag first, then the
    /// variant's payload fields.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![("kind", Json::s(self.kind_name()))];
        match self {
            RtError::DeleteWithLiveRefs { region, rc } => {
                fields.push(("region", Json::U(region.0 as u64)));
                fields.push(("rc", Json::I(*rc)));
            }
            RtError::DeleteWithSubregions { region } | RtError::RegionDead { region } => {
                fields.push(("region", Json::U(region.0 as u64)));
            }
            RtError::TraditionalImmortal => {}
            RtError::CheckFailed { kind, obj, field, val } => {
                let kind = match kind {
                    PtrKind::SameRegion => "sameregion",
                    PtrKind::ParentPtr => "parentptr",
                    PtrKind::Traditional => "traditional",
                    PtrKind::Counted => "counted",
                };
                fields.push(("check", Json::s(kind)));
                fields.push(("obj", Json::U(obj.raw())));
                fields.push(("field", Json::U(*field as u64)));
                fields.push(("val", Json::U(val.raw())));
            }
            RtError::InvalidFree { addr } | RtError::WildPointer { addr } => {
                fields.push(("addr", Json::U(addr.raw())));
            }
            RtError::RcOverflow { region } | RtError::RegionMoved { region } => {
                fields.push(("region", Json::U(region.0 as u64)));
            }
            RtError::OutOfMemory => {}
            RtError::SnapshotCorrupt { detail } => {
                fields.push(("detail", Json::s(detail)));
            }
        }
        Json::obj(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One value per variant. Adding a variant without extending this list
    /// breaks `display_and_json_cover_every_variant` at compile time via
    /// the wildcard-free `match` below — the same convention as the
    /// exhaustive `Stats::summary()` tests.
    fn all_variants() -> Vec<RtError> {
        vec![
            RtError::DeleteWithLiveRefs { region: RegionId(3), rc: 2 },
            RtError::DeleteWithSubregions { region: RegionId(1) },
            RtError::RegionDead { region: RegionId(1) },
            RtError::TraditionalImmortal,
            RtError::CheckFailed {
                kind: PtrKind::SameRegion,
                obj: Addr::from_parts(1, 0),
                field: 2,
                val: Addr::from_parts(2, 0),
            },
            RtError::InvalidFree { addr: Addr::from_parts(1, 1) },
            RtError::WildPointer { addr: Addr::from_parts(1, 2) },
            RtError::RcOverflow { region: RegionId(2) },
            RtError::RegionMoved { region: RegionId(4) },
            RtError::OutOfMemory,
            RtError::SnapshotCorrupt { detail: "regions[1].parent out of range".into() },
        ]
    }

    #[test]
    fn display_and_json_cover_every_variant() {
        // Wildcard-free: a new variant fails to compile until handled here
        // (and therefore until added to `all_variants`, because the
        // distinct-tag assertion below would fail).
        fn arity(e: &RtError) -> usize {
            match e {
                RtError::DeleteWithLiveRefs { .. } => 2,
                RtError::DeleteWithSubregions { .. } => 1,
                RtError::RegionDead { .. } => 1,
                RtError::TraditionalImmortal => 0,
                RtError::CheckFailed { .. } => 4,
                RtError::InvalidFree { .. } => 1,
                RtError::WildPointer { .. } => 1,
                RtError::RcOverflow { .. } => 1,
                RtError::RegionMoved { .. } => 1,
                RtError::OutOfMemory => 0,
                RtError::SnapshotCorrupt { .. } => 1,
            }
        }
        let variants = all_variants();
        for e in &variants {
            assert!(!e.to_string().is_empty(), "{e:?} has empty Display");
            let json = e.to_json();
            assert_eq!(
                json.get("kind").and_then(Json::as_str),
                Some(e.kind_name()),
                "{e:?} json must lead with its kind tag"
            );
            // Every payload field is serialized, plus the kind tag.
            let rendered = json.render();
            let keys = rendered.matches("\":").count();
            assert_eq!(keys, arity(e) + 1, "{e:?} rendered as {rendered}");
        }
        // Each variant appears exactly once in all_variants.
        let mut tags: Vec<&str> = variants.iter().map(RtError::kind_name).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), variants.len(), "duplicate or missing variant in all_variants");
    }
}
