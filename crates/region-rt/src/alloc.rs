//! Region bump allocators.
//!
//! Each region has two allocators (paper §3.3.1): `normal` for objects that
//! contain unannotated pointers, and `pointerfree` for "objects containing
//! only non-pointer data or annotated pointers". The distinction pays off at
//! deletion: pointerfree pages need not be scanned because they cannot hold
//! references to other regions that were counted.

use crate::addr::{Addr, WORDS_PER_PAGE};
use crate::error::RtError;
use crate::layout::TypeId;
use crate::page::{PageOwner, PageStore};

/// A record of one allocation (object start, element type, element count).
///
/// The paper's runtime recovers this information from per-allocation type
/// tags laid out in the pages themselves; we keep an explicit allocation
/// log per allocator, which is observationally equivalent for the
/// delete-time scan and lets the heap auditor enumerate objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocRecord {
    /// Address of the first word of the object (or array).
    pub addr: Addr,
    /// Element type.
    pub ty: TypeId,
    /// Number of elements (1 for a plain `ralloc`).
    pub count: u32,
    /// Source line that performed the allocation (0 = unattributed);
    /// stamped from the heap's telemetry site so post-mortem snapshots
    /// can attribute retained words to `file:line`.
    pub site: u32,
}

/// A bump allocator over whole pages.
#[derive(Debug, Default)]
pub struct BumpAlloc {
    /// Pages owned by this allocator, in acquisition order.
    pages: Vec<u32>,
    /// Words handed out from each page, parallel to `pages` (span pages
    /// record their share of the span) — the per-page occupancy the
    /// timeline's fragmentation buckets are built from.
    fill: Vec<u32>,
    /// Index into `pages` of the current small-object page, if any. Span
    /// allocations deliberately do not disturb this, so small objects keep
    /// packing their own page across an interleaved large allocation.
    cur: Option<usize>,
    /// Next free word in the current small-object page.
    cursor: usize,
    /// Log of every allocation, for scanning and auditing.
    objs: Vec<AllocRecord>,
    /// Total words handed out.
    used_words: u64,
}

/// Result of one bump allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BumpOutcome {
    /// The object address.
    pub addr: Addr,
    /// Number of fresh pages acquired from the OS (expensive).
    pub new_pages: usize,
    /// Number of recycled pages taken from the free pool (cheap).
    pub recycled_pages: usize,
}

impl BumpAlloc {
    /// Creates an empty allocator.
    pub fn new() -> BumpAlloc {
        BumpAlloc {
            pages: Vec::new(),
            fill: Vec::new(),
            cur: None,
            cursor: WORDS_PER_PAGE,
            objs: Vec::new(),
            used_words: 0,
        }
    }

    /// Rebuilds an allocator from snapshot state (restore path). The
    /// current-page cursor is deliberately left closed (`cur = None`): the
    /// next small allocation takes a fresh page rather than guessing at
    /// the old packing, which keeps restored heaps allocation-ready
    /// without risking overlap with restored objects.
    pub(crate) fn from_snapshot(
        pages: Vec<u32>,
        fill: Vec<u32>,
        objs: Vec<AllocRecord>,
        used_words: u64,
    ) -> BumpAlloc {
        debug_assert_eq!(pages.len(), fill.len());
        BumpAlloc { pages, fill, cur: None, cursor: WORDS_PER_PAGE, objs, used_words }
    }

    /// Allocates `words` words for `count` elements of type `ty`.
    ///
    /// Objects up to a page fit in the current page or a fresh one; larger
    /// objects get a dedicated span of contiguous pages (blocks "whose size
    /// is a multiple of the page size").
    ///
    /// # Errors
    ///
    /// Returns [`RtError::OutOfMemory`] if the page budget is exhausted.
    pub fn alloc(
        &mut self,
        store: &mut PageStore,
        owner: PageOwner,
        words: usize,
        ty: TypeId,
        count: u32,
        site: u32,
    ) -> Result<BumpOutcome, RtError> {
        debug_assert!(words > 0);
        let mut new_pages = 0;
        let mut recycled_pages = 0;
        let addr = if words > WORDS_PER_PAGE {
            let span = words.div_ceil(WORDS_PER_PAGE);
            let first = store.acquire_span(owner, span)?;
            new_pages = span;
            // A large object consumes its whole span; the current small-object
            // page (if any) is untouched, so `cur`/`cursor` are left alone.
            let mut left = words;
            for i in 0..span as u32 {
                self.pages.push(first + i);
                self.fill.push(left.min(WORDS_PER_PAGE) as u32);
                left -= left.min(WORDS_PER_PAGE);
            }
            Addr::from_parts(first, 0)
        } else {
            let need_fresh = match self.cur {
                None => true,
                Some(_) => self.cursor + words > WORDS_PER_PAGE,
            };
            if need_fresh {
                let (p, recycled) = store.acquire2(owner)?;
                if recycled {
                    recycled_pages = 1;
                } else {
                    new_pages = 1;
                }
                self.cur = Some(self.pages.len());
                self.pages.push(p);
                self.fill.push(0);
                self.cursor = 0;
            }
            let i = self.cur.expect("current page just ensured");
            let a = Addr::from_parts(self.pages[i], self.cursor as u32);
            self.cursor += words;
            self.fill[i] += words as u32;
            a
        };
        self.objs.push(AllocRecord { addr, ty, count, site });
        self.used_words += words as u64;
        Ok(BumpOutcome { addr, new_pages, recycled_pages })
    }

    /// Releases every page back to the store and clears the log. Returns
    /// the number of words that were in use (for the live-memory gauge).
    pub fn release_all(&mut self, store: &mut PageStore) -> u64 {
        for &p in &self.pages {
            store.release(p);
        }
        self.pages.clear();
        self.fill.clear();
        self.cur = None;
        self.objs.clear();
        self.cursor = WORDS_PER_PAGE;
        std::mem::take(&mut self.used_words)
    }

    /// The allocation log.
    pub fn objs(&self) -> &[AllocRecord] {
        &self.objs
    }

    /// Words handed out and still live.
    pub fn used_words(&self) -> u64 {
        self.used_words
    }

    /// Pages currently owned.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The owned pages, in acquisition order (parallel to
    /// [`BumpAlloc::page_fill`]); lets snapshots record region page lists.
    pub fn pages(&self) -> &[u32] {
        &self.pages
    }

    /// Words handed out from each owned page, parallel to the page list —
    /// the input to the timeline's per-page occupancy histogram.
    pub fn page_fill(&self) -> &[u32] {
        &self.fill
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::RegionId;

    fn setup() -> (PageStore, BumpAlloc) {
        (PageStore::new(0), BumpAlloc::new())
    }

    const OWNER: PageOwner = PageOwner::Region(RegionId(1));
    const TY: TypeId = TypeId(0);

    #[test]
    fn sequential_allocs_pack_one_page() {
        let (mut store, mut a) = setup();
        let x = a.alloc(&mut store, OWNER, 4, TY, 1, 0).unwrap();
        let y = a.alloc(&mut store, OWNER, 4, TY, 1, 0).unwrap();
        assert_eq!(x.new_pages, 1);
        assert_eq!(y.new_pages, 0);
        assert_eq!(x.addr.page(), y.addr.page());
        assert_eq!(y.addr.word(), x.addr.word() + 4);
        assert_eq!(a.used_words(), 8);
    }

    #[test]
    fn page_overflow_gets_fresh_page() {
        let (mut store, mut a) = setup();
        let x = a.alloc(&mut store, OWNER, 1000, TY, 1, 0).unwrap();
        let y = a.alloc(&mut store, OWNER, 100, TY, 1, 0).unwrap();
        assert_ne!(x.addr.page(), y.addr.page());
        assert_eq!(y.new_pages, 1);
    }

    #[test]
    fn large_object_spans_contiguous_pages() {
        let (mut store, mut a) = setup();
        let x = a.alloc(&mut store, OWNER, 3000, TY, 1, 0).unwrap();
        assert_eq!(x.new_pages, 3);
        assert_eq!(x.addr.word(), 0);
        for i in 0..3 {
            assert_eq!(store.owner(x.addr.page() + i), OWNER);
        }
    }

    #[test]
    fn small_alloc_after_span_does_not_land_in_span_pages() {
        let (mut store, mut a) = setup();
        let x = a.alloc(&mut store, OWNER, 4, TY, 1, 0).unwrap();
        let big = a.alloc(&mut store, OWNER, 1500, TY, 1, 0).unwrap();
        let y = a.alloc(&mut store, OWNER, 4, TY, 1, 0).unwrap();
        // y continues packing the small-object page; it must never be
        // bumped into the span's tail page over the large object's data.
        assert_eq!(y.addr.page(), x.addr.page());
        assert_eq!(y.addr.word(), x.addr.word() + 4);
        for i in 0..2 {
            assert_ne!(y.addr.page(), big.addr.page() + i);
        }
        assert_eq!(y.new_pages + y.recycled_pages, 0);
    }

    #[test]
    fn page_fill_tracks_small_and_span_occupancy() {
        let (mut store, mut a) = setup();
        a.alloc(&mut store, OWNER, 4, TY, 1, 0).unwrap();
        a.alloc(&mut store, OWNER, 6, TY, 1, 0).unwrap();
        a.alloc(&mut store, OWNER, 1500, TY, 1, 0).unwrap();
        // Small page holds 10 words; the span's pages hold 1024 + 476.
        assert_eq!(a.page_fill(), &[10, 1024, 476]);
        let total: u64 = a.page_fill().iter().map(|&f| f as u64).sum();
        assert_eq!(total, a.used_words());
        a.release_all(&mut store);
        assert!(a.page_fill().is_empty());
    }

    #[test]
    fn release_all_returns_pages_and_words() {
        let (mut store, mut a) = setup();
        a.alloc(&mut store, OWNER, 10, TY, 1, 0).unwrap();
        a.alloc(&mut store, OWNER, 2000, TY, 1, 0).unwrap();
        let pages_before = a.page_count();
        assert_eq!(pages_before, 3);
        let words = a.release_all(&mut store);
        assert_eq!(words, 2010);
        assert_eq!(a.page_count(), 0);
        assert!(a.objs().is_empty());
        // Store can now recycle those pages.
        let p = store.acquire(PageOwner::Gc).unwrap();
        assert!(p <= 3);
    }

    #[test]
    fn log_records_all_allocations() {
        let (mut store, mut a) = setup();
        a.alloc(&mut store, OWNER, 2, TypeId(7), 1, 0).unwrap();
        a.alloc(&mut store, OWNER, 6, TypeId(8), 3, 0).unwrap();
        assert_eq!(a.objs().len(), 2);
        assert_eq!(a.objs()[1].ty, TypeId(8));
        assert_eq!(a.objs()[1].count, 3);
    }
}
