//! Per-task heap shards and typed region handoff.
//!
//! The paper's RC runtime is single-threaded; this module is the runtime
//! half of the reproduction's parallel extension (`spawn r { ... }` /
//! `join` in rc-lang). The design follows the Spegion line of work:
//! parallelism is introduced *at region granularity*, and a region is
//! exclusively owned by exactly one worker at any time. Ownership moves
//! via a typed [`Handoff`] at `spawn` and returns at `join`.
//!
//! Concretely, each spawned task runs against its own isolated [`Heap`]
//! — a *shard*. The front end (rc-lang's `sema`) guarantees a spawned
//! body can only reach the region subtree that was handed to it and
//! plain integer copies, so no address ever crosses a shard boundary and
//! shards need no cross-heap barriers: every Figure 3 write barrier runs
//! against the task's own heap exactly as in a sequential execution.
//! The handed-off subtree is materialised in the child shard as a fresh
//! *facet* region ([`Facet`]); on the parent side the moved descriptors
//! answer every touch with [`RtError::RegionMoved`](crate::RtError)
//! until the join, so a schedule can never leak access — the abort is
//! identical under the inline, deterministic, and real-thread
//! schedulers.
//!
//! After a task finishes, its shard is handed back whole (heap plus the
//! telemetry the task accumulated) and the interpreter folds it into the
//! global report with the exact `merge` operations on
//! [`Stats`](crate::Stats), [`Profile`](crate::Profile),
//! [`SpanTree`](crate::SpanTree), [`Timeline`](crate::Timeline) and
//! [`CheckCounter`](crate::CheckCounter) — all associativity-tested, so
//! the merged report is byte-deterministic in join order regardless of
//! the schedule that ran the tasks.

use crate::audit::AuditError;
use crate::emu::{EmuRegionId, EmuRegions};
use crate::heap::Heap;
use crate::json::Json;
use crate::region::RegionId;
use crate::span::SpanTree;
use crate::timeline::Timeline;
use crate::trace::Tracer;

/// Identifies one heap shard. Shard 0 is the root (the main task's
/// heap); spawned tasks get ids in spawn order, which is deterministic
/// because `spawn` is a program point, not a scheduler decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The main task's shard.
    pub const ROOT: ShardId = ShardId(0);
}

/// The typed ownership-transfer message a `spawn` sends: region
/// `region` (with its whole subtree) moves from shard `from` to shard
/// `to`. `seq` is the global spawn ordinal — it orders joins'
/// telemetry merges so the global report does not depend on thread
/// timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    /// Global spawn ordinal (0-based, program order).
    pub seq: u64,
    /// The shard giving the region up (the spawning task).
    pub from: ShardId,
    /// The shard receiving it (the spawned task).
    pub to: ShardId,
    /// The moved region, in the *parent's* id space; the child sees it
    /// as its [`Facet`].
    pub region: RegionId,
}

impl Handoff {
    /// Report encoding, field order fixed for byte-determinism.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::U(self.seq)),
            ("from", Json::U(self.from.0 as u64)),
            ("to", Json::U(self.to.0 as u64)),
            ("region", Json::U(self.region.0 as u64)),
        ])
    }
}

/// How the handed-off region appears inside the child shard: a real
/// region on the region backends, or an emulated one on the malloc/gc
/// baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Facet {
    /// Fresh region in the child heap's region hierarchy.
    Real(RegionId),
    /// Fresh emulated region in the child's [`EmuRegions`] table.
    Emu(EmuRegionId),
}

/// A finished task's shard, handed back to the joining parent: the
/// task's whole heap plus the telemetry it accumulated. The parent
/// folds these into the global report in `Handoff::seq` order.
#[derive(Debug)]
pub struct Shard {
    /// This shard's id.
    pub id: ShardId,
    /// The grant that created it.
    pub handoff: Handoff,
    /// The task's isolated heap (boxed: a `Heap` is large and the shard
    /// crosses a thread boundary).
    pub heap: Box<Heap>,
    /// Emulated-region table, on the malloc/gc baselines.
    pub emu: Option<EmuRegions>,
    /// The moved region as the child saw it.
    pub facet: Facet,
    /// Whether the task deleted its facet (then the parent deletes the
    /// original region at join instead of reclaiming it).
    pub facet_dead: bool,
    /// The task's span tree, if span recording was on.
    pub spans: Option<Box<SpanTree>>,
    /// The task's event ring + profile, if tracing was on.
    pub tracer: Option<Box<Tracer>>,
    /// The task's timeline, if sampling was on.
    pub timeline: Option<Box<Timeline>>,
    /// Virtual steps the task executed (its contribution to the global
    /// step count).
    pub steps: u64,
}

impl Shard {
    /// Audits this shard's heap (the same invariant check a sequential
    /// run gets; isolation means each shard must be independently
    /// clean).
    pub fn audit(&self) -> Result<(), AuditError> {
        self.heap.audit()
    }
}

/// Audits the parent heap and every shard; the post-join cleanliness
/// gate. The parent reports as [`ShardId::ROOT`].
pub fn audit_all<'a>(
    parent: &Heap,
    shards: impl IntoIterator<Item = &'a Shard>,
) -> Result<(), (ShardId, AuditError)> {
    parent.audit().map_err(|e| (ShardId::ROOT, e))?;
    for s in shards {
        s.audit().map_err(|e| (s.id, e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{PtrKind, SlotKind, TypeLayout};
    use crate::rcops::WriteMode;

    fn shard_with_list(id: u32, corrupt: bool) -> Shard {
        let mut heap = Box::new(Heap::with_defaults());
        let ty = heap.register_type(TypeLayout::new(
            "node",
            vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
        ));
        let facet = heap.new_region();
        let other = heap.new_region();
        let a = heap.ralloc(facet, ty).unwrap();
        let b = heap.ralloc(facet, ty).unwrap();
        heap.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
        if corrupt {
            // Cross-region store without its barrier: the audit must
            // catch the missing count.
            let c = heap.ralloc(other, ty).unwrap();
            heap.write_ptr(a, 0, c, WriteMode::Raw).unwrap();
        }
        Shard {
            id: ShardId(id),
            handoff: Handoff {
                seq: (id - 1) as u64,
                from: ShardId::ROOT,
                to: ShardId(id),
                region: RegionId(7),
            },
            heap,
            emu: None,
            facet: Facet::Real(facet),
            facet_dead: false,
            spans: None,
            tracer: None,
            timeline: None,
            steps: 3,
        }
    }

    #[test]
    fn audit_all_passes_on_clean_parent_and_shards() {
        let parent = Heap::with_defaults();
        let shards = vec![shard_with_list(1, false), shard_with_list(2, false)];
        audit_all(&parent, &shards).unwrap();
    }

    #[test]
    fn audit_all_attributes_failures_to_the_shard() {
        let parent = Heap::with_defaults();
        let shards = vec![shard_with_list(1, false), shard_with_list(2, true)];
        let (id, _err) = audit_all(&parent, &shards).unwrap_err();
        assert_eq!(id, ShardId(2));
    }

    #[test]
    fn handoff_json_is_stable() {
        let h = Handoff {
            seq: 4,
            from: ShardId::ROOT,
            to: ShardId(3),
            region: RegionId(9),
        };
        assert_eq!(
            h.to_json().render(),
            r#"{"seq":4,"from":0,"to":3,"region":9}"#
        );
    }
}
