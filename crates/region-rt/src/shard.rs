//! Per-task heap shards and typed region handoff.
//!
//! The paper's RC runtime is single-threaded; this module is the runtime
//! half of the reproduction's parallel extension (`spawn r { ... }` /
//! `join` in rc-lang). The design follows the Spegion line of work:
//! parallelism is introduced *at region granularity*, and a region is
//! exclusively owned by exactly one worker at any time. Ownership moves
//! via a typed [`Handoff`] at `spawn` and returns at `join`.
//!
//! Concretely, each spawned task runs against its own isolated [`Heap`]
//! — a *shard*. The front end (rc-lang's `sema`) guarantees a spawned
//! body can only reach the region subtree that was handed to it and
//! plain integer copies, so no address ever crosses a shard boundary and
//! shards need no cross-heap barriers: every Figure 3 write barrier runs
//! against the task's own heap exactly as in a sequential execution.
//! The handed-off subtree is materialised in the child shard as a fresh
//! *facet* region ([`Facet`]); on the parent side the moved descriptors
//! answer every touch with [`RtError::RegionMoved`](crate::RtError)
//! until the join, so a schedule can never leak access — the abort is
//! identical under the inline, deterministic, and real-thread
//! schedulers.
//!
//! After a task finishes, its shard is handed back whole (heap plus the
//! telemetry the task accumulated) and the interpreter folds it into the
//! global report with the exact `merge` operations on
//! [`Stats`](crate::Stats), [`Profile`](crate::Profile),
//! [`SpanTree`](crate::SpanTree), [`Timeline`](crate::Timeline) and
//! [`CheckCounter`](crate::CheckCounter) — all associativity-tested, so
//! the merged report is byte-deterministic in join order regardless of
//! the schedule that ran the tasks.

use crate::audit::AuditError;
use crate::emu::{EmuRegionId, EmuRegions};
use crate::heap::Heap;
use crate::json::Json;
use crate::region::RegionId;
use crate::span::SpanTree;
use crate::stats::Stats;
use crate::timeline::Timeline;
use crate::trace::Tracer;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies one heap shard. Shard 0 is the root (the main task's
/// heap); spawned tasks get ids in spawn order, which is deterministic
/// because `spawn` is a program point, not a scheduler decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The main task's shard.
    pub const ROOT: ShardId = ShardId(0);
}

/// The typed ownership-transfer message a `spawn` sends: region
/// `region` (with its whole subtree) moves from shard `from` to shard
/// `to`. `seq` is the global spawn ordinal — it orders joins'
/// telemetry merges so the global report does not depend on thread
/// timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    /// Global spawn ordinal (0-based, program order).
    pub seq: u64,
    /// The shard giving the region up (the spawning task).
    pub from: ShardId,
    /// The shard receiving it (the spawned task).
    pub to: ShardId,
    /// The moved region, in the *parent's* id space; the child sees it
    /// as its [`Facet`].
    pub region: RegionId,
}

impl Handoff {
    /// Report encoding, field order fixed for byte-determinism.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::U(self.seq)),
            ("from", Json::U(self.from.0 as u64)),
            ("to", Json::U(self.to.0 as u64)),
            ("region", Json::U(self.region.0 as u64)),
        ])
    }
}

/// How the handed-off region appears inside the child shard: a real
/// region on the region backends, or an emulated one on the malloc/gc
/// baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Facet {
    /// Fresh region in the child heap's region hierarchy.
    Real(RegionId),
    /// Fresh emulated region in the child's [`EmuRegions`] table.
    Emu(EmuRegionId),
}

/// A typed scheduler event, stamped by the interpreter at the scheduling
/// decision points of one task. Structural kinds ([`SchedEventKind::is_structural`])
/// describe the spawn/join tree and are always retained; slice kinds
/// (baton and semaphore traffic) are volume-bounded by the recorder's cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedEventKind {
    /// The task began executing (baton turn / permit acquired).
    TaskStart,
    /// The task finished (final event; `local` equals the task's cycles).
    TaskEnd,
    /// The task executed its `nth` `spawn` statement (0-based, per task).
    /// The spawned child is the `nth` handoff whose `from` is this task,
    /// in `Handoff::seq` order.
    Spawn {
        /// Per-task spawn ordinal.
        nth: u32,
    },
    /// Deterministic scheduler: regained the baton for a slice of
    /// `slice` interpreter steps.
    BatonAcquire {
        /// Steps granted by the slice stream.
        slice: u64,
    },
    /// Deterministic scheduler: slice expired after `ran` steps; the
    /// baton passed on.
    BatonRelease {
        /// Steps actually run in the expired slice.
        ran: u64,
    },
    /// Thread scheduler: admitted by the semaphore.
    SemaAdmit,
    /// Thread scheduler: about to give the permit up (blocking).
    SemaBlock,
    /// Entered a `join` with `pending` outstanding children.
    JoinWaitBegin {
        /// Children not yet joined at this point.
        pending: u32,
    },
    /// All children joined; the task runs again.
    JoinWaitEnd,
}

impl SchedEventKind {
    /// Stable lowercase name, used by the JSON encodings.
    pub fn name(self) -> &'static str {
        match self {
            SchedEventKind::TaskStart => "task_start",
            SchedEventKind::TaskEnd => "task_end",
            SchedEventKind::Spawn { .. } => "spawn",
            SchedEventKind::BatonAcquire { .. } => "baton_acquire",
            SchedEventKind::BatonRelease { .. } => "baton_release",
            SchedEventKind::SemaAdmit => "sema_admit",
            SchedEventKind::SemaBlock => "sema_block",
            SchedEventKind::JoinWaitBegin { .. } => "join_wait_begin",
            SchedEventKind::JoinWaitEnd => "join_wait_end",
        }
    }

    /// The numeric payload (0 for kinds without one).
    pub fn arg(self) -> u64 {
        match self {
            SchedEventKind::Spawn { nth } => nth as u64,
            SchedEventKind::BatonAcquire { slice } => slice,
            SchedEventKind::BatonRelease { ran } => ran,
            SchedEventKind::JoinWaitBegin { pending } => pending as u64,
            _ => 0,
        }
    }

    /// Whether the event describes the spawn/join tree (always retained)
    /// rather than scheduler slice traffic (cap-bounded).
    pub fn is_structural(self) -> bool {
        matches!(
            self,
            SchedEventKind::TaskStart
                | SchedEventKind::TaskEnd
                | SchedEventKind::Spawn { .. }
                | SchedEventKind::JoinWaitBegin { .. }
                | SchedEventKind::JoinWaitEnd
        )
    }
}

/// One stamped scheduler event: `at` on the shared virtual clock (the
/// global interleaving position), `local` on the task's own heap clock
/// (charged cycles the task had executed when the event fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEvent {
    /// Shared-virtual-clock stamp (see [`SharedClock`]).
    pub at: u64,
    /// The task's own charged cycles at the stamp.
    pub local: u64,
    /// What happened.
    pub kind: SchedEventKind,
}

impl SchedEvent {
    /// Report encoding, field order fixed for byte-determinism.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("at", Json::U(self.at)),
            ("local", Json::U(self.local)),
            ("kind", Json::s(self.kind.name())),
            ("arg", Json::U(self.kind.arg())),
        ])
    }
}

/// The run-global virtual clock scheduler events are stamped on: a
/// shared counter every task advances by its own charged-cycle delta at
/// each stamp. Under the serialized schedulers (inline, deterministic
/// baton) exactly one task runs at a time, so the stamps totally order
/// the run and the final value equals total work (Σ per-task cycles) —
/// deterministically, per seed. Under real threads stamps are coherent
/// and monotone per task but interleaving-dependent.
#[derive(Debug, Clone, Default)]
pub struct SharedClock(Arc<AtomicU64>);

impl SharedClock {
    /// A fresh clock at 0.
    pub fn new() -> SharedClock {
        SharedClock::default()
    }

    /// Advances by `delta` charged cycles; returns the new reading.
    pub fn advance(&self, delta: u64) -> u64 {
        self.0.fetch_add(delta, Ordering::SeqCst) + delta
    }

    /// The current reading.
    pub fn now(&self) -> u64 {
        self.0.load(Ordering::SeqCst)
    }
}

/// Slice events retained per task before the recorder starts counting
/// drops instead (structural events are never dropped; the aggregate
/// counters stay exact either way).
pub const SCHED_EVENT_CAP: usize = 4096;

/// One task's finished scheduler log: the retained event stream plus
/// exact online aggregates.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedLog {
    /// Retained events in stamp order (structural always; slice events
    /// up to the recorder's cap).
    pub events: Vec<SchedEvent>,
    /// Slice events dropped once the cap was hit.
    pub dropped: u64,
    /// `spawn` statements this task executed.
    pub spawns: u64,
    /// Baton slices granted (equals `baton_releases`: acquire/release
    /// are stamped pairwise at slice expiry).
    pub baton_acquires: u64,
    /// Baton slices expired.
    pub baton_releases: u64,
    /// Semaphore admissions (thread scheduler).
    pub sema_admits: u64,
    /// Semaphore releases ahead of blocking (thread scheduler).
    pub sema_blocks: u64,
    /// `join` points with outstanding children.
    pub join_waits: u64,
    /// Shared-clock reading when the task was spawned (0 for the root).
    pub born_at: u64,
    /// Shared-clock stamp of [`SchedEventKind::TaskStart`].
    pub started_at: u64,
    /// Shared-clock stamp of [`SchedEventKind::TaskEnd`].
    pub ended_at: u64,
    /// Shared-clock time spent not running: waiting to start, blocked in
    /// `join`, or parked between baton slices / semaphore permits.
    pub blocked_cycles: u64,
}

impl SchedLog {
    /// Event-pairing well-formedness: exactly one start and end, every
    /// `join_wait_begin` matched by a `join_wait_end`, baton acquires
    /// equal to releases, and the retained structural events agreeing
    /// with the aggregate counters.
    pub fn balanced(&self) -> bool {
        let count = |want: &str| self.events.iter().filter(|e| e.kind.name() == want).count() as u64;
        count("task_start") == 1
            && count("task_end") == 1
            && count("spawn") == self.spawns
            && count("join_wait_begin") == self.join_waits
            && count("join_wait_end") == self.join_waits
            && self.baton_acquires == self.baton_releases
    }

    /// Report encoding: aggregates first, then the event stream. Field
    /// order fixed for byte-determinism.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("spawns", Json::U(self.spawns)),
            ("baton_acquires", Json::U(self.baton_acquires)),
            ("baton_releases", Json::U(self.baton_releases)),
            ("sema_admits", Json::U(self.sema_admits)),
            ("sema_blocks", Json::U(self.sema_blocks)),
            ("join_waits", Json::U(self.join_waits)),
            ("born_at", Json::U(self.born_at)),
            ("started_at", Json::U(self.started_at)),
            ("ended_at", Json::U(self.ended_at)),
            ("blocked_cycles", Json::U(self.blocked_cycles)),
            ("dropped", Json::U(self.dropped)),
            ("events", Json::A(self.events.iter().map(SchedEvent::to_json).collect())),
        ])
    }
}

/// The per-task stamping side of [`SchedLog`]: owned by the interpreter
/// of one task, advances the [`SharedClock`] by the task's charged-cycle
/// delta at every stamp, and maintains the aggregates online.
#[derive(Debug)]
pub struct SchedRecorder {
    clock: SharedClock,
    last_local: u64,
    wait_from: Option<u64>,
    cap: usize,
    log: SchedLog,
}

impl SchedRecorder {
    /// The root task's recorder on a fresh shared clock.
    pub fn root() -> SchedRecorder {
        SchedRecorder::on(SharedClock::new())
    }

    /// A recorder on an existing clock, born now.
    pub fn on(clock: SharedClock) -> SchedRecorder {
        let born = clock.now();
        SchedRecorder {
            clock,
            last_local: 0,
            wait_from: Some(born),
            cap: SCHED_EVENT_CAP,
            log: SchedLog { born_at: born, ..SchedLog::default() },
        }
    }

    /// A child task's recorder: same clock, born at the parent's spawn
    /// stamp. Time from here to the child's `task_start` counts as
    /// blocked (waiting to be scheduled).
    pub fn child(&self) -> SchedRecorder {
        SchedRecorder::on(self.clock.clone())
    }

    /// The shared clock (for tests and derived recorders).
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }

    /// `spawn` statements stamped so far (the next spawn's ordinal).
    pub fn spawns(&self) -> u64 {
        self.log.spawns
    }

    /// Stamps one event: advances the shared clock by this task's
    /// charged-cycle delta since its previous stamp (`local` is the
    /// task's current heap-clock reading) and updates the aggregates.
    /// Returns the shared-clock stamp.
    pub fn stamp(&mut self, local: u64, kind: SchedEventKind) -> u64 {
        let delta = local.saturating_sub(self.last_local);
        self.last_local = local.max(self.last_local);
        let at = self.clock.advance(delta);
        match kind {
            SchedEventKind::TaskStart => {
                self.log.started_at = at;
                if let Some(w) = self.wait_from.take() {
                    self.log.blocked_cycles += at.saturating_sub(w);
                }
            }
            SchedEventKind::TaskEnd => self.log.ended_at = at,
            SchedEventKind::Spawn { .. } => self.log.spawns += 1,
            SchedEventKind::BatonAcquire { .. } => {
                self.log.baton_acquires += 1;
                if let Some(w) = self.wait_from.take() {
                    self.log.blocked_cycles += at.saturating_sub(w);
                }
            }
            SchedEventKind::BatonRelease { .. } => {
                self.log.baton_releases += 1;
                self.wait_from = Some(at);
            }
            SchedEventKind::SemaAdmit => {
                self.log.sema_admits += 1;
                if let Some(w) = self.wait_from.take() {
                    self.log.blocked_cycles += at.saturating_sub(w);
                }
            }
            SchedEventKind::SemaBlock => {
                self.log.sema_blocks += 1;
                self.wait_from = Some(at);
            }
            SchedEventKind::JoinWaitBegin { .. } => {
                self.log.join_waits += 1;
                self.wait_from = Some(at);
            }
            SchedEventKind::JoinWaitEnd => {
                if let Some(w) = self.wait_from.take() {
                    self.log.blocked_cycles += at.saturating_sub(w);
                }
            }
        }
        if kind.is_structural() || self.log.events.len() < self.cap {
            self.log.events.push(SchedEvent { at, local, kind });
        } else {
            self.log.dropped += 1;
        }
        at
    }

    /// Seals the log: stamps [`SchedEventKind::TaskEnd`] at the task's
    /// final cycle count and hands the log over.
    pub fn finish(mut self, local: u64) -> SchedLog {
        self.stamp(local, SchedEventKind::TaskEnd);
        self.log
    }
}

/// One task's un-merged observability facet, preserved alongside the
/// merged report when a program spawned: identity (spawn-tree position
/// and source site), work (cycles/steps/[`Stats`]), the scheduler log,
/// and — when the corresponding instrument was enabled — the task's own
/// timeline and trace. The merged view is exactly the in-order fold of
/// these (asserted by the fuzz oracle and the critpath property tests).
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// The task's shard id ([`ShardId::ROOT`] for the main task).
    pub id: ShardId,
    /// The spawning task ([`ShardId::ROOT`] for the root itself).
    pub parent: ShardId,
    /// Global spawn ordinal (`Handoff::seq`; 0 for the root).
    pub seq: u64,
    /// The moved region in the parent's id space (0 for the root).
    pub region: RegionId,
    /// Source line of the `spawn` statement (0 for the root).
    pub spawn_site: u32,
    /// Charged cycles the task executed.
    pub cycles: u64,
    /// Interpreter steps the task executed.
    pub steps: u64,
    /// The task's own operation counters.
    pub stats: Stats,
    /// The task's scheduler log.
    pub sched: SchedLog,
    /// The task's timeline, if sampling was on.
    pub timeline: Option<Box<Timeline>>,
    /// The task's event ring + profile, if tracing was on.
    pub tracer: Option<Box<Tracer>>,
}

impl TaskReport {
    /// Whether this is the main task's report.
    pub fn is_root(&self) -> bool {
        self.id == ShardId::ROOT
    }

    /// Report encoding: identity, work, and the scheduler log. The
    /// timeline and trace ring travel through their own exporters (JSONL
    /// / Perfetto), not this object. Field order fixed for
    /// byte-determinism.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("task", Json::U(self.id.0 as u64)),
            ("parent", Json::U(self.parent.0 as u64)),
            ("seq", Json::U(self.seq)),
            ("region", Json::U(self.region.0 as u64)),
            ("spawn_site", Json::U(self.spawn_site as u64)),
            ("cycles", Json::U(self.cycles)),
            ("steps", Json::U(self.steps)),
            ("stats", self.stats.to_json()),
            ("sched", self.sched.to_json()),
        ])
    }
}

/// A finished task's shard, handed back to the joining parent: the
/// task's whole heap plus the telemetry it accumulated. The parent
/// folds these into the global report in `Handoff::seq` order.
#[derive(Debug)]
pub struct Shard {
    /// This shard's id.
    pub id: ShardId,
    /// The grant that created it.
    pub handoff: Handoff,
    /// The task's isolated heap (boxed: a `Heap` is large and the shard
    /// crosses a thread boundary).
    pub heap: Box<Heap>,
    /// Emulated-region table, on the malloc/gc baselines.
    pub emu: Option<EmuRegions>,
    /// The moved region as the child saw it.
    pub facet: Facet,
    /// Whether the task deleted its facet (then the parent deletes the
    /// original region at join instead of reclaiming it).
    pub facet_dead: bool,
    /// The task's span tree, if span recording was on.
    pub spans: Option<Box<SpanTree>>,
    /// The task's event ring + profile, if tracing was on.
    pub tracer: Option<Box<Tracer>>,
    /// The task's timeline, if sampling was on.
    pub timeline: Option<Box<Timeline>>,
    /// Virtual steps the task executed (its contribution to the global
    /// step count).
    pub steps: u64,
    /// The task's sealed scheduler log.
    pub sched: SchedLog,
    /// Source line of the `spawn` statement that created the task.
    pub spawn_site: u32,
}

impl Shard {
    /// Audits this shard's heap (the same invariant check a sequential
    /// run gets; isolation means each shard must be independently
    /// clean).
    pub fn audit(&self) -> Result<(), AuditError> {
        self.heap.audit()
    }
}

/// Audits the parent heap and every shard; the post-join cleanliness
/// gate. The parent reports as [`ShardId::ROOT`].
pub fn audit_all<'a>(
    parent: &Heap,
    shards: impl IntoIterator<Item = &'a Shard>,
) -> Result<(), (ShardId, AuditError)> {
    parent.audit().map_err(|e| (ShardId::ROOT, e))?;
    for s in shards {
        s.audit().map_err(|e| (s.id, e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{PtrKind, SlotKind, TypeLayout};
    use crate::rcops::WriteMode;

    fn shard_with_list(id: u32, corrupt: bool) -> Shard {
        let mut heap = Box::new(Heap::with_defaults());
        let ty = heap.register_type(TypeLayout::new(
            "node",
            vec![SlotKind::Ptr(PtrKind::Counted), SlotKind::Data],
        ));
        let facet = heap.new_region();
        let other = heap.new_region();
        let a = heap.ralloc(facet, ty).unwrap();
        let b = heap.ralloc(facet, ty).unwrap();
        heap.write_ptr(a, 0, b, WriteMode::Counted).unwrap();
        if corrupt {
            // Cross-region store without its barrier: the audit must
            // catch the missing count.
            let c = heap.ralloc(other, ty).unwrap();
            heap.write_ptr(a, 0, c, WriteMode::Raw).unwrap();
        }
        Shard {
            id: ShardId(id),
            handoff: Handoff {
                seq: (id - 1) as u64,
                from: ShardId::ROOT,
                to: ShardId(id),
                region: RegionId(7),
            },
            heap,
            emu: None,
            facet: Facet::Real(facet),
            facet_dead: false,
            spans: None,
            tracer: None,
            timeline: None,
            steps: 3,
            sched: SchedLog::default(),
            spawn_site: 0,
        }
    }

    #[test]
    fn audit_all_passes_on_clean_parent_and_shards() {
        let parent = Heap::with_defaults();
        let shards = vec![shard_with_list(1, false), shard_with_list(2, false)];
        audit_all(&parent, &shards).unwrap();
    }

    #[test]
    fn audit_all_attributes_failures_to_the_shard() {
        let parent = Heap::with_defaults();
        let shards = vec![shard_with_list(1, false), shard_with_list(2, true)];
        let (id, _err) = audit_all(&parent, &shards).unwrap_err();
        assert_eq!(id, ShardId(2));
    }

    #[test]
    fn recorder_advances_shared_clock_by_local_deltas() {
        let mut root = SchedRecorder::root();
        let child = root.child();
        assert_eq!(root.stamp(0, SchedEventKind::TaskStart), 0);
        assert_eq!(root.stamp(10, SchedEventKind::Spawn { nth: 0 }), 10);
        // The child's stamps advance the same clock by its own deltas.
        let mut child = child;
        assert_eq!(child.stamp(0, SchedEventKind::TaskStart), 10);
        assert_eq!(child.stamp(7, SchedEventKind::TaskEnd), 17);
        // The root resumes from its own local 10: +5 cycles.
        assert_eq!(root.stamp(15, SchedEventKind::JoinWaitBegin { pending: 1 }), 22);
        let log = root.finish(15);
        // Final clock = total work stamped (10 + 7 + 5).
        assert_eq!(log.ended_at, 22);
        assert_eq!(log.spawns, 1);
        assert_eq!(log.join_waits, 1);
    }

    #[test]
    fn recorder_attributes_blocked_time() {
        let mut root = SchedRecorder::root();
        root.stamp(0, SchedEventKind::TaskStart);
        root.stamp(4, SchedEventKind::JoinWaitBegin { pending: 2 });
        let child = root.child();
        let mut child = child;
        child.stamp(0, SchedEventKind::TaskStart);
        // Child born at shared 4; it waits 0 (starts immediately), runs 9.
        child.stamp(9, SchedEventKind::TaskEnd);
        root.stamp(4, SchedEventKind::JoinWaitEnd);
        let log = root.finish(6);
        // Root was blocked from shared 4 to shared 13 while the child ran.
        assert_eq!(log.blocked_cycles, 9);
        assert_eq!(log.ended_at, 15);
    }

    #[test]
    fn log_balance_checks_event_pairing() {
        let mut r = SchedRecorder::root();
        r.stamp(0, SchedEventKind::TaskStart);
        r.stamp(1, SchedEventKind::Spawn { nth: 0 });
        r.stamp(2, SchedEventKind::BatonRelease { ran: 2 });
        r.stamp(2, SchedEventKind::BatonAcquire { slice: 8 });
        r.stamp(3, SchedEventKind::JoinWaitBegin { pending: 1 });
        r.stamp(3, SchedEventKind::JoinWaitEnd);
        let log = r.finish(4);
        assert!(log.balanced(), "{log:?}");
        let mut broken = log.clone();
        broken.events.retain(|e| e.kind != SchedEventKind::JoinWaitEnd);
        assert!(!broken.balanced());
    }

    #[test]
    fn recorder_caps_slice_events_but_keeps_structural() {
        let mut r = SchedRecorder::root();
        r.cap = 4;
        r.stamp(0, SchedEventKind::TaskStart);
        for i in 0..10 {
            r.stamp(i, SchedEventKind::BatonRelease { ran: 1 });
            r.stamp(i, SchedEventKind::BatonAcquire { slice: 1 });
        }
        r.stamp(11, SchedEventKind::JoinWaitBegin { pending: 1 });
        r.stamp(11, SchedEventKind::JoinWaitEnd);
        let log = r.finish(12);
        assert_eq!(log.dropped, 17, "slice events beyond the cap are counted");
        assert_eq!(log.baton_acquires, 10, "aggregates stay exact");
        assert_eq!(log.baton_releases, 10);
        for want in ["task_start", "task_end", "join_wait_begin", "join_wait_end"] {
            assert!(
                log.events.iter().any(|e| e.kind.name() == want),
                "structural {want} survived the cap"
            );
        }
    }

    #[test]
    fn sched_event_json_is_stable() {
        let e = SchedEvent {
            at: 42,
            local: 17,
            kind: SchedEventKind::BatonAcquire { slice: 8 },
        };
        assert_eq!(
            e.to_json().render(),
            r#"{"at":42,"local":17,"kind":"baton_acquire","arg":8}"#
        );
    }

    #[test]
    fn handoff_json_is_stable() {
        let h = Handoff {
            seq: 4,
            from: ShardId::ROOT,
            to: ShardId(3),
            region: RegionId(9),
        };
        assert_eq!(
            h.to_json().render(),
            r#"{"seq":4,"from":0,"to":3,"region":9}"#
        );
    }
}
